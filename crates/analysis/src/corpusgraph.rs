//! Whole-corpus call graph and blast-radius analytics.
//!
//! Per-sample analysis stops at a translation-unit boundary, so the triage
//! queue ranks findings by severity alone. The paper's threat-modeling stage
//! (Figure 1) instead ranks by reachability and exposure *across* the
//! program. This module promotes the corpus to a program: every sample (or
//! project unit) contributes its functions as nodes, calls are resolved
//! first within the unit and then against sibling units of the same project
//! (a project is the linkage domain), and everything downstream — cross-
//! sample reachability, centrality, communities, blast radius — is computed
//! over the merged graph.
//!
//! Everything here is dependency-free and byte-deterministic at any
//! `--jobs`: parallel stages work on fixed-size chunks whose partial results
//! are merged in chunk order, so float accumulation order never depends on
//! the worker count.

use crate::reachability::Surface;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use vulnman_lang::absint::CallGraph as SccGraph;
use vulnman_lang::cache::AnalysisCache;
use vulnman_lang::ParseError;
use vulnman_obs::Registry;
use vulnman_synth::sample::Sample;

/// One translation unit contributed to the corpus graph.
#[derive(Debug, Clone, Copy)]
pub struct UnitRef<'a> {
    /// Stable unit identifier (sample id).
    pub id: u64,
    /// Linkage domain: calls resolve only within a project.
    pub project: &'a str,
    /// Source text of the unit.
    pub source: &'a str,
}

/// A function node of the corpus graph.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FnNode {
    /// Defining unit id.
    pub unit: u64,
    /// Project of the defining unit.
    pub project: String,
    /// Unqualified function name.
    pub name: String,
}

impl FnNode {
    /// Unit-qualified node name, unique across the corpus.
    pub fn qualified(&self) -> String {
        format!("u{:06}::{}", self.unit, self.name)
    }
}

/// Per-function analytics in the corpus graph report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FnReport {
    /// Defining unit id.
    pub unit: u64,
    /// Project of the defining unit.
    pub project: String,
    /// Callers within the corpus graph.
    pub in_degree: usize,
    /// Resolved callees within the corpus graph.
    pub out_degree: usize,
    /// Brandes betweenness centrality, normalized to `[0, 1]`.
    pub betweenness: f64,
    /// Label-propagation community id (dense, in node order).
    pub community: usize,
    /// Functions transitively reachable from this one (excluding itself).
    pub downstream: usize,
    /// Functions that can transitively reach this one (excluding itself).
    pub upstream: usize,
    /// Blast-radius score in `[0, 1]`, normalized by the linkage domain
    /// (calls cannot resolve across projects, so the project is the
    /// function's reachable universe):
    /// `(downstream + upstream) / (2 * (project nodes - 1))`.
    pub blast: f64,
    /// Cross-sample attack surface: the most exposed input source reachable
    /// anywhere in this function's corpus-wide call subtree.
    pub surface: Surface,
}

/// Deterministic, serializable summary of a corpus graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorpusGraphReport {
    /// Function nodes.
    pub nodes: usize,
    /// Resolved call edges.
    pub edges: usize,
    /// Edges whose caller and callee live in different units.
    pub cross_unit_edges: usize,
    /// Distinct (function, external callee) pairs.
    pub externals: usize,
    /// Strongly connected components.
    pub sccs: usize,
    /// Label-propagation communities.
    pub communities: usize,
    /// Per-function analytics keyed by unit-qualified name.
    pub functions: BTreeMap<String, FnReport>,
}

/// The assembled cross-sample call graph.
#[derive(Debug)]
pub struct CorpusGraph {
    nodes: Vec<FnNode>,
    /// `(unit, name) -> node index`.
    index: BTreeMap<(u64, String), usize>,
    /// Sorted, deduped adjacency.
    callees: Vec<Vec<usize>>,
    callers: Vec<Vec<usize>>,
    /// Sorted external callee names per node.
    externals: Vec<Vec<String>>,
    cross_unit_edges: usize,
    sccs: usize,
    // Derived analytics, computed once at build time.
    downstream: Vec<usize>,
    upstream: Vec<usize>,
    blast: Vec<f64>,
    surface: Vec<Surface>,
    betweenness: Vec<f64>,
    community: Vec<usize>,
    n_communities: usize,
}

/// Pre-registers every `graph.*` instrument so the metrics schema is
/// identical whether or not a corpus graph is ever built (the same
/// discipline as `register_absint_instruments`).
pub fn register_graph_instruments(metrics: &Registry) {
    metrics.counter("graph.builds");
    metrics.counter("graph.nodes");
    metrics.counter("graph.edges");
    metrics.counter("graph.cross_unit_edges");
    metrics.counter("graph.externals");
    metrics.counter("graph.sccs");
    metrics.counter("graph.communities");
    metrics.histogram("graph.blast_per_mille");
    metrics.histogram("span.graph.build");
}

/// Fixed chunk size for parallel betweenness accumulation. Chunk boundaries
/// are a function of the node count alone — never of `jobs` — so partial
/// sums merge in the same order at any worker count.
const BETWEENNESS_CHUNK: usize = 64;

/// Sweep cap for label propagation (async updates in fixed node order
/// terminate in practice long before this; the cap makes the worst case
/// finite without changing any converged result).
const MAX_LPA_SWEEPS: usize = 64;

impl CorpusGraph {
    /// Builds the corpus graph sequentially without caching or metrics.
    ///
    /// # Errors
    ///
    /// Returns the first parse error among the units.
    pub fn build(units: &[UnitRef<'_>]) -> Result<CorpusGraph, ParseError> {
        Self::build_with(units, &AnalysisCache::disabled(), 1, &Registry::noop())
    }

    /// Builds the corpus graph from dataset samples (each sample is one
    /// unit; its `project` field is the linkage domain).
    ///
    /// # Errors
    ///
    /// Returns the first parse error among the samples.
    pub fn from_samples(
        samples: &[Sample],
        cache: &AnalysisCache,
        jobs: usize,
        metrics: &Registry,
    ) -> Result<CorpusGraph, ParseError> {
        let units: Vec<UnitRef<'_>> = samples
            .iter()
            .map(|s| UnitRef { id: s.id, project: &s.project, source: &s.source })
            .collect();
        Self::build_with(&units, cache, jobs, metrics)
    }

    /// Builds the corpus graph: parses every unit (`jobs`-way sharded,
    /// optionally through `cache`), resolves calls (local first, then
    /// sibling units of the same project, first-defining-unit wins), and
    /// computes reachability closures, surfaces, centrality, communities,
    /// and blast radii. Output is byte-identical at any `jobs` and with the
    /// cache on or off.
    ///
    /// # Errors
    ///
    /// Returns the first parse error among the units (in unit order).
    pub fn build_with(
        units: &[UnitRef<'_>],
        cache: &AnalysisCache,
        jobs: usize,
        metrics: &Registry,
    ) -> Result<CorpusGraph, ParseError> {
        let span = metrics.span("graph.build");
        let programs = parse_units(units, cache, jobs)?;

        // Nodes, in (unit order, definition order).
        let mut nodes: Vec<FnNode> = Vec::new();
        let mut index: BTreeMap<(u64, String), usize> = BTreeMap::new();
        // First defining node per (project, name): the linkage winner.
        let mut project_defs: BTreeMap<(String, String), usize> = BTreeMap::new();
        for (u, program) in units.iter().zip(&programs) {
            for f in &program.functions {
                let key = (u.id, f.name.to_string());
                if index.contains_key(&key) {
                    // Duplicate definition within a unit: first wins.
                    continue;
                }
                let idx = nodes.len();
                project_defs.entry((u.project.to_string(), key.1.clone())).or_insert(idx);
                index.insert(key.clone(), idx);
                nodes.push(FnNode { unit: u.id, project: u.project.to_string(), name: key.1 });
            }
        }

        // Resolve calls: local definition first, then the project-wide
        // first definition; anything else is an external.
        let n = nodes.len();
        let mut callees: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut callers: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut externals: Vec<Vec<String>> = vec![Vec::new(); n];
        let mut cross_unit_edges = 0usize;
        let mut resolved = vec![false; n];
        for (u, program) in units.iter().zip(&programs) {
            for f in &program.functions {
                let Some(&i) = index.get(&(u.id, f.name.to_string())) else { continue };
                if std::mem::replace(&mut resolved[i], true) {
                    continue; // shadowed duplicate definition in this unit
                }
                let mut edge_set: BTreeSet<usize> = BTreeSet::new();
                let mut ext_set: BTreeSet<String> = BTreeSet::new();
                for callee in f.callees() {
                    let cname = callee.to_string();
                    let target = index
                        .get(&(u.id, cname.clone()))
                        .or_else(|| project_defs.get(&(u.project.to_string(), cname.clone())))
                        .copied();
                    match target {
                        Some(j) if j != i => {
                            edge_set.insert(j);
                        }
                        Some(_) => {} // self-recursion: not an edge for metrics
                        None => {
                            ext_set.insert(cname);
                        }
                    }
                }
                cross_unit_edges += edge_set.iter().filter(|&&j| nodes[j].unit != u.id).count();
                for &j in &edge_set {
                    callers[j].push(i);
                }
                callees[i] = edge_set.into_iter().collect();
                externals[i] = ext_set.into_iter().collect();
            }
        }
        for c in &mut callers {
            c.sort_unstable();
            c.dedup();
        }

        // SCC condensation in bottom-up order, via the absint call-graph
        // machinery over qualified node names.
        let qualified: Vec<String> = nodes.iter().map(FnNode::qualified).collect();
        let scc_graph = SccGraph::from_edges(qualified, &callees);
        let comps = scc_graph.sccs();

        // Reachability closures (bitsets), summarized bottom-up over the
        // condensation exactly like absint return summaries: a component's
        // closure is the union of its members and all callee closures, and
        // every member of a cycle shares it.
        let words = n.div_ceil(64);
        let mut closure: Vec<Vec<u64>> = vec![vec![0u64; words]; n];
        let mut surface: Vec<Surface> = (0..n)
            .map(|i| {
                externals[i]
                    .iter()
                    .filter_map(|e| Surface::of_source(e))
                    .min()
                    .unwrap_or(Surface::Local)
            })
            .collect();
        for comp in &comps {
            let mut bits = vec![0u64; words];
            let mut surf = Surface::Local;
            for &m in comp {
                bits[m / 64] |= 1 << (m % 64);
                surf = surf.min(surface[m]);
                for &c in &callees[m] {
                    if !comp.contains(&c) {
                        for (w, &cw) in bits.iter_mut().zip(&closure[c]) {
                            *w |= cw;
                        }
                        surf = surf.min(surface[c]);
                    }
                }
            }
            for &m in comp {
                closure[m] = bits.clone();
                surface[m] = surf;
            }
        }
        let downstream: Vec<usize> = closure
            .iter()
            .map(|bits| bits.iter().map(|w| w.count_ones() as usize).sum::<usize>() - 1)
            .collect();
        let mut upstream = vec![0usize; n];
        for (i, bits) in closure.iter().enumerate() {
            for (w, &word) in bits.iter().enumerate() {
                let mut word = word;
                while word != 0 {
                    let b = word.trailing_zeros() as usize;
                    word &= word - 1;
                    let j = w * 64 + b;
                    if j != i {
                        upstream[j] += 1;
                    }
                }
            }
        }
        // Blast normalizes by the *linkage domain*, not the corpus: calls
        // cannot resolve across projects, so a function's reachable
        // universe is its project and corpus-wide normalization would cap
        // every score at (project size / corpus size) — near zero for any
        // real fleet of projects.
        let mut project_size: BTreeMap<&str, usize> = BTreeMap::new();
        for node in &nodes {
            *project_size.entry(node.project.as_str()).or_insert(0) += 1;
        }
        let blast: Vec<f64> = (0..n)
            .map(|i| {
                let size = project_size[nodes[i].project.as_str()];
                if size < 2 {
                    0.0
                } else {
                    (downstream[i] + upstream[i]) as f64 / (2.0 * (size - 1) as f64)
                }
            })
            .collect();

        let betweenness = betweenness_centrality(&callees, jobs);
        let (community, n_communities) = label_propagation(&callees, &callers);

        let mut g = CorpusGraph {
            nodes,
            index,
            callees,
            callers,
            externals,
            cross_unit_edges,
            sccs: comps.len(),
            downstream,
            upstream,
            blast,
            surface,
            betweenness,
            community,
            n_communities,
        };
        g.record(metrics);
        span.stop();
        Ok(g)
    }

    fn record(&mut self, metrics: &Registry) {
        metrics.counter("graph.builds").add(1);
        metrics.counter("graph.nodes").add(self.nodes.len() as u64);
        metrics.counter("graph.edges").add(self.edge_count() as u64);
        metrics.counter("graph.cross_unit_edges").add(self.cross_unit_edges as u64);
        metrics.counter("graph.externals").add(self.external_count() as u64);
        metrics.counter("graph.sccs").add(self.sccs as u64);
        metrics.counter("graph.communities").add(self.n_communities as u64);
        let hist = metrics.histogram("graph.blast_per_mille");
        for &b in &self.blast {
            hist.observe((b * 1000.0).round() as u64);
        }
    }

    /// Function nodes in corpus order.
    pub fn nodes(&self) -> &[FnNode] {
        &self.nodes
    }

    /// Total resolved call edges.
    pub fn edge_count(&self) -> usize {
        self.callees.iter().map(Vec::len).sum()
    }

    /// Edges whose endpoints live in different units.
    pub fn cross_unit_edge_count(&self) -> usize {
        self.cross_unit_edges
    }

    /// Distinct (function, external callee) pairs.
    pub fn external_count(&self) -> usize {
        self.externals.iter().map(Vec::len).sum()
    }

    /// Blast-radius score of `function` defined in `unit`, if present.
    pub fn blast_of(&self, unit: u64, function: &str) -> Option<f64> {
        self.index.get(&(unit, function.to_string())).map(|&i| self.blast[i])
    }

    /// Cross-sample surface of `function` defined in `unit`, if present.
    pub fn surface_of(&self, unit: u64, function: &str) -> Option<Surface> {
        self.index.get(&(unit, function.to_string())).map(|&i| self.surface[i])
    }

    /// Whether `caller` (in `caller_unit`) resolves a call to `callee` (in
    /// `callee_unit`).
    pub fn calls(&self, caller_unit: u64, caller: &str, callee_unit: u64, callee: &str) -> bool {
        let (Some(&i), Some(&j)) = (
            self.index.get(&(caller_unit, caller.to_string())),
            self.index.get(&(callee_unit, callee.to_string())),
        ) else {
            return false;
        };
        self.callees[i].binary_search(&j).is_ok()
    }

    /// Qualified names ranked by blast radius (descending), ties broken by
    /// qualified name so the ranking is a pure function of the corpus.
    pub fn blast_ranked(&self) -> Vec<(String, f64)> {
        let mut ranked: Vec<(String, f64)> =
            self.nodes.iter().enumerate().map(|(i, f)| (f.qualified(), self.blast[i])).collect();
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        ranked
    }

    /// The full deterministic report.
    pub fn report(&self) -> CorpusGraphReport {
        let functions: BTreeMap<String, FnReport> = self
            .nodes
            .iter()
            .enumerate()
            .map(|(i, f)| {
                (
                    f.qualified(),
                    FnReport {
                        unit: f.unit,
                        project: f.project.clone(),
                        in_degree: self.callers[i].len(),
                        out_degree: self.callees[i].len(),
                        betweenness: self.betweenness[i],
                        community: self.community[i],
                        downstream: self.downstream[i],
                        upstream: self.upstream[i],
                        blast: self.blast[i],
                        surface: self.surface[i],
                    },
                )
            })
            .collect();
        CorpusGraphReport {
            nodes: self.nodes.len(),
            edges: self.edge_count(),
            cross_unit_edges: self.cross_unit_edges,
            externals: self.external_count(),
            sccs: self.sccs,
            communities: self.n_communities,
            functions,
        }
    }
}

/// Parses all units, sharded over `jobs` threads. Results land by index, so
/// output is independent of the worker count; errors surface in unit order.
fn parse_units(
    units: &[UnitRef<'_>],
    cache: &AnalysisCache,
    jobs: usize,
) -> Result<Vec<std::sync::Arc<vulnman_lang::Program>>, ParseError> {
    let jobs = jobs.max(1);
    if jobs == 1 || units.len() < 4 {
        return units.iter().map(|u| cache.parse(u.source)).collect();
    }
    type ParseSlot = Mutex<Option<Result<std::sync::Arc<vulnman_lang::Program>, ParseError>>>;
    let results: Vec<ParseSlot> = units.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..jobs.min(units.len()) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= units.len() {
                    break;
                }
                *results[i].lock().expect("parse slot") = Some(cache.parse(units[i].source));
            });
        }
    });
    results
        .into_iter()
        .map(|slot| slot.into_inner().expect("parse slot").expect("every unit parsed"))
        .collect()
}

/// Brandes betweenness centrality over the directed graph, normalized by
/// `(n-1)(n-2)`. Source contributions are accumulated per fixed-size chunk
/// and the chunk partials summed in chunk order, so the floating-point
/// accumulation order — hence the bytes — are identical at any `jobs`.
fn betweenness_centrality(callees: &[Vec<usize>], jobs: usize) -> Vec<f64> {
    let n = callees.len();
    if n < 3 {
        return vec![0.0; n];
    }
    let n_chunks = n.div_ceil(BETWEENNESS_CHUNK);
    let partials: Vec<Mutex<Option<Vec<f64>>>> = (0..n_chunks).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let worker = || loop {
        let chunk = next.fetch_add(1, Ordering::Relaxed);
        if chunk >= n_chunks {
            break;
        }
        let lo = chunk * BETWEENNESS_CHUNK;
        let hi = (lo + BETWEENNESS_CHUNK).min(n);
        let mut acc = vec![0.0f64; n];
        for s in lo..hi {
            brandes_from(s, callees, &mut acc);
        }
        *partials[chunk].lock().expect("partial slot") = Some(acc);
    };
    let jobs = jobs.max(1).min(n_chunks);
    if jobs == 1 {
        worker();
    } else {
        std::thread::scope(|scope| {
            for _ in 0..jobs {
                scope.spawn(worker);
            }
        });
    }
    let mut bc = vec![0.0f64; n];
    for slot in partials {
        let part = slot.into_inner().expect("partial slot").expect("every chunk computed");
        for (b, p) in bc.iter_mut().zip(&part) {
            *b += p;
        }
    }
    let norm = ((n - 1) * (n - 2)) as f64;
    for b in &mut bc {
        *b /= norm;
    }
    bc
}

/// One Brandes source iteration: BFS shortest-path counting plus the
/// dependency back-propagation, accumulated into `acc`.
fn brandes_from(s: usize, callees: &[Vec<usize>], acc: &mut [f64]) {
    let n = callees.len();
    let mut dist = vec![usize::MAX; n];
    let mut sigma = vec![0.0f64; n];
    let mut order: Vec<usize> = Vec::new();
    let mut queue = std::collections::VecDeque::new();
    dist[s] = 0;
    sigma[s] = 1.0;
    queue.push_back(s);
    while let Some(v) = queue.pop_front() {
        order.push(v);
        for &w in &callees[v] {
            if dist[w] == usize::MAX {
                dist[w] = dist[v] + 1;
                queue.push_back(w);
            }
            if dist[w] == dist[v] + 1 {
                sigma[w] += sigma[v];
            }
        }
    }
    let mut delta = vec![0.0f64; n];
    for &v in order.iter().rev() {
        for &w in &callees[v] {
            if dist[w] == dist[v] + 1 {
                delta[v] += sigma[v] / sigma[w] * (1.0 + delta[w]);
            }
        }
        if v != s {
            acc[v] += delta[v];
        }
    }
}

/// Deterministic label propagation over the undirected view: labels start
/// as node indices and each sweep visits nodes in ascending index order,
/// adopting the most frequent neighbor label (ties broken toward the
/// smallest label). Updates are applied in place, so within a sweep later
/// nodes see earlier adoptions — a fixed visit order makes that sequential
/// semantics reproducible at any `--jobs` (the propagation is cheap enough
/// that it is never sharded). Converged labels are then densified in node
/// order. Returns `(community per node, community count)`.
fn label_propagation(callees: &[Vec<usize>], callers: &[Vec<usize>]) -> (Vec<usize>, usize) {
    let n = callees.len();
    let neighbors: Vec<Vec<usize>> = (0..n)
        .map(|i| {
            let set: BTreeSet<usize> = callees[i].iter().chain(&callers[i]).copied().collect();
            set.into_iter().collect()
        })
        .collect();
    let mut labels: Vec<usize> = (0..n).collect();
    for _ in 0..MAX_LPA_SWEEPS {
        let mut changed = false;
        for i in 0..n {
            if neighbors[i].is_empty() {
                continue;
            }
            let mut counts: BTreeMap<usize, usize> = BTreeMap::new();
            for &j in &neighbors[i] {
                *counts.entry(labels[j]).or_insert(0) += 1;
            }
            // Max count, smallest label on ties (BTreeMap iterates
            // ascending, so the first max wins).
            let (&best, _) = counts
                .iter()
                .max_by(|a, b| a.1.cmp(b.1).then_with(|| b.0.cmp(a.0)))
                .expect("non-empty counts");
            if best != labels[i] {
                labels[i] = best;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    // Densify labels in node order.
    let mut dense: BTreeMap<usize, usize> = BTreeMap::new();
    let mut out = Vec::with_capacity(n);
    for &l in &labels {
        let next_id = dense.len();
        out.push(*dense.entry(l).or_insert(next_id));
    }
    (out, dense.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(id: u64, project: &'static str, source: &'static str) -> UnitRef<'static> {
        UnitRef { id, project, source }
    }

    const HUB: &str = "void hub() { spoke_a(); spoke_b(); }\nvoid spoke_a() { }";
    const SPOKES: &str = "void spoke_b() { leaf(); }\nvoid leaf() { }";

    #[test]
    fn cross_unit_calls_resolve_within_project() {
        let g = CorpusGraph::build(&[unit(1, "p", HUB), unit(2, "p", SPOKES)]).unwrap();
        assert_eq!(g.nodes().len(), 4);
        assert!(g.calls(1, "hub", 2, "spoke_b"), "cross-unit edge resolved");
        assert!(g.calls(1, "hub", 1, "spoke_a"), "local edge resolved");
        assert_eq!(g.cross_unit_edge_count(), 1);
    }

    #[test]
    fn projects_are_linkage_domains() {
        // Same source in a different project: the call must NOT link.
        let g = CorpusGraph::build(&[unit(1, "p", HUB), unit(2, "q", SPOKES)]).unwrap();
        assert!(!g.calls(1, "hub", 2, "spoke_b"));
        assert_eq!(g.cross_unit_edge_count(), 0);
        // spoke_b becomes an external callee of hub instead.
        assert_eq!(g.external_count(), 1);
    }

    #[test]
    fn local_definition_shadows_sibling() {
        let a = "void go() { helper(); }\nvoid helper() { }";
        let b = "void helper() { recv(); }";
        let g = CorpusGraph::build(&[unit(1, "p", a), unit(2, "p", b)]).unwrap();
        assert!(g.calls(1, "go", 1, "helper"));
        assert!(!g.calls(1, "go", 2, "helper"));
        // And the local helper is clean, so go's surface stays Local.
        assert_eq!(g.surface_of(1, "go"), Some(Surface::Local));
    }

    #[test]
    fn surface_propagates_across_units() {
        let caller = "void api() { fetch_it(); }";
        let callee = "char* fetch_it() { return http_param(\"q\"); }";
        let g = CorpusGraph::build(&[unit(1, "p", caller), unit(2, "p", callee)]).unwrap();
        assert_eq!(g.surface_of(1, "api"), Some(Surface::ZeroClick));
        assert_eq!(g.surface_of(2, "fetch_it"), Some(Surface::ZeroClick));
    }

    #[test]
    fn blast_reflects_reachable_surface() {
        let g = CorpusGraph::build(&[unit(1, "p", HUB), unit(2, "p", SPOKES)]).unwrap();
        // hub reaches everything (downstream 3, upstream 0); leaf reaches
        // nothing but is reached by hub and spoke_b (downstream 0, up 2).
        let hub = g.blast_of(1, "hub").unwrap();
        let leaf = g.blast_of(2, "leaf").unwrap();
        let spoke_a = g.blast_of(1, "spoke_a").unwrap();
        assert!(hub > leaf, "hub {hub} vs leaf {leaf}");
        assert!(leaf > spoke_a, "leaf {leaf} vs spoke_a {spoke_a}");
        let ranked = g.blast_ranked();
        assert_eq!(ranked[0].0, "u000001::hub");
    }

    #[test]
    fn recursion_forms_scc_and_terminates() {
        let src = "void a() { b(); }\nvoid b() { a(); recv(); }";
        let g = CorpusGraph::build(&[unit(1, "p", src)]).unwrap();
        assert_eq!(g.report().sccs, 1);
        assert_eq!(g.surface_of(1, "a"), Some(Surface::ZeroClick));
        assert_eq!(g.blast_of(1, "a"), g.blast_of(1, "b"));
    }

    #[test]
    fn communities_split_disconnected_projects() {
        let g = CorpusGraph::build(&[
            unit(1, "p", HUB),
            unit(2, "p", SPOKES),
            unit(3, "q", "void isolated() { solo(); }\nvoid solo() { }"),
        ])
        .unwrap();
        let report = g.report();
        assert!(report.communities >= 2, "report: {report:?}");
        let hub_comm = report.functions["u000001::hub"].community;
        let iso_comm = report.functions["u000003::isolated"].community;
        assert_ne!(hub_comm, iso_comm);
    }

    #[test]
    fn byte_identical_across_jobs_and_cache() {
        let units: Vec<String> = (0..12)
            .map(|i| {
                let next = (i + 1) % 12;
                format!("void f{i}() {{ f{next}(); lib{i}(); }}\nvoid g{i}() {{ f{i}(); }}")
            })
            .collect();
        let refs: Vec<UnitRef<'_>> = units
            .iter()
            .enumerate()
            .map(|(i, s)| UnitRef { id: i as u64 + 1, project: "p", source: s })
            .collect();
        let base = serde_json::to_string(
            &CorpusGraph::build_with(&refs, &AnalysisCache::disabled(), 1, &Registry::noop())
                .unwrap()
                .report(),
        )
        .unwrap();
        for jobs in [2usize, 4] {
            for cached in [false, true] {
                let cache = if cached { AnalysisCache::new() } else { AnalysisCache::disabled() };
                let report = serde_json::to_string(
                    &CorpusGraph::build_with(&refs, &cache, jobs, &Registry::noop())
                        .unwrap()
                        .report(),
                )
                .unwrap();
                assert_eq!(report, base, "jobs={jobs} cached={cached}");
            }
        }
    }

    #[test]
    fn betweenness_peaks_on_the_bridge() {
        // a -> bridge -> c; bridge carries the only a->c path.
        let src = "void a() { bridge(); }\nvoid bridge() { c(); }\nvoid c() { }";
        let g = CorpusGraph::build(&[unit(1, "p", src)]).unwrap();
        let r = g.report();
        let bridge = r.functions["u000001::bridge"].betweenness;
        assert!(bridge > 0.0);
        assert!(bridge > r.functions["u000001::a"].betweenness);
        assert!(bridge > r.functions["u000001::c"].betweenness);
    }

    #[test]
    fn metrics_are_recorded() {
        let registry = Registry::new();
        register_graph_instruments(&registry);
        CorpusGraph::build_with(
            &[unit(1, "p", HUB), unit(2, "p", SPOKES)],
            &AnalysisCache::disabled(),
            1,
            &registry,
        )
        .unwrap();
        let snap = registry.snapshot();
        assert_eq!(snap.counters["graph.builds"], 1);
        assert_eq!(snap.counters["graph.nodes"], 4);
        assert_eq!(snap.counters["graph.cross_unit_edges"], 1);
        assert!(snap.counters["graph.communities"] >= 1);
    }

    #[test]
    fn empty_corpus_is_fine() {
        let g = CorpusGraph::build(&[]).unwrap();
        assert_eq!(g.nodes().len(), 0);
        assert_eq!(g.report().communities, 0);
        assert!(g.blast_ranked().is_empty());
    }
}
