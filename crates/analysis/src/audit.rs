//! Machine-checked detector-coverage audit: the CWE × detector-family ×
//! precision matrix.
//!
//! The paper's central observation is that industry assembles *suites* of
//! detection techniques, and the dangerous failures are the quiet ones —
//! a class nobody's tool covers, or a tool whose precision decays without
//! anyone noticing. This module makes that audit a build artifact: every
//! catalog class is exercised against every detector family over a seeded
//! vulnerable/fixed corpus, and the resulting coverage/precision matrix is
//! compared against a committed baseline so a lost cell or a new false
//! positive fails CI instead of surfacing in production triage.
//!
//! Families are disjoint techniques, not product bundles:
//!
//! * `rules` — the syntactic single-pattern detectors
//!   ([`RuleEngine::syntactic_suite`]).
//! * `taint` — interprocedural source→sink dataflow ([`TaintDetector`]).
//! * `semantic` — the abstract-interpretation checkers with evidence
//!   traces ([`SemanticEngine`]).
//! * `dynamic` — the sanitizer-instrumented concrete interpreter
//!   ([`DynamicSanitizer`]).
//! * `ml` — a trained classifier, injected via [`MlVerdict`] so this crate
//!   stays independent of the model stack.
//!
//! Everything is deterministic: the corpus is seeded, scanning is
//! order-independent, and the report is byte-identical at any `--jobs`.

use crate::checkers::SemanticEngine;
use crate::detectors::{RuleEngine, StaticDetector, TaintDetector};
use crate::dynamic::DynamicSanitizer;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use vulnman_obs::Registry;
use vulnman_synth::cwe::Cwe;
use vulnman_synth::generator::SampleGenerator;
use vulnman_synth::style::StyleProfile;
use vulnman_synth::tier::Tier;
use vulnman_synth::Sample;

/// Detector families audited, in presentation order. The `ml` column is
/// present only when a scorer is injected ([`AuditEngine::with_ml`]).
pub const STATIC_FAMILIES: [&str; 4] = ["rules", "taint", "semantic", "dynamic"];

/// Family name of the injected classifier column.
pub const ML_FAMILY: &str = "ml";

/// Minimum fraction of vulnerable samples a family must flag (with zero
/// false positives on the fixed twins) for its cell to count as *covered*:
/// 90%, matching the absint precision gate.
const COVERAGE_NUM: usize = 9;
const COVERAGE_DEN: usize = 10;

/// A trained classifier's binary verdict, injected by the caller (the CLI
/// and server wire the tool-augmented model from the core crate). The
/// indirection keeps `vulnman-analysis` free of a model-stack dependency,
/// mirroring the `ToolSuite` shim on the ML side.
pub trait MlVerdict: Send + Sync {
    /// Model name recorded in the report.
    fn name(&self) -> String;
    /// `true` when the model flags the sample as vulnerable.
    fn flags(&self, sample: &Sample) -> bool;
}

/// Audit parameters. The committed baseline pins these: change them and
/// the baseline must be regenerated deliberately.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuditConfig {
    /// Corpus seed (per-class streams are derived from it).
    pub seed: u64,
    /// Vulnerable/fixed pairs generated per class.
    pub samples_per_class: usize,
    /// Worker threads for the scan phase. Any value produces a
    /// byte-identical report.
    pub jobs: usize,
}

impl Default for AuditConfig {
    fn default() -> Self {
        AuditConfig { seed: 0xA0D1, samples_per_class: 12, jobs: 1 }
    }
}

/// One matrix cell: how a family fared on one class's corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cell {
    /// Vulnerable samples flagged with the class (out of
    /// [`AuditReport::samples_per_class`]).
    pub detected: usize,
    /// Fixed twins flagged with the class.
    pub false_positives: usize,
    /// `detected >= 90%` of the corpus with zero false positives.
    pub covered: bool,
}

impl Cell {
    fn new(detected: usize, false_positives: usize, total: usize) -> Cell {
        Cell {
            detected,
            false_positives,
            covered: detected * COVERAGE_DEN >= total * COVERAGE_NUM && false_positives == 0,
        }
    }
}

/// One class row: its identity plus a cell per family.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassAudit {
    /// CWE id.
    pub cwe: u32,
    /// Human name from the catalog.
    pub name: String,
    /// Whether the class sits in the public Top-25 slice.
    pub top25: bool,
    /// Family name → cell. `BTreeMap` keeps the JSON key order stable.
    pub cells: BTreeMap<String, Cell>,
}

/// The full audit: parameters plus the matrix, serializable as the
/// committed baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditReport {
    /// Corpus seed the matrix was computed from.
    pub seed: u64,
    /// Pairs per class.
    pub samples_per_class: usize,
    /// Families audited, in presentation order.
    pub families: Vec<String>,
    /// Name of the injected classifier, when one was wired.
    pub ml_model: Option<String>,
    /// One row per catalog class, in catalog order.
    pub classes: Vec<ClassAudit>,
}

impl AuditReport {
    /// Total cells in the matrix.
    pub fn cell_count(&self) -> usize {
        self.classes.iter().map(|c| c.cells.len()).sum()
    }

    /// Cells meeting the coverage gate.
    pub fn covered_count(&self) -> usize {
        self.classes.iter().flat_map(|c| c.cells.values()).filter(|c| c.covered).count()
    }

    /// Classes no family covers — the audit's reason to exist.
    pub fn blind_classes(&self) -> Vec<u32> {
        self.classes
            .iter()
            .filter(|c| c.cells.values().all(|cell| !cell.covered))
            .map(|c| c.cwe)
            .collect()
    }

    /// Compares this run against a committed baseline. Returns the list of
    /// violations (empty means the gate passes):
    ///
    /// * parameter or matrix-shape drift (stale baseline);
    /// * a cell that was covered in the baseline and no longer is;
    /// * a cell whose false-positive count rose;
    /// * any false positive at all in the `semantic` family, which ships a
    ///   proof with every finding and therefore holds a zero-FP bar.
    pub fn check_against(&self, baseline: &AuditReport) -> Vec<String> {
        let mut violations = Vec::new();
        if self.samples_per_class != baseline.samples_per_class || self.seed != baseline.seed {
            violations.push(format!(
                "parameter drift: run is seed={} n={}, baseline is seed={} n={} — regenerate \
                 the baseline",
                self.seed, self.samples_per_class, baseline.seed, baseline.samples_per_class
            ));
            return violations;
        }
        if self.families != baseline.families {
            violations.push(format!(
                "family set drift: run has {:?}, baseline has {:?} — regenerate the baseline",
                self.families, baseline.families
            ));
            return violations;
        }
        let base_rows: BTreeMap<u32, &ClassAudit> =
            baseline.classes.iter().map(|c| (c.cwe, c)).collect();
        for row in &self.classes {
            let Some(base) = base_rows.get(&row.cwe) else {
                violations.push(format!(
                    "CWE-{} is new to the catalog — regenerate the baseline",
                    row.cwe
                ));
                continue;
            };
            for (family, cell) in &row.cells {
                let Some(base_cell) = base.cells.get(family) else {
                    violations.push(format!(
                        "CWE-{} gained family {family:?} — regenerate the baseline",
                        row.cwe
                    ));
                    continue;
                };
                if base_cell.covered && !cell.covered {
                    violations.push(format!(
                        "coverage regression: {family} no longer covers CWE-{} \
                         ({}/{} detected, {} false positive(s); baseline {}/{})",
                        row.cwe,
                        cell.detected,
                        self.samples_per_class,
                        cell.false_positives,
                        base_cell.detected,
                        self.samples_per_class,
                    ));
                }
                if cell.false_positives > base_cell.false_positives {
                    violations.push(format!(
                        "precision regression: {family} on CWE-{} rose to {} false positive(s) \
                         (baseline {})",
                        row.cwe, cell.false_positives, base_cell.false_positives
                    ));
                }
                if family == "semantic" && cell.false_positives > 0 {
                    violations.push(format!(
                        "semantic family must hold zero false positives, found {} on CWE-{}",
                        cell.false_positives, row.cwe
                    ));
                }
            }
        }
        for cwe in base_rows.keys() {
            if !self.classes.iter().any(|c| c.cwe == *cwe) {
                violations.push(format!("CWE-{cwe} left the catalog — regenerate the baseline"));
            }
        }
        violations
    }

    /// Renders the matrix as a markdown table (the CI artifact).
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str("# Detector coverage × precision matrix\n\n");
        out.push_str(&format!(
            "Seed {}, {} vulnerable/fixed pairs per class. A cell is **covered** (✓) when \
             the family flags ≥{}% of vulnerable samples with zero false positives on the \
             fixed twins; `!k` marks k false positives.\n\n",
            self.seed,
            self.samples_per_class,
            COVERAGE_NUM * 100 / COVERAGE_DEN,
        ));
        if let Some(model) = &self.ml_model {
            out.push_str(&format!("ML column: `{model}`.\n\n"));
        }
        out.push_str("| CWE | class | top-25 |");
        for f in &self.families {
            out.push_str(&format!(" {f} |"));
        }
        out.push_str("\n|----:|---|:-:|");
        for _ in &self.families {
            out.push_str(":-:|");
        }
        out.push('\n');
        for row in &self.classes {
            out.push_str(&format!(
                "| {} | {} | {} |",
                row.cwe,
                row.name,
                if row.top25 { "yes" } else { "" }
            ));
            for f in &self.families {
                match row.cells.get(f) {
                    None => out.push_str(" — |"),
                    Some(cell) => {
                        let mark = if cell.covered { "✓ " } else { "" };
                        let fp = if cell.false_positives > 0 {
                            format!(" !{}", cell.false_positives)
                        } else {
                            String::new()
                        };
                        out.push_str(&format!(
                            " {mark}{}/{}{fp} |",
                            cell.detected, self.samples_per_class
                        ));
                    }
                }
            }
            out.push('\n');
        }
        let blind = self.blind_classes();
        out.push_str(&format!(
            "\n{} of {} cells covered.",
            self.covered_count(),
            self.cell_count()
        ));
        if blind.is_empty() {
            out.push_str(" Every class is covered by at least one family.\n");
        } else {
            out.push_str(&format!(
                " Classes with no covering family: {}.\n",
                blind.iter().map(|id| format!("CWE-{id}")).collect::<Vec<_>>().join(", ")
            ));
        }
        out
    }
}

/// One corpus unit queued for scanning.
struct AuditUnit {
    cwe: Cwe,
    vulnerable: bool,
    sample: Sample,
}

/// Per-unit family verdicts, index-aligned with the report's family list.
type UnitHits = Vec<bool>;

/// Computes the audit matrix. Construction is cheap; [`AuditEngine::run`]
/// does the work.
pub struct AuditEngine {
    config: AuditConfig,
    ml: Option<Box<dyn MlVerdict>>,
}

impl std::fmt::Debug for AuditEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AuditEngine")
            .field("config", &self.config)
            .field("ml", &self.ml.as_ref().map(|m| m.name()))
            .finish()
    }
}

impl AuditEngine {
    /// Audits the four built-in static families.
    pub fn new(config: AuditConfig) -> Self {
        AuditEngine { config, ml: None }
    }

    /// Adds the `ml` column, scored by `verdict`.
    pub fn with_ml(mut self, verdict: Box<dyn MlVerdict>) -> Self {
        self.ml = Some(verdict);
        self
    }

    fn families(&self) -> Vec<String> {
        let mut v: Vec<String> = STATIC_FAMILIES.iter().map(|s| s.to_string()).collect();
        if self.ml.is_some() {
            v.push(ML_FAMILY.to_string());
        }
        v
    }

    /// Seeded corpus: `samples_per_class` vulnerable/fixed pairs per
    /// catalog class, mainstream style, curated tier. Generation is
    /// single-threaded so the corpus is independent of `jobs`.
    fn corpus(&self) -> Vec<AuditUnit> {
        let mut units = Vec::new();
        for cwe in Cwe::ALL {
            let class_seed = self.config.seed ^ ((cwe.id() as u64) << 17);
            let mut generator = SampleGenerator::new(class_seed, StyleProfile::mainstream());
            for _ in 0..self.config.samples_per_class {
                let (vuln, fixed) = generator.vulnerable_pair(cwe, Tier::Curated, "audit");
                units.push(AuditUnit { cwe, vulnerable: true, sample: vuln });
                units.push(AuditUnit { cwe, vulnerable: false, sample: fixed });
            }
        }
        units
    }

    /// Scans one unit with every family. Engines are provided per worker;
    /// the ML scorer is shared (it is `Sync`).
    fn scan_unit(
        unit: &AuditUnit,
        engines: &WorkerEngines,
        ml: Option<&dyn MlVerdict>,
    ) -> UnitHits {
        let mut hits = Vec::with_capacity(5);
        match vulnman_lang::parse(&unit.sample.source) {
            Err(_) => hits.extend([false; 4]),
            Ok(program) => {
                let class_hit =
                    |findings: &[crate::Finding]| findings.iter().any(|f| f.cwe == unit.cwe);
                hits.push(class_hit(&engines.rules.scan(&program)));
                hits.push(class_hit(&engines.taint.scan(&program)));
                hits.push(class_hit(&engines.semantics.analyze(&program).findings));
                hits.push(class_hit(&engines.dynamic.scan(&program)));
            }
        }
        if let Some(ml) = ml {
            hits.push(ml.flags(&unit.sample));
        }
        hits
    }

    /// Runs the audit. The report is a pure function of the configuration:
    /// byte-identical for any `jobs` value.
    pub fn run(&self) -> AuditReport {
        let units = self.corpus();
        let jobs = self.config.jobs.max(1).min(units.len().max(1));
        let ml = self.ml.as_deref();
        let mut hits: Vec<UnitHits> = Vec::with_capacity(units.len());
        if jobs <= 1 {
            let engines = WorkerEngines::new();
            hits.extend(units.iter().map(|u| Self::scan_unit(u, &engines, ml)));
        } else {
            // Contiguous chunks, results reassembled in unit order: the
            // partition affects only wall-clock, never the report.
            let chunk = units.len().div_ceil(jobs);
            let mut results: Vec<Vec<UnitHits>> = std::thread::scope(|scope| {
                let handles: Vec<_> = units
                    .chunks(chunk)
                    .map(|part| {
                        scope.spawn(move || {
                            let engines = WorkerEngines::new();
                            part.iter().map(|u| Self::scan_unit(u, &engines, ml)).collect()
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("audit worker panicked")).collect()
            });
            for part in results.drain(..) {
                hits.extend(part);
            }
        }

        let families = self.families();
        let n = self.config.samples_per_class;
        let mut classes = Vec::with_capacity(Cwe::ALL.len());
        for cwe in Cwe::ALL {
            let mut cells = BTreeMap::new();
            for (fi, family) in families.iter().enumerate() {
                let mut detected = 0;
                let mut false_positives = 0;
                for (unit, unit_hits) in units.iter().zip(&hits) {
                    if unit.cwe != cwe || !unit_hits[fi] {
                        continue;
                    }
                    if unit.vulnerable {
                        detected += 1;
                    } else {
                        false_positives += 1;
                    }
                }
                cells.insert(family.clone(), Cell::new(detected, false_positives, n));
            }
            classes.push(ClassAudit {
                cwe: cwe.id(),
                name: cwe.name().to_string(),
                top25: cwe.in_public_top25(),
                cells,
            });
        }
        AuditReport {
            seed: self.config.seed,
            samples_per_class: n,
            families,
            ml_model: self.ml.as_ref().map(|m| m.name()),
            classes,
        }
    }

    /// [`AuditEngine::run`] with `audit.*` instruments recorded (see
    /// [`register_audit_instruments`]).
    pub fn run_with_metrics(&self, metrics: &Registry) -> AuditReport {
        let t0 = std::time::Instant::now();
        let report = self.run();
        metrics.counter("audit.runs").inc();
        metrics.counter("audit.cells").add(report.cell_count() as u64);
        metrics.counter("audit.covered").add(report.covered_count() as u64);
        metrics.counter("audit.gaps").add((report.cell_count() - report.covered_count()) as u64);
        metrics.histogram("audit.micros").observe(t0.elapsed().as_micros() as u64);
        report
    }
}

/// Per-worker detector instances (none of them borrow the corpus).
struct WorkerEngines {
    rules: RuleEngine,
    taint: TaintDetector,
    semantics: SemanticEngine,
    dynamic: DynamicSanitizer,
}

impl WorkerEngines {
    fn new() -> Self {
        WorkerEngines {
            rules: RuleEngine::syntactic_suite(),
            taint: TaintDetector::default_config(),
            semantics: SemanticEngine::new(),
            dynamic: DynamicSanitizer::new(),
        }
    }
}

/// Pre-registers the `audit.*` instruments so metrics snapshots are
/// schema-stable before the first audit runs.
pub fn register_audit_instruments(metrics: &Registry) {
    metrics.counter("audit.runs");
    metrics.counter("audit.cells");
    metrics.counter("audit.covered");
    metrics.counter("audit.gaps");
    metrics.histogram("audit.micros");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> AuditConfig {
        AuditConfig { seed: 7, samples_per_class: 3, jobs: 1 }
    }

    struct NameLength;
    impl MlVerdict for NameLength {
        fn name(&self) -> String {
            "name-length".into()
        }
        fn flags(&self, sample: &Sample) -> bool {
            sample.source.len().is_multiple_of(2)
        }
    }

    #[test]
    fn report_is_byte_identical_at_any_jobs() {
        let base = AuditEngine::new(quick_config()).run();
        for jobs in [2, 3, 8] {
            let cfg = AuditConfig { jobs, ..quick_config() };
            let run = AuditEngine::new(cfg).run();
            assert_eq!(
                serde_json::to_string(&base).unwrap(),
                serde_json::to_string(&run).unwrap(),
                "audit must not depend on worker count (jobs={jobs})"
            );
        }
    }

    #[test]
    fn matrix_has_every_class_and_family() {
        let report = AuditEngine::new(quick_config()).run();
        assert_eq!(report.classes.len(), Cwe::ALL.len());
        assert_eq!(report.families, STATIC_FAMILIES.map(String::from).to_vec());
        for row in &report.classes {
            assert_eq!(row.cells.len(), STATIC_FAMILIES.len(), "CWE-{}", row.cwe);
        }
        assert_eq!(report.cell_count(), Cwe::ALL.len() * STATIC_FAMILIES.len());
        // The whole point of the scale-out: no class is blind across every
        // family.
        assert_eq!(report.blind_classes(), Vec::<u32>::new());
    }

    #[test]
    fn semantic_family_covers_the_gap_classes() {
        let report = AuditEngine::new(quick_config()).run();
        // Classes where the semantic family is the only prover, plus the
        // classic classes its new domains took over outright.
        for id in [457, 369, 415, 197, 367, 416, 134] {
            let row = report.classes.iter().find(|c| c.cwe == id).unwrap();
            let cell = row.cells.get("semantic").unwrap();
            assert!(cell.covered, "semantic must cover CWE-{id}: {cell:?}");
        }
        // Classic command injection routes some variants through wrapped
        // sinks the provenance domain cannot see into; it must still prove
        // the direct-sink shapes, with zero false positives.
        let row = report.classes.iter().find(|c| c.cwe == 78).unwrap();
        let cell = row.cells.get("semantic").unwrap();
        assert!(cell.detected > 0, "semantic proves direct-sink CWE-78 shapes: {cell:?}");
        assert_eq!(cell.false_positives, 0);
        // The taint family owns full classic injection coverage.
        assert!(row.cells.get("taint").unwrap().covered);
    }

    #[test]
    fn ml_column_appears_only_when_wired() {
        let plain = AuditEngine::new(quick_config()).run();
        assert!(plain.ml_model.is_none());
        assert!(!plain.families.contains(&ML_FAMILY.to_string()));
        let wired = AuditEngine::new(quick_config()).with_ml(Box::new(NameLength)).run();
        assert_eq!(wired.ml_model.as_deref(), Some("name-length"));
        assert!(wired.families.contains(&ML_FAMILY.to_string()));
        assert!(wired.classes.iter().all(|c| c.cells.contains_key(ML_FAMILY)));
    }

    #[test]
    fn check_catches_seeded_regressions() {
        let report = AuditEngine::new(quick_config()).run();
        assert_eq!(report.check_against(&report), Vec::<String>::new());
        // Coverage regression: a covered cell goes dark.
        let mut broken = report.clone();
        let row = broken.classes.iter_mut().find(|c| c.cwe == 416).unwrap();
        let cell = row.cells.get_mut("semantic").unwrap();
        cell.detected = 0;
        cell.covered = false;
        let violations = broken.check_against(&report);
        assert!(violations.iter().any(|v| v.contains("coverage regression")), "{violations:?}");
        // Precision regression: new false positives.
        let mut noisy = report.clone();
        let row = noisy.classes.iter_mut().find(|c| c.cwe == 89).unwrap();
        let cell = row.cells.get_mut("taint").unwrap();
        cell.false_positives = 2;
        cell.covered = false;
        let violations = noisy.check_against(&report);
        assert!(violations.iter().any(|v| v.contains("precision regression")), "{violations:?}");
        // Parameter drift refuses the comparison outright.
        let mut drifted = report.clone();
        drifted.seed ^= 1;
        assert!(drifted.check_against(&report)[0].contains("parameter drift"));
    }

    #[test]
    fn markdown_names_every_class() {
        let report = AuditEngine::new(quick_config()).run();
        let md = report.to_markdown();
        for cwe in Cwe::ALL {
            assert!(md.contains(cwe.name()), "markdown must mention {}", cwe.name());
        }
        assert!(md.contains("| CWE | class | top-25 | rules | taint | semantic | dynamic |"));
        assert!(md.contains("cells covered"));
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = AuditEngine::new(quick_config()).with_ml(Box::new(NameLength)).run();
        let json = serde_json::to_string_pretty(&report).unwrap();
        let back: AuditReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
    }

    #[test]
    fn audit_instruments_are_schema_stable() {
        let metrics = Registry::new();
        register_audit_instruments(&metrics);
        let json = serde_json::to_string(&metrics.snapshot()).unwrap();
        for key in ["audit.runs", "audit.cells", "audit.covered", "audit.gaps", "audit.micros"] {
            assert!(json.contains(key), "{key} must be pre-registered");
        }
        let report = AuditEngine::new(quick_config()).run_with_metrics(&metrics);
        assert_eq!(metrics.counter("audit.runs").get(), 1);
        assert_eq!(metrics.counter("audit.cells").get(), report.cell_count() as u64);
    }
}
