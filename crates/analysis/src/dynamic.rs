//! Dynamic analysis: a sanitizer-instrumented test execution.
//!
//! Figure 1: "automated assessments mainly leverage rule-based analysis
//! tools, including **dynamic and static analysis**". This detector runs the
//! unit under the adversarial input model of
//! [`vulnman_lang::interp`] and converts observed runtime faults into
//! findings. It has the classic dynamic-analysis profile: near-zero false
//! positives (it *watched* the fault happen) but blind spots — logic
//! classes that do not fault under single-threaded execution (hard-coded
//! credentials, TOCTOU races) and any path the driver does not reach.

use crate::detectors::StaticDetector;
use crate::finding::{Confidence, Finding};
use vulnman_lang::ast::Program;
use vulnman_lang::interp::{run_program, DynamicEventKind, InterpConfig};
use vulnman_synth::cwe::Cwe;

/// Sanitizer-style dynamic detector.
///
/// Implements [`StaticDetector`] (the workflow's uniform *program scanner*
/// interface — the trait abstracts scanners, not analysis technique).
#[derive(Debug)]
pub struct DynamicSanitizer {
    config: InterpConfig,
}

impl DynamicSanitizer {
    /// Uses the default adversarial input model.
    pub fn new() -> Self {
        DynamicSanitizer { config: InterpConfig::default() }
    }

    /// Uses a custom interpreter configuration (e.g. a team taint
    /// vocabulary, or a friendlier input model).
    pub fn with_config(config: InterpConfig) -> Self {
        DynamicSanitizer { config }
    }

    fn event_to_cwe(kind: &DynamicEventKind) -> Option<Cwe> {
        Some(match kind {
            DynamicEventKind::OutOfBoundsWrite => Cwe::OutOfBoundsWrite,
            DynamicEventKind::OutOfBoundsRead => Cwe::OutOfBoundsRead,
            DynamicEventKind::UseAfterFree => Cwe::UseAfterFree,
            DynamicEventKind::NullDereference => Cwe::NullDereference,
            DynamicEventKind::IntegerOverflow => Cwe::IntegerOverflow,
            DynamicEventKind::TaintedSink(kind) => match kind.as_str() {
                "sql" => Cwe::SqlInjection,
                "command" | "injection" => Cwe::CommandInjection,
                "xss" => Cwe::CrossSiteScripting,
                "path" => Cwe::PathTraversal,
                "format" => Cwe::FormatString,
                "memory" => Cwe::OutOfBoundsWrite,
                _ => return None,
            },
        })
    }

    fn describe(kind: &DynamicEventKind) -> String {
        match kind {
            DynamicEventKind::OutOfBoundsWrite => "out-of-bounds write observed at runtime".into(),
            DynamicEventKind::OutOfBoundsRead => "out-of-bounds read observed at runtime".into(),
            DynamicEventKind::UseAfterFree => "freed object used at runtime".into(),
            DynamicEventKind::NullDereference => "null pointer dereferenced at runtime".into(),
            DynamicEventKind::IntegerOverflow => "32-bit arithmetic wrapped at runtime".into(),
            DynamicEventKind::TaintedSink(k) => {
                format!("attacker data observed reaching a {k} sink at runtime")
            }
        }
    }
}

impl Default for DynamicSanitizer {
    fn default() -> Self {
        DynamicSanitizer::new()
    }
}

impl StaticDetector for DynamicSanitizer {
    fn name(&self) -> &'static str {
        "dynamic-sanitizer"
    }

    fn cwes(&self) -> Vec<Cwe> {
        vec![
            Cwe::OutOfBoundsWrite,
            Cwe::OutOfBoundsRead,
            Cwe::UseAfterFree,
            Cwe::NullDereference,
            Cwe::IntegerOverflow,
            Cwe::SqlInjection,
            Cwe::CommandInjection,
            Cwe::CrossSiteScripting,
            Cwe::PathTraversal,
            Cwe::FormatString,
        ]
    }

    fn scan(&self, program: &Program) -> Vec<Finding> {
        let report = run_program(program, &self.config);
        report
            .events
            .iter()
            .filter_map(|e| {
                let cwe = Self::event_to_cwe(&e.kind)?;
                Some(Finding {
                    cwe,
                    function: e.function.clone(),
                    span: e.span,
                    detector: "dynamic-sanitizer".into(),
                    message: Self::describe(&e.kind),
                    confidence: Confidence::High,
                })
            })
            .collect()
    }
}

/// Classes the dynamic sanitizer can observe under its input model.
pub fn dynamically_detectable(cwe: Cwe) -> bool {
    !matches!(cwe, Cwe::HardcodedCredentials | Cwe::RaceCondition)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use vulnman_lang::parse;
    use vulnman_synth::emit::EmitCtx;
    use vulnman_synth::style::StyleProfile;
    use vulnman_synth::templates;
    use vulnman_synth::tier::Tier;

    #[test]
    fn dynamic_detector_covers_every_detectable_template_class() {
        let detector = DynamicSanitizer::new();
        let style = StyleProfile::mainstream();
        for cwe in Cwe::ALL.into_iter().filter(|c| dynamically_detectable(*c)) {
            let mut caught = 0;
            let mut clean = 0;
            let n = 6;
            for seed in 0..n {
                let mut rng = StdRng::seed_from_u64(seed * 17 + cwe.id() as u64);
                let mut ctx = EmitCtx::new(&style, Tier::Curated, &mut rng);
                let pair = templates::generate(cwe, &mut ctx);
                let fv = detector.scan(&parse(&pair.vulnerable).unwrap());
                let ff = detector.scan(&parse(&pair.fixed).unwrap());
                if fv.iter().any(|f| f.cwe == cwe) {
                    caught += 1;
                }
                if ff.iter().all(|f| f.cwe != cwe) {
                    clean += 1;
                }
            }
            assert_eq!(caught, n, "{cwe}: every vulnerable variant must fault at runtime");
            assert_eq!(clean, n, "{cwe}: no fixed variant may fault");
        }
    }

    #[test]
    fn blind_spots_are_the_logic_classes() {
        let detector = DynamicSanitizer::new();
        let style = StyleProfile::mainstream();
        for cwe in [Cwe::HardcodedCredentials, Cwe::RaceCondition] {
            let mut rng = StdRng::seed_from_u64(5);
            let mut ctx = EmitCtx::new(&style, Tier::Simple, &mut rng);
            let pair = templates::generate(cwe, &mut ctx);
            let findings = detector.scan(&parse(&pair.vulnerable).unwrap());
            assert!(
                findings.iter().all(|f| f.cwe != cwe),
                "{cwe} cannot manifest in single-threaded execution: {findings:?}"
            );
            assert!(!dynamically_detectable(cwe));
        }
    }

    #[test]
    fn no_false_positives_on_risky_benign_code() {
        use vulnman_synth::generator::SampleGenerator;
        let detector = DynamicSanitizer::new();
        let mut g = SampleGenerator::new(77, StyleProfile::mainstream());
        for _ in 0..30 {
            let b = g.benign_risky(Tier::Curated, "p");
            let findings = detector.scan(&parse(&b.source).unwrap());
            assert!(
                findings.is_empty(),
                "dynamic analysis observed a fault in safe code:\n{}\n{findings:?}",
                b.source
            );
        }
    }

    #[test]
    fn team_config_respected() {
        // A team-customized interpreter trusts the team's sanitizer wrapper.
        let style = StyleProfile::internal_teams()[1].clone();
        let mut rng = StdRng::seed_from_u64(9);
        let mut ctx = EmitCtx::new(&style, Tier::Simple, &mut rng);
        let pair = templates::generate(Cwe::SqlInjection, &mut ctx);
        let mut config = InterpConfig::default();
        config.taint.add_sanitizer("mi_clean_sql");
        let custom = DynamicSanitizer::with_config(config);
        let ff = custom.scan(&parse(&pair.fixed).unwrap());
        assert!(ff.iter().all(|f| f.cwe != Cwe::SqlInjection), "{ff:?}");
    }
}
