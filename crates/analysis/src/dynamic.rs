//! Dynamic analysis: a sanitizer-instrumented test execution.
//!
//! Figure 1: "automated assessments mainly leverage rule-based analysis
//! tools, including **dynamic and static analysis**". This detector runs the
//! unit under the adversarial input model of
//! [`vulnman_lang::interp`] and converts observed runtime faults into
//! findings. It has the classic dynamic-analysis profile: near-zero false
//! positives (it *watched* the fault happen) but blind spots — logic
//! classes that do not fault under single-threaded execution (hard-coded
//! credentials, TOCTOU races) and any path the driver does not reach.

use crate::detectors::StaticDetector;
use crate::finding::{Confidence, Finding};
use vulnman_lang::ast::Program;
use vulnman_lang::interp::{run_program, DynamicEventKind, InterpConfig};
use vulnman_synth::cwe::Cwe;

/// Sanitizer-style dynamic detector.
///
/// Implements [`StaticDetector`] (the workflow's uniform *program scanner*
/// interface — the trait abstracts scanners, not analysis technique).
#[derive(Debug)]
pub struct DynamicSanitizer {
    config: InterpConfig,
}

impl DynamicSanitizer {
    /// Uses the default adversarial input model.
    pub fn new() -> Self {
        DynamicSanitizer { config: InterpConfig::default() }
    }

    /// Uses a custom interpreter configuration (e.g. a team taint
    /// vocabulary, or a friendlier input model).
    pub fn with_config(config: InterpConfig) -> Self {
        DynamicSanitizer { config }
    }

    /// Maps an observed runtime fault to the CWE class it evidences.
    ///
    /// `None` only for [`DynamicEventKind::TaintedSink`] events whose kind
    /// string is outside the built-in vocabulary; [`DynamicSanitizer::scan`]
    /// turns those into a low-confidence generic injection finding instead
    /// of dropping them (a runtime-observed fault must never vanish from
    /// the report).
    fn event_to_cwe(kind: &DynamicEventKind) -> Option<Cwe> {
        Some(match kind {
            DynamicEventKind::OutOfBoundsWrite => Cwe::OutOfBoundsWrite,
            DynamicEventKind::OutOfBoundsRead => Cwe::OutOfBoundsRead,
            DynamicEventKind::UseAfterFree => Cwe::UseAfterFree,
            DynamicEventKind::NullDereference => Cwe::NullDereference,
            DynamicEventKind::IntegerOverflow => Cwe::IntegerOverflow,
            DynamicEventKind::TaintedSink(kind) => return crate::detectors::sink_kind_to_cwe(kind),
        })
    }

    fn describe(kind: &DynamicEventKind) -> String {
        match kind {
            DynamicEventKind::OutOfBoundsWrite => "out-of-bounds write observed at runtime".into(),
            DynamicEventKind::OutOfBoundsRead => "out-of-bounds read observed at runtime".into(),
            DynamicEventKind::UseAfterFree => "freed object used at runtime".into(),
            DynamicEventKind::NullDereference => "null pointer dereferenced at runtime".into(),
            DynamicEventKind::IntegerOverflow => "32-bit arithmetic wrapped at runtime".into(),
            DynamicEventKind::TaintedSink(k) => {
                format!("attacker data observed reaching a {k} sink at runtime")
            }
        }
    }
}

impl Default for DynamicSanitizer {
    fn default() -> Self {
        DynamicSanitizer::new()
    }
}

impl StaticDetector for DynamicSanitizer {
    fn name(&self) -> &'static str {
        "dynamic-sanitizer"
    }

    fn cwes(&self) -> Vec<Cwe> {
        vec![
            Cwe::OutOfBoundsWrite,
            Cwe::OutOfBoundsRead,
            Cwe::UseAfterFree,
            Cwe::NullDereference,
            Cwe::IntegerOverflow,
            Cwe::SqlInjection,
            Cwe::CommandInjection,
            Cwe::CrossSiteScripting,
            Cwe::PathTraversal,
            Cwe::FormatString,
        ]
    }

    fn scan(&self, program: &Program) -> Vec<Finding> {
        let report = run_program(program, &self.config);
        report
            .events
            .iter()
            .map(|e| match Self::event_to_cwe(&e.kind) {
                Some(cwe) => Finding {
                    cwe,
                    function: e.function.clone(),
                    span: e.span,
                    detector: "dynamic-sanitizer".into(),
                    message: Self::describe(&e.kind),
                    confidence: Confidence::High,
                    evidence: None,
                },
                None => {
                    // A tainted-sink fault with a team-specific kind string
                    // outside the built-in vocabulary. The fault *happened*
                    // at runtime, so it must surface — as a generic
                    // injection finding at low confidence rather than a
                    // silently dropped event.
                    let kind = match &e.kind {
                        DynamicEventKind::TaintedSink(k) => k.as_str(),
                        _ => unreachable!("only unmapped sink kinds reach here"),
                    };
                    Finding {
                        cwe: Cwe::CommandInjection,
                        function: e.function.clone(),
                        span: e.span,
                        detector: "dynamic-sanitizer".into(),
                        message: format!(
                            "attacker data observed reaching an unmapped `{kind}` sink at \
                             runtime (generic injection finding; map this kind in the taint \
                             vocabulary for a precise class)"
                        ),
                        confidence: Confidence::Low,
                        evidence: None,
                    }
                }
            })
            .collect()
    }
}

/// Classes the dynamic sanitizer can observe under its input model.
///
/// Beyond the logic classes, the semantic classes are invisible at runtime
/// by construction of the language: an uninitialized declaration reads as
/// `0` and division by zero evaluates to `0`, so neither faults — only the
/// abstract-interpretation checkers see them. The same holds for the scale-out
/// classes: a double release of an opaque handle, a narrowing store, and a
/// stale check-to-use window are all silent in a single-threaded, fault-free
/// interpretation, so the ownership/width/trace-interleaving checkers own them.
pub fn dynamically_detectable(cwe: Cwe) -> bool {
    !matches!(
        cwe,
        Cwe::HardcodedCredentials
            | Cwe::RaceCondition
            | Cwe::UninitializedUse
            | Cwe::DivideByZero
            | Cwe::DoubleFree
            | Cwe::IntegerTruncation
            | Cwe::Toctou
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use vulnman_lang::parse;
    use vulnman_synth::emit::EmitCtx;
    use vulnman_synth::style::StyleProfile;
    use vulnman_synth::templates;
    use vulnman_synth::tier::Tier;

    #[test]
    fn dynamic_detector_covers_every_detectable_template_class() {
        let detector = DynamicSanitizer::new();
        let style = StyleProfile::mainstream();
        for cwe in Cwe::ALL.into_iter().filter(|c| dynamically_detectable(*c)) {
            let mut caught = 0;
            let mut clean = 0;
            let n = 6;
            for seed in 0..n {
                let mut rng = StdRng::seed_from_u64(seed * 17 + cwe.id() as u64);
                let mut ctx = EmitCtx::new(&style, Tier::Curated, &mut rng);
                let pair = templates::generate(cwe, &mut ctx);
                let fv = detector.scan(&parse(&pair.vulnerable).unwrap());
                let ff = detector.scan(&parse(&pair.fixed).unwrap());
                if fv.iter().any(|f| f.cwe == cwe) {
                    caught += 1;
                }
                if ff.iter().all(|f| f.cwe != cwe) {
                    clean += 1;
                }
            }
            assert_eq!(caught, n, "{cwe}: every vulnerable variant must fault at runtime");
            assert_eq!(clean, n, "{cwe}: no fixed variant may fault");
        }
    }

    #[test]
    fn blind_spots_are_the_logic_classes() {
        let detector = DynamicSanitizer::new();
        let style = StyleProfile::mainstream();
        for cwe in [
            Cwe::HardcodedCredentials,
            Cwe::RaceCondition,
            Cwe::UninitializedUse,
            Cwe::DivideByZero,
            Cwe::DoubleFree,
            Cwe::IntegerTruncation,
            Cwe::Toctou,
        ] {
            let mut rng = StdRng::seed_from_u64(5);
            let mut ctx = EmitCtx::new(&style, Tier::Simple, &mut rng);
            let pair = templates::generate(cwe, &mut ctx);
            let findings = detector.scan(&parse(&pair.vulnerable).unwrap());
            assert!(
                findings.iter().all(|f| f.cwe != cwe),
                "{cwe} cannot manifest under single-threaded execution: {findings:?}"
            );
            assert!(!dynamically_detectable(cwe));
        }
    }

    #[test]
    fn no_false_positives_on_risky_benign_code() {
        use vulnman_synth::generator::SampleGenerator;
        let detector = DynamicSanitizer::new();
        let mut g = SampleGenerator::new(77, StyleProfile::mainstream());
        for _ in 0..30 {
            let b = g.benign_risky(Tier::Curated, "p");
            let findings = detector.scan(&parse(&b.source).unwrap());
            assert!(
                findings.is_empty(),
                "dynamic analysis observed a fault in safe code:\n{}\n{findings:?}",
                b.source
            );
        }
    }

    #[test]
    fn unmapped_sink_kind_still_surfaces_as_a_finding() {
        // Regression: a `TaintedSink` event whose kind string is outside
        // the built-in vocabulary used to be silently dropped
        // (`_ => return None`), making a runtime-observed fault vanish
        // from the report. It must now surface as a low-confidence
        // generic finding.
        let mut config = InterpConfig::default();
        config.taint.add_sink("ldap_query", vec![0], "ldap");
        let detector = DynamicSanitizer::with_config(config);
        let program =
            parse(r#"void handler() { char* q = http_param("filter"); ldap_query(q); }"#).unwrap();
        let findings = detector.scan(&program);
        assert_eq!(findings.len(), 1, "the observed fault must not vanish: {findings:?}");
        assert_eq!(findings[0].confidence, Confidence::Low, "unmapped kind => low confidence");
        assert!(
            findings[0].message.contains("ldap"),
            "the unmapped kind is named in the message: {}",
            findings[0].message
        );
        // Mapped kinds are unaffected: same flow through a known sink is a
        // high-confidence, precisely classified finding.
        let stock = DynamicSanitizer::new();
        let program =
            parse(r#"void handler() { char* q = http_param("filter"); exec_query(q); }"#).unwrap();
        let findings = stock.scan(&program);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].cwe, Cwe::SqlInjection);
        assert_eq!(findings[0].confidence, Confidence::High);
    }

    #[test]
    fn team_config_respected() {
        // A team-customized interpreter trusts the team's sanitizer wrapper.
        let style = StyleProfile::internal_teams()[1].clone();
        let mut rng = StdRng::seed_from_u64(9);
        let mut ctx = EmitCtx::new(&style, Tier::Simple, &mut rng);
        let pair = templates::generate(Cwe::SqlInjection, &mut ctx);
        let mut config = InterpConfig::default();
        config.taint.add_sanitizer("mi_clean_sql");
        let custom = DynamicSanitizer::with_config(config);
        let ff = custom.scan(&parse(&pair.fixed).unwrap());
        assert!(ff.iter().all(|f| f.cwe != Cwe::SqlInjection), "{ff:?}");
    }
}
