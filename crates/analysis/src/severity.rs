//! CVSS-like severity scoring and prioritization.
//!
//! Industry triage (Figure 1's threat-modeling step) orders findings by a
//! combination of class severity, exploitability, and attack surface — not
//! by raw detector output. This scoring also drives the cost model's
//! breach-risk term.

use crate::finding::{Confidence, Finding};
use crate::reachability::Surface;
use serde::{Deserialize, Serialize};

/// A scored finding, ready for triage ordering.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScoredFinding {
    /// The underlying finding.
    pub finding: Finding,
    /// Surface classification of the containing function.
    pub surface: Surface,
    /// Final severity in `[0, 10]`.
    pub severity: f64,
    /// Priority used for queue ordering (severity × exploitability).
    pub priority: f64,
}

/// Scores `finding` given the surface of its function.
///
/// Severity = class base severity × surface multiplier × confidence factor.
/// Priority additionally weighs the class's exploitability prior.
///
/// # Examples
///
/// ```
/// use vulnman_analysis::{finding::{Confidence, Finding}, reachability::Surface, severity::score};
/// use vulnman_synth::cwe::Cwe;
/// use vulnman_lang::Span;
/// let f = Finding {
///     cwe: Cwe::SqlInjection,
///     function: "handler".into(),
///     span: Span::dummy(),
///     detector: "taint-flow".into(),
///     message: "…".into(),
///     confidence: Confidence::High,
///     evidence: None,
/// };
/// let s = score(f, Surface::ZeroClick);
/// assert!(s.severity > 8.0);
/// ```
pub fn score(finding: Finding, surface: Surface) -> ScoredFinding {
    let confidence_factor = match finding.confidence {
        Confidence::High => 1.0,
        Confidence::Medium => 0.9,
        Confidence::Low => 0.75,
    };
    let severity =
        (finding.cwe.base_severity() * surface.severity_multiplier() * confidence_factor).min(10.0);
    let priority = severity * finding.cwe.exploitability();
    ScoredFinding { finding, surface, severity, priority }
}

/// Sorts scored findings by descending priority (ties broken by severity,
/// then source position for determinism).
pub fn triage_order(findings: &mut [ScoredFinding]) {
    findings.sort_by(|a, b| {
        b.priority
            .partial_cmp(&a.priority)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(b.severity.partial_cmp(&a.severity).unwrap_or(std::cmp::Ordering::Equal))
            .then(a.finding.span.start.cmp(&b.finding.span.start))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use vulnman_lang::Span;
    use vulnman_synth::cwe::Cwe;

    fn finding(cwe: Cwe, confidence: Confidence) -> Finding {
        Finding {
            cwe,
            function: "f".into(),
            span: Span::dummy(),
            detector: "t".into(),
            message: String::new(),
            confidence,
            evidence: None,
        }
    }

    #[test]
    fn surface_discounts_severity() {
        let zero = score(finding(Cwe::SqlInjection, Confidence::High), Surface::ZeroClick);
        let local = score(finding(Cwe::SqlInjection, Confidence::High), Surface::Local);
        assert!(zero.severity > local.severity);
    }

    #[test]
    fn confidence_discounts_severity() {
        let hi = score(finding(Cwe::PathTraversal, Confidence::High), Surface::ZeroClick);
        let lo = score(finding(Cwe::PathTraversal, Confidence::Low), Surface::ZeroClick);
        assert!(hi.severity > lo.severity);
    }

    #[test]
    fn severity_capped_at_ten() {
        let s = score(finding(Cwe::CommandInjection, Confidence::High), Surface::ZeroClick);
        assert!(s.severity <= 10.0);
    }

    #[test]
    fn exploitable_classes_triage_first() {
        // Command injection (highly exploitable) should outrank a race
        // condition of similar severity.
        let mut v = vec![
            score(finding(Cwe::RaceCondition, Confidence::High), Surface::ZeroClick),
            score(finding(Cwe::CommandInjection, Confidence::High), Surface::ZeroClick),
        ];
        triage_order(&mut v);
        assert_eq!(v[0].finding.cwe, Cwe::CommandInjection);
    }

    #[test]
    fn triage_is_deterministic_on_ties() {
        let mut a = finding(Cwe::SqlInjection, Confidence::High);
        a.span = Span::new(10, 12, 2, 1);
        let mut b = finding(Cwe::SqlInjection, Confidence::High);
        b.span = Span::new(5, 7, 1, 5);
        let mut v = vec![score(a, Surface::ZeroClick), score(b, Surface::ZeroClick)];
        triage_order(&mut v);
        assert_eq!(v[0].finding.span.start, 5);
    }
}
