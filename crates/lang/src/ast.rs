//! Abstract syntax tree for the mini-C dialect.
//!
//! The tree is deliberately simple — functions, scalar/pointer/array types,
//! structured control flow — but rich enough to express every vulnerability
//! pattern in the corpus generator and to support CFG construction, data-flow
//! analysis, and taint tracking.

use crate::intern::Symbol;
use crate::span::Span;
use std::fmt;

/// A type in the mini-C dialect.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// `void` (only valid as a return type).
    Void,
    /// `int` — 64-bit signed in this dialect.
    Int,
    /// `char`.
    Char,
    /// Pointer to an inner type, e.g. `char*`.
    Ptr(Box<Type>),
    /// Fixed-size array, e.g. `char[64]`.
    Array(Box<Type>, usize),
}

impl Type {
    /// Pointer to `self`.
    pub fn ptr(self) -> Type {
        Type::Ptr(Box::new(self))
    }

    /// Array of `len` elements of `self`.
    pub fn array(self, len: usize) -> Type {
        Type::Array(Box::new(self), len)
    }

    /// Returns `true` for pointer or array types.
    pub fn is_indirect(&self) -> bool {
        matches!(self, Type::Ptr(_) | Type::Array(_, _))
    }

    /// Declared element count for arrays, `None` otherwise.
    pub fn array_len(&self) -> Option<usize> {
        match self {
            Type::Array(_, n) => Some(*n),
            _ => None,
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Void => write!(f, "void"),
            Type::Int => write!(f, "int"),
            Type::Char => write!(f, "char"),
            Type::Ptr(inner) => write!(f, "{inner}*"),
            Type::Array(inner, n) => write!(f, "{inner}[{n}]"),
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation `-e`.
    Neg,
    /// Logical not `!e`.
    Not,
    /// Pointer dereference `*e`.
    Deref,
    /// Address-of `&e`.
    AddrOf,
}

impl UnOp {
    /// Token text of the operator.
    pub fn symbol(&self) -> &'static str {
        match self {
            UnOp::Neg => "-",
            UnOp::Not => "!",
            UnOp::Deref => "*",
            UnOp::AddrOf => "&",
        }
    }
}

/// Binary operators. Variants mirror their C surface syntax; see
/// [`BinOp::symbol`].
#[allow(missing_docs)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Shl,
    Shr,
    BitAnd,
    BitOr,
    BitXor,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

impl BinOp {
    /// Token text of the operator.
    pub fn symbol(&self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
            BinOp::BitAnd => "&",
            BinOp::BitOr => "|",
            BinOp::BitXor => "^",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        }
    }

    /// Returns `true` for comparison and logical operators (result is boolean).
    pub fn is_comparison(&self) -> bool {
        matches!(
            self,
            BinOp::Eq
                | BinOp::Ne
                | BinOp::Lt
                | BinOp::Le
                | BinOp::Gt
                | BinOp::Ge
                | BinOp::And
                | BinOp::Or
        )
    }

    /// Returns `true` for arithmetic operators that can overflow.
    pub fn is_arithmetic(&self) -> bool {
        matches!(self, BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Rem | BinOp::Shl)
    }
}

/// Expression kind; see [`Expr`].
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Integer literal.
    Int(i64),
    /// Character literal.
    Char(char),
    /// String literal.
    Str(String),
    /// Variable reference (interned name).
    Var(Symbol),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Function call `name(args…)`.
    Call(Symbol, Vec<Expr>),
    /// Array/pointer index `base[index]`.
    Index(Box<Expr>, Box<Expr>),
}

/// An expression with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// What kind of expression this is.
    pub kind: ExprKind,
    /// Source location.
    pub span: Span,
}

impl Expr {
    /// Creates an expression from its parts.
    pub fn new(kind: ExprKind, span: Span) -> Self {
        Expr { kind, span }
    }

    /// Variable reference with a dummy span (for synthesized code).
    pub fn var(name: impl Into<Symbol>) -> Self {
        Expr::new(ExprKind::Var(name.into()), Span::dummy())
    }

    /// Integer literal with a dummy span.
    pub fn int(v: i64) -> Self {
        Expr::new(ExprKind::Int(v), Span::dummy())
    }

    /// Call expression with a dummy span.
    pub fn call(name: impl Into<Symbol>, args: Vec<Expr>) -> Self {
        Expr::new(ExprKind::Call(name.into(), args), Span::dummy())
    }

    /// All variable names read by this expression, in syntactic order,
    /// duplicates preserved.
    pub fn read_vars(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_reads(&mut out);
        out
    }

    fn collect_reads<'a>(&'a self, out: &mut Vec<&'a str>) {
        match &self.kind {
            ExprKind::Var(name) => out.push(name.as_str()),
            ExprKind::Unary(_, e) => e.collect_reads(out),
            ExprKind::Binary(_, l, r) => {
                l.collect_reads(out);
                r.collect_reads(out);
            }
            ExprKind::Call(_, args) => {
                for a in args {
                    a.collect_reads(out);
                }
            }
            ExprKind::Index(b, i) => {
                b.collect_reads(out);
                i.collect_reads(out);
            }
            ExprKind::Int(_) | ExprKind::Char(_) | ExprKind::Str(_) => {}
        }
    }

    /// All function names called anywhere inside this expression.
    pub fn called_fns(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_calls(&mut out);
        out
    }

    fn collect_calls<'a>(&'a self, out: &mut Vec<&'a str>) {
        match &self.kind {
            ExprKind::Call(name, args) => {
                out.push(name.as_str());
                for a in args {
                    a.collect_calls(out);
                }
            }
            ExprKind::Unary(_, e) => e.collect_calls(out),
            ExprKind::Binary(_, l, r) => {
                l.collect_calls(out);
                r.collect_calls(out);
            }
            ExprKind::Index(b, i) => {
                b.collect_calls(out);
                i.collect_calls(out);
            }
            _ => {}
        }
    }

    /// Visits every sub-expression (including `self`) in pre-order.
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        f(self);
        match &self.kind {
            ExprKind::Unary(_, e) => e.walk(f),
            ExprKind::Binary(_, l, r) => {
                l.walk(f);
                r.walk(f);
            }
            ExprKind::Call(_, args) => {
                for a in args {
                    a.walk(f);
                }
            }
            ExprKind::Index(b, i) => {
                b.walk(f);
                i.walk(f);
            }
            _ => {}
        }
    }
}

/// Assignment target.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// Plain variable `x = …`.
    Var(Symbol),
    /// Pointer store `*p = …`.
    Deref(Expr),
    /// Indexed store `a[i] = …`.
    Index(Expr, Expr),
}

impl LValue {
    /// The variable being (directly or indirectly) written, if syntactically
    /// evident: `x` for `x = …`, `p` for `*p = …` and `a` for `a[i] = …`.
    pub fn base_var(&self) -> Option<&str> {
        match self {
            LValue::Var(name) => Some(name.as_str()),
            LValue::Deref(e) | LValue::Index(e, _) => match &e.kind {
                ExprKind::Var(name) => Some(name.as_str()),
                _ => None,
            },
        }
    }

    /// Returns `true` if this writes through a pointer or index (i.e. does not
    /// kill the base variable's own value).
    pub fn is_indirect(&self) -> bool {
        !matches!(self, LValue::Var(_))
    }
}

/// Statement kind; see [`Stmt`].
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// Local declaration `ty name = init;`.
    Decl {
        /// Variable name.
        name: Symbol,
        /// Declared type.
        ty: Type,
        /// Optional initializer.
        init: Option<Expr>,
    },
    /// Assignment `lvalue op expr;` where op covers `=`, `+=`, `-=`.
    Assign {
        /// Assignment target.
        target: LValue,
        /// Right-hand side.
        value: Expr,
        /// Compound operator, if any (`+=` is `Some(BinOp::Add)`).
        op: Option<BinOp>,
    },
    /// `if (cond) { then } else { els }`.
    If {
        /// Branch condition.
        cond: Expr,
        /// Taken when `cond` is non-zero.
        then_branch: Vec<Stmt>,
        /// Taken when `cond` is zero, if present.
        else_branch: Option<Vec<Stmt>>,
    },
    /// `while (cond) { body }`.
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `for (init; cond; step) { body }`.
    For {
        /// Initialization statement (decl or assign), if present.
        init: Option<Box<Stmt>>,
        /// Continuation condition, if present.
        cond: Option<Expr>,
        /// Step statement, if present.
        step: Option<Box<Stmt>>,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `return expr?;`
    Return(Option<Expr>),
    /// Expression evaluated for side effects, typically a call.
    Expr(Expr),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
}

/// A statement with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// What kind of statement this is.
    pub kind: StmtKind,
    /// Source location.
    pub span: Span,
}

impl Stmt {
    /// Creates a statement from its parts.
    pub fn new(kind: StmtKind, span: Span) -> Self {
        Stmt { kind, span }
    }

    /// Visits this statement and all nested statements in pre-order.
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a Stmt)) {
        f(self);
        match &self.kind {
            StmtKind::If { then_branch, else_branch, .. } => {
                for s in then_branch {
                    s.walk(f);
                }
                if let Some(els) = else_branch {
                    for s in els {
                        s.walk(f);
                    }
                }
            }
            StmtKind::While { body, .. } => {
                for s in body {
                    s.walk(f);
                }
            }
            StmtKind::For { init, step, body, .. } => {
                if let Some(s) = init {
                    s.walk(f);
                }
                if let Some(s) = step {
                    s.walk(f);
                }
                for s in body {
                    s.walk(f);
                }
            }
            _ => {}
        }
    }

    /// All expressions appearing directly in this statement (not in nested
    /// statements).
    pub fn exprs(&self) -> Vec<&Expr> {
        match &self.kind {
            StmtKind::Decl { init, .. } => init.iter().collect(),
            StmtKind::Assign { target, value, .. } => {
                let mut v: Vec<&Expr> = Vec::new();
                match target {
                    LValue::Var(_) => {}
                    LValue::Deref(e) => v.push(e),
                    LValue::Index(b, i) => {
                        v.push(b);
                        v.push(i);
                    }
                }
                v.push(value);
                v
            }
            StmtKind::If { cond, .. } | StmtKind::While { cond, .. } => vec![cond],
            StmtKind::For { cond, .. } => cond.iter().collect(),
            StmtKind::Return(e) => e.iter().collect(),
            StmtKind::Expr(e) => vec![e],
            StmtKind::Break | StmtKind::Continue => Vec::new(),
        }
    }
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter name.
    pub name: Symbol,
    /// Parameter type.
    pub ty: Type,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Function name.
    pub name: Symbol,
    /// Parameters in declaration order.
    pub params: Vec<Param>,
    /// Return type.
    pub ret: Type,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Source location of the whole definition.
    pub span: Span,
    /// Doc comment lines attached immediately above the definition.
    pub doc: Vec<String>,
}

impl Function {
    /// Visits every statement in the body (recursively) in pre-order.
    pub fn walk_stmts<'a>(&'a self, f: &mut impl FnMut(&'a Stmt)) {
        for s in &self.body {
            s.walk(f);
        }
    }

    /// Visits every expression in the body.
    pub fn walk_exprs<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        self.walk_stmts(&mut |s| {
            for e in s.exprs() {
                e.walk(f);
            }
        });
    }

    /// Names of all functions called anywhere in the body, with duplicates.
    /// Cloning a [`Symbol`] is a reference-count bump, not a string copy.
    pub fn callees(&self) -> Vec<Symbol> {
        let mut out = Vec::new();
        self.walk_exprs(&mut |e| {
            if let ExprKind::Call(name, _) = &e.kind {
                out.push(name.clone());
            }
        });
        out
    }

    /// Total number of statements (recursively).
    pub fn stmt_count(&self) -> usize {
        let mut n = 0;
        self.walk_stmts(&mut |_| n += 1);
        n
    }
}

/// A complete translation unit.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Functions in source order.
    pub functions: Vec<Function>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Program::default()
    }

    /// Looks up a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Iterates over functions.
    pub fn iter(&self) -> std::slice::Iter<'_, Function> {
        self.functions.iter()
    }
}

impl<'a> IntoIterator for &'a Program {
    type Item = &'a Function;
    type IntoIter = std::slice::Iter<'a, Function>;
    fn into_iter(self) -> Self::IntoIter {
        self.functions.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sp() -> Span {
        Span::dummy()
    }

    #[test]
    fn type_display() {
        assert_eq!(Type::Int.to_string(), "int");
        assert_eq!(Type::Char.ptr().to_string(), "char*");
        assert_eq!(Type::Char.array(64).to_string(), "char[64]");
        assert_eq!(Type::Int.ptr().ptr().to_string(), "int**");
    }

    #[test]
    fn read_vars_collects_in_order() {
        // a + f(b, c[d])
        let e = Expr::new(
            ExprKind::Binary(
                BinOp::Add,
                Box::new(Expr::var("a")),
                Box::new(Expr::call(
                    "f",
                    vec![
                        Expr::var("b"),
                        Expr::new(
                            ExprKind::Index(Box::new(Expr::var("c")), Box::new(Expr::var("d"))),
                            sp(),
                        ),
                    ],
                )),
            ),
            sp(),
        );
        assert_eq!(e.read_vars(), vec!["a", "b", "c", "d"]);
        assert_eq!(e.called_fns(), vec!["f"]);
    }

    #[test]
    fn lvalue_base_var() {
        assert_eq!(LValue::Var("x".into()).base_var(), Some("x"));
        assert_eq!(LValue::Deref(Expr::var("p")).base_var(), Some("p"));
        assert_eq!(LValue::Index(Expr::var("a"), Expr::int(0)).base_var(), Some("a"));
        assert!(!LValue::Var("x".into()).is_indirect());
        assert!(LValue::Deref(Expr::var("p")).is_indirect());
    }

    #[test]
    fn stmt_walk_reaches_nested() {
        let inner = Stmt::new(StmtKind::Return(Some(Expr::int(1))), sp());
        let outer = Stmt::new(
            StmtKind::If {
                cond: Expr::var("c"),
                then_branch: vec![inner],
                else_branch: Some(vec![Stmt::new(StmtKind::Break, sp())]),
            },
            sp(),
        );
        let mut n = 0;
        outer.walk(&mut |_| n += 1);
        assert_eq!(n, 3);
    }

    #[test]
    fn function_callees_and_counts() {
        let body = vec![
            Stmt::new(StmtKind::Expr(Expr::call("log", vec![])), sp()),
            Stmt::new(
                StmtKind::While {
                    cond: Expr::var("n"),
                    body: vec![Stmt::new(
                        StmtKind::Expr(Expr::call("step", vec![Expr::var("n")])),
                        sp(),
                    )],
                },
                sp(),
            ),
        ];
        let f = Function {
            name: "main".into(),
            params: vec![],
            ret: Type::Void,
            body,
            span: sp(),
            doc: vec![],
        };
        assert_eq!(f.callees(), vec!["log".to_string(), "step".to_string()]);
        assert_eq!(f.stmt_count(), 3);
    }

    #[test]
    fn program_lookup() {
        let mut p = Program::new();
        p.functions.push(Function {
            name: "a".into(),
            params: vec![],
            ret: Type::Void,
            body: vec![],
            span: sp(),
            doc: vec![],
        });
        assert!(p.function("a").is_some());
        assert!(p.function("b").is_none());
        assert_eq!((&p).into_iter().count(), 1);
    }
}
