//! Recursive-descent parser for the mini-C dialect.

use crate::ast::*;
use crate::error::{ParseError, ParseResult};
use crate::intern::{Interner, Symbol};
use crate::lexer::{lex_ref, LexOutput};
use crate::span::Span;
use crate::token::{Token, TokenKind};
use std::borrow::Cow;

/// Parses a full translation unit from source text.
///
/// Doc comments (line comments immediately preceding a function definition)
/// are attached to that function's [`Function::doc`].
///
/// # Errors
///
/// Returns the first lexical or syntactic error encountered.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), vulnman_lang::error::ParseError> {
/// let prog = vulnman_lang::parser::parse(
///     "// Adds two numbers.\nint add(int a, int b) { return a + b; }",
/// )?;
/// assert_eq!(prog.functions.len(), 1);
/// assert_eq!(prog.functions[0].doc, vec!["Adds two numbers."]);
/// # Ok(())
/// # }
/// ```
pub fn parse(source: &str) -> ParseResult<Program> {
    let out = lex_ref(source)?;
    Parser::new(out).program()
}

/// Parses a single expression (useful in tests and rule matchers).
///
/// # Errors
///
/// Returns an error if the input is not exactly one expression.
pub fn parse_expr(source: &str) -> ParseResult<Expr> {
    let out = lex_ref(source)?;
    let mut p = Parser::new(out);
    let e = p.expr()?;
    p.expect(TokenKind::Eof)?;
    Ok(e)
}

/// Maximum statement/expression nesting before parsing aborts with an
/// error. The parser is recursive-descent, so unbounded nesting (e.g. ten
/// thousand `(`s from a fuzzer or a truncated upload) would otherwise
/// overflow the stack instead of returning a [`ParseError`].
const MAX_NESTING_DEPTH: usize = 200;

struct Parser<'a> {
    tokens: Vec<Token<Cow<'a, str>>>,
    comments: Vec<(usize, Cow<'a, str>)>, // (end offset, text) of line comments
    pos: usize,
    depth: usize,
    /// Deduplicates identifier names: every occurrence of the same name in
    /// one parse shares a single allocation.
    interner: Interner,
}

impl<'a> Parser<'a> {
    fn new(out: LexOutput<Cow<'a, str>>) -> Self {
        let comments =
            out.comments.into_iter().filter(|c| !c.block).map(|c| (c.span.end, c.text)).collect();
        Parser { tokens: out.tokens, comments, pos: 0, depth: 0, interner: Interner::new() }
    }

    fn descend(&mut self) -> ParseResult<()> {
        self.depth += 1;
        if self.depth > MAX_NESTING_DEPTH {
            return Err(ParseError::new(
                format!("nesting exceeds {MAX_NESTING_DEPTH} levels"),
                self.peek().span,
            ));
        }
        Ok(())
    }

    fn ascend(&mut self) {
        self.depth -= 1;
    }

    fn peek(&self) -> &Token<Cow<'a, str>> {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek_kind(&self) -> &TokenKind<Cow<'a, str>> {
        &self.peek().kind
    }

    fn peek2_kind(&self) -> &TokenKind<Cow<'a, str>> {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].kind
    }

    fn bump(&mut self) -> Token<Cow<'a, str>> {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn at(&self, kind: &TokenKind<Cow<'a, str>>) -> bool {
        self.peek_kind() == kind
    }

    fn eat(&mut self, kind: TokenKind<Cow<'a, str>>) -> bool {
        if self.at(&kind) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind<Cow<'a, str>>) -> ParseResult<Token<Cow<'a, str>>> {
        if self.at(&kind) {
            Ok(self.bump())
        } else {
            let t = self.peek();
            Err(ParseError::new(
                format!("expected {}, found {}", kind.describe(), t.kind.describe()),
                t.span,
            ))
        }
    }

    fn expect_ident(&mut self) -> ParseResult<(Symbol, Span)> {
        let span = self.peek().span;
        if matches!(self.peek_kind(), TokenKind::Ident(_)) {
            match self.bump().kind {
                TokenKind::Ident(name) => Ok((self.interner.intern(&name), span)),
                _ => unreachable!("peeked an identifier"),
            }
        } else {
            Err(ParseError::new(
                format!("expected identifier, found {}", self.peek_kind().describe()),
                span,
            ))
        }
    }

    // ----- grammar ---------------------------------------------------------

    fn program(&mut self) -> ParseResult<Program> {
        let mut prog = Program::new();
        let mut prev_end = 0usize;
        while !self.at(&TokenKind::Eof) {
            let start = self.peek().span.start;
            let mut func = self.function()?;
            func.doc = self
                .comments
                .iter()
                .filter(|(end, _)| *end > prev_end && *end <= start)
                .map(|(_, text)| text.clone().into_owned())
                .collect();
            prev_end = func.span.end;
            prog.functions.push(func);
        }
        Ok(prog)
    }

    fn base_type(&mut self) -> ParseResult<Type> {
        let t = self.bump();
        let mut ty = match t.kind {
            TokenKind::KwInt => Type::Int,
            TokenKind::KwChar => Type::Char,
            TokenKind::KwVoid => Type::Void,
            other => {
                return Err(ParseError::new(
                    format!("expected type, found {}", other.describe()),
                    t.span,
                ))
            }
        };
        while self.eat(TokenKind::Star) {
            ty = ty.ptr();
        }
        Ok(ty)
    }

    fn function(&mut self) -> ParseResult<Function> {
        let start_span = self.peek().span;
        let ret = self.base_type()?;
        let (name, _) = self.expect_ident()?;
        self.expect(TokenKind::LParen)?;
        let mut params = Vec::new();
        if !self.at(&TokenKind::RParen) {
            loop {
                let ty = self.base_type()?;
                let (pname, _) = self.expect_ident()?;
                let ty = self.maybe_array(ty)?;
                params.push(Param { name: pname, ty });
                if !self.eat(TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(TokenKind::RParen)?;
        let body = self.block()?;
        let end_span = self.tokens[self.pos.saturating_sub(1)].span;
        Ok(Function { name, params, ret, body, span: start_span.to(end_span), doc: Vec::new() })
    }

    fn maybe_array(&mut self, ty: Type) -> ParseResult<Type> {
        if self.eat(TokenKind::LBracket) {
            let t = self.bump();
            let len = match t.kind {
                TokenKind::Int(v) if v >= 0 => v as usize,
                other => {
                    return Err(ParseError::new(
                        format!("expected array length, found {}", other.describe()),
                        t.span,
                    ))
                }
            };
            self.expect(TokenKind::RBracket)?;
            Ok(ty.array(len))
        } else {
            Ok(ty)
        }
    }

    fn block(&mut self) -> ParseResult<Vec<Stmt>> {
        self.expect(TokenKind::LBrace)?;
        let mut stmts = Vec::new();
        while !self.at(&TokenKind::RBrace) {
            if self.at(&TokenKind::Eof) {
                return Err(ParseError::new("unterminated block", self.peek().span));
            }
            stmts.push(self.stmt()?);
        }
        self.expect(TokenKind::RBrace)?;
        Ok(stmts)
    }

    fn stmt(&mut self) -> ParseResult<Stmt> {
        self.descend()?;
        let result = self.stmt_inner();
        self.ascend();
        result
    }

    fn stmt_inner(&mut self) -> ParseResult<Stmt> {
        let span = self.peek().span;
        match self.peek_kind() {
            TokenKind::KwInt | TokenKind::KwChar | TokenKind::KwVoid => self.decl_stmt(),
            TokenKind::KwIf => self.if_stmt(),
            TokenKind::KwWhile => self.while_stmt(),
            TokenKind::KwFor => self.for_stmt(),
            TokenKind::KwReturn => {
                self.bump();
                let value = if self.at(&TokenKind::Semi) { None } else { Some(self.expr()?) };
                let end = self.expect(TokenKind::Semi)?.span;
                Ok(Stmt::new(StmtKind::Return(value), span.to(end)))
            }
            TokenKind::KwBreak => {
                self.bump();
                let end = self.expect(TokenKind::Semi)?.span;
                Ok(Stmt::new(StmtKind::Break, span.to(end)))
            }
            TokenKind::KwContinue => {
                self.bump();
                let end = self.expect(TokenKind::Semi)?.span;
                Ok(Stmt::new(StmtKind::Continue, span.to(end)))
            }
            TokenKind::LBrace => {
                // Flatten a bare block into an `if (1)` so the AST stays small.
                let body = self.block()?;
                Ok(Stmt::new(
                    StmtKind::If { cond: Expr::int(1), then_branch: body, else_branch: None },
                    span,
                ))
            }
            _ => {
                let s = self.simple_stmt()?;
                let end = self.expect(TokenKind::Semi)?.span;
                Ok(Stmt::new(s.kind, span.to(end)))
            }
        }
    }

    fn decl_stmt(&mut self) -> ParseResult<Stmt> {
        let span = self.peek().span;
        let s = self.decl_simple()?;
        let end = self.expect(TokenKind::Semi)?.span;
        Ok(Stmt::new(s.kind, span.to(end)))
    }

    fn decl_simple(&mut self) -> ParseResult<Stmt> {
        let span = self.peek().span;
        let ty = self.base_type()?;
        let (name, _) = self.expect_ident()?;
        let ty = self.maybe_array(ty)?;
        let init = if self.eat(TokenKind::Assign) { Some(self.expr()?) } else { None };
        Ok(Stmt::new(StmtKind::Decl { name, ty, init }, span))
    }

    /// Assignment, increment, or expression statement — without the trailing
    /// semicolon (shared by statement position and `for` init/step).
    fn simple_stmt(&mut self) -> ParseResult<Stmt> {
        let span = self.peek().span;
        let lhs = self.expr()?;
        let kind = match self.peek_kind() {
            TokenKind::Assign => {
                self.bump();
                let value = self.expr()?;
                StmtKind::Assign { target: self.as_lvalue(lhs)?, value, op: None }
            }
            TokenKind::PlusAssign => {
                self.bump();
                let value = self.expr()?;
                StmtKind::Assign { target: self.as_lvalue(lhs)?, value, op: Some(BinOp::Add) }
            }
            TokenKind::MinusAssign => {
                self.bump();
                let value = self.expr()?;
                StmtKind::Assign { target: self.as_lvalue(lhs)?, value, op: Some(BinOp::Sub) }
            }
            TokenKind::PlusPlus => {
                self.bump();
                StmtKind::Assign {
                    target: self.as_lvalue(lhs)?,
                    value: Expr::int(1),
                    op: Some(BinOp::Add),
                }
            }
            TokenKind::MinusMinus => {
                self.bump();
                StmtKind::Assign {
                    target: self.as_lvalue(lhs)?,
                    value: Expr::int(1),
                    op: Some(BinOp::Sub),
                }
            }
            _ => StmtKind::Expr(lhs),
        };
        Ok(Stmt::new(kind, span))
    }

    fn as_lvalue(&self, e: Expr) -> ParseResult<LValue> {
        match e.kind {
            ExprKind::Var(name) => Ok(LValue::Var(name)),
            ExprKind::Unary(UnOp::Deref, inner) => Ok(LValue::Deref(*inner)),
            ExprKind::Index(base, idx) => Ok(LValue::Index(*base, *idx)),
            _ => Err(ParseError::new("invalid assignment target", e.span)),
        }
    }

    fn if_stmt(&mut self) -> ParseResult<Stmt> {
        let span = self.expect(TokenKind::KwIf)?.span;
        self.expect(TokenKind::LParen)?;
        let cond = self.expr()?;
        self.expect(TokenKind::RParen)?;
        let then_branch = self.block_or_single()?;
        let else_branch = if self.eat(TokenKind::KwElse) {
            if self.at(&TokenKind::KwIf) {
                Some(vec![self.if_stmt()?])
            } else {
                Some(self.block_or_single()?)
            }
        } else {
            None
        };
        Ok(Stmt::new(StmtKind::If { cond, then_branch, else_branch }, span))
    }

    fn block_or_single(&mut self) -> ParseResult<Vec<Stmt>> {
        if self.at(&TokenKind::LBrace) {
            self.block()
        } else {
            Ok(vec![self.stmt()?])
        }
    }

    fn while_stmt(&mut self) -> ParseResult<Stmt> {
        let span = self.expect(TokenKind::KwWhile)?.span;
        self.expect(TokenKind::LParen)?;
        let cond = self.expr()?;
        self.expect(TokenKind::RParen)?;
        let body = self.block_or_single()?;
        Ok(Stmt::new(StmtKind::While { cond, body }, span))
    }

    fn for_stmt(&mut self) -> ParseResult<Stmt> {
        let span = self.expect(TokenKind::KwFor)?.span;
        self.expect(TokenKind::LParen)?;
        let init = if self.at(&TokenKind::Semi) {
            None
        } else if matches!(self.peek_kind(), TokenKind::KwInt | TokenKind::KwChar) {
            Some(Box::new(self.decl_simple()?))
        } else {
            Some(Box::new(self.simple_stmt()?))
        };
        self.expect(TokenKind::Semi)?;
        let cond = if self.at(&TokenKind::Semi) { None } else { Some(self.expr()?) };
        self.expect(TokenKind::Semi)?;
        let step =
            if self.at(&TokenKind::RParen) { None } else { Some(Box::new(self.simple_stmt()?)) };
        self.expect(TokenKind::RParen)?;
        let body = self.block_or_single()?;
        Ok(Stmt::new(StmtKind::For { init, cond, step, body }, span))
    }

    // ----- expressions (precedence climbing) --------------------------------

    fn expr(&mut self) -> ParseResult<Expr> {
        self.binary(0)
    }

    fn binary(&mut self, min_prec: u8) -> ParseResult<Expr> {
        let mut lhs = self.unary()?;
        loop {
            let (op, prec) = match self.peek_kind() {
                TokenKind::PipePipe => (BinOp::Or, 1),
                TokenKind::AmpAmp => (BinOp::And, 2),
                TokenKind::Pipe => (BinOp::BitOr, 3),
                TokenKind::Caret => (BinOp::BitXor, 4),
                TokenKind::Amp => (BinOp::BitAnd, 5),
                TokenKind::Eq => (BinOp::Eq, 6),
                TokenKind::Ne => (BinOp::Ne, 6),
                TokenKind::Lt => (BinOp::Lt, 7),
                TokenKind::Le => (BinOp::Le, 7),
                TokenKind::Gt => (BinOp::Gt, 7),
                TokenKind::Ge => (BinOp::Ge, 7),
                TokenKind::Shl => (BinOp::Shl, 8),
                TokenKind::Shr => (BinOp::Shr, 8),
                TokenKind::Plus => (BinOp::Add, 9),
                TokenKind::Minus => (BinOp::Sub, 9),
                TokenKind::Star => (BinOp::Mul, 10),
                TokenKind::Slash => (BinOp::Div, 10),
                TokenKind::Percent => (BinOp::Rem, 10),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            self.bump();
            let rhs = self.binary(prec + 1)?;
            let span = lhs.span.to(rhs.span);
            lhs = Expr::new(ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)), span);
        }
        Ok(lhs)
    }

    // Every expression nesting level — unary chains, parenthesized groups,
    // call arguments, index brackets — passes through `unary` on its way
    // down, so guarding here bounds all expression recursion.
    fn unary(&mut self) -> ParseResult<Expr> {
        self.descend()?;
        let result = self.unary_inner();
        self.ascend();
        result
    }

    fn unary_inner(&mut self) -> ParseResult<Expr> {
        let span = self.peek().span;
        let op = match self.peek_kind() {
            TokenKind::Minus => Some(UnOp::Neg),
            TokenKind::Bang => Some(UnOp::Not),
            TokenKind::Star => Some(UnOp::Deref),
            TokenKind::Amp => Some(UnOp::AddrOf),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let inner = self.unary()?;
            let span = span.to(inner.span);
            return Ok(Expr::new(ExprKind::Unary(op, Box::new(inner)), span));
        }
        self.postfix()
    }

    fn postfix(&mut self) -> ParseResult<Expr> {
        let mut e = self.primary()?;
        while self.at(&TokenKind::LBracket) {
            self.bump();
            let idx = self.expr()?;
            let end = self.expect(TokenKind::RBracket)?.span;
            let span = e.span.to(end);
            e = Expr::new(ExprKind::Index(Box::new(e), Box::new(idx)), span);
        }
        Ok(e)
    }

    fn primary(&mut self) -> ParseResult<Expr> {
        let t = self.bump();
        match t.kind {
            TokenKind::Int(v) => Ok(Expr::new(ExprKind::Int(v), t.span)),
            TokenKind::Char(c) => Ok(Expr::new(ExprKind::Char(c), t.span)),
            TokenKind::Str(s) => Ok(Expr::new(ExprKind::Str(s.into_owned()), t.span)),
            TokenKind::Ident(name) => {
                let name = self.interner.intern(&name);
                if self.at(&TokenKind::LParen) {
                    self.bump();
                    let mut args = Vec::new();
                    if !self.at(&TokenKind::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(TokenKind::Comma) {
                                break;
                            }
                        }
                    }
                    let end = self.expect(TokenKind::RParen)?.span;
                    Ok(Expr::new(ExprKind::Call(name, args), t.span.to(end)))
                } else {
                    Ok(Expr::new(ExprKind::Var(name), t.span))
                }
            }
            TokenKind::LParen => {
                let e = self.expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(e)
            }
            other => Err(ParseError::new(
                format!("expected expression, found {}", other.describe()),
                t.span,
            )),
        }
    }

    // `peek2_kind` is used by callers that look ahead for declarations.
    #[allow(dead_code)]
    fn is_decl_start(&self) -> bool {
        matches!(self.peek_kind(), TokenKind::KwInt | TokenKind::KwChar)
            && matches!(self.peek2_kind(), TokenKind::Ident(_) | TokenKind::Star)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_function() {
        let p = parse("int add(int a, int b) { return a + b; }").unwrap();
        assert_eq!(p.functions.len(), 1);
        let f = &p.functions[0];
        assert_eq!(f.name, "add");
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.ret, Type::Int);
        assert_eq!(f.body.len(), 1);
    }

    #[test]
    fn parses_pointers_and_arrays() {
        let p = parse(
            "void f(char* s, int n) { char buf[16]; int* q; q = &n; *q = 1; buf[0] = s[0]; }",
        )
        .unwrap();
        let f = &p.functions[0];
        assert_eq!(f.params[0].ty, Type::Char.ptr());
        match &f.body[0].kind {
            StmtKind::Decl { ty, .. } => assert_eq!(*ty, Type::Char.array(16)),
            other => panic!("expected decl, got {other:?}"),
        }
    }

    #[test]
    fn precedence_mul_over_add() {
        let e = parse_expr("1 + 2 * 3").unwrap();
        match e.kind {
            ExprKind::Binary(BinOp::Add, _, rhs) => match rhs.kind {
                ExprKind::Binary(BinOp::Mul, _, _) => {}
                other => panic!("rhs should be mul, got {other:?}"),
            },
            other => panic!("expected add at root, got {other:?}"),
        }
    }

    #[test]
    fn precedence_cmp_over_logic() {
        let e = parse_expr("a < b && c > d").unwrap();
        assert!(matches!(e.kind, ExprKind::Binary(BinOp::And, _, _)));
    }

    #[test]
    fn parens_override() {
        let e = parse_expr("(1 + 2) * 3").unwrap();
        assert!(matches!(e.kind, ExprKind::Binary(BinOp::Mul, _, _)));
    }

    #[test]
    fn parses_if_else_chain() {
        let p = parse("int f(int x) { if (x > 0) { return 1; } else if (x < 0) { return -1; } else { return 0; } }").unwrap();
        match &p.functions[0].body[0].kind {
            StmtKind::If { else_branch: Some(e), .. } => {
                assert!(matches!(e[0].kind, StmtKind::If { .. }));
            }
            other => panic!("expected if, got {other:?}"),
        }
    }

    #[test]
    fn parses_for_loop_with_increment() {
        let p = parse("void f(int n) { for (int i = 0; i < n; i++) { work(i); } }").unwrap();
        match &p.functions[0].body[0].kind {
            StmtKind::For { init, cond, step, body } => {
                assert!(init.is_some());
                assert!(cond.is_some());
                assert!(step.is_some());
                assert_eq!(body.len(), 1);
            }
            other => panic!("expected for, got {other:?}"),
        }
    }

    #[test]
    fn parses_while_break_continue() {
        let p = parse("void f() { while (1) { if (done()) { break; } continue; } }").unwrap();
        assert_eq!(p.functions[0].stmt_count(), 4);
    }

    #[test]
    fn compound_assignment() {
        let p = parse("void f(int x) { x += 2; x -= 1; }").unwrap();
        match &p.functions[0].body[0].kind {
            StmtKind::Assign { op: Some(BinOp::Add), .. } => {}
            other => panic!("expected +=, got {other:?}"),
        }
    }

    #[test]
    fn attaches_doc_comments() {
        let src = "// Validates input.\n// Returns 0 on success.\nint check(int x) { return 0; }\nint other() { return 1; }";
        let p = parse(src).unwrap();
        assert_eq!(p.functions[0].doc, vec!["Validates input.", "Returns 0 on success."]);
        assert!(p.functions[1].doc.is_empty());
    }

    #[test]
    fn doc_comments_do_not_leak_across_functions() {
        let src = "int a() { return 1; // inline\n}\n// For b only.\nint b() { return 2; }";
        let p = parse(src).unwrap();
        assert_eq!(p.functions[0].doc, Vec::<String>::new());
        assert_eq!(p.functions[1].doc, vec!["For b only."]);
    }

    #[test]
    fn rejects_bad_assignment_target() {
        assert!(parse("void f() { 1 = 2; }").is_err());
        assert!(parse("void f(int a, int b) { f(a) = b; }").is_err());
    }

    #[test]
    fn rejects_unterminated_block() {
        assert!(parse("void f() { int x;").is_err());
    }

    #[test]
    fn rejects_missing_semicolon() {
        assert!(parse("void f() { int x }").is_err());
    }

    #[test]
    fn deref_assignment() {
        let p = parse("void f(int* p) { *p = 3; }").unwrap();
        match &p.functions[0].body[0].kind {
            StmtKind::Assign { target: LValue::Deref(_), .. } => {}
            other => panic!("expected deref assign, got {other:?}"),
        }
    }

    #[test]
    fn nested_index_expression() {
        let e = parse_expr("m[i][j]").unwrap();
        assert!(matches!(e.kind, ExprKind::Index(_, _)));
    }

    #[test]
    fn call_with_nested_calls() {
        let e = parse_expr("outer(inner(a), b + c)").unwrap();
        assert_eq!(e.called_fns(), vec!["outer", "inner"]);
    }

    #[test]
    fn deep_paren_nesting_errors_instead_of_overflowing() {
        let src = format!("int f() {{ return {}1{}; }}", "(".repeat(5000), ")".repeat(5000));
        let err = parse(&src).unwrap_err();
        assert!(err.message().contains("nesting"), "{err}");
    }

    #[test]
    fn deep_unary_nesting_errors_instead_of_overflowing() {
        let src = format!("int f(int x) {{ return {}x; }}", "!".repeat(5000));
        assert!(parse(&src).is_err());
    }

    #[test]
    fn deep_statement_nesting_errors_instead_of_overflowing() {
        let src = format!("void f() {{ {} x = 1; {} }}", "if (1) {".repeat(5000), "}".repeat(5000));
        assert!(parse(&src).is_err());
    }

    #[test]
    fn moderate_nesting_still_parses() {
        let src = format!("int f() {{ return {}1{}; }}", "(".repeat(100), ")".repeat(100));
        assert!(parse(&src).is_ok());
    }

    #[test]
    fn spans_point_into_source() {
        let src = "int f(int x) {\n  return x;\n}";
        let p = parse(src).unwrap();
        let ret = &p.functions[0].body[0];
        assert_eq!(ret.span.line, 2);
        assert_eq!(&src[ret.span.start..ret.span.end], "return x;");
    }
}
