//! Interned identifier names.
//!
//! Every identifier the parser sees becomes a [`Symbol`]: a shared,
//! immutable `Arc<str>`. Within one parse, all occurrences of the same name
//! point at a single allocation (the parser's [`Interner`] deduplicates),
//! so AST clones, environment keys, and summary tables bump a reference
//! count instead of copying string bytes. Equality gets a pointer fast
//! path; hashing and ordering stay content-based, so symbols from
//! *different* parses (or hand-built test ASTs) compare like plain strings.

use std::borrow::Borrow;
use std::collections::HashSet;
use std::fmt;
use std::hash::{BuildHasherDefault, Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// [FNV-1a](https://en.wikipedia.org/wiki/Fowler%E2%80%93Noll%E2%80%93Vo_hash_function)
/// hasher for the identifier-keyed maps on the analysis hot paths. Keys are
/// short program identifiers from a trusted parser — SipHash's
/// flooding resistance buys nothing there, while its per-hash setup cost
/// dominates for sub-16-byte strings.
#[derive(Debug, Clone)]
pub struct Fnv64 {
    state: u64,
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64 { state: 0xcbf2_9ce4_8422_2325 }
    }
}

impl Hasher for Fnv64 {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.state
    }
}

/// `BuildHasher` plugging [`Fnv64`] into `HashMap`/`HashSet`.
pub type FnvBuildHasher = BuildHasherDefault<Fnv64>;

/// An interned identifier: cheap to clone, compares like `&str`.
#[derive(Clone)]
pub struct Symbol(Arc<str>);

impl Symbol {
    /// Creates a standalone (un-deduplicated) symbol. Prefer
    /// [`Interner::intern`] inside parsers and other hot paths.
    pub fn new(name: impl AsRef<str>) -> Self {
        Symbol(Arc::from(name.as_ref()))
    }

    /// The name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl Deref for Symbol {
    type Target = str;
    fn deref(&self) -> &str {
        &self.0
    }
}

impl AsRef<str> for Symbol {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl Borrow<str> for Symbol {
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Self {
        Symbol::new(s)
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Self {
        Symbol(Arc::from(s))
    }
}

impl From<&String> for Symbol {
    fn from(s: &String) -> Self {
        Symbol::new(s)
    }
}

impl From<&Symbol> for Symbol {
    fn from(s: &Symbol) -> Self {
        s.clone()
    }
}

impl From<Symbol> for String {
    fn from(s: Symbol) -> String {
        s.0.as_ref().to_string()
    }
}

impl PartialEq for Symbol {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0) || self.0 == other.0
    }
}

impl Eq for Symbol {}

impl PartialOrd for Symbol {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Symbol {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if Arc::ptr_eq(&self.0, &other.0) {
            std::cmp::Ordering::Equal
        } else {
            self.0.cmp(&other.0)
        }
    }
}

/// Content hashing, matching `str` — a `HashMap<Symbol, _>` can be probed
/// with `&str` keys via [`Borrow`].
impl Hash for Symbol {
    fn hash<H: Hasher>(&self, state: &mut H) {
        (*self.0).hash(state);
    }
}

impl PartialEq<str> for Symbol {
    fn eq(&self, other: &str) -> bool {
        &*self.0 == other
    }
}

impl PartialEq<&str> for Symbol {
    fn eq(&self, other: &&str) -> bool {
        &*self.0 == *other
    }
}

impl PartialEq<String> for Symbol {
    fn eq(&self, other: &String) -> bool {
        &*self.0 == other.as_str()
    }
}

impl PartialEq<Symbol> for str {
    fn eq(&self, other: &Symbol) -> bool {
        self == &*other.0
    }
}

impl PartialEq<Symbol> for &str {
    fn eq(&self, other: &Symbol) -> bool {
        *self == &*other.0
    }
}

impl PartialEq<Symbol> for String {
    fn eq(&self, other: &Symbol) -> bool {
        self.as_str() == &*other.0
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&*self.0, f)
    }
}

/// Deduplicating symbol factory: one allocation per distinct name.
#[derive(Debug, Default)]
pub struct Interner {
    names: HashSet<Arc<str>, FnvBuildHasher>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Interner::default()
    }

    /// Returns the shared symbol for `name`, allocating only on first sight.
    pub fn intern(&mut self, name: &str) -> Symbol {
        if let Some(existing) = self.names.get(name) {
            return Symbol(Arc::clone(existing));
        }
        let arc: Arc<str> = Arc::from(name);
        self.names.insert(Arc::clone(&arc));
        Symbol(arc)
    }

    /// Number of distinct names interned.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn interning_shares_storage() {
        let mut i = Interner::new();
        let a = i.intern("buf");
        let b = i.intern("buf");
        assert!(Arc::ptr_eq(&a.0, &b.0));
        assert_eq!(i.len(), 1);
        let c = i.intern("len");
        assert_ne!(a, c);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn symbols_compare_like_strings() {
        let a = Symbol::from("alpha");
        let b = Symbol::from("alpha");
        let c = Symbol::from("beta");
        assert_eq!(a, b);
        assert!(a < c);
        assert_eq!(a, "alpha");
        assert_eq!("alpha", a.clone());
        assert_eq!(a, "alpha".to_string());
        assert_eq!(format!("{a}"), "alpha");
        assert_eq!(format!("{a:?}"), "\"alpha\"");
    }

    #[test]
    fn hash_matches_str_for_map_probes() {
        let mut m: HashMap<Symbol, u32> = HashMap::new();
        m.insert(Symbol::from("x"), 7);
        assert_eq!(m.get("x"), Some(&7));
        assert_eq!(m.get("y"), None);
    }
}
