//! Control-flow graph construction.
//!
//! The AST's structured control flow is lowered to basic blocks of
//! [`CfgInst`]s. The CFG is consumed by the data-flow framework
//! ([`crate::dataflow`]), the taint engine ([`crate::taint`]), and the
//! graph-feature extractors in the ML crate.

use crate::ast::*;
use crate::intern::Symbol;
use crate::span::Span;

/// Index of a basic block within a [`Cfg`].
pub type BlockId = usize;

/// A lowered instruction inside a basic block.
#[derive(Debug, Clone, PartialEq)]
pub enum CfgInst {
    /// Local declaration, possibly initialized.
    Decl {
        /// Variable name (interned; cloning is a reference-count bump).
        name: Symbol,
        /// Declared type.
        ty: Type,
        /// Optional initializer.
        init: Option<Expr>,
    },
    /// Assignment through any lvalue.
    Assign {
        /// Target lvalue.
        target: LValue,
        /// Right-hand side (already desugared: compound ops folded in).
        value: Expr,
    },
    /// Expression for side effects.
    Expr(Expr),
    /// Function return.
    Return(Option<Expr>),
    /// Block-terminating branch condition; the block then has exactly two
    /// successors: `[taken, not_taken]`.
    Branch(Expr),
}

impl CfgInst {
    /// The expression evaluated by this instruction, if any (initializer,
    /// RHS, condition, or returned value).
    pub fn expr(&self) -> Option<&Expr> {
        match self {
            CfgInst::Decl { init, .. } => init.as_ref(),
            CfgInst::Assign { value, .. } => Some(value),
            CfgInst::Expr(e) | CfgInst::Branch(e) => Some(e),
            CfgInst::Return(e) => e.as_ref(),
        }
    }

    /// The variable directly defined (killed) by this instruction, if any.
    /// Indirect stores (`*p = …`, `a[i] = …`) do not kill.
    pub fn defined_var(&self) -> Option<&str> {
        match self {
            CfgInst::Decl { name, .. } => Some(name.as_str()),
            CfgInst::Assign { target: LValue::Var(name), .. } => Some(name.as_str()),
            _ => None,
        }
    }
}

/// An instruction plus its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedInst {
    /// The lowered instruction.
    pub inst: CfgInst,
    /// Source span of the originating statement.
    pub span: Span,
}

/// A basic block: straight-line instructions plus successor/predecessor edges.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BasicBlock {
    /// Instructions in execution order.
    pub insts: Vec<SpannedInst>,
    /// Successor block ids. For a block ending in [`CfgInst::Branch`] the
    /// order is `[taken, fallthrough]`.
    pub succs: Vec<BlockId>,
    /// Predecessor block ids (derived; kept in sync by the builder).
    pub preds: Vec<BlockId>,
}

/// A per-function control-flow graph.
#[derive(Debug, Clone, PartialEq)]
pub struct Cfg {
    /// All basic blocks; indices are [`BlockId`]s.
    pub blocks: Vec<BasicBlock>,
    /// Entry block id (always `0`).
    pub entry: BlockId,
    /// Single synthetic exit block id.
    pub exit: BlockId,
}

impl Cfg {
    /// Builds the CFG for a function body.
    ///
    /// # Examples
    ///
    /// ```
    /// # fn main() -> Result<(), vulnman_lang::error::ParseError> {
    /// use vulnman_lang::{cfg::Cfg, parser::parse};
    /// let prog = parse("int f(int x) { if (x) { return 1; } return 0; }")?;
    /// let cfg = Cfg::build(&prog.functions[0]);
    /// assert!(cfg.blocks.len() >= 3);
    /// # Ok(())
    /// # }
    /// ```
    pub fn build(func: &Function) -> Cfg {
        let mut b = Builder::new();
        let mut current = b.new_block(); // entry = 0
        debug_assert_eq!(current, 0);
        current = b.lower_stmts(&func.body, current, &mut Vec::new());
        // Implicit fallthrough return.
        b.edge(current, b.exit);
        b.finish()
    }

    /// Number of edges in the graph.
    pub fn edge_count(&self) -> usize {
        self.blocks.iter().map(|b| b.succs.len()).sum()
    }

    /// Cyclomatic complexity `E - N + 2` over the entry-reachable subgraph
    /// (unreachable continuation blocks carry no edges after pruning, so
    /// counting them as nodes would skew the metric).
    pub fn cyclomatic_complexity(&self) -> usize {
        let n = self.reachable().iter().filter(|&&r| r).count();
        (self.edge_count() + 2).saturating_sub(n)
    }

    /// Blocks in reverse post-order from the entry (good iteration order for
    /// forward data-flow problems).
    pub fn reverse_post_order(&self) -> Vec<BlockId> {
        let mut visited = vec![false; self.blocks.len()];
        let mut order = Vec::with_capacity(self.blocks.len());
        self.dfs_post(self.entry, &mut visited, &mut order);
        order.reverse();
        order
    }

    fn dfs_post(&self, id: BlockId, visited: &mut [bool], order: &mut Vec<BlockId>) {
        if visited[id] {
            return;
        }
        visited[id] = true;
        for &s in &self.blocks[id].succs {
            self.dfs_post(s, visited, order);
        }
        order.push(id);
    }

    /// Immediate-dominator-free dominator sets, computed by the classic
    /// iterative algorithm. `result[b]` contains every block that dominates
    /// `b` (including `b` itself). Unreachable blocks dominate nothing and
    /// report only themselves.
    pub fn dominators(&self) -> Vec<Vec<BlockId>> {
        let n = self.blocks.len();
        let all: Vec<BlockId> = (0..n).collect();
        let mut dom: Vec<Vec<BlockId>> = vec![all; n];
        dom[self.entry] = vec![self.entry];
        let rpo = self.reverse_post_order();
        let mut changed = true;
        while changed {
            changed = false;
            for &b in &rpo {
                if b == self.entry {
                    continue;
                }
                let mut new: Option<Vec<BlockId>> = None;
                for &p in &self.blocks[b].preds {
                    let pd = &dom[p];
                    new = Some(match new {
                        None => pd.clone(),
                        Some(cur) => cur.iter().copied().filter(|x| pd.contains(x)).collect(),
                    });
                }
                let mut new = new.unwrap_or_default();
                if !new.contains(&b) {
                    new.push(b);
                    new.sort_unstable();
                }
                if new != dom[b] {
                    dom[b] = new;
                    changed = true;
                }
            }
        }
        dom
    }

    /// Total instruction count across all blocks.
    pub fn inst_count(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }

    /// Per-block reachability from the entry. The builder prunes all edges
    /// that originate in unreachable blocks, so for every reachable block
    /// every listed predecessor is itself reachable — the invariant forward
    /// analyses rely on at join points.
    pub fn reachable(&self) -> Vec<bool> {
        let mut seen = vec![false; self.blocks.len()];
        let mut stack = vec![self.entry];
        while let Some(b) = stack.pop() {
            if seen[b] {
                continue;
            }
            seen[b] = true;
            stack.extend(self.blocks[b].succs.iter().copied());
        }
        seen
    }
}

struct Builder {
    blocks: Vec<BasicBlock>,
    exit: BlockId,
}

/// Loop context: (header/continue target, exit/break target).
type LoopCtx = (BlockId, BlockId);

impl Builder {
    fn new() -> Self {
        let mut b = Builder { blocks: Vec::new(), exit: 0 };
        // Block 0 is reserved by the caller as entry; exit created lazily
        // after entry so ids stay compact. Entry is created by the caller via
        // new_block; we pre-create exit as block index set later in finish.
        b.exit = usize::MAX;
        b
    }

    fn new_block(&mut self) -> BlockId {
        self.blocks.push(BasicBlock::default());
        self.blocks.len() - 1
    }

    fn ensure_exit(&mut self) -> BlockId {
        if self.exit == usize::MAX {
            self.exit = self.new_block();
        }
        self.exit
    }

    fn edge(&mut self, from: BlockId, to: BlockId) {
        let to = if to == usize::MAX { self.ensure_exit() } else { to };
        if !self.blocks[from].succs.contains(&to) {
            self.blocks[from].succs.push(to);
            self.blocks[to].preds.push(from);
        }
    }

    fn push(&mut self, block: BlockId, inst: CfgInst, span: Span) {
        self.blocks[block].insts.push(SpannedInst { inst, span });
    }

    /// Lowers a statement list starting in `current`; returns the block where
    /// control continues afterwards. A returned block that already ends in a
    /// jump-away (return/break/continue) is a fresh unreachable block.
    fn lower_stmts(
        &mut self,
        stmts: &[Stmt],
        mut current: BlockId,
        loops: &mut Vec<LoopCtx>,
    ) -> BlockId {
        for s in stmts {
            current = self.lower_stmt(s, current, loops);
        }
        current
    }

    fn lower_stmt(&mut self, s: &Stmt, current: BlockId, loops: &mut Vec<LoopCtx>) -> BlockId {
        match &s.kind {
            StmtKind::Decl { name, ty, init } => {
                self.push(
                    current,
                    CfgInst::Decl { name: name.clone(), ty: ty.clone(), init: init.clone() },
                    s.span,
                );
                current
            }
            StmtKind::Assign { target, value, op } => {
                let value = desugar_compound(target, value, *op, s.span);
                self.push(current, CfgInst::Assign { target: target.clone(), value }, s.span);
                current
            }
            StmtKind::Expr(e) => {
                self.push(current, CfgInst::Expr(e.clone()), s.span);
                current
            }
            StmtKind::Return(e) => {
                self.push(current, CfgInst::Return(e.clone()), s.span);
                let exit = self.ensure_exit();
                self.edge(current, exit);
                self.new_block() // unreachable continuation
            }
            StmtKind::Break => {
                if let Some(&(_, brk)) = loops.last() {
                    self.edge(current, brk);
                }
                self.new_block()
            }
            StmtKind::Continue => {
                if let Some(&(cont, _)) = loops.last() {
                    self.edge(current, cont);
                }
                self.new_block()
            }
            StmtKind::If { cond, then_branch, else_branch } => {
                self.push(current, CfgInst::Branch(cond.clone()), s.span);
                let then_entry = self.new_block();
                self.edge(current, then_entry);
                let then_end = self.lower_stmts(then_branch, then_entry, loops);
                let join = self.new_block();
                match else_branch {
                    Some(els) => {
                        let else_entry = self.new_block();
                        self.edge(current, else_entry);
                        let else_end = self.lower_stmts(els, else_entry, loops);
                        self.edge(then_end, join);
                        self.edge(else_end, join);
                    }
                    None => {
                        self.edge(current, join);
                        self.edge(then_end, join);
                    }
                }
                join
            }
            StmtKind::While { cond, body } => {
                let header = self.new_block();
                self.edge(current, header);
                self.push(header, CfgInst::Branch(cond.clone()), s.span);
                let body_entry = self.new_block();
                let exit = self.new_block();
                self.edge(header, body_entry);
                self.edge(header, exit);
                loops.push((header, exit));
                let body_end = self.lower_stmts(body, body_entry, loops);
                loops.pop();
                self.edge(body_end, header);
                exit
            }
            StmtKind::For { init, cond, step, body } => {
                let mut cur = current;
                if let Some(i) = init {
                    cur = self.lower_stmt(i, cur, loops);
                }
                let header = self.new_block();
                self.edge(cur, header);
                let cond_expr = cond.clone().unwrap_or_else(|| Expr::int(1));
                self.push(header, CfgInst::Branch(cond_expr), s.span);
                let body_entry = self.new_block();
                let exit = self.new_block();
                let step_block = self.new_block();
                self.edge(header, body_entry);
                self.edge(header, exit);
                loops.push((step_block, exit));
                let body_end = self.lower_stmts(body, body_entry, loops);
                loops.pop();
                self.edge(body_end, step_block);
                if let Some(st) = step {
                    let after = self.lower_stmt(st, step_block, loops);
                    self.edge(after, header);
                } else {
                    self.edge(step_block, header);
                }
                exit
            }
        }
    }

    fn finish(mut self) -> Cfg {
        let exit = self.ensure_exit();
        self.prune_unreachable_edges();
        Cfg { blocks: self.blocks, entry: 0, exit }
    }

    /// Removes every edge that originates in a block unreachable from the
    /// entry. Lowering `return`/`break`/`continue` leaves behind fresh
    /// continuation blocks for any dead code that follows; those blocks edge
    /// into join points and would pollute forward analyses (a join over an
    /// unreachable predecessor is a join over garbage). After pruning,
    /// unreachable blocks are fully isolated: no successors, no predecessors,
    /// and no reachable block lists one of them as a predecessor.
    fn prune_unreachable_edges(&mut self) {
        let mut reachable = vec![false; self.blocks.len()];
        let mut stack = vec![0usize];
        while let Some(b) = stack.pop() {
            if reachable[b] {
                continue;
            }
            reachable[b] = true;
            stack.extend(self.blocks[b].succs.iter().copied());
        }
        for id in 0..self.blocks.len() {
            if !reachable[id] {
                self.blocks[id].succs.clear();
            }
            self.blocks[id].preds.retain(|&p| reachable[p]);
        }
    }
}

/// Rewrites `x += e` as `x = x + e` so downstream analyses see plain stores.
fn desugar_compound(target: &LValue, value: &Expr, op: Option<BinOp>, span: Span) -> Expr {
    match op {
        None => value.clone(),
        Some(op) => {
            let base = match target {
                LValue::Var(name) => Expr::new(ExprKind::Var(name.clone()), span),
                LValue::Deref(e) => {
                    Expr::new(ExprKind::Unary(UnOp::Deref, Box::new(e.clone())), span)
                }
                LValue::Index(b, i) => {
                    Expr::new(ExprKind::Index(Box::new(b.clone()), Box::new(i.clone())), span)
                }
            };
            Expr::new(ExprKind::Binary(op, Box::new(base), Box::new(value.clone())), span)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn cfg_of(src: &str) -> Cfg {
        let p = parse(src).unwrap();
        Cfg::build(&p.functions[0])
    }

    #[test]
    fn straight_line_is_two_blocks() {
        let c = cfg_of("void f() { int x = 1; int y = 2; }");
        // entry + exit
        assert_eq!(c.blocks[c.entry].insts.len(), 2);
        assert_eq!(c.blocks[c.entry].succs, vec![c.exit]);
        assert_eq!(c.cyclomatic_complexity(), 1);
    }

    #[test]
    fn if_produces_diamond() {
        let c = cfg_of("int f(int x) { int r = 0; if (x) { r = 1; } else { r = 2; } return r; }");
        assert_eq!(c.cyclomatic_complexity(), 2);
        // Entry ends with a branch and has two successors.
        let entry = &c.blocks[c.entry];
        assert!(matches!(entry.insts.last().unwrap().inst, CfgInst::Branch(_)));
        assert_eq!(entry.succs.len(), 2);
    }

    #[test]
    fn while_has_back_edge() {
        let c = cfg_of("void f(int n) { while (n > 0) { n -= 1; } }");
        let has_back_edge = c
            .blocks
            .iter()
            .enumerate()
            .any(|(id, b)| b.succs.iter().any(|&s| s <= id && !c.blocks[s].preds.is_empty()));
        assert!(has_back_edge);
        assert_eq!(c.cyclomatic_complexity(), 2);
    }

    #[test]
    fn for_desugars_compound_step() {
        let c = cfg_of("void f(int n) { for (int i = 0; i < n; i++) { work(i); } }");
        let mut found = false;
        for b in &c.blocks {
            for i in &b.insts {
                if let CfgInst::Assign { target: LValue::Var(v), value } = &i.inst {
                    if v == "i" {
                        if let ExprKind::Binary(BinOp::Add, _, _) = &value.kind {
                            found = true;
                        }
                    }
                }
            }
        }
        assert!(found, "i++ should desugar to i = i + 1");
    }

    #[test]
    fn return_edges_to_exit() {
        let c = cfg_of("int f(int x) { if (x) { return 1; } return 0; }");
        let exit_preds = &c.blocks[c.exit].preds;
        assert!(exit_preds.len() >= 2, "both returns should reach exit: {exit_preds:?}");
    }

    #[test]
    fn break_exits_loop() {
        let c = cfg_of("void f() { while (1) { if (stop()) { break; } tick(); } done(); }");
        // done() must be reachable from entry.
        let rpo = c.reverse_post_order();
        let reachable_insts: usize = rpo.iter().map(|&b| c.blocks[b].insts.len()).sum();
        let has_done = rpo.iter().any(|&b| {
            c.blocks[b].insts.iter().any(|i| match &i.inst {
                CfgInst::Expr(e) => e.called_fns().contains(&"done"),
                _ => false,
            })
        });
        assert!(has_done, "done() unreachable; {reachable_insts} insts reachable");
    }

    #[test]
    fn continue_targets_step_in_for() {
        let c = cfg_of(
            "void f(int n) { for (int i = 0; i < n; i++) { if (i == 3) { continue; } use(i); } }",
        );
        // The graph must still terminate and contain the step assignment
        // reachable from the continue edge.
        assert!(c.cyclomatic_complexity() >= 3);
        assert!(!c.reverse_post_order().is_empty());
    }

    #[test]
    fn dominators_entry_dominates_all_reachable() {
        let c = cfg_of("int f(int x) { if (x) { return 1; } return 0; }");
        let dom = c.dominators();
        for &b in &c.reverse_post_order() {
            assert!(dom[b].contains(&c.entry), "entry should dominate block {b}");
        }
    }

    #[test]
    fn rpo_starts_at_entry() {
        let c = cfg_of("void f(int n) { while (n) { n -= 1; } }");
        assert_eq!(c.reverse_post_order()[0], c.entry);
    }

    #[test]
    fn dead_code_after_early_return_does_not_feed_joins() {
        // `x = 2;` after the return lands in an unreachable continuation
        // block; before pruning, that block edged into the if-join and
        // polluted every forward analysis meeting there.
        let c = cfg_of("int f(int x) { if (x) { return 1; x = 2; } return x; }");
        let reachable = c.reachable();
        for (id, b) in c.blocks.iter().enumerate() {
            for &p in &b.preds {
                assert!(
                    reachable[p],
                    "block {id} lists unreachable predecessor {p}: {:?}",
                    b.preds
                );
            }
            if !reachable[id] {
                assert!(b.succs.is_empty(), "unreachable block {id} kept successors");
                assert!(b.preds.is_empty(), "unreachable block {id} kept predecessors");
            }
        }
        // The dead store still exists in the graph (for diagnostics), just
        // disconnected from the join.
        let dead_store = c
            .blocks
            .iter()
            .enumerate()
            .find(|(_, b)| {
                b.insts
                    .iter()
                    .any(|i| matches!(&i.inst, CfgInst::Assign { target: LValue::Var(v), .. } if v == "x"))
            })
            .map(|(id, _)| id)
            .expect("dead store lowered somewhere");
        assert!(!reachable[dead_store], "the post-return store must be unreachable");
    }

    #[test]
    fn dead_code_after_break_and_continue_is_isolated() {
        let c = cfg_of(
            "void f(int n) { while (n) { if (n == 1) { break; log_dead(); } n -= 1; } done(); }",
        );
        let reachable = c.reachable();
        for b in &c.blocks {
            for &p in &b.preds {
                assert!(reachable[p], "unreachable predecessor leaked into a join");
            }
        }
    }

    #[test]
    fn inst_expr_and_defined_var() {
        let c = cfg_of("void f(int a) { int x = a + 1; x = 2; *p = 3; }");
        let insts: Vec<_> = c.blocks.iter().flat_map(|b| b.insts.iter()).collect();
        assert_eq!(insts[0].inst.defined_var(), Some("x"));
        assert!(insts[0].inst.expr().is_some());
        assert_eq!(insts[1].inst.defined_var(), Some("x"));
        assert_eq!(insts[2].inst.defined_var(), None, "indirect store kills nothing");
    }
}
