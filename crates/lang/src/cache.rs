//! Content-addressed analysis cache.
//!
//! Industrial corpora are full of textually identical units — vendored
//! copies, generated code, and the deliberate duplicate slices of Gap
//! Observation 4 (experiment E08). Re-parsing and re-analyzing the same
//! bytes for every copy wastes most of a scan's CPU time. [`AnalysisCache`]
//! addresses results by a hash of the *normalized* source (line endings and
//! trailing whitespace stripped), so any stage — parsing, CFG construction,
//! dataflow, taint, rule scans — can memoize per unique content.
//!
//! Two tables are kept:
//!
//! * a parse table: content key → `Result<Arc<Program>, ParseError>`, and
//! * a generic analysis table: `(content key, analysis kind, config
//!   fingerprint)` → type-erased `Arc` result, for downstream passes whose
//!   output depends on both the source and the pass configuration.
//!
//! The cache is thread-safe (shared by the parallel workflow shards) and
//! deterministic: it never changes *what* is computed, only whether the
//! computation is repeated, so cached and uncached runs produce identical
//! results. A disabled cache (see [`AnalysisCache::disabled`]) computes
//! everything fresh, which benchmarks use as the baseline.

use crate::ast::Program;
use crate::error::ParseError;
use std::any::Any;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use vulnman_obs::{Counter, Gauge, Registry};

/// Hit/miss counters for one cache: a point-in-time view read from the
/// cache's observability counters (`cache.hits` / `cache.misses` in the
/// attached [`Registry`]), which are the single source of truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute.
    pub misses: u64,
}

impl CacheStats {
    /// Hits as a fraction of all lookups (0 when the cache is unused).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Key of one memoized downstream analysis.
type AnalysisKey = (u64, &'static str, u64);

/// A cache operation a fault hook can veto.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOp {
    /// A lookup. A vetoed get is served as a miss (the value is recomputed).
    Get,
    /// A store. A vetoed put is dropped (the value is returned but not
    /// retained).
    Put,
}

/// Decides whether a cache operation is dropped, keyed by the content hash.
///
/// Returning `true` vetoes the operation. Installed by the workflow
/// engine's fault-injection layer; because a dropped get degrades to a
/// recompute and a dropped put to a smaller cache, a hook can *never*
/// change analysis results — only how much work is repeated. The hook must
/// be a pure function of its arguments for runs to stay reproducible.
pub type CacheFaultHook = Arc<dyn Fn(CacheOp, u64) -> bool + Send + Sync>;

/// A thread-safe, content-addressed cache of parse and analysis results.
///
/// Accounting (hits, misses, evictions, resident source bytes) is reported
/// through [`vulnman_obs`] instruments — pass a shared [`Registry`] via
/// [`AnalysisCache::with_metrics`] to fold the cache's counters into a
/// pipeline-wide snapshot, or use [`AnalysisCache::new`] for a standalone
/// cache with its own private registry.
pub struct AnalysisCache {
    enabled: bool,
    parses: Mutex<HashMap<u64, Result<Arc<Program>, ParseError>>>,
    analyses: Mutex<HashMap<AnalysisKey, Arc<dyn Any + Send + Sync>>>,
    hits: Counter,
    misses: Counter,
    evictions: Counter,
    bytes: Gauge,
    fault_hook: Option<CacheFaultHook>,
}

impl Default for AnalysisCache {
    fn default() -> Self {
        AnalysisCache::new()
    }
}

impl std::fmt::Debug for AnalysisCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("AnalysisCache")
            .field("enabled", &self.enabled)
            .field("hits", &stats.hits)
            .field("misses", &stats.misses)
            .finish()
    }
}

impl AnalysisCache {
    /// Creates an empty, enabled cache with its own private metrics
    /// registry.
    pub fn new() -> Self {
        AnalysisCache::with_metrics(&Registry::new())
    }

    /// Creates an empty, enabled cache reporting through `metrics` under
    /// the `cache.*` instrument names (`cache.hits`, `cache.misses`,
    /// `cache.evictions` counters and the `cache.bytes` gauge of resident
    /// cached source bytes).
    pub fn with_metrics(metrics: &Registry) -> Self {
        AnalysisCache {
            enabled: true,
            parses: Mutex::new(HashMap::new()),
            analyses: Mutex::new(HashMap::new()),
            hits: metrics.counter("cache.hits"),
            misses: metrics.counter("cache.misses"),
            evictions: metrics.counter("cache.evictions"),
            bytes: metrics.gauge("cache.bytes"),
            fault_hook: None,
        }
    }

    /// Installs a fault hook consulted before every storage access (see
    /// [`CacheFaultHook`]). Vetoed gets are misses, vetoed puts are dropped;
    /// results are unchanged either way.
    pub fn set_fault_hook(&mut self, hook: CacheFaultHook) {
        self.fault_hook = Some(hook);
    }

    /// Whether the hook vetoes `op` for `key`.
    fn faulted(&self, op: CacheOp, key: u64) -> bool {
        self.fault_hook.as_ref().is_some_and(|h| h(op, key))
    }

    /// Creates a pass-through cache: every lookup computes fresh and nothing
    /// is stored. Used as the baseline in benchmarks and when a run must not
    /// retain source-derived state.
    pub fn disabled() -> Self {
        AnalysisCache::disabled_with_metrics(&Registry::new())
    }

    /// A pass-through cache reporting its (all-miss) lookup volume through
    /// `metrics`, so baselines can still export comparable counters.
    pub fn disabled_with_metrics(metrics: &Registry) -> Self {
        AnalysisCache { enabled: false, ..AnalysisCache::with_metrics(metrics) }
    }

    /// Whether lookups are served from storage.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Current hit/miss counters (counted even when disabled, so baselines
    /// can report their would-be lookup volume). Reads the `cache.*`
    /// counters of the attached registry — there is no second set of
    /// bookkeeping.
    pub fn stats(&self) -> CacheStats {
        CacheStats { hits: self.hits.get(), misses: self.misses.get() }
    }

    /// Drops all stored results and resets the hit/miss counters (a
    /// lifecycle boundary, e.g. between benchmark runs). Dropped entries
    /// are recorded on the `cache.evictions` counter and the resident-byte
    /// gauge returns to zero.
    pub fn clear(&self) {
        let mut parses = self.parses.lock().unwrap_or_else(|e| e.into_inner());
        let mut analyses = self.analyses.lock().unwrap_or_else(|e| e.into_inner());
        self.evictions.add((parses.len() + analyses.len()) as u64);
        parses.clear();
        analyses.clear();
        drop(parses);
        drop(analyses);
        self.bytes.set(0);
        self.hits.reset();
        self.misses.reset();
    }

    /// The content address of `source`: a 64-bit hash of the normalized
    /// text. Two sources that differ only in line endings or trailing
    /// whitespace share a key.
    pub fn content_key(source: &str) -> u64 {
        // FNV-1a over normalized bytes. `\r` is dropped, and whitespace
        // runs (including newlines) are buffered until the next
        // non-whitespace byte — so trailing whitespace on each line and
        // trailing blank lines at EOF never reach the hash.
        const OFFSET: u64 = 0xcbf29ce484222325;
        const PRIME: u64 = 0x100000001b3;
        let mut h = OFFSET;
        let mut eat = |b: u8| {
            h = (h ^ b as u64).wrapping_mul(PRIME);
        };
        let mut pending_ws = 0usize;
        let mut pending_nl = 0usize;
        for &b in source.as_bytes() {
            match b {
                b'\r' => {}
                b'\n' => {
                    pending_ws = 0;
                    pending_nl += 1;
                }
                b' ' | b'\t' => pending_ws += 1,
                other => {
                    for _ in 0..pending_nl {
                        eat(b'\n');
                    }
                    pending_nl = 0;
                    for _ in 0..pending_ws {
                        eat(b' ');
                    }
                    pending_ws = 0;
                    eat(other);
                }
            }
        }
        h
    }

    /// Parses `source`, reusing the stored result when the same content has
    /// been parsed before. Errors are cached too: malformed duplicates fail
    /// fast without re-lexing.
    pub fn parse(&self, source: &str) -> Result<Arc<Program>, ParseError> {
        if !self.enabled {
            self.misses.inc();
            return crate::parser::parse(source).map(Arc::new);
        }
        self.parse_keyed(Self::content_key(source), source)
    }

    /// [`parse`](Self::parse) with a precomputed [`content_key`]
    /// (Self::content_key). Callers touching several tables for the same
    /// source hash it once and reuse the key.
    pub fn parse_keyed(&self, key: u64, source: &str) -> Result<Arc<Program>, ParseError> {
        if !self.enabled {
            self.misses.inc();
            return crate::parser::parse(source).map(Arc::new);
        }
        if self.faulted(CacheOp::Get, key) {
            // Injected lookup fault: degrade to a recompute (and skip the
            // store — a faulted read path should not mutate storage).
            self.misses.inc();
            return crate::parser::parse(source).map(Arc::new);
        }
        if let Some(cached) = self.parses.lock().unwrap_or_else(|e| e.into_inner()).get(&key) {
            self.hits.inc();
            return cached.clone();
        }
        // Compute outside the lock; a concurrent shard may duplicate the
        // parse of a brand-new key, but both produce identical values.
        self.misses.inc();
        let result = crate::parser::parse(source).map(Arc::new);
        if self.faulted(CacheOp::Put, key) {
            return result;
        }
        let prev =
            self.parses.lock().unwrap_or_else(|e| e.into_inner()).insert(key, result.clone());
        if prev.is_none() {
            self.bytes.add(source.len() as i64);
        }
        result
    }

    /// Memoizes one named downstream analysis of `source`.
    ///
    /// `kind` names the pass ("findings", "surface", "taint", …) and
    /// `config_key` fingerprints its configuration, so the same source can
    /// carry several memoized passes — and the same pass under different
    /// configurations — without collision. `compute` runs on a miss.
    pub fn analysis<T, F>(
        &self,
        source: &str,
        kind: &'static str,
        config_key: u64,
        compute: F,
    ) -> Arc<T>
    where
        T: Send + Sync + 'static,
        F: FnOnce() -> T,
    {
        if !self.enabled {
            self.misses.inc();
            return Arc::new(compute());
        }
        self.analysis_keyed(Self::content_key(source), kind, config_key, compute)
    }

    /// [`analysis`](Self::analysis) with a precomputed content key, so the
    /// per-sample hot path hashes each source exactly once across all of its
    /// memoized passes.
    pub fn analysis_keyed<T, F>(
        &self,
        content_key: u64,
        kind: &'static str,
        config_key: u64,
        compute: F,
    ) -> Arc<T>
    where
        T: Send + Sync + 'static,
        F: FnOnce() -> T,
    {
        if !self.enabled {
            self.misses.inc();
            return Arc::new(compute());
        }
        let key = (content_key, kind, config_key);
        if self.faulted(CacheOp::Get, key.0) {
            self.misses.inc();
            return Arc::new(compute());
        }
        if let Some(cached) = self.analyses.lock().unwrap_or_else(|e| e.into_inner()).get(&key) {
            if let Ok(typed) = Arc::downcast::<T>(Arc::clone(cached)) {
                self.hits.inc();
                return typed;
            }
        }
        self.misses.inc();
        let value = Arc::new(compute());
        if self.faulted(CacheOp::Put, key.0) {
            return value;
        }
        self.analyses
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(key, Arc::clone(&value) as Arc<dyn Any + Send + Sync>);
        value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "int f(int a) { return a + 1; }";

    #[test]
    fn parse_is_cached_by_content() {
        let cache = AnalysisCache::new();
        let a = cache.parse(SRC).unwrap();
        let b = cache.parse(SRC).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second parse must be the cached Arc");
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
    }

    #[test]
    fn normalization_ignores_line_endings_and_trailing_ws() {
        let unix = "int f() {\n  return 0;\n}";
        let dos = "int f() {  \r\n  return 0;\t\r\n}";
        assert_eq!(AnalysisCache::content_key(unix), AnalysisCache::content_key(dos));
        // Leading indentation is significant only in run length, not CRs.
        assert_ne!(
            AnalysisCache::content_key("int f() { return 0; }"),
            AnalysisCache::content_key("int g() { return 0; }")
        );
    }

    #[test]
    fn parse_errors_are_cached() {
        let cache = AnalysisCache::new();
        let e1 = cache.parse("int f( {").unwrap_err();
        let e2 = cache.parse("int f( {").unwrap_err();
        assert_eq!(e1, e2);
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn analyses_are_keyed_by_kind_and_config() {
        let cache = AnalysisCache::new();
        let a = cache.analysis(SRC, "len", 0, || SRC.len());
        let b = cache.analysis(SRC, "len", 0, || unreachable!("must hit"));
        assert!(Arc::ptr_eq(&a, &b));
        // Different config fingerprint recomputes.
        let c = cache.analysis(SRC, "len", 1, || 999usize);
        assert_eq!(*c, 999);
        // Different kind with a different type is fine.
        let d = cache.analysis(SRC, "name", 0, || "f".to_string());
        assert_eq!(*d, "f");
    }

    #[test]
    fn disabled_cache_always_computes() {
        let cache = AnalysisCache::disabled();
        let a = cache.parse(SRC).unwrap();
        let b = cache.parse(SRC).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats().hits, 0);
        assert_eq!(cache.stats().misses, 2);
        let n = cache.analysis(SRC, "len", 0, || 1u32);
        let m = cache.analysis(SRC, "len", 0, || 2u32);
        assert_eq!((*n, *m), (1, 2));
    }

    #[test]
    fn clear_resets_storage_and_counters() {
        let cache = AnalysisCache::new();
        cache.parse(SRC).unwrap();
        cache.parse(SRC).unwrap();
        cache.clear();
        assert_eq!(cache.stats(), CacheStats::default());
        cache.parse(SRC).unwrap();
        assert_eq!(cache.stats(), CacheStats { hits: 0, misses: 1 });
    }

    #[test]
    fn cache_is_shareable_across_threads() {
        let cache = AnalysisCache::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..16 {
                        cache.parse(SRC).unwrap();
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 64);
        assert!(stats.hits >= 60, "most lookups hit: {stats:?}");
    }

    #[test]
    fn hit_rate_is_sane() {
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
        assert_eq!(CacheStats { hits: 3, misses: 1 }.hit_rate(), 0.75);
    }

    #[test]
    fn shared_registry_is_the_source_of_truth() {
        let metrics = Registry::new();
        let cache = AnalysisCache::with_metrics(&metrics);
        cache.parse(SRC).unwrap();
        cache.parse(SRC).unwrap();
        // The registry's counters and stats() agree — same atomics.
        assert_eq!(metrics.counter("cache.hits").get(), 1);
        assert_eq!(metrics.counter("cache.misses").get(), 1);
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
        // Resident bytes track stored parse sources; clear evicts and zeroes.
        assert_eq!(metrics.gauge("cache.bytes").get(), SRC.len() as i64);
        cache.clear();
        assert_eq!(metrics.counter("cache.evictions").get(), 1);
        assert_eq!(metrics.gauge("cache.bytes").get(), 0);
    }

    #[test]
    fn noop_registry_cache_still_caches_but_reports_nothing() {
        let cache = AnalysisCache::with_metrics(&Registry::noop());
        let a = cache.parse(SRC).unwrap();
        let b = cache.parse(SRC).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "storage works regardless of recording");
        assert_eq!(cache.stats(), CacheStats::default());
    }

    #[test]
    fn get_fault_degrades_to_recompute_with_identical_value() {
        let baseline = AnalysisCache::new();
        let expected = baseline.parse(SRC).unwrap();

        let mut cache = AnalysisCache::new();
        cache.set_fault_hook(Arc::new(|op, _key| op == CacheOp::Get));
        let a = cache.parse(SRC).unwrap();
        let b = cache.parse(SRC).unwrap();
        // Every lookup is dropped, so both calls recompute fresh values …
        assert!(!Arc::ptr_eq(&a, &b), "faulted gets must never hit");
        assert_eq!(cache.stats(), CacheStats { hits: 0, misses: 2 });
        // … but the values are byte-identical to the fault-free parse.
        assert_eq!(format!("{a:?}"), format!("{expected:?}"));
    }

    #[test]
    fn put_fault_never_stores_but_results_are_correct() {
        let metrics = Registry::new();
        let mut cache = AnalysisCache::with_metrics(&metrics);
        cache.set_fault_hook(Arc::new(|op, _key| op == CacheOp::Put));
        cache.parse(SRC).unwrap();
        cache.parse(SRC).unwrap();
        // Stores are dropped, so the second lookup still misses and nothing
        // is resident.
        assert_eq!(cache.stats(), CacheStats { hits: 0, misses: 2 });
        assert_eq!(metrics.gauge("cache.bytes").get(), 0);
    }

    #[test]
    fn analysis_faults_degrade_without_changing_values() {
        let mut cache = AnalysisCache::new();
        cache.set_fault_hook(Arc::new(|op, _key| op == CacheOp::Get));
        let a = cache.analysis(SRC, "taint", 0, || 41_u32 + 1);
        let b = cache.analysis(SRC, "taint", 0, || 41_u32 + 1);
        assert_eq!(*a, 42);
        assert_eq!(*b, 42);
        assert!(!Arc::ptr_eq(&a, &b), "faulted analysis gets recompute");
    }
}
