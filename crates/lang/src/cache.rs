//! Content-addressed analysis cache.
//!
//! Industrial corpora are full of textually identical units — vendored
//! copies, generated code, and the deliberate duplicate slices of Gap
//! Observation 4 (experiment E08). Re-parsing and re-analyzing the same
//! bytes for every copy wastes most of a scan's CPU time. [`AnalysisCache`]
//! addresses results by a hash of the *normalized* source (line endings and
//! trailing whitespace stripped), so any stage — parsing, CFG construction,
//! dataflow, taint, rule scans — can memoize per unique content.
//!
//! Two tables are kept:
//!
//! * a parse table: content key → `Result<Arc<Program>, ParseError>`, and
//! * a generic analysis table: `(content key, analysis kind, config
//!   fingerprint)` → type-erased `Arc` result, for downstream passes whose
//!   output depends on both the source and the pass configuration.
//!
//! The cache is thread-safe (shared by the parallel workflow shards) and
//! deterministic: it never changes *what* is computed, only whether the
//! computation is repeated, so cached and uncached runs produce identical
//! results. A disabled cache (see [`AnalysisCache::disabled`]) computes
//! everything fresh, which benchmarks use as the baseline.

use crate::ast::Program;
use crate::error::ParseError;
use std::any::Any;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use vulnman_obs::{Counter, Gauge, Registry};

/// Hit/miss counters for one cache: a point-in-time view read from the
/// cache's observability counters (`cache.hits` / `cache.misses` in the
/// attached [`Registry`]), which are the single source of truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute.
    pub misses: u64,
}

impl CacheStats {
    /// Hits as a fraction of all lookups (0 when the cache is unused).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Key of one memoized downstream analysis.
type AnalysisKey = (u64, &'static str, u64);

/// One stage of the incremental per-function pipeline
/// (lex → parse → CFG → absint summary → detector findings).
///
/// Each stage gets its own key space and its own hit/miss counters
/// (`incr.<stage>.hits` / `incr.<stage>.misses`), so the incremental driver
/// can prove per-stage minimality: an unchanged input hash must hit, a
/// changed one must miss, and hits + misses must equal lookups. Lex and
/// parse results are keyed per sample (whole-unit content key); CFG results
/// per function; summaries and findings per call-graph component (see
/// `crate::incremental`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Stage {
    /// Token-level validation of one source unit.
    Lex,
    /// Parsing one source unit into a [`Program`].
    Parse,
    /// Control-flow-graph construction for one function.
    Cfg,
    /// Interprocedural abstract-interpretation summaries for one
    /// call-graph component.
    Summary,
    /// Semantic-checker findings for one call-graph component.
    Findings,
}

impl Stage {
    /// Every stage, in pipeline order.
    pub const ALL: [Stage; 5] =
        [Stage::Lex, Stage::Parse, Stage::Cfg, Stage::Summary, Stage::Findings];

    /// Stable lowercase name (used for metric keys).
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::Lex => "lex",
            Stage::Parse => "parse",
            Stage::Cfg => "cfg",
            Stage::Summary => "summary",
            Stage::Findings => "findings",
        }
    }

    /// Index into the per-stage counter arrays.
    fn idx(self) -> usize {
        match self {
            Stage::Lex => 0,
            Stage::Parse => 1,
            Stage::Cfg => 2,
            Stage::Summary => 3,
            Stage::Findings => 4,
        }
    }
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A cache operation a fault hook can veto.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOp {
    /// A lookup. A vetoed get is served as a miss (the value is recomputed).
    Get,
    /// A store. A vetoed put is dropped (the value is returned but not
    /// retained).
    Put,
}

/// Decides whether a cache operation is dropped, keyed by the content hash.
///
/// Returning `true` vetoes the operation. Installed by the workflow
/// engine's fault-injection layer; because a dropped get degrades to a
/// recompute and a dropped put to a smaller cache, a hook can *never*
/// change analysis results — only how much work is repeated. The hook must
/// be a pure function of its arguments for runs to stay reproducible.
pub type CacheFaultHook = Arc<dyn Fn(CacheOp, u64) -> bool + Send + Sync>;

/// How many stage-table entries one cached unit is budgeted relative to its
/// single parse entry (see [`AnalysisCache::with_entry_limit`]): each pass
/// over a unit deposits a CFG artifact per function and a summary plus a
/// findings artifact per call-graph component, so the stage table fills an
/// order of magnitude faster than the parse table while holding artifacts
/// an order of magnitude smaller. Scaling its bound by this factor keeps
/// both tables flushing at comparable *memory* pressure rather than
/// comparable entry counts.
pub const STAGE_TABLE_FANOUT: usize = 16;

/// A thread-safe, content-addressed cache of parse and analysis results.
///
/// Accounting (hits, misses, evictions, resident source bytes) is reported
/// through [`vulnman_obs`] instruments — pass a shared [`Registry`] via
/// [`AnalysisCache::with_metrics`] to fold the cache's counters into a
/// pipeline-wide snapshot, or use [`AnalysisCache::new`] for a standalone
/// cache with its own private registry.
pub struct AnalysisCache {
    enabled: bool,
    entry_limit: Option<usize>,
    parses: Mutex<HashMap<u64, Result<Arc<Program>, ParseError>>>,
    analyses: Mutex<HashMap<AnalysisKey, Arc<dyn Any + Send + Sync>>>,
    stages: Mutex<HashMap<(Stage, u64), Arc<dyn Any + Send + Sync>>>,
    hits: Counter,
    misses: Counter,
    evictions: Counter,
    bytes: Gauge,
    stage_hits: [Counter; 5],
    stage_misses: [Counter; 5],
    fault_hook: Option<CacheFaultHook>,
}

impl Default for AnalysisCache {
    fn default() -> Self {
        AnalysisCache::new()
    }
}

impl std::fmt::Debug for AnalysisCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("AnalysisCache")
            .field("enabled", &self.enabled)
            .field("hits", &stats.hits)
            .field("misses", &stats.misses)
            .finish()
    }
}

impl AnalysisCache {
    /// Creates an empty, enabled cache with its own private metrics
    /// registry.
    pub fn new() -> Self {
        AnalysisCache::with_metrics(&Registry::new())
    }

    /// Creates an empty, enabled cache reporting through `metrics` under
    /// the `cache.*` instrument names (`cache.hits`, `cache.misses`,
    /// `cache.evictions` counters and the `cache.bytes` gauge of resident
    /// cached source bytes).
    pub fn with_metrics(metrics: &Registry) -> Self {
        // Per-stage counters are pre-registered (`incr.<stage>.hits` /
        // `incr.<stage>.misses`) so exported snapshots carry the full
        // incremental schema even for stages that never fire.
        let stage_hits = Stage::ALL.map(|s| metrics.counter(&format!("incr.{}.hits", s.as_str())));
        let stage_misses =
            Stage::ALL.map(|s| metrics.counter(&format!("incr.{}.misses", s.as_str())));
        AnalysisCache {
            enabled: true,
            entry_limit: None,
            parses: Mutex::new(HashMap::new()),
            analyses: Mutex::new(HashMap::new()),
            stages: Mutex::new(HashMap::new()),
            hits: metrics.counter("cache.hits"),
            misses: metrics.counter("cache.misses"),
            evictions: metrics.counter("cache.evictions"),
            bytes: metrics.gauge("cache.bytes"),
            stage_hits,
            stage_misses,
            fault_hook: None,
        }
    }

    /// Bounds the cache to roughly `limit` *units*: the parse and analysis
    /// tables are capped at `limit` entries each, the per-function stage
    /// table at `limit ×` [`STAGE_TABLE_FANOUT`] (one unit contributes a
    /// single parse entry but an entry per function CFG and per
    /// pass × component summary/findings, and those artifacts are small —
    /// the parsed ASTs are what dominate resident memory). When an insert
    /// would push a table past its bound, the whole table is flushed first
    /// — *epoch eviction*. Dropping a generation at once is O(1) amortized,
    /// needs no per-entry recency bookkeeping on the hot lookup path, and
    /// re-fills with exactly the live working set within one request per
    /// unit. Long-running services need the bound: an unbounded table
    /// retains every historical version of every resubmitted unit, and the
    /// resulting heap growth taxes every allocation the analysis makes.
    /// Flushed entries are recorded on the `cache.evictions` counter.
    /// Eviction never changes results — only whether a computation is
    /// repeated.
    pub fn with_entry_limit(mut self, limit: usize) -> Self {
        self.entry_limit = Some(limit.max(1));
        self
    }

    /// Flushes `table` if inserting one more entry would exceed `bound`
    /// (no-op when the cache is unbounded).
    fn make_room<K, V>(
        &self,
        table: &mut HashMap<K, V>,
        bound: Option<usize>,
        holds_sources: bool,
    ) {
        let Some(bound) = bound else { return };
        if table.len() >= bound {
            self.evictions.add(table.len() as u64);
            table.clear();
            if holds_sources {
                self.bytes.set(0);
            }
        }
    }

    /// The stage table's entry bound relative to the configured unit limit.
    fn stage_bound(&self) -> Option<usize> {
        self.entry_limit.map(|l| l.saturating_mul(STAGE_TABLE_FANOUT))
    }

    /// Installs a fault hook consulted before every storage access (see
    /// [`CacheFaultHook`]). Vetoed gets are misses, vetoed puts are dropped;
    /// results are unchanged either way.
    pub fn set_fault_hook(&mut self, hook: CacheFaultHook) {
        self.fault_hook = Some(hook);
    }

    /// Whether the hook vetoes `op` for `key`.
    fn faulted(&self, op: CacheOp, key: u64) -> bool {
        self.fault_hook.as_ref().is_some_and(|h| h(op, key))
    }

    /// Creates a pass-through cache: every lookup computes fresh and nothing
    /// is stored. Used as the baseline in benchmarks and when a run must not
    /// retain source-derived state.
    pub fn disabled() -> Self {
        AnalysisCache::disabled_with_metrics(&Registry::new())
    }

    /// A pass-through cache reporting its (all-miss) lookup volume through
    /// `metrics`, so baselines can still export comparable counters.
    pub fn disabled_with_metrics(metrics: &Registry) -> Self {
        AnalysisCache { enabled: false, ..AnalysisCache::with_metrics(metrics) }
    }

    /// Whether lookups are served from storage.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Current hit/miss counters (counted even when disabled, so baselines
    /// can report their would-be lookup volume). Reads the `cache.*`
    /// counters of the attached registry — there is no second set of
    /// bookkeeping.
    pub fn stats(&self) -> CacheStats {
        CacheStats { hits: self.hits.get(), misses: self.misses.get() }
    }

    /// Drops all stored results and resets the hit/miss counters (a
    /// lifecycle boundary, e.g. between benchmark runs). Dropped entries
    /// are recorded on the `cache.evictions` counter and the resident-byte
    /// gauge returns to zero.
    pub fn clear(&self) {
        let mut parses = self.parses.lock().unwrap_or_else(|e| e.into_inner());
        let mut analyses = self.analyses.lock().unwrap_or_else(|e| e.into_inner());
        let mut stages = self.stages.lock().unwrap_or_else(|e| e.into_inner());
        self.evictions.add((parses.len() + analyses.len() + stages.len()) as u64);
        parses.clear();
        analyses.clear();
        stages.clear();
        drop(parses);
        drop(analyses);
        drop(stages);
        self.bytes.set(0);
        self.hits.reset();
        self.misses.reset();
        for s in Stage::ALL {
            self.stage_hits[s.idx()].reset();
            self.stage_misses[s.idx()].reset();
        }
    }

    /// The content address of `source`: a 64-bit hash of the normalized
    /// text. Two sources that differ only in line endings or trailing
    /// whitespace share a key.
    pub fn content_key(source: &str) -> u64 {
        // FNV-1a over normalized bytes. `\r` is dropped, and whitespace
        // runs (including newlines) are buffered until the next
        // non-whitespace byte — so trailing whitespace on each line and
        // trailing blank lines at EOF never reach the hash.
        const OFFSET: u64 = 0xcbf29ce484222325;
        const PRIME: u64 = 0x100000001b3;
        let mut h = OFFSET;
        let mut eat = |b: u8| {
            h = (h ^ b as u64).wrapping_mul(PRIME);
        };
        let mut pending_ws = 0usize;
        let mut pending_nl = 0usize;
        for &b in source.as_bytes() {
            match b {
                b'\r' => {}
                b'\n' => {
                    pending_ws = 0;
                    pending_nl += 1;
                }
                b' ' | b'\t' => pending_ws += 1,
                other => {
                    for _ in 0..pending_nl {
                        eat(b'\n');
                    }
                    pending_nl = 0;
                    for _ in 0..pending_ws {
                        eat(b' ');
                    }
                    pending_ws = 0;
                    eat(other);
                }
            }
        }
        h
    }

    /// Parses `source`, reusing the stored result when the same content has
    /// been parsed before. Errors are cached too: malformed duplicates fail
    /// fast without re-lexing.
    pub fn parse(&self, source: &str) -> Result<Arc<Program>, ParseError> {
        if !self.enabled {
            self.misses.inc();
            return crate::parser::parse(source).map(Arc::new);
        }
        self.parse_keyed(Self::content_key(source), source)
    }

    /// [`parse`](Self::parse) with a precomputed [`content_key`]
    /// (Self::content_key). Callers touching several tables for the same
    /// source hash it once and reuse the key.
    pub fn parse_keyed(&self, key: u64, source: &str) -> Result<Arc<Program>, ParseError> {
        if !self.enabled {
            self.misses.inc();
            return crate::parser::parse(source).map(Arc::new);
        }
        if self.faulted(CacheOp::Get, key) {
            // Injected lookup fault: degrade to a recompute (and skip the
            // store — a faulted read path should not mutate storage).
            self.misses.inc();
            return crate::parser::parse(source).map(Arc::new);
        }
        if let Some(cached) = self.parses.lock().unwrap_or_else(|e| e.into_inner()).get(&key) {
            self.hits.inc();
            return cached.clone();
        }
        // Compute outside the lock; a concurrent shard may duplicate the
        // parse of a brand-new key, but both produce identical values.
        self.misses.inc();
        let result = crate::parser::parse(source).map(Arc::new);
        if self.faulted(CacheOp::Put, key) {
            return result;
        }
        let mut parses = self.parses.lock().unwrap_or_else(|e| e.into_inner());
        self.make_room(&mut parses, self.entry_limit, true);
        let prev = parses.insert(key, result.clone());
        drop(parses);
        if prev.is_none() {
            self.bytes.add(source.len() as i64);
        }
        result
    }

    /// Memoizes one named downstream analysis of `source`.
    ///
    /// `kind` names the pass ("findings", "surface", "taint", …) and
    /// `config_key` fingerprints its configuration, so the same source can
    /// carry several memoized passes — and the same pass under different
    /// configurations — without collision. `compute` runs on a miss.
    pub fn analysis<T, F>(
        &self,
        source: &str,
        kind: &'static str,
        config_key: u64,
        compute: F,
    ) -> Arc<T>
    where
        T: Send + Sync + 'static,
        F: FnOnce() -> T,
    {
        if !self.enabled {
            self.misses.inc();
            return Arc::new(compute());
        }
        self.analysis_keyed(Self::content_key(source), kind, config_key, compute)
    }

    /// [`analysis`](Self::analysis) with a precomputed content key, so the
    /// per-sample hot path hashes each source exactly once across all of its
    /// memoized passes.
    pub fn analysis_keyed<T, F>(
        &self,
        content_key: u64,
        kind: &'static str,
        config_key: u64,
        compute: F,
    ) -> Arc<T>
    where
        T: Send + Sync + 'static,
        F: FnOnce() -> T,
    {
        if !self.enabled {
            self.misses.inc();
            return Arc::new(compute());
        }
        let key = (content_key, kind, config_key);
        if self.faulted(CacheOp::Get, key.0) {
            self.misses.inc();
            return Arc::new(compute());
        }
        if let Some(cached) = self.analyses.lock().unwrap_or_else(|e| e.into_inner()).get(&key) {
            if let Ok(typed) = Arc::downcast::<T>(Arc::clone(cached)) {
                self.hits.inc();
                return typed;
            }
        }
        self.misses.inc();
        let value = Arc::new(compute());
        if self.faulted(CacheOp::Put, key.0) {
            return value;
        }
        let mut analyses = self.analyses.lock().unwrap_or_else(|e| e.into_inner());
        self.make_room(&mut analyses, self.entry_limit, false);
        analyses.insert(key, Arc::clone(&value) as Arc<dyn Any + Send + Sync>);
        value
    }

    /// Current hit/miss counters of one incremental stage (reads the
    /// `incr.<stage>.*` counters of the attached registry — like
    /// [`stats`](Self::stats), there is no second set of bookkeeping).
    pub fn stage_stats(&self, stage: Stage) -> CacheStats {
        CacheStats {
            hits: self.stage_hits[stage.idx()].get(),
            misses: self.stage_misses[stage.idx()].get(),
        }
    }

    /// Looks up one stage entry without computing on a miss. Every call
    /// counts exactly one hit or one miss on the stage's counters, so
    /// `hits + misses == lookups` holds per stage. A vetoed get (see
    /// [`CacheFaultHook`]) or a type mismatch is served as a miss.
    pub fn stage_get<T>(&self, stage: Stage, key: u64) -> Option<Arc<T>>
    where
        T: Send + Sync + 'static,
    {
        if !self.enabled || self.faulted(CacheOp::Get, key) {
            self.stage_misses[stage.idx()].inc();
            return None;
        }
        let cached = self
            .stages
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&(stage, key))
            .map(Arc::clone);
        match cached.and_then(|c| Arc::downcast::<T>(c).ok()) {
            Some(typed) => {
                self.stage_hits[stage.idx()].inc();
                Some(typed)
            }
            None => {
                self.stage_misses[stage.idx()].inc();
                None
            }
        }
    }

    /// Stores one stage entry. Counts nothing (only lookups are counted);
    /// a vetoed put is dropped, a disabled cache stores nothing.
    pub fn stage_put<T>(&self, stage: Stage, key: u64, value: Arc<T>)
    where
        T: Send + Sync + 'static,
    {
        if !self.enabled || self.faulted(CacheOp::Put, key) {
            return;
        }
        let mut stages = self.stages.lock().unwrap_or_else(|e| e.into_inner());
        self.make_room(&mut stages, self.stage_bound(), false);
        stages.insert((stage, key), value as Arc<dyn Any + Send + Sync>);
    }

    /// Memoizes one stage computation: [`stage_get`](Self::stage_get), and
    /// on a miss `compute` runs and the result is
    /// [`stage_put`](Self::stage_put) back.
    pub fn stage<T, F>(&self, stage: Stage, key: u64, compute: F) -> Arc<T>
    where
        T: Send + Sync + 'static,
        F: FnOnce() -> T,
    {
        if let Some(cached) = self.stage_get::<T>(stage, key) {
            return cached;
        }
        let value = Arc::new(compute());
        self.stage_put(stage, key, Arc::clone(&value));
        value
    }

    /// [`parse_keyed`](Self::parse_keyed) accounted on the incremental
    /// [`Stage::Parse`] counters instead of the whole-cache `cache.*`
    /// counters. Storage is shared with `parse_keyed`: a unit parsed by the
    /// batch workflow is a warm hit for the serving path and vice versa.
    pub fn parse_stage(&self, key: u64, source: &str) -> Result<Arc<Program>, ParseError> {
        if !self.enabled || self.faulted(CacheOp::Get, key) {
            self.stage_misses[Stage::Parse.idx()].inc();
            return crate::parser::parse(source).map(Arc::new);
        }
        if let Some(cached) = self.parses.lock().unwrap_or_else(|e| e.into_inner()).get(&key) {
            self.stage_hits[Stage::Parse.idx()].inc();
            return cached.clone();
        }
        self.stage_misses[Stage::Parse.idx()].inc();
        let result = crate::parser::parse(source).map(Arc::new);
        if self.faulted(CacheOp::Put, key) {
            return result;
        }
        let mut parses = self.parses.lock().unwrap_or_else(|e| e.into_inner());
        self.make_room(&mut parses, self.entry_limit, true);
        let prev = parses.insert(key, result.clone());
        drop(parses);
        if prev.is_none() {
            self.bytes.add(source.len() as i64);
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "int f(int a) { return a + 1; }";

    #[test]
    fn parse_is_cached_by_content() {
        let cache = AnalysisCache::new();
        let a = cache.parse(SRC).unwrap();
        let b = cache.parse(SRC).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second parse must be the cached Arc");
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
    }

    #[test]
    fn normalization_ignores_line_endings_and_trailing_ws() {
        let unix = "int f() {\n  return 0;\n}";
        let dos = "int f() {  \r\n  return 0;\t\r\n}";
        assert_eq!(AnalysisCache::content_key(unix), AnalysisCache::content_key(dos));
        // Leading indentation is significant only in run length, not CRs.
        assert_ne!(
            AnalysisCache::content_key("int f() { return 0; }"),
            AnalysisCache::content_key("int g() { return 0; }")
        );
    }

    #[test]
    fn parse_errors_are_cached() {
        let cache = AnalysisCache::new();
        let e1 = cache.parse("int f( {").unwrap_err();
        let e2 = cache.parse("int f( {").unwrap_err();
        assert_eq!(e1, e2);
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn analyses_are_keyed_by_kind_and_config() {
        let cache = AnalysisCache::new();
        let a = cache.analysis(SRC, "len", 0, || SRC.len());
        let b = cache.analysis(SRC, "len", 0, || unreachable!("must hit"));
        assert!(Arc::ptr_eq(&a, &b));
        // Different config fingerprint recomputes.
        let c = cache.analysis(SRC, "len", 1, || 999usize);
        assert_eq!(*c, 999);
        // Different kind with a different type is fine.
        let d = cache.analysis(SRC, "name", 0, || "f".to_string());
        assert_eq!(*d, "f");
    }

    #[test]
    fn disabled_cache_always_computes() {
        let cache = AnalysisCache::disabled();
        let a = cache.parse(SRC).unwrap();
        let b = cache.parse(SRC).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats().hits, 0);
        assert_eq!(cache.stats().misses, 2);
        let n = cache.analysis(SRC, "len", 0, || 1u32);
        let m = cache.analysis(SRC, "len", 0, || 2u32);
        assert_eq!((*n, *m), (1, 2));
    }

    #[test]
    fn clear_resets_storage_and_counters() {
        let cache = AnalysisCache::new();
        cache.parse(SRC).unwrap();
        cache.parse(SRC).unwrap();
        cache.clear();
        assert_eq!(cache.stats(), CacheStats::default());
        cache.parse(SRC).unwrap();
        assert_eq!(cache.stats(), CacheStats { hits: 0, misses: 1 });
    }

    #[test]
    fn cache_is_shareable_across_threads() {
        let cache = AnalysisCache::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..16 {
                        cache.parse(SRC).unwrap();
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 64);
        assert!(stats.hits >= 60, "most lookups hit: {stats:?}");
    }

    #[test]
    fn hit_rate_is_sane() {
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
        assert_eq!(CacheStats { hits: 3, misses: 1 }.hit_rate(), 0.75);
    }

    #[test]
    fn shared_registry_is_the_source_of_truth() {
        let metrics = Registry::new();
        let cache = AnalysisCache::with_metrics(&metrics);
        cache.parse(SRC).unwrap();
        cache.parse(SRC).unwrap();
        // The registry's counters and stats() agree — same atomics.
        assert_eq!(metrics.counter("cache.hits").get(), 1);
        assert_eq!(metrics.counter("cache.misses").get(), 1);
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
        // Resident bytes track stored parse sources; clear evicts and zeroes.
        assert_eq!(metrics.gauge("cache.bytes").get(), SRC.len() as i64);
        cache.clear();
        assert_eq!(metrics.counter("cache.evictions").get(), 1);
        assert_eq!(metrics.gauge("cache.bytes").get(), 0);
    }

    #[test]
    fn noop_registry_cache_still_caches_but_reports_nothing() {
        let cache = AnalysisCache::with_metrics(&Registry::noop());
        let a = cache.parse(SRC).unwrap();
        let b = cache.parse(SRC).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "storage works regardless of recording");
        assert_eq!(cache.stats(), CacheStats::default());
    }

    #[test]
    fn entry_limit_flushes_a_full_table_but_keeps_the_newest_entry() {
        let metrics = Registry::new();
        // With a unit limit of 1 the stage table is bounded at the fanout.
        let bound = STAGE_TABLE_FANOUT as u64;
        let cache = AnalysisCache::with_metrics(&metrics).with_entry_limit(1);
        for key in 0..bound {
            cache.stage(Stage::Summary, key, || key);
        }
        // Table is at the bound; the next insert flushes the generation
        // first, so the new entry survives and is immediately reusable.
        cache.stage(Stage::Summary, bound, || bound);
        assert_eq!(metrics.counter("cache.evictions").get(), bound);
        assert!(cache.stage_get::<u64>(Stage::Summary, bound).is_some(), "newest entry survives");
        assert!(cache.stage_get::<u64>(Stage::Summary, 0).is_none(), "old generation flushed");
        // Accounting still holds: every lookup was one hit or one miss.
        let stats = cache.stage_stats(Stage::Summary);
        assert_eq!(stats.hits + stats.misses, bound + 3);
    }

    #[test]
    fn entry_limit_bounds_each_table_independently() {
        let metrics = Registry::new();
        let cache = AnalysisCache::with_metrics(&metrics).with_entry_limit(2);
        let sources = ["int a() { return 1; }", "int b() { return 2; }", "int c() { return 3; }"];
        for src in sources {
            cache.parse(src).unwrap();
        }
        // Third parse flushed the first generation (2 entries) and the
        // resident-bytes gauge tracks only the surviving source.
        assert_eq!(metrics.counter("cache.evictions").get(), 2);
        assert_eq!(metrics.gauge("cache.bytes").get(), sources[2].len() as i64);
        // The stages table is untouched by parse-table evictions.
        cache.stage(Stage::Cfg, 7, || 7u64);
        assert!(cache.stage_get::<u64>(Stage::Cfg, 7).is_some());
        // Unbounded caches never evict.
        let free = AnalysisCache::new();
        for key in 0..64u64 {
            free.stage(Stage::Findings, key, || key);
        }
        assert!(free.stage_get::<u64>(Stage::Findings, 0).is_some());
    }

    #[test]
    fn get_fault_degrades_to_recompute_with_identical_value() {
        let baseline = AnalysisCache::new();
        let expected = baseline.parse(SRC).unwrap();

        let mut cache = AnalysisCache::new();
        cache.set_fault_hook(Arc::new(|op, _key| op == CacheOp::Get));
        let a = cache.parse(SRC).unwrap();
        let b = cache.parse(SRC).unwrap();
        // Every lookup is dropped, so both calls recompute fresh values …
        assert!(!Arc::ptr_eq(&a, &b), "faulted gets must never hit");
        assert_eq!(cache.stats(), CacheStats { hits: 0, misses: 2 });
        // … but the values are byte-identical to the fault-free parse.
        assert_eq!(format!("{a:?}"), format!("{expected:?}"));
    }

    #[test]
    fn put_fault_never_stores_but_results_are_correct() {
        let metrics = Registry::new();
        let mut cache = AnalysisCache::with_metrics(&metrics);
        cache.set_fault_hook(Arc::new(|op, _key| op == CacheOp::Put));
        cache.parse(SRC).unwrap();
        cache.parse(SRC).unwrap();
        // Stores are dropped, so the second lookup still misses and nothing
        // is resident.
        assert_eq!(cache.stats(), CacheStats { hits: 0, misses: 2 });
        assert_eq!(metrics.gauge("cache.bytes").get(), 0);
    }

    #[test]
    fn analysis_faults_degrade_without_changing_values() {
        let mut cache = AnalysisCache::new();
        cache.set_fault_hook(Arc::new(|op, _key| op == CacheOp::Get));
        let a = cache.analysis(SRC, "taint", 0, || 41_u32 + 1);
        let b = cache.analysis(SRC, "taint", 0, || 41_u32 + 1);
        assert_eq!(*a, 42);
        assert_eq!(*b, 42);
        assert!(!Arc::ptr_eq(&a, &b), "faulted analysis gets recompute");
    }
}
