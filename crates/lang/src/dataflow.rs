//! Classic data-flow analyses over the [`Cfg`].
//!
//! Implements reaching definitions (forward, may) and live variables
//! (backward, may) with a shared worklist core. These power the expert
//! feature extractors and the auto-fix safety checks.

use crate::cfg::{BlockId, Cfg, CfgInst};
use std::collections::{HashMap, HashSet};

/// A definition site: block id and instruction index within the block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DefSite {
    /// Block containing the definition.
    pub block: BlockId,
    /// Index of the defining instruction inside the block.
    pub inst: usize,
}

/// Result of reaching-definitions analysis.
#[derive(Debug, Clone)]
pub struct ReachingDefs {
    /// For each block, the set of `(variable, def-site)` pairs live at entry.
    pub at_entry: Vec<HashSet<(String, DefSite)>>,
    /// For each block, the set at exit.
    pub at_exit: Vec<HashSet<(String, DefSite)>>,
}

impl ReachingDefs {
    /// Runs the analysis on `cfg`.
    ///
    /// # Examples
    ///
    /// ```
    /// # fn main() -> Result<(), vulnman_lang::error::ParseError> {
    /// use vulnman_lang::{cfg::Cfg, dataflow::ReachingDefs, parser::parse};
    /// let p = parse("int f(int a) { int x = 1; if (a) { x = 2; } return x; }")?;
    /// let cfg = Cfg::build(&p.functions[0]);
    /// let rd = ReachingDefs::compute(&cfg);
    /// // Two definitions of x can reach the exit.
    /// let defs_of_x = rd.at_entry[cfg.exit].iter().filter(|(v, _)| v == "x").count();
    /// assert_eq!(defs_of_x, 2);
    /// # Ok(())
    /// # }
    /// ```
    pub fn compute(cfg: &Cfg) -> ReachingDefs {
        let n = cfg.blocks.len();
        // Per-block gen/kill over (var, site).
        let mut gen_sets: Vec<HashSet<(String, DefSite)>> = vec![HashSet::new(); n];
        let mut kill_vars: Vec<HashSet<String>> = vec![HashSet::new(); n];
        for (bid, block) in cfg.blocks.iter().enumerate() {
            for (iid, si) in block.insts.iter().enumerate() {
                if let Some(var) = si.inst.defined_var() {
                    // Later defs in the same block kill earlier ones.
                    gen_sets[bid].retain(|(v, _)| v != var);
                    gen_sets[bid].insert((var.to_string(), DefSite { block: bid, inst: iid }));
                    kill_vars[bid].insert(var.to_string());
                }
            }
        }

        let mut at_entry: Vec<HashSet<(String, DefSite)>> = vec![HashSet::new(); n];
        let mut at_exit: Vec<HashSet<(String, DefSite)>> = vec![HashSet::new(); n];
        let order = cfg.reverse_post_order();
        let mut changed = true;
        while changed {
            changed = false;
            for &b in &order {
                let mut input: HashSet<(String, DefSite)> = HashSet::new();
                for &p in &cfg.blocks[b].preds {
                    input.extend(at_exit[p].iter().cloned());
                }
                let mut out: HashSet<(String, DefSite)> =
                    input.iter().filter(|(v, _)| !kill_vars[b].contains(v)).cloned().collect();
                out.extend(gen_sets[b].iter().cloned());
                if input != at_entry[b] || out != at_exit[b] {
                    at_entry[b] = input;
                    at_exit[b] = out;
                    changed = true;
                }
            }
        }
        ReachingDefs { at_entry, at_exit }
    }

    /// Number of distinct definitions of `var` reaching the entry of `block`.
    pub fn defs_reaching(&self, block: BlockId, var: &str) -> usize {
        self.at_entry[block].iter().filter(|(v, _)| v == var).count()
    }
}

/// Result of live-variables analysis.
#[derive(Debug, Clone)]
pub struct LiveVars {
    /// Variables live at the entry of each block.
    pub at_entry: Vec<HashSet<String>>,
    /// Variables live at the exit of each block.
    pub at_exit: Vec<HashSet<String>>,
}

impl LiveVars {
    /// Runs backward liveness on `cfg`.
    pub fn compute(cfg: &Cfg) -> LiveVars {
        let n = cfg.blocks.len();
        // use[b]: vars read before any redefinition; def[b]: vars defined.
        let mut use_sets: Vec<HashSet<String>> = vec![HashSet::new(); n];
        let mut def_sets: Vec<HashSet<String>> = vec![HashSet::new(); n];
        for (bid, block) in cfg.blocks.iter().enumerate() {
            for si in &block.insts {
                // Reads inside the instruction's expression(s), plus reads
                // implied by indirect targets.
                let mut reads: Vec<String> = Vec::new();
                if let Some(e) = si.inst.expr() {
                    reads.extend(e.read_vars().iter().map(|s| s.to_string()));
                }
                if let CfgInst::Assign { target, .. } = &si.inst {
                    match target {
                        crate::ast::LValue::Deref(e) => {
                            reads.extend(e.read_vars().iter().map(|s| s.to_string()))
                        }
                        crate::ast::LValue::Index(b, i) => {
                            reads.extend(b.read_vars().iter().map(|s| s.to_string()));
                            reads.extend(i.read_vars().iter().map(|s| s.to_string()));
                        }
                        crate::ast::LValue::Var(_) => {}
                    }
                }
                for r in reads {
                    if !def_sets[bid].contains(&r) {
                        use_sets[bid].insert(r);
                    }
                }
                if let Some(d) = si.inst.defined_var() {
                    def_sets[bid].insert(d.to_string());
                }
            }
        }

        let mut at_entry: Vec<HashSet<String>> = vec![HashSet::new(); n];
        let mut at_exit: Vec<HashSet<String>> = vec![HashSet::new(); n];
        let mut order = cfg.reverse_post_order();
        order.reverse(); // post-order: good for backward problems
        let mut changed = true;
        while changed {
            changed = false;
            for &b in &order {
                let mut out: HashSet<String> = HashSet::new();
                for &s in &cfg.blocks[b].succs {
                    out.extend(at_entry[s].iter().cloned());
                }
                let mut input: HashSet<String> =
                    out.iter().filter(|v| !def_sets[b].contains(*v)).cloned().collect();
                input.extend(use_sets[b].iter().cloned());
                if out != at_exit[b] || input != at_entry[b] {
                    at_exit[b] = out;
                    at_entry[b] = input;
                    changed = true;
                }
            }
        }
        LiveVars { at_entry, at_exit }
    }

    /// Returns `true` if `var` is live at the entry of `block`.
    pub fn is_live_at_entry(&self, block: BlockId, var: &str) -> bool {
        self.at_entry[block].contains(var)
    }
}

/// Finds definitions that are never used (dead stores): the variable is not
/// live immediately after the defining instruction. Returns `(var, DefSite)`
/// pairs. Conservative with respect to indirect reads.
pub fn dead_stores(cfg: &Cfg) -> Vec<(String, DefSite)> {
    let live = LiveVars::compute(cfg);
    let mut dead = Vec::new();
    for (bid, block) in cfg.blocks.iter().enumerate() {
        for (iid, si) in block.insts.iter().enumerate() {
            let Some(var) = si.inst.defined_var() else { continue };
            // Live-after: scan the rest of the block for a read before a
            // redefinition; otherwise consult block-exit liveness.
            let mut status: Option<bool> = None;
            for later in &block.insts[iid + 1..] {
                let mut reads: Vec<&str> = Vec::new();
                if let Some(e) = later.inst.expr() {
                    reads.extend(e.read_vars());
                }
                if let CfgInst::Assign { target, .. } = &later.inst {
                    if target.is_indirect() {
                        if let Some(base) = target.base_var() {
                            reads.push(base);
                        }
                    }
                }
                if reads.contains(&var) {
                    status = Some(true);
                    break;
                }
                if later.inst.defined_var() == Some(var) {
                    status = Some(false);
                    break;
                }
            }
            let live_after = status.unwrap_or_else(|| {
                cfg.blocks[bid].succs.iter().any(|&s| live.is_live_at_entry(s, var))
            });
            if !live_after {
                dead.push((var.to_string(), DefSite { block: bid, inst: iid }));
            }
        }
    }
    dead
}

/// Counts, per variable, how many distinct definition sites exist in the
/// function — a cheap proxy for data-flow complexity used by the expert
/// feature extractor.
pub fn def_counts(cfg: &Cfg) -> HashMap<String, usize> {
    let mut counts: HashMap<String, usize> = HashMap::new();
    for block in &cfg.blocks {
        for si in &block.insts {
            if let Some(v) = si.inst.defined_var() {
                *counts.entry(v.to_string()).or_insert(0) += 1;
            }
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::Cfg;
    use crate::parser::parse;

    fn cfg_of(src: &str) -> Cfg {
        let p = parse(src).unwrap();
        Cfg::build(&p.functions[0])
    }

    #[test]
    fn reaching_defs_merge_at_join() {
        let c = cfg_of("int f(int a) { int x = 1; if (a) { x = 2; } else { x = 3; } return x; }");
        let rd = ReachingDefs::compute(&c);
        // At exit both branch definitions reach; the initial def is killed on
        // both paths.
        assert_eq!(rd.defs_reaching(c.exit, "x"), 2);
    }

    #[test]
    fn reaching_defs_kill_within_block() {
        let c = cfg_of("void f() { int x = 1; x = 2; use(x); }");
        let rd = ReachingDefs::compute(&c);
        assert_eq!(rd.defs_reaching(c.exit, "x"), 1);
    }

    #[test]
    fn loop_defs_reach_header() {
        let c = cfg_of("void f(int n) { int s = 0; while (n > 0) { s += n; n -= 1; } sink(s); }");
        let rd = ReachingDefs::compute(&c);
        // Find the loop-header block (the one with a branch on n > 0 and two succs).
        let header = c.blocks.iter().position(|b| b.succs.len() == 2).expect("loop header");
        assert_eq!(rd.defs_reaching(header, "s"), 2, "initial + loop-carried defs of s");
    }

    #[test]
    fn liveness_through_branches() {
        let c = cfg_of("int f(int a, int b) { int r = 0; if (a) { r = b; } return r; }");
        let lv = LiveVars::compute(&c);
        // b is live at entry (used on one path).
        assert!(lv.is_live_at_entry(c.entry, "b"));
        assert!(lv.is_live_at_entry(c.entry, "a"));
    }

    #[test]
    fn dead_store_detected() {
        let c = cfg_of("void f() { int x = 1; x = 2; use(x); int y = 9; }");
        let dead = dead_stores(&c);
        let vars: Vec<&str> = dead.iter().map(|(v, _)| v.as_str()).collect();
        assert!(vars.contains(&"x"), "first def of x is dead: {vars:?}");
        assert!(vars.contains(&"y"), "y never used: {vars:?}");
        // The second def of x is used, so exactly one x entry.
        assert_eq!(vars.iter().filter(|v| **v == "x").count(), 1);
    }

    #[test]
    fn store_live_across_loop_not_dead() {
        let c = cfg_of("void f(int n) { int s = 0; while (n) { s += 1; n -= 1; } use(s); }");
        let dead = dead_stores(&c);
        assert!(dead.iter().all(|(v, _)| v != "s"), "{dead:?}");
    }

    #[test]
    fn indirect_write_base_counts_as_read() {
        // buf is "read" by buf[i] = …, so the decl of buf is not a dead store.
        let c = cfg_of("void f(int i) { char buf[4]; buf[i] = 'x'; }");
        let dead = dead_stores(&c);
        assert!(dead.iter().all(|(v, _)| v != "buf"), "{dead:?}");
    }

    #[test]
    fn def_counts_counts_sites() {
        let c = cfg_of("void f(int a) { int x = 1; if (a) { x = 2; } x = 3; }");
        let counts = def_counts(&c);
        assert_eq!(counts["x"], 3);
    }
}
