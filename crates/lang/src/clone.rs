//! Corpus-scale near-duplicate (clone) detection: token-shingle MinHash
//! signatures, a banded LSH index, and union-find clone classes with an
//! exact-Jaccard verification pass.
//!
//! The content-addressed [`AnalysisCache`](crate::cache::AnalysisCache)
//! already collapses *exact* duplicates (one whitespace-normalized hash per
//! unit). Synthetic duplication — one of the data pathologies the source
//! paper calls out — produces *near* duplicates instead: alpha-renamed,
//! comment-padded, or lightly edited copies whose content keys all differ.
//! This module finds those in sublinear time:
//!
//! 1. **Shingling** ([`shingles`]): the unit is lexed zero-copy with
//!    [`lex_ref`](crate::lexer::lex_ref) and every window of
//!    [`CloneConfig::shingle_k`] consecutive tokens is hashed into a `u64`.
//!    Identifier payloads are normalized to a single `<id>` marker (the
//!    standard clone-detection normalization, mirroring
//!    `vulnman_ml`'s normalized n-gram features), so alpha-renamed copies
//!    produce the *same* shingle set; comments are trivia and never reach
//!    the token stream, so comment padding is invisible by construction.
//! 2. **MinHash** ([`MinHasher`]): a seeded family of `bands * rows`
//!    splitmix64-derived hash functions maps each shingle *set* to a fixed
//!    signature whose positional agreement estimates Jaccard similarity.
//! 3. **Banded LSH** ([`CloneIndex`]): signatures are cut into `bands`
//!    bands of `rows` values; units sharing any band bucket become
//!    candidate pairs. Probing buckets is O(bands) per query instead of
//!    O(corpus) brute-force comparisons.
//! 4. **Verification + classes** ([`CloneIndex::classes`]): candidate
//!    pairs are re-checked with *exact* Jaccard over the shingle sets and
//!    only pairs at or above [`CloneConfig::threshold`] are unioned, so an
//!    LSH false positive can never corrupt a clone class.
//!
//! Everything is seeded and byte-deterministic: signatures depend only on
//! `(source, config)`, bucket maps are ordered, pairs are verified in
//! sorted order, and the parallel builder chunks the corpus exactly like
//! the workflow engine's sharded path (contiguous chunks joined in spawn
//! order), so `jobs` never changes a single byte of the output.

use crate::error::ParseResult;
use crate::lexer::{lex_ref, LexOutput};
use crate::span::Span;
use crate::token::TokenKind;
use std::collections::BTreeMap;

/// splitmix64 finalizer: the same cheap, well-mixed permutation used by the
/// workflow engine's deterministic per-sample draws.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// FNV-1a over raw bytes, the workspace's standard content hash.
fn fnv_bytes(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = seed;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Parameters of the clone detector. The defaults are calibrated for the
/// synthetic corpus (see DESIGN.md §14): `shingle_k = 4` is long enough
/// that unrelated templates share few shingles but short enough that a
/// single inserted statement only disturbs a handful of windows;
/// `bands = 16, rows = 4` puts the LSH s-curve threshold at
/// `(1/16)^(1/4) ≈ 0.5`, comfortably below the verification
/// `threshold = 0.7`, so near-threshold pairs still surface as candidates
/// and verification does the precise cut.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CloneConfig {
    /// Tokens per shingle window.
    pub shingle_k: usize,
    /// Number of LSH bands.
    pub bands: usize,
    /// Signature rows per band (signature width = `bands * rows`).
    pub rows: usize,
    /// Seed of the MinHash hash family.
    pub seed: u64,
    /// Exact-Jaccard verification threshold for clone-class membership.
    pub threshold: f64,
    /// Worker threads for [`CloneIndex::build`] (results are identical at
    /// any value).
    pub jobs: usize,
}

impl Default for CloneConfig {
    fn default() -> Self {
        CloneConfig { shingle_k: 4, bands: 16, rows: 4, seed: 0xC10_0E5, threshold: 0.7, jobs: 1 }
    }
}

impl CloneConfig {
    /// Signature width in u64s.
    pub fn width(&self) -> usize {
        self.bands * self.rows
    }
}

/// Hashes one token for shingling. Identifier payloads normalize to a
/// fixed marker so alpha-renamed clones shingle identically; literal
/// payloads stay verbatim (two templates that differ only in their string
/// constants are *not* the same unit); structural kinds hash their stable
/// [`TokenKind::describe`] label.
fn token_hash<S: AsRef<str>>(kind: &TokenKind<S>) -> u64 {
    match kind {
        TokenKind::Ident(_) => fnv_bytes(FNV_OFFSET, b"<id>"),
        TokenKind::Int(v) => fnv_bytes(FNV_OFFSET, b"<int>") ^ mix64(*v as u64),
        TokenKind::Char(c) => fnv_bytes(FNV_OFFSET, b"<char>") ^ mix64(u64::from(*c as u32)),
        TokenKind::Str(s) => fnv_bytes(fnv_bytes(FNV_OFFSET, b"<str>"), s.as_ref().as_bytes()),
        other => fnv_bytes(FNV_OFFSET, other.describe().as_bytes()),
    }
}

/// The sorted, deduplicated set of `k`-shingle hashes of `source`'s token
/// stream (comments excluded, `Eof` excluded, identifiers normalized —
/// see [`token_hash`]). Units shorter than `k` tokens contribute one
/// shingle covering the whole stream; an empty unit has no shingles.
pub fn shingles(source: &str, k: usize) -> ParseResult<Vec<u64>> {
    let k = k.max(1);
    let lexed = lex_ref(source)?;
    let hashes: Vec<u64> = lexed
        .tokens
        .iter()
        .filter(|t| !matches!(t.kind, TokenKind::Eof))
        .map(|t| token_hash(&t.kind))
        .collect();
    let mut out: Vec<u64> = if hashes.is_empty() {
        Vec::new()
    } else if hashes.len() < k {
        vec![fold_window(&hashes)]
    } else {
        hashes.windows(k).map(fold_window).collect()
    };
    out.sort_unstable();
    out.dedup();
    Ok(out)
}

/// Folds one shingle window into a single hash, order-sensitively.
fn fold_window(window: &[u64]) -> u64 {
    let mut h = FNV_OFFSET;
    for &t in window {
        h = fnv_bytes(h, &t.to_le_bytes());
    }
    h
}

/// Exact Jaccard similarity of two sorted, deduplicated shingle sets.
/// Two empty sets are identical (`1.0`); one empty set is disjoint from
/// any non-empty set (`0.0`).
pub fn exact_jaccard(a: &[u64], b: &[u64]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let (mut i, mut j, mut inter) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    let union = a.len() + b.len() - inter;
    inter as f64 / union as f64
}

/// Positional agreement of two MinHash signatures — an unbiased estimator
/// of the exact Jaccard similarity of the underlying sets, with standard
/// error `sqrt(J(1-J)/width)`.
///
/// # Panics
///
/// Panics if the signatures have different widths.
pub fn estimated_jaccard(a: &[u64], b: &[u64]) -> f64 {
    assert_eq!(a.len(), b.len(), "signatures must share a width");
    if a.is_empty() {
        return 1.0;
    }
    let agree = a.iter().zip(b).filter(|(x, y)| x == y).count();
    agree as f64 / a.len() as f64
}

/// A seeded MinHash family of `width` independent hash functions. The
/// family is a pure function of the seed: two hashers built from the same
/// `(seed, width)` produce bit-identical signatures on any input, on any
/// thread.
#[derive(Debug, Clone)]
pub struct MinHasher {
    seeds: Vec<u64>,
}

impl MinHasher {
    /// Derives `width` per-function seeds from `seed` via splitmix64.
    pub fn new(seed: u64, width: usize) -> Self {
        MinHasher { seeds: (0..width as u64).map(|i| mix64(seed ^ mix64(i))).collect() }
    }

    /// Signature width.
    pub fn width(&self) -> usize {
        self.seeds.len()
    }

    /// The MinHash signature of a shingle set: per hash function, the
    /// minimum permuted shingle value. An empty set signs as all
    /// `u64::MAX`, so two empty units estimate Jaccard `1.0`.
    pub fn signature(&self, shingles: &[u64]) -> Vec<u64> {
        self.seeds
            .iter()
            .map(|&s| shingles.iter().map(|&x| mix64(x ^ s)).min().unwrap_or(u64::MAX))
            .collect()
    }
}

/// One indexed unit: corpus id, shingle set, and MinHash signature.
#[derive(Debug, Clone)]
pub struct CloneEntry {
    /// Caller-supplied id (corpus sample id, request id, ...).
    pub id: u64,
    /// Sorted, deduplicated shingle hashes.
    pub shingles: Vec<u64>,
    /// MinHash signature (`config.width()` u64s).
    pub signature: Vec<u64>,
}

/// Banded LSH index over MinHash signatures.
///
/// Buckets live in a [`BTreeMap`] keyed by `(band, band-hash)` so
/// iteration — and therefore candidate-pair order, class order, and every
/// derived report — is byte-deterministic.
#[derive(Debug)]
pub struct CloneIndex {
    config: CloneConfig,
    hasher: MinHasher,
    entries: Vec<CloneEntry>,
    buckets: BTreeMap<(u32, u64), Vec<u32>>,
    entry_limit: Option<usize>,
    evictions: u64,
}

impl CloneIndex {
    /// An empty index for `config`.
    pub fn new(config: CloneConfig) -> Self {
        let hasher = MinHasher::new(config.seed, config.width());
        CloneIndex {
            config,
            hasher,
            entries: Vec::new(),
            buckets: BTreeMap::new(),
            entry_limit: None,
            evictions: 0,
        }
    }

    /// Bounds the index to `limit` entries with the same epoch-eviction
    /// discipline as [`AnalysisCache`](crate::cache::AnalysisCache): when
    /// an insert would exceed the bound, the whole index flushes first. A
    /// long-running service indexes an unbounded stream of unit versions;
    /// flushing keeps memory flat and only ever costs rediscovery — clone
    /// classes are derived views, never the source of analysis results, so
    /// eviction cannot orphan anything (see the dedup invariant on
    /// [`CloneIndex::classes`]).
    pub fn with_entry_limit(mut self, limit: usize) -> Self {
        self.entry_limit = Some(limit.max(1));
        self
    }

    /// The active configuration.
    pub fn config(&self) -> &CloneConfig {
        &self.config
    }

    /// Number of indexed units.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Epoch flushes performed under [`CloneIndex::with_entry_limit`].
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Indexed entries, in insertion order.
    pub fn entries(&self) -> &[CloneEntry] {
        &self.entries
    }

    /// Lexes, shingles, signs, and indexes one unit. Returns the entry
    /// index. Lex errors propagate; the unit is not indexed.
    pub fn insert(&mut self, id: u64, source: &str) -> ParseResult<u32> {
        let sh = shingles(source, self.config.shingle_k)?;
        Ok(self.insert_entry(id, sh))
    }

    /// Indexes a pre-shingled unit (the parallel builder and the service
    /// reuse shingle sets computed elsewhere).
    pub fn insert_entry(&mut self, id: u64, shingles: Vec<u64>) -> u32 {
        if let Some(limit) = self.entry_limit {
            if self.entries.len() >= limit {
                self.entries.clear();
                self.buckets.clear();
                self.evictions += 1;
            }
        }
        let signature = self.hasher.signature(&shingles);
        let idx = self.entries.len() as u32;
        let keys: Vec<(u32, u64)> = self.band_keys(&signature).collect();
        for key in keys {
            self.buckets.entry(key).or_default().push(idx);
        }
        self.entries.push(CloneEntry { id, shingles, signature });
        idx
    }

    /// The `(band, band-hash)` bucket keys of a signature.
    fn band_keys<'a>(&'a self, signature: &'a [u64]) -> impl Iterator<Item = (u32, u64)> + 'a {
        signature.chunks(self.config.rows).enumerate().map(|(band, chunk)| {
            let mut h = FNV_OFFSET;
            for &v in chunk {
                h = fnv_bytes(h, &v.to_le_bytes());
            }
            (band as u32, h)
        })
    }

    /// Ids of indexed units sharing at least one LSH band with `source`,
    /// sorted and deduplicated. This is the sublinear query path: it probes
    /// `bands` buckets instead of comparing against every entry.
    pub fn query(&self, source: &str) -> ParseResult<Vec<u64>> {
        let sh = shingles(source, self.config.shingle_k)?;
        let signature = self.hasher.signature(&sh);
        let mut ids: Vec<u64> = self
            .band_keys(&signature)
            .flat_map(|key| self.buckets.get(&key).map(Vec::as_slice).unwrap_or(&[]))
            .map(|&e| self.entries[e as usize].id)
            .collect();
        ids.sort_unstable();
        ids.dedup();
        Ok(ids)
    }

    /// Brute-force reference query: every entry whose *exact* Jaccard
    /// similarity to `source` meets the threshold. O(corpus); exists as
    /// the oracle the LSH path is benchmarked (and tested) against.
    pub fn query_brute_force(&self, source: &str) -> ParseResult<Vec<u64>> {
        let sh = shingles(source, self.config.shingle_k)?;
        let mut ids: Vec<u64> = self
            .entries
            .iter()
            .filter(|e| exact_jaccard(&sh, &e.shingles) >= self.config.threshold)
            .map(|e| e.id)
            .collect();
        ids.sort_unstable();
        ids.dedup();
        Ok(ids)
    }

    /// Candidate pairs `(i, j)` (entry indices, `i < j`) sharing at least
    /// one band bucket, sorted and deduplicated.
    pub fn candidate_pairs(&self) -> Vec<(u32, u32)> {
        let mut pairs = Vec::new();
        for members in self.buckets.values() {
            for (a, &i) in members.iter().enumerate() {
                for &j in &members[a + 1..] {
                    pairs.push(if i < j { (i, j) } else { (j, i) });
                }
            }
        }
        pairs.sort_unstable();
        pairs.dedup();
        pairs
    }

    /// Candidate pairs whose exact Jaccard similarity meets the
    /// verification threshold.
    pub fn verified_pairs(&self) -> Vec<(u32, u32)> {
        self.candidate_pairs()
            .into_iter()
            .filter(|&(i, j)| {
                exact_jaccard(
                    &self.entries[i as usize].shingles,
                    &self.entries[j as usize].shingles,
                ) >= self.config.threshold
            })
            .collect()
    }

    /// Clone classes: the connected components of the verified-pair graph,
    /// via union-find. Every entry appears in exactly one class
    /// (singletons included); members are sorted by entry index, classes
    /// by their first member, so the partition is byte-deterministic.
    ///
    /// Classes are a *derived view*: consumers that deduplicate analysis
    /// work must fall back to direct analysis whenever a class (or its
    /// representative) is unavailable, which makes index eviction purely a
    /// performance event.
    pub fn classes(&self) -> Vec<Vec<u32>> {
        let mut uf = UnionFind::new(self.entries.len());
        for (i, j) in self.verified_pairs() {
            uf.union(i as usize, j as usize);
        }
        uf.classes().into_iter().map(|c| c.into_iter().map(|i| i as u32).collect()).collect()
    }

    /// Builds an index over `(id, source)` pairs with `config.jobs` worker
    /// threads. Shingling is chunked exactly like the workflow engine's
    /// sharded path (contiguous chunks, joined in spawn order), then
    /// entries are indexed sequentially in corpus order — the result is
    /// byte-identical at any job count. Units that fail to lex are
    /// skipped (they can never share a clone class).
    pub fn build(sources: &[(u64, &str)], config: CloneConfig) -> Self {
        let jobs = config.jobs.max(1).min(sources.len().max(1));
        let shingled: Vec<Option<(u64, Vec<u64>)>> = if jobs <= 1 {
            sources
                .iter()
                .map(|(id, src)| Some((*id, shingles(src, config.shingle_k).ok()?)))
                .collect()
        } else {
            let chunk = sources.len().div_ceil(jobs);
            let mut out = Vec::with_capacity(sources.len());
            std::thread::scope(|scope| {
                let handles: Vec<_> = sources
                    .chunks(chunk)
                    .map(|slice| {
                        scope.spawn(move || {
                            slice
                                .iter()
                                .map(|(id, src)| Some((*id, shingles(src, config.shingle_k).ok()?)))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                for handle in handles {
                    out.extend(handle.join().expect("clone shingler panicked"));
                }
            });
            out
        };
        let mut index = CloneIndex::new(config);
        for entry in shingled.into_iter().flatten() {
            index.insert_entry(entry.0, entry.1);
        }
        index
    }
}

/// Disjoint-set forest with deterministic representatives: the root of a
/// class is always its minimum element, so class structure is independent
/// of union order.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind { parent: (0..n).collect() }
    }

    /// Representative (minimum member) of `x`'s set.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Merges the sets of `a` and `b`; the smaller root wins, keeping the
    /// minimum-element invariant.
    pub fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
        self.parent[hi] = lo;
    }

    /// Whether `a` and `b` share a set.
    pub fn same(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// All sets (singletons included), members sorted ascending, sets
    /// ordered by their minimum member.
    pub fn classes(&mut self) -> Vec<Vec<usize>> {
        let n = self.parent.len();
        let mut by_root: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for x in 0..n {
            let r = self.find(x);
            by_root.entry(r).or_default().push(x);
        }
        by_root.into_values().collect()
    }
}

// ---------------------------------------------------------------------------
// Token alignment: the safety proof behind dedup-before-analyze.
// ---------------------------------------------------------------------------

/// A token-level alignment between a clone-class representative and a
/// member, proving the two units are identical up to a consistent
/// identifier renaming and whitespace/comment layout.
///
/// Clone *detection* is a similarity judgement; analysis *propagation*
/// needs an equivalence proof. An alignment exists only when both units
/// lex to token streams of the same length whose kinds and literal
/// payloads match position-for-position, with identifier payloads related
/// by one injective name map. Under that proof, the member's analysis
/// results are exactly the representative's with spans moved through the
/// alignment and identifiers moved through the name map — which is what
/// [`TokenAlignment::map_span`] and [`TokenAlignment::rewrite`] compute.
#[derive(Debug, Clone)]
pub struct TokenAlignment {
    /// Representative identifier → member identifier.
    rename: BTreeMap<String, String>,
    /// Representative span start → member `(start, line, col)`.
    starts: BTreeMap<usize, (usize, u32, u32)>,
    /// Representative span end → member span end.
    ends: BTreeMap<usize, usize>,
}

impl TokenAlignment {
    /// Attempts to align `rep` and `member`. Returns `None` when the two
    /// units are not renaming-equivalent (different token counts, a kind
    /// or literal mismatch, or an inconsistent / non-injective renaming).
    ///
    /// Identifiers in *call position* (immediately followed by `(` —
    /// function definitions and call sites alike) must match exactly, not
    /// merely consistently: analyses attach semantics to specific callee
    /// names (taint sources and sinks, sanitizers, allocation and free
    /// primitives, zero-click entry APIs), so a clone that renames a
    /// callee is not analysis-equivalent even though its token shingles
    /// (which normalize every identifier) still look identical. Variables
    /// and parameters — the names alpha-renaming actually touches — are
    /// never in call position in this dialect.
    pub fn align(rep: &str, member: &str) -> Option<TokenAlignment> {
        let (rt, mt) = (lex_ref(rep).ok()?, lex_ref(member).ok()?);
        Self::align_tokens(&rt, &mt)
    }

    /// Token-level [`TokenAlignment::align`]: callers that compare one
    /// source against several candidates (the dedup planner's anchor
    /// scan) lex each source once and reuse the streams across attempts
    /// instead of re-lexing per pair.
    pub fn align_tokens<S: AsRef<str> + PartialEq>(
        rt: &LexOutput<S>,
        mt: &LexOutput<S>,
    ) -> Option<TokenAlignment> {
        if rt.tokens.len() != mt.tokens.len() {
            return None;
        }
        let mut rename: BTreeMap<String, String> = BTreeMap::new();
        let mut reverse: BTreeMap<String, String> = BTreeMap::new();
        let mut starts = BTreeMap::new();
        let mut ends = BTreeMap::new();
        for (i, (a, b)) in rt.tokens.iter().zip(&mt.tokens).enumerate() {
            match (&a.kind, &b.kind) {
                (TokenKind::Ident(x), TokenKind::Ident(y)) => {
                    let (x, y) = (x.as_ref(), y.as_ref());
                    let call_position =
                        matches!(rt.tokens.get(i + 1).map(|t| &t.kind), Some(TokenKind::LParen));
                    if call_position && x != y {
                        return None;
                    }
                    match rename.get(x) {
                        Some(prev) if prev != y => return None,
                        Some(_) => {}
                        None => {
                            // Injectivity: two rep names must not collapse
                            // onto one member name, or the reverse rewrite
                            // would be ambiguous.
                            match reverse.get(y) {
                                Some(prev) if prev != x => return None,
                                _ => {}
                            }
                            rename.insert(x.to_string(), y.to_string());
                            reverse.insert(y.to_string(), x.to_string());
                        }
                    }
                }
                (ka, kb) if ka == kb => {}
                _ => return None,
            }
            starts.insert(a.span.start, (b.span.start, b.span.line, b.span.col));
            ends.insert(a.span.end, b.span.end);
        }
        Some(TokenAlignment { rename, starts, ends })
    }

    /// Whether the renaming is the identity map (layout-only clone).
    pub fn is_identity(&self) -> bool {
        self.rename.iter().all(|(k, v)| k == v)
    }

    /// The representative→member name map.
    pub fn rename_map(&self) -> &BTreeMap<String, String> {
        &self.rename
    }

    /// Moves a representative-side span to the member side. Dummy spans
    /// (synthesized findings) pass through unchanged. Returns `None` when
    /// either endpoint does not land on a token boundary — the caller must
    /// then fall back to direct analysis.
    pub fn map_span(&self, span: Span) -> Option<Span> {
        if span.is_dummy() {
            return Some(span);
        }
        let &(start, line, col) = self.starts.get(&span.start)?;
        let &end = self.ends.get(&span.end)?;
        Some(Span { start, end, line, col })
    }

    /// Renames one identifier (identity for names outside the map, e.g.
    /// external sinks and sources, which alpha-renaming never touches).
    pub fn map_name<'a>(&'a self, name: &'a str) -> &'a str {
        self.rename.get(name).map(String::as_str).unwrap_or(name)
    }

    /// Rewrites identifier words in free text through the name map.
    /// Detector messages and evidence claims quote program identifiers
    /// verbatim (conventionally inside backticks); this walks maximal
    /// identifier-shaped words and renames exactly those present in the
    /// map, leaving prose (and external names) untouched. Each word is
    /// looked up once against the original map, so chained renames cannot
    /// cascade.
    pub fn rewrite(&self, text: &str) -> String {
        if self.rename.is_empty() {
            return text.to_string();
        }
        let mut out = String::with_capacity(text.len());
        let bytes = text.as_bytes();
        let is_word = |b: u8| b == b'_' || b.is_ascii_alphanumeric();
        let mut i = 0;
        while i < bytes.len() {
            if is_word(bytes[i]) && !bytes[i].is_ascii_digit() {
                let start = i;
                while i < bytes.len() && is_word(bytes[i]) {
                    i += 1;
                }
                let word = &text[start..i];
                match self.rename.get(word) {
                    Some(renamed) => out.push_str(renamed),
                    None => out.push_str(word),
                }
            } else {
                // Covers non-word bytes and digit-led runs (numbers can't
                // start an identifier). Multi-byte UTF-8 sequences advance
                // whole, so the slice below stays on char boundaries —
                // detector prose is allowed punctuation like `—`.
                let start = i;
                i += 1;
                while i < bytes.len() && (bytes[i] & 0xC0) == 0x80 {
                    i += 1;
                }
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                out.push_str(&text[start..i]);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: &str = r#"
        void handler() {
            char* user_id = http_param("q");
            exec_query(user_id);
        }
    "#;

    #[test]
    fn shingles_are_sorted_and_deterministic() {
        let a = shingles(BASE, 4).unwrap();
        let b = shingles(BASE, 4).unwrap();
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] < w[1]));
        assert!(!a.is_empty());
    }

    #[test]
    fn alpha_rename_preserves_shingles_but_literals_matter() {
        let renamed = BASE.replace("user_id", "uid_9");
        assert_eq!(shingles(BASE, 4).unwrap(), shingles(&renamed, 4).unwrap());
        let other_literal = BASE.replace("\"q\"", "\"session\"");
        assert_ne!(shingles(BASE, 4).unwrap(), shingles(&other_literal, 4).unwrap());
    }

    #[test]
    fn comments_are_invisible_to_shingling() {
        let commented = BASE.replace("exec_query", "// audit note\n            exec_query");
        assert_eq!(shingles(BASE, 4).unwrap(), shingles(&commented, 4).unwrap());
    }

    #[test]
    fn short_units_get_one_shingle_and_empty_units_none() {
        assert_eq!(shingles("x", 8).unwrap().len(), 1);
        assert!(shingles("", 4).unwrap().is_empty());
    }

    #[test]
    fn minhash_estimates_jaccard() {
        let hasher = MinHasher::new(7, 256);
        let a: Vec<u64> = (0..1000u64).map(mix64).collect();
        let mut a_sorted = a.clone();
        a_sorted.sort_unstable();
        // 50% overlap.
        let b: Vec<u64> = (500..1500u64).map(mix64).collect();
        let mut b_sorted = b.clone();
        b_sorted.sort_unstable();
        let exact = exact_jaccard(&a_sorted, &b_sorted);
        let est = estimated_jaccard(&hasher.signature(&a_sorted), &hasher.signature(&b_sorted));
        assert!((est - exact).abs() < 0.12, "estimate {est} too far from exact {exact}");
    }

    #[test]
    fn identical_and_disjoint_extremes() {
        let hasher = MinHasher::new(3, 64);
        let a: Vec<u64> = (0..100u64).map(mix64).collect();
        let mut a = a;
        a.sort_unstable();
        assert_eq!(estimated_jaccard(&hasher.signature(&a), &hasher.signature(&a)), 1.0);
        assert_eq!(exact_jaccard(&a, &a), 1.0);
        let b: Vec<u64> = (1000..1100u64).map(mix64).collect();
        let mut b = b;
        b.sort_unstable();
        assert!(estimated_jaccard(&hasher.signature(&a), &hasher.signature(&b)) < 0.1);
    }

    #[test]
    fn index_groups_near_duplicates() {
        let renamed = BASE.replace("user_id", "uid");
        let unrelated = "int add(int a, int b) { return a + b; }";
        let sources: Vec<(u64, &str)> = vec![(1, BASE), (2, renamed.as_str()), (3, unrelated)];
        let index = CloneIndex::build(&sources, CloneConfig::default());
        let classes = index.classes();
        let of = |id: u64| {
            classes
                .iter()
                .position(|c| c.iter().any(|&e| index.entries()[e as usize].id == id))
                .unwrap()
        };
        assert_eq!(of(1), of(2), "alpha-renamed copy must share a class");
        assert_ne!(of(1), of(3), "unrelated unit must not");
    }

    #[test]
    fn build_is_jobs_invariant() {
        let renamed = BASE.replace("user_id", "uid");
        let sources: Vec<(u64, String)> = (0..40)
            .map(|i| (i, if i % 2 == 0 { BASE.to_string() } else { renamed.clone() }))
            .collect();
        let refs: Vec<(u64, &str)> = sources.iter().map(|(i, s)| (*i, s.as_str())).collect();
        let one = CloneIndex::build(&refs, CloneConfig { jobs: 1, ..CloneConfig::default() });
        let four = CloneIndex::build(&refs, CloneConfig { jobs: 4, ..CloneConfig::default() });
        assert_eq!(one.classes(), four.classes());
        for (a, b) in one.entries().iter().zip(four.entries()) {
            assert_eq!(a.signature, b.signature);
        }
    }

    #[test]
    fn query_lsh_superset_of_brute_force_on_duplicates() {
        let renamed = BASE.replace("user_id", "uid");
        let sources: Vec<(u64, &str)> = vec![(1, BASE), (2, renamed.as_str())];
        let index = CloneIndex::build(&sources, CloneConfig::default());
        let lsh = index.query(BASE).unwrap();
        let brute = index.query_brute_force(BASE).unwrap();
        for id in &brute {
            assert!(lsh.contains(id), "brute-force hit {id} missing from LSH candidates");
        }
        assert!(lsh.contains(&1) && lsh.contains(&2));
    }

    #[test]
    fn entry_limit_epoch_evicts() {
        let mut index = CloneIndex::new(CloneConfig::default()).with_entry_limit(4);
        for i in 0..10 {
            index.insert(i, BASE).unwrap();
        }
        assert!(index.len() <= 4);
        assert_eq!(index.evictions(), 2);
    }

    #[test]
    fn union_find_min_representative_and_partition() {
        let mut uf = UnionFind::new(6);
        uf.union(4, 2);
        uf.union(2, 5);
        uf.union(0, 3);
        assert_eq!(uf.find(5), 2);
        assert_eq!(uf.find(3), 0);
        let classes = uf.classes();
        assert_eq!(classes, vec![vec![0, 3], vec![1], vec![2, 4, 5]]);
    }

    #[test]
    fn alignment_proves_alpha_equivalence() {
        let renamed = BASE.replace("user_id", "uid");
        let al = TokenAlignment::align(BASE, &renamed).expect("alpha clone aligns");
        assert!(!al.is_identity());
        assert_eq!(al.map_name("user_id"), "uid");
        assert_eq!(al.map_name("exec_query"), "exec_query");
        assert_eq!(
            al.rewrite("tainted `user_id` reaches `exec_query(user_id)`"),
            "tainted `uid` reaches `exec_query(uid)`"
        );
        // Non-ASCII prose around an identifier must survive untouched —
        // detector messages use punctuation like the em-dash.
        assert_eq!(
            al.rewrite("`user_id` is external — the sink’s mask never covered «command» 9×"),
            "`uid` is external — the sink’s mask never covered «command» 9×"
        );
    }

    #[test]
    fn alignment_rejects_structural_change() {
        assert!(TokenAlignment::align(BASE, "void handler() { }").is_none());
        let other_literal = BASE.replace("\"q\"", "\"other\"");
        assert!(TokenAlignment::align(BASE, &other_literal).is_none());
        // Non-injective renaming: two distinct names collapsing onto one.
        let rep = "int f(int a, int b) { return a + b; }";
        let collapsed = "int f(int c, int c) { return c + c; }";
        assert!(TokenAlignment::align(rep, collapsed).is_none());
    }

    #[test]
    fn alignment_pins_call_position_names() {
        // Renaming a callee keeps the shingles identical (every identifier
        // normalizes to `<id>`), so the pair still looks like a clone —
        // but analyses attach semantics to callee names, so the alignment
        // proof must refuse it.
        let renamed_sink = BASE.replace("exec_query", "run_query");
        assert_eq!(shingles(BASE, 4).unwrap(), shingles(&renamed_sink, 4).unwrap());
        assert!(TokenAlignment::align(BASE, &renamed_sink).is_none());
        // Variables are not in call position: renaming them still aligns.
        assert!(TokenAlignment::align(BASE, &BASE.replace("user_id", "uid_9")).is_some());
    }

    #[test]
    fn alignment_maps_spans_through_comment_padding() {
        let commented =
            BASE.replace("char* user_id", "// reviewed 2024-01-01\n            char* user_id");
        let al = TokenAlignment::align(BASE, &commented).expect("layout clone aligns");
        assert!(al.is_identity());
        let lexed = lex_ref(BASE).unwrap();
        for t in lexed.tokens.iter().filter(|t| !matches!(t.kind, TokenKind::Eof)) {
            let mapped = al.map_span(t.span).expect("token span maps");
            assert_eq!(&commented[mapped.start..mapped.end], &BASE[t.span.start..t.span.end]);
        }
    }
}
