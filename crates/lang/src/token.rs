//! Token definitions for the mini-C dialect.

use crate::span::Span;
use std::fmt;

/// The kind of a lexical token.
///
/// Keyword and punctuation variants are self-describing; see
/// [`TokenKind::describe`] for their surface syntax.
#[allow(missing_docs)]
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier such as `buf` or `copy_bytes`.
    Ident(String),
    /// Integer literal, e.g. `42`.
    Int(i64),
    /// Character literal, e.g. `'a'`.
    Char(char),
    /// String literal with escapes already resolved.
    Str(String),

    // Keywords.
    KwInt,
    KwChar,
    KwVoid,
    KwIf,
    KwElse,
    KwWhile,
    KwFor,
    KwReturn,
    KwBreak,
    KwContinue,

    // Punctuation and operators.
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semi,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    Pipe,
    Caret,
    Shl,
    Shr,
    AmpAmp,
    PipePipe,
    Bang,
    Assign,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    PlusAssign,
    MinusAssign,
    PlusPlus,
    MinusMinus,

    /// End of input.
    Eof,
}

impl TokenKind {
    /// Returns the keyword kind for `word`, if it is a reserved word.
    pub fn keyword(word: &str) -> Option<TokenKind> {
        Some(match word {
            "int" => TokenKind::KwInt,
            "char" => TokenKind::KwChar,
            "void" => TokenKind::KwVoid,
            "if" => TokenKind::KwIf,
            "else" => TokenKind::KwElse,
            "while" => TokenKind::KwWhile,
            "for" => TokenKind::KwFor,
            "return" => TokenKind::KwReturn,
            "break" => TokenKind::KwBreak,
            "continue" => TokenKind::KwContinue,
            _ => return None,
        })
    }

    /// A short human-readable name used in parse error messages.
    pub fn describe(&self) -> &'static str {
        match self {
            TokenKind::Ident(_) => "identifier",
            TokenKind::Int(_) => "integer literal",
            TokenKind::Char(_) => "char literal",
            TokenKind::Str(_) => "string literal",
            TokenKind::KwInt => "`int`",
            TokenKind::KwChar => "`char`",
            TokenKind::KwVoid => "`void`",
            TokenKind::KwIf => "`if`",
            TokenKind::KwElse => "`else`",
            TokenKind::KwWhile => "`while`",
            TokenKind::KwFor => "`for`",
            TokenKind::KwReturn => "`return`",
            TokenKind::KwBreak => "`break`",
            TokenKind::KwContinue => "`continue`",
            TokenKind::LParen => "`(`",
            TokenKind::RParen => "`)`",
            TokenKind::LBrace => "`{`",
            TokenKind::RBrace => "`}`",
            TokenKind::LBracket => "`[`",
            TokenKind::RBracket => "`]`",
            TokenKind::Comma => "`,`",
            TokenKind::Semi => "`;`",
            TokenKind::Plus => "`+`",
            TokenKind::Minus => "`-`",
            TokenKind::Star => "`*`",
            TokenKind::Slash => "`/`",
            TokenKind::Percent => "`%`",
            TokenKind::Amp => "`&`",
            TokenKind::Pipe => "`|`",
            TokenKind::Caret => "`^`",
            TokenKind::Shl => "`<<`",
            TokenKind::Shr => "`>>`",
            TokenKind::AmpAmp => "`&&`",
            TokenKind::PipePipe => "`||`",
            TokenKind::Bang => "`!`",
            TokenKind::Assign => "`=`",
            TokenKind::Eq => "`==`",
            TokenKind::Ne => "`!=`",
            TokenKind::Lt => "`<`",
            TokenKind::Le => "`<=`",
            TokenKind::Gt => "`>`",
            TokenKind::Ge => "`>=`",
            TokenKind::PlusAssign => "`+=`",
            TokenKind::MinusAssign => "`-=`",
            TokenKind::PlusPlus => "`++`",
            TokenKind::MinusMinus => "`--`",
            TokenKind::Eof => "end of input",
        }
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "{s}"),
            TokenKind::Int(v) => write!(f, "{v}"),
            TokenKind::Char(c) => write!(f, "'{c}'"),
            TokenKind::Str(s) => write!(f, "{s:?}"),
            other => write!(f, "{}", other.describe().trim_matches('`')),
        }
    }
}

/// A lexical token: a [`TokenKind`] plus its source [`Span`].
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// Where in the source it came from.
    pub span: Span,
}

impl Token {
    /// Creates a token from its parts.
    pub fn new(kind: TokenKind, span: Span) -> Self {
        Token { kind, span }
    }

    /// Returns the identifier text if this token is an identifier.
    pub fn as_ident(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }
}

/// A comment captured during lexing.
///
/// Comments are trivia: they do not participate in parsing, but the corpus
/// generator and the multimodal feature extractors consume them, so the lexer
/// preserves them on the side.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// Comment text without the `//` or `/* */` delimiters, trimmed.
    pub text: String,
    /// Location of the whole comment, delimiters included.
    pub span: Span,
    /// Whether this was a block (`/* */`) comment.
    pub block: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_resolve() {
        assert_eq!(TokenKind::keyword("int"), Some(TokenKind::KwInt));
        assert_eq!(TokenKind::keyword("while"), Some(TokenKind::KwWhile));
        assert_eq!(TokenKind::keyword("banana"), None);
    }

    #[test]
    fn ident_accessor() {
        let t = Token::new(TokenKind::Ident("x".into()), Span::dummy());
        assert_eq!(t.as_ident(), Some("x"));
        let t = Token::new(TokenKind::Semi, Span::dummy());
        assert_eq!(t.as_ident(), None);
    }

    #[test]
    fn describe_is_stable() {
        assert_eq!(TokenKind::Semi.describe(), "`;`");
        assert_eq!(TokenKind::Ident("a".into()).describe(), "identifier");
    }
}
