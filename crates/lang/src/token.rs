//! Token definitions for the mini-C dialect.
//!
//! Token kinds are generic over their string storage `S`. The zero-copy
//! lexer emits `TokenKind<Cow<'a, str>>` whose identifier/string payloads
//! borrow the source text directly; [`TokenKind<String>`] (the default) is
//! the owned form kept for call sites that outlive the source buffer.

use crate::span::Span;
use std::borrow::Cow;
use std::fmt;

/// The kind of a lexical token, generic over string storage.
///
/// Keyword and punctuation variants are self-describing; see
/// [`TokenKind::describe`] for their surface syntax.
#[allow(missing_docs)]
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind<S = String> {
    /// Identifier such as `buf` or `copy_bytes`.
    Ident(S),
    /// Integer literal, e.g. `42`.
    Int(i64),
    /// Character literal, e.g. `'a'`.
    Char(char),
    /// String literal with escapes already resolved.
    Str(S),

    // Keywords.
    KwInt,
    KwChar,
    KwVoid,
    KwIf,
    KwElse,
    KwWhile,
    KwFor,
    KwReturn,
    KwBreak,
    KwContinue,

    // Punctuation and operators.
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semi,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    Pipe,
    Caret,
    Shl,
    Shr,
    AmpAmp,
    PipePipe,
    Bang,
    Assign,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    PlusAssign,
    MinusAssign,
    PlusPlus,
    MinusMinus,

    /// End of input.
    Eof,
}

impl<S> TokenKind<S> {
    /// Returns the keyword kind for `word`, if it is a reserved word.
    ///
    /// Works on a borrowed slice, so the lexer can classify keywords
    /// without allocating.
    pub fn keyword(word: &str) -> Option<TokenKind<S>> {
        Some(match word {
            "int" => TokenKind::KwInt,
            "char" => TokenKind::KwChar,
            "void" => TokenKind::KwVoid,
            "if" => TokenKind::KwIf,
            "else" => TokenKind::KwElse,
            "while" => TokenKind::KwWhile,
            "for" => TokenKind::KwFor,
            "return" => TokenKind::KwReturn,
            "break" => TokenKind::KwBreak,
            "continue" => TokenKind::KwContinue,
            _ => return None,
        })
    }

    /// A short human-readable name used in parse error messages.
    pub fn describe(&self) -> &'static str {
        match self {
            TokenKind::Ident(_) => "identifier",
            TokenKind::Int(_) => "integer literal",
            TokenKind::Char(_) => "char literal",
            TokenKind::Str(_) => "string literal",
            TokenKind::KwInt => "`int`",
            TokenKind::KwChar => "`char`",
            TokenKind::KwVoid => "`void`",
            TokenKind::KwIf => "`if`",
            TokenKind::KwElse => "`else`",
            TokenKind::KwWhile => "`while`",
            TokenKind::KwFor => "`for`",
            TokenKind::KwReturn => "`return`",
            TokenKind::KwBreak => "`break`",
            TokenKind::KwContinue => "`continue`",
            TokenKind::LParen => "`(`",
            TokenKind::RParen => "`)`",
            TokenKind::LBrace => "`{`",
            TokenKind::RBrace => "`}`",
            TokenKind::LBracket => "`[`",
            TokenKind::RBracket => "`]`",
            TokenKind::Comma => "`,`",
            TokenKind::Semi => "`;`",
            TokenKind::Plus => "`+`",
            TokenKind::Minus => "`-`",
            TokenKind::Star => "`*`",
            TokenKind::Slash => "`/`",
            TokenKind::Percent => "`%`",
            TokenKind::Amp => "`&`",
            TokenKind::Pipe => "`|`",
            TokenKind::Caret => "`^`",
            TokenKind::Shl => "`<<`",
            TokenKind::Shr => "`>>`",
            TokenKind::AmpAmp => "`&&`",
            TokenKind::PipePipe => "`||`",
            TokenKind::Bang => "`!`",
            TokenKind::Assign => "`=`",
            TokenKind::Eq => "`==`",
            TokenKind::Ne => "`!=`",
            TokenKind::Lt => "`<`",
            TokenKind::Le => "`<=`",
            TokenKind::Gt => "`>`",
            TokenKind::Ge => "`>=`",
            TokenKind::PlusAssign => "`+=`",
            TokenKind::MinusAssign => "`-=`",
            TokenKind::PlusPlus => "`++`",
            TokenKind::MinusMinus => "`--`",
            TokenKind::Eof => "end of input",
        }
    }
}

impl<S: Into<String>> TokenKind<S> {
    /// Converts to the owned form, copying borrowed payloads.
    pub fn into_owned(self) -> TokenKind<String> {
        match self {
            TokenKind::Ident(s) => TokenKind::Ident(s.into()),
            TokenKind::Str(s) => TokenKind::Str(s.into()),
            TokenKind::Int(v) => TokenKind::Int(v),
            TokenKind::Char(c) => TokenKind::Char(c),
            TokenKind::KwInt => TokenKind::KwInt,
            TokenKind::KwChar => TokenKind::KwChar,
            TokenKind::KwVoid => TokenKind::KwVoid,
            TokenKind::KwIf => TokenKind::KwIf,
            TokenKind::KwElse => TokenKind::KwElse,
            TokenKind::KwWhile => TokenKind::KwWhile,
            TokenKind::KwFor => TokenKind::KwFor,
            TokenKind::KwReturn => TokenKind::KwReturn,
            TokenKind::KwBreak => TokenKind::KwBreak,
            TokenKind::KwContinue => TokenKind::KwContinue,
            TokenKind::LParen => TokenKind::LParen,
            TokenKind::RParen => TokenKind::RParen,
            TokenKind::LBrace => TokenKind::LBrace,
            TokenKind::RBrace => TokenKind::RBrace,
            TokenKind::LBracket => TokenKind::LBracket,
            TokenKind::RBracket => TokenKind::RBracket,
            TokenKind::Comma => TokenKind::Comma,
            TokenKind::Semi => TokenKind::Semi,
            TokenKind::Plus => TokenKind::Plus,
            TokenKind::Minus => TokenKind::Minus,
            TokenKind::Star => TokenKind::Star,
            TokenKind::Slash => TokenKind::Slash,
            TokenKind::Percent => TokenKind::Percent,
            TokenKind::Amp => TokenKind::Amp,
            TokenKind::Pipe => TokenKind::Pipe,
            TokenKind::Caret => TokenKind::Caret,
            TokenKind::Shl => TokenKind::Shl,
            TokenKind::Shr => TokenKind::Shr,
            TokenKind::AmpAmp => TokenKind::AmpAmp,
            TokenKind::PipePipe => TokenKind::PipePipe,
            TokenKind::Bang => TokenKind::Bang,
            TokenKind::Assign => TokenKind::Assign,
            TokenKind::Eq => TokenKind::Eq,
            TokenKind::Ne => TokenKind::Ne,
            TokenKind::Lt => TokenKind::Lt,
            TokenKind::Le => TokenKind::Le,
            TokenKind::Gt => TokenKind::Gt,
            TokenKind::Ge => TokenKind::Ge,
            TokenKind::PlusAssign => TokenKind::PlusAssign,
            TokenKind::MinusAssign => TokenKind::MinusAssign,
            TokenKind::PlusPlus => TokenKind::PlusPlus,
            TokenKind::MinusMinus => TokenKind::MinusMinus,
            TokenKind::Eof => TokenKind::Eof,
        }
    }
}

impl<S: AsRef<str>> fmt::Display for TokenKind<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "{}", s.as_ref()),
            TokenKind::Int(v) => write!(f, "{v}"),
            TokenKind::Char(c) => write!(f, "'{c}'"),
            TokenKind::Str(s) => write!(f, "{:?}", s.as_ref()),
            other => write!(f, "{}", other.describe().trim_matches('`')),
        }
    }
}

/// A lexical token: a [`TokenKind`] plus its source [`Span`].
#[derive(Debug, Clone, PartialEq)]
pub struct Token<S = String> {
    /// What kind of token this is.
    pub kind: TokenKind<S>,
    /// Where in the source it came from.
    pub span: Span,
}

impl<S> Token<S> {
    /// Creates a token from its parts.
    pub fn new(kind: TokenKind<S>, span: Span) -> Self {
        Token { kind, span }
    }
}

impl<S: AsRef<str>> Token<S> {
    /// Returns the identifier text if this token is an identifier.
    pub fn as_ident(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Ident(s) => Some(s.as_ref()),
            _ => None,
        }
    }
}

impl<S: Into<String>> Token<S> {
    /// Converts to the owned form, copying borrowed payloads.
    pub fn into_owned(self) -> Token<String> {
        Token { kind: self.kind.into_owned(), span: self.span }
    }
}

/// A comment captured during lexing.
///
/// Comments are trivia: they do not participate in parsing, but the corpus
/// generator and the multimodal feature extractors consume them, so the lexer
/// preserves them on the side.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment<S = String> {
    /// Comment text without the `//` or `/* */` delimiters, trimmed.
    pub text: S,
    /// Location of the whole comment, delimiters included.
    pub span: Span,
    /// Location of exactly [`text`](Self::text): the trimmed payload, so
    /// `&source[text_span.start..text_span.end] == text`. Empty (and
    /// positioned at the end of the leading whitespace) for blank comments.
    pub text_span: Span,
    /// Whether this was a block (`/* */`) comment.
    pub block: bool,
}

impl<S: Into<String>> Comment<S> {
    /// Converts to the owned form, copying borrowed payloads.
    pub fn into_owned(self) -> Comment<String> {
        Comment {
            text: self.text.into(),
            span: self.span,
            text_span: self.text_span,
            block: self.block,
        }
    }
}

/// Borrowed token kind: payloads are `Cow` slices of the source buffer.
pub type TokenKindRef<'a> = TokenKind<Cow<'a, str>>;
/// Borrowed token over the source buffer.
pub type TokenRef<'a> = Token<Cow<'a, str>>;
/// Borrowed comment over the source buffer.
pub type CommentRef<'a> = Comment<Cow<'a, str>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_resolve() {
        assert_eq!(TokenKind::<String>::keyword("int"), Some(TokenKind::KwInt));
        assert_eq!(TokenKind::<String>::keyword("while"), Some(TokenKind::KwWhile));
        assert_eq!(TokenKind::<String>::keyword("banana"), None);
    }

    #[test]
    fn ident_accessor() {
        let t = Token::new(TokenKind::Ident("x".to_string()), Span::dummy());
        assert_eq!(t.as_ident(), Some("x"));
        let t = Token::<String>::new(TokenKind::Semi, Span::dummy());
        assert_eq!(t.as_ident(), None);
    }

    #[test]
    fn describe_is_stable() {
        assert_eq!(TokenKind::<String>::Semi.describe(), "`;`");
        assert_eq!(TokenKind::Ident("a".to_string()).describe(), "identifier");
    }

    #[test]
    fn borrowed_tokens_convert_to_owned() {
        let b: TokenRef<'_> = Token::new(TokenKind::Ident(Cow::Borrowed("buf")), Span::dummy());
        let o = b.into_owned();
        assert_eq!(o.kind, TokenKind::Ident("buf".to_string()));
    }
}
