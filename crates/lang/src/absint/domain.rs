//! Lattice and transfer-function contracts shared by every abstract domain.

use crate::ast::{Expr, ExprKind, Function, UnOp};
use crate::cfg::CfgInst;
use std::collections::BTreeMap;
use std::fmt;

/// An element of a join-semilattice with a widening operator.
///
/// Implementations must guarantee that repeated `join`/`widen` applications
/// stabilise: either the lattice has finite height, or `widen` jumps every
/// strictly ascending chain to a fixed point in a bounded number of steps.
pub trait AbstractValue: Clone + PartialEq + fmt::Debug + fmt::Display {
    /// The top element ("no information"). Variables absent from an [`Env`]
    /// implicitly hold this value, so `top` must never be report-worthy.
    fn top() -> Self;

    /// Least upper bound of `self` and `other`.
    fn join(&self, other: &Self) -> Self;

    /// Widening `self ∇ other` where `self` is the previous iterate. The
    /// default is `join`, which is only correct for finite-height lattices.
    fn widen(&self, other: &Self) -> Self {
        self.join(other)
    }
}

/// Abstract state at a program point: a map from variable name to abstract
/// value, plus a reachability flag. An unreachable env is the bottom state —
/// it contributes nothing at join points (which is why the CFG builder's
/// unreachable-edge pruning matters: dead blocks never even reach a join).
///
/// Variables bound to [`AbstractValue::top`] are canonically *absent*, so
/// structural equality doubles as lattice equality.
#[derive(Debug, Clone, PartialEq)]
pub struct Env<V> {
    vars: BTreeMap<String, V>,
    reachable: bool,
}

impl<V: AbstractValue> Env<V> {
    /// The bottom state: no path reaches this point yet.
    pub fn bottom() -> Self {
        Env { vars: BTreeMap::new(), reachable: false }
    }

    /// A reachable state with no variable information (everything top).
    pub fn reachable_top() -> Self {
        Env { vars: BTreeMap::new(), reachable: true }
    }

    /// Whether any path reaches this point.
    pub fn is_reachable(&self) -> bool {
        self.reachable
    }

    /// The abstract value of `name` (top when untracked).
    pub fn get(&self, name: &str) -> V {
        self.vars.get(name).cloned().unwrap_or_else(V::top)
    }

    /// Binds `name` to `v`, canonicalising top to absence.
    pub fn set(&mut self, name: &str, v: V) {
        if v == V::top() {
            self.vars.remove(name);
        } else {
            self.vars.insert(name.to_string(), v);
        }
    }

    /// Drops all information about `name` (≡ top).
    pub fn havoc(&mut self, name: &str) {
        self.vars.remove(name);
    }

    /// Iterates over explicitly tracked `(variable, value)` facts in
    /// deterministic (sorted) order.
    pub fn facts(&self) -> impl Iterator<Item = (&str, &V)> {
        self.vars.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Least upper bound of two states. Variables tracked on only one side
    /// join with implicit top and therefore drop out.
    pub fn join(&self, other: &Self) -> Self {
        if !self.reachable {
            return other.clone();
        }
        if !other.reachable {
            return self.clone();
        }
        let mut vars = BTreeMap::new();
        for (k, a) in &self.vars {
            if let Some(b) = other.vars.get(k) {
                let j = a.join(b);
                if j != V::top() {
                    vars.insert(k.clone(), j);
                }
            }
        }
        Env { vars, reachable: true }
    }

    /// Widening: like [`Env::join`] but uses the value-level widening for
    /// variables tracked on both sides (`self` is the previous iterate).
    pub fn widen(&self, other: &Self) -> Self {
        if !self.reachable {
            return other.clone();
        }
        if !other.reachable {
            return self.clone();
        }
        let mut vars = BTreeMap::new();
        for (k, a) in &self.vars {
            if let Some(b) = other.vars.get(k) {
                let w = a.widen(b);
                if w != V::top() {
                    vars.insert(k.clone(), w);
                }
            }
        }
        Env { vars, reachable: true }
    }
}

impl<V: AbstractValue> fmt::Display for Env<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.reachable {
            return write!(f, "⊥");
        }
        write!(f, "{{")?;
        for (i, (k, v)) in self.vars.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{k}: {v}")?;
        }
        write!(f, "}}")
    }
}

/// An abstract domain: a value lattice plus the transfer functions that
/// interpret CFG instructions and branch outcomes over it.
///
/// Domains carry their own interprocedural summary table (function name →
/// abstract return value) so call expressions can be evaluated without the
/// solver knowing anything about the call graph.
pub trait Domain {
    /// The value lattice.
    type Value: AbstractValue;

    /// Stable domain name, used in metrics keys and evidence traces.
    fn name(&self) -> &'static str;

    /// Entry state for a function (e.g. parameters marked initialized).
    fn entry_env(&self, _func: &Function) -> Env<Self::Value> {
        Env::reachable_top()
    }

    /// Applies one instruction to the state.
    fn transfer(&self, env: &mut Env<Self::Value>, inst: &CfgInst);

    /// Evaluates an expression in a state (used for return summaries and by
    /// checkers). Domains without a natural expression semantics return top.
    fn eval(&self, _env: &Env<Self::Value>, _e: &Expr) -> Self::Value {
        Self::Value::top()
    }

    /// Refines the state along a branch edge: `taken` is `true` on the first
    /// successor of a [`CfgInst::Branch`] block, `false` on the fallthrough.
    fn refine(&self, _env: &mut Env<Self::Value>, _cond: &Expr, _taken: bool) {}
}

/// Variable names read by an instruction, excluding variables that only
/// appear under `&` (address-of is not a read of the value — it typically
/// hands the location to a callee as an out-parameter).
pub fn inst_reads(inst: &CfgInst) -> Vec<&str> {
    use crate::ast::LValue;
    let mut out = Vec::new();
    match inst {
        CfgInst::Decl { init, .. } => {
            if let Some(e) = init {
                collect_value_reads(e, &mut out);
            }
        }
        CfgInst::Assign { target, value } => {
            match target {
                LValue::Var(_) => {}
                LValue::Deref(e) => collect_value_reads(e, &mut out),
                LValue::Index(b, i) => {
                    collect_value_reads(b, &mut out);
                    collect_value_reads(i, &mut out);
                }
            }
            collect_value_reads(value, &mut out);
        }
        CfgInst::Expr(e) | CfgInst::Branch(e) => collect_value_reads(e, &mut out),
        CfgInst::Return(e) => {
            if let Some(e) = e {
                collect_value_reads(e, &mut out);
            }
        }
    }
    out
}

fn collect_value_reads<'a>(e: &'a Expr, out: &mut Vec<&'a str>) {
    match &e.kind {
        ExprKind::Var(name) => out.push(name),
        ExprKind::Unary(UnOp::AddrOf, inner) => {
            // `&x` is not a value read of `x`; still descend into nested
            // non-variable operands like `&a[i]`.
            if !matches!(inner.kind, ExprKind::Var(_)) {
                collect_value_reads(inner, out);
            }
        }
        ExprKind::Unary(_, inner) => collect_value_reads(inner, out),
        ExprKind::Binary(_, l, r) => {
            collect_value_reads(l, out);
            collect_value_reads(r, out);
        }
        ExprKind::Call(_, args) => args.iter().for_each(|a| collect_value_reads(a, out)),
        ExprKind::Index(b, i) => {
            collect_value_reads(b, out);
            collect_value_reads(i, out);
        }
        ExprKind::Int(_) | ExprKind::Char(_) | ExprKind::Str(_) => {}
    }
}

/// Variable names that appear under a unary `&` anywhere in the instruction;
/// a callee receiving `&x` may initialise or overwrite `x`, so domains havoc
/// (or promote) these after the instruction executes.
pub fn inst_addr_taken(inst: &CfgInst) -> Vec<&str> {
    fn visit<'a>(e: &'a Expr, out: &mut Vec<&'a str>) {
        e.walk(&mut |sub| {
            if let ExprKind::Unary(UnOp::AddrOf, inner) = &sub.kind {
                if let ExprKind::Var(name) = &inner.kind {
                    out.push(name.as_str());
                }
            }
        });
    }
    let mut out = Vec::new();
    match inst {
        CfgInst::Decl { init: Some(e), .. }
        | CfgInst::Expr(e)
        | CfgInst::Branch(e)
        | CfgInst::Return(Some(e)) => visit(e, &mut out),
        CfgInst::Assign { value, .. } => visit(value, &mut out),
        _ => {}
    }
    out
}
