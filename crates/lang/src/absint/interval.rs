//! Interval domain: each variable is over-approximated by a range
//! `[lo, hi]` of possible values.
//!
//! Bounds are stored as `i128` with `i128::MIN`/`i128::MAX` playing −∞/+∞,
//! which lets interval arithmetic on 64-bit program values proceed without
//! overflow checks on the happy path (any sum or product of two in-range
//! `i64`s fits in `i128`; the rare `i128` overflow saturates to ±∞).

use super::domain::{AbstractValue, Domain, Env};
use crate::ast::{BinOp, Expr, ExprKind, Function, Type, UnOp};
use crate::cfg::CfgInst;
use std::collections::BTreeMap;
use std::fmt;

/// −∞ sentinel.
const NINF: i128 = i128::MIN;
/// +∞ sentinel.
const PINF: i128 = i128::MAX;

/// A (possibly empty) integer range. `lo > hi` encodes bottom; the canonical
/// bottom is `[1, 0]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    lo: i128,
    hi: i128,
}

impl Interval {
    /// The empty interval (bottom).
    pub const BOTTOM: Interval = Interval { lo: 1, hi: 0 };

    /// The full range (top).
    pub const TOP: Interval = Interval { lo: NINF, hi: PINF };

    /// A single concrete value.
    pub fn point(v: i64) -> Interval {
        Interval { lo: v as i128, hi: v as i128 }
    }

    /// The range `[lo, hi]` (bottom when `lo > hi`).
    pub fn range(lo: i128, hi: i128) -> Interval {
        if lo > hi {
            Interval::BOTTOM
        } else {
            Interval { lo, hi }
        }
    }

    /// Whether this is the empty interval.
    pub fn is_bottom(&self) -> bool {
        self.lo > self.hi
    }

    /// Lower bound (meaningless for bottom).
    pub fn lo(&self) -> i128 {
        self.lo
    }

    /// Upper bound (meaningless for bottom).
    pub fn hi(&self) -> i128 {
        self.hi
    }

    /// Whether this is exactly the concrete value `v`.
    pub fn is_point(&self, v: i64) -> bool {
        self.lo == v as i128 && self.hi == v as i128
    }

    /// Whether `v` is a possible value.
    pub fn contains(&self, v: i64) -> bool {
        !self.is_bottom() && self.lo <= v as i128 && v as i128 <= self.hi
    }

    /// Greatest lower bound.
    pub fn meet(&self, other: &Interval) -> Interval {
        Interval::range(self.lo.max(other.lo), self.hi.min(other.hi))
    }

    /// Whether every value in the interval is a valid 64-bit integer; a
    /// non-bottom interval entirely outside the `i64` range is a proof of
    /// arithmetic overflow.
    pub fn fits_i64(&self) -> bool {
        self.is_bottom() || (self.hi >= i64::MIN as i128 && self.lo <= i64::MAX as i128)
    }

    pub(crate) fn add(&self, other: &Interval) -> Interval {
        if self.is_bottom() || other.is_bottom() {
            return Interval::BOTTOM;
        }
        Interval::range(badd(self.lo, other.lo), badd(self.hi, other.hi))
    }

    pub(crate) fn sub(&self, other: &Interval) -> Interval {
        if self.is_bottom() || other.is_bottom() {
            return Interval::BOTTOM;
        }
        Interval::range(badd(self.lo, bneg(other.hi)), badd(self.hi, bneg(other.lo)))
    }

    pub(crate) fn mul(&self, other: &Interval) -> Interval {
        if self.is_bottom() || other.is_bottom() {
            return Interval::BOTTOM;
        }
        let products = [
            bmul(self.lo, other.lo),
            bmul(self.lo, other.hi),
            bmul(self.hi, other.lo),
            bmul(self.hi, other.hi),
        ];
        Interval::range(
            products.iter().copied().min().unwrap(),
            products.iter().copied().max().unwrap(),
        )
    }

    pub(crate) fn div(&self, other: &Interval) -> Interval {
        if self.is_bottom() || other.is_bottom() {
            return Interval::BOTTOM;
        }
        // Precise only for a finite non-zero constant divisor; anything else
        // (a range straddling zero, an unknown) goes to top. The language's
        // interpreter defines x/0 == 0, so zero divisors stay representable.
        match other.as_finite_point() {
            Some(0) => Interval::point(0),
            Some(k) if self.lo != NINF && self.hi != PINF => {
                let a = self.lo / k as i128;
                let b = self.hi / k as i128;
                Interval::range(a.min(b), a.max(b))
            }
            _ => Interval::TOP,
        }
    }

    pub(crate) fn rem(&self, other: &Interval) -> Interval {
        if self.is_bottom() || other.is_bottom() {
            return Interval::BOTTOM;
        }
        match other.as_finite_point() {
            Some(0) => Interval::point(0),
            Some(k) => {
                let m = (k as i128).abs() - 1;
                if self.lo >= 0 {
                    Interval::range(0, m)
                } else {
                    Interval::range(-m, m)
                }
            }
            _ => Interval::TOP,
        }
    }

    pub(crate) fn neg(&self) -> Interval {
        if self.is_bottom() {
            return Interval::BOTTOM;
        }
        Interval::range(bneg(self.hi), bneg(self.lo))
    }

    pub(crate) fn as_finite_point(&self) -> Option<i64> {
        if self.lo == self.hi && self.lo != NINF && self.lo != PINF {
            i64::try_from(self.lo).ok()
        } else {
            None
        }
    }
}

impl AbstractValue for Interval {
    fn top() -> Self {
        Interval::TOP
    }

    fn join(&self, other: &Self) -> Self {
        if self.is_bottom() {
            return *other;
        }
        if other.is_bottom() {
            return *self;
        }
        Interval::range(self.lo.min(other.lo), self.hi.max(other.hi))
    }

    fn widen(&self, other: &Self) -> Self {
        if self.is_bottom() {
            return *other;
        }
        if other.is_bottom() {
            return *self;
        }
        // Standard interval widening: any bound still moving jumps to ±∞, so
        // a variable stabilises after at most two widenings.
        let lo = if other.lo < self.lo { NINF } else { self.lo };
        let hi = if other.hi > self.hi { PINF } else { self.hi };
        Interval::range(lo, hi)
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_bottom() {
            return write!(f, "⊥");
        }
        let bound = |b: i128, inf: &str| {
            if b == NINF || b == PINF {
                inf.to_string()
            } else {
                b.to_string()
            }
        };
        write!(f, "[{}, {}]", bound(self.lo, "-inf"), bound(self.hi, "+inf"))
    }
}

pub(crate) fn badd(a: i128, b: i128) -> i128 {
    if a == NINF || b == NINF {
        NINF
    } else if a == PINF || b == PINF {
        PINF
    } else {
        a.checked_add(b).unwrap_or(if a > 0 { PINF } else { NINF })
    }
}

pub(crate) fn bneg(a: i128) -> i128 {
    if a == NINF {
        PINF
    } else if a == PINF {
        NINF
    } else {
        -a
    }
}

fn bmul(a: i128, b: i128) -> i128 {
    if a == 0 || b == 0 {
        return 0;
    }
    let negative = (a < 0) != (b < 0);
    if a == NINF || a == PINF || b == NINF || b == PINF {
        return if negative { NINF } else { PINF };
    }
    a.checked_mul(b).unwrap_or(if negative { NINF } else { PINF })
}

/// Interval transfer functions over the mini-C instruction set, with an
/// interprocedural summary table mapping function names to their abstract
/// return values (absent entries — externals — evaluate to top).
#[derive(Debug, Clone, Default)]
pub struct IntervalDomain {
    /// Abstract return value per analysed function.
    pub summaries: BTreeMap<String, Interval>,
}

impl IntervalDomain {
    /// A domain with the given interprocedural summaries.
    pub fn with_summaries(summaries: BTreeMap<String, Interval>) -> Self {
        IntervalDomain { summaries }
    }

    fn eval_expr(&self, env: &Env<Interval>, e: &Expr) -> Interval {
        match &e.kind {
            ExprKind::Int(v) => Interval::point(*v),
            ExprKind::Char(c) => Interval::point(*c as i64),
            ExprKind::Str(_) => Interval::TOP,
            ExprKind::Var(name) => env.get(name),
            ExprKind::Unary(op, inner) => {
                let v = self.eval_expr(env, inner);
                match op {
                    UnOp::Neg => v.neg(),
                    UnOp::Not => Interval::range(0, 1),
                    UnOp::Deref | UnOp::AddrOf => Interval::TOP,
                }
            }
            ExprKind::Binary(op, l, r) => {
                let a = self.eval_expr(env, l);
                let b = self.eval_expr(env, r);
                match op {
                    BinOp::Add => a.add(&b),
                    BinOp::Sub => a.sub(&b),
                    BinOp::Mul => a.mul(&b),
                    BinOp::Div => a.div(&b),
                    BinOp::Rem => a.rem(&b),
                    op if op.is_comparison() => Interval::range(0, 1),
                    _ => Interval::TOP,
                }
            }
            ExprKind::Call(name, _) => {
                self.summaries.get(name.as_str()).copied().unwrap_or(Interval::TOP)
            }
            ExprKind::Index(_, _) => Interval::TOP,
        }
    }

    /// Applies the comparison `var_value (op) rhs` as a constraint on
    /// `var_value`, returning the refined interval.
    fn constrain(var_value: Interval, op: BinOp, rhs: &Interval) -> Interval {
        if rhs.is_bottom() {
            return var_value;
        }
        match op {
            BinOp::Lt => var_value.meet(&Interval::range(NINF, badd(rhs.hi, -1))),
            BinOp::Le => var_value.meet(&Interval::range(NINF, rhs.hi)),
            BinOp::Gt => var_value.meet(&Interval::range(badd(rhs.lo, 1), PINF)),
            BinOp::Ge => var_value.meet(&Interval::range(rhs.lo, PINF)),
            BinOp::Eq => var_value.meet(rhs),
            BinOp::Ne => match rhs.as_finite_point() {
                // Only trims when the excluded point is an endpoint.
                Some(k) if var_value.lo == k as i128 => {
                    Interval::range(var_value.lo + 1, var_value.hi)
                }
                Some(k) if var_value.hi == k as i128 => {
                    Interval::range(var_value.lo, var_value.hi - 1)
                }
                _ => var_value,
            },
            _ => var_value,
        }
    }

    fn negate_cmp(op: BinOp) -> Option<BinOp> {
        Some(match op {
            BinOp::Lt => BinOp::Ge,
            BinOp::Le => BinOp::Gt,
            BinOp::Gt => BinOp::Le,
            BinOp::Ge => BinOp::Lt,
            BinOp::Eq => BinOp::Ne,
            BinOp::Ne => BinOp::Eq,
            _ => return None,
        })
    }

    fn flip_cmp(op: BinOp) -> BinOp {
        match op {
            BinOp::Lt => BinOp::Gt,
            BinOp::Le => BinOp::Ge,
            BinOp::Gt => BinOp::Lt,
            BinOp::Ge => BinOp::Le,
            other => other,
        }
    }
}

impl Domain for IntervalDomain {
    type Value = Interval;

    fn name(&self) -> &'static str {
        "interval"
    }

    fn entry_env(&self, _func: &Function) -> Env<Interval> {
        Env::reachable_top()
    }

    fn transfer(&self, env: &mut Env<Interval>, inst: &CfgInst) {
        match inst {
            CfgInst::Decl { name, ty, init } => {
                let v = match (ty, init) {
                    // Arrays are storage, not scalar values.
                    (Type::Array(_, _), _) => Interval::TOP,
                    (_, Some(e)) => self.eval_expr(env, e),
                    (_, None) => Interval::TOP,
                };
                env.set(name, v);
            }
            CfgInst::Assign { target, value } => {
                if let crate::ast::LValue::Var(name) = target {
                    let v = self.eval_expr(env, value);
                    env.set(name, v);
                }
                // Indirect stores kill nothing (no alias tracking); checkers
                // only rely on must-facts derived from literal constants.
            }
            CfgInst::Expr(_) | CfgInst::Branch(_) | CfgInst::Return(_) => {}
        }
        for name in super::domain::inst_addr_taken(inst) {
            env.havoc(name);
        }
    }

    fn eval(&self, env: &Env<Interval>, e: &Expr) -> Interval {
        self.eval_expr(env, e)
    }

    fn refine(&self, env: &mut Env<Interval>, cond: &Expr, taken: bool) {
        match &cond.kind {
            ExprKind::Unary(UnOp::Not, inner) => self.refine(env, inner, !taken),
            ExprKind::Var(name) if !taken => {
                // `if (x)` not taken ⇒ x == 0.
                let refined = env.get(name).meet(&Interval::point(0));
                env.set(name, refined);
            }
            ExprKind::Binary(op, l, r) if op.is_comparison() => {
                let (op, var, other) = match (&l.kind, &r.kind) {
                    (ExprKind::Var(v), _) => (*op, v, r),
                    (_, ExprKind::Var(v)) => (Self::flip_cmp(*op), v, l),
                    _ => return,
                };
                let op = if taken {
                    op
                } else {
                    match Self::negate_cmp(op) {
                        Some(n) => n,
                        None => return,
                    }
                };
                let rhs = self.eval_expr(env, other);
                let refined = Self::constrain(env.get(var), op, &rhs);
                env.set(var, refined);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn points_and_arithmetic() {
        let a = Interval::point(3);
        let b = Interval::point(4);
        assert!(a.mul(&b).is_point(12));
        assert!(a.add(&b).is_point(7));
        assert!(a.sub(&b).is_point(-1));
        assert!(Interval::range(0, 10).contains(5));
        assert!(!Interval::range(0, 10).contains(11));
    }

    #[test]
    fn join_and_widen() {
        let a = Interval::range(0, 3);
        let b = Interval::range(2, 9);
        assert_eq!(a.join(&b), Interval::range(0, 9));
        let w = a.widen(&Interval::range(0, 4));
        assert_eq!(w.hi(), PINF, "unstable upper bound must widen to +inf");
        assert_eq!(w.lo(), 0, "stable lower bound must be kept");
    }

    #[test]
    fn division_is_conservative_but_constant_folds() {
        let a = Interval::range(10, 20);
        assert_eq!(a.div(&Interval::point(2)), Interval::range(5, 10));
        assert_eq!(a.div(&Interval::point(0)), Interval::point(0), "interp defines x/0 == 0");
        assert_eq!(a.div(&Interval::range(1, 2)), Interval::TOP);
    }

    #[test]
    fn overflow_saturates_to_infinity() {
        let big = Interval::point(i64::MAX);
        let sq = big.mul(&big);
        assert!(!sq.is_bottom());
        assert!(sq.lo() > i64::MAX as i128, "certain overflow must be provable");
        assert!(!sq.fits_i64());
    }

    #[test]
    fn bottom_propagates() {
        assert!(Interval::BOTTOM.add(&Interval::point(1)).is_bottom());
        assert_eq!(Interval::BOTTOM.join(&Interval::point(1)), Interval::point(1));
    }
}
