//! Ownership domain: tracks the allocation state of heap-handle variables so
//! use-after-free (CWE-416) and double-free (CWE-415) become *must-facts*
//! instead of syntactic pattern matches.
//!
//! The lattice is `Bottom < {Owned, Freed, Moved} < MaybeFreed < Unknown`
//! (top). The three atoms are pairwise incomparable, so the join of any two
//! *distinct* atoms is `MaybeFreed` — "this handle is possibly no longer
//! owned on some path". That makes the join rank-driven and therefore
//! associative (an M3-shaped lattice of height 4). `Unknown` (a bare
//! parameter, an unrecognised callee's return) is never report-worthy, so
//! code outside the allocator vocabulary stays silent.
//!
//! A checker distinguishes must from may: a *use* of a `Freed` handle is a
//! high-confidence CWE-416, a use of a `MaybeFreed` handle a medium one;
//! a *free* of a `Freed` handle is a high-confidence CWE-415.

use super::domain::{AbstractValue, Domain, Env};
use crate::ast::{Expr, ExprKind, Function};
use crate::cfg::CfgInst;
use std::collections::BTreeMap;
use std::fmt;

/// Functions whose return value is a freshly owned heap handle.
pub const ALLOC_FNS: [&str; 3] = ["alloc_buffer", "make_scratch", "reserve_block"];

/// Functions that release their first argument's storage.
pub const FREE_FNS: [&str; 2] = ["free_mem", "release_block"];

/// Functions that take over ownership of their first argument (the caller
/// must no longer free it, but reads remain valid).
pub const HANDOFF_FNS: [&str; 2] = ["store_handle", "stash_buffer"];

/// Abstract ownership state of a heap handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ownership {
    /// Unreachable / no value.
    Bottom,
    /// Definitely a live, caller-owned allocation on every path.
    Owned,
    /// Definitely released on every path — any use is a proven CWE-416 and
    /// any further free a proven CWE-415.
    Freed,
    /// Ownership definitely handed off (stored elsewhere); a further free
    /// here would be a double release by the eventual owner.
    Moved,
    /// No longer owned on *some* path (e.g. freed in one branch only).
    MaybeFreed,
    /// No information (top) — parameters, unrecognised callees.
    Unknown,
}

impl Ownership {
    #[cfg(test)]
    fn rank(self) -> u8 {
        match self {
            Ownership::Bottom => 0,
            Ownership::Owned | Ownership::Freed | Ownership::Moved => 1,
            Ownership::MaybeFreed => 2,
            Ownership::Unknown => 3,
        }
    }

    /// Whether reading the handle's storage is definitely invalid.
    pub fn use_is_proven_bug(self) -> bool {
        self == Ownership::Freed
    }

    /// Whether reading the handle's storage is invalid on some path.
    pub fn use_is_possible_bug(self) -> bool {
        self == Ownership::MaybeFreed
    }

    /// Whether releasing the handle again is definitely a double release.
    pub fn free_is_proven_bug(self) -> bool {
        matches!(self, Ownership::Freed | Ownership::Moved)
    }

    /// Whether releasing the handle is a double release on some path.
    pub fn free_is_possible_bug(self) -> bool {
        self == Ownership::MaybeFreed
    }
}

impl AbstractValue for Ownership {
    fn top() -> Self {
        Ownership::Unknown
    }

    fn join(&self, other: &Self) -> Self {
        use Ownership::*;
        match (self, other) {
            (a, b) if a == b => *a,
            (Bottom, x) | (x, Bottom) => *x,
            (Unknown, _) | (_, Unknown) => Unknown,
            // Any mix of distinct atoms — and any atom with MaybeFreed —
            // means ownership is uncertain on some path.
            _ => MaybeFreed,
        }
    }
}

impl fmt::Display for Ownership {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Ownership::Bottom => "bottom",
            Ownership::Owned => "owned",
            Ownership::Freed => "freed",
            Ownership::Moved => "moved",
            Ownership::MaybeFreed => "maybe-freed",
            Ownership::Unknown => "unknown",
        };
        write!(f, "{s}")
    }
}

/// Ownership transfer functions, with interprocedural return summaries.
#[derive(Debug, Clone, Default)]
pub struct OwnershipDomain {
    /// Abstract return ownership per analysed function (a local wrapper
    /// around an allocator propagates `Owned` to its callers). Externals
    /// outside [`ALLOC_FNS`] evaluate to top.
    pub summaries: BTreeMap<String, Ownership>,
}

impl OwnershipDomain {
    /// A domain with the given interprocedural summaries.
    pub fn with_summaries(summaries: BTreeMap<String, Ownership>) -> Self {
        OwnershipDomain { summaries }
    }

    fn eval_expr(&self, env: &Env<Ownership>, e: &Expr) -> Ownership {
        match &e.kind {
            ExprKind::Var(name) => env.get(name),
            ExprKind::Call(name, _) => {
                if ALLOC_FNS.contains(&name.as_str()) {
                    Ownership::Owned
                } else {
                    self.summaries.get(name.as_str()).copied().unwrap_or(Ownership::Unknown)
                }
            }
            _ => Ownership::Unknown,
        }
    }

    /// Applies the side effects of every `free`/`handoff` call appearing in
    /// `e` to the state (the released variable's new state).
    fn apply_release_effects(env: &mut Env<Ownership>, e: &Expr) {
        e.walk(&mut |sub| {
            if let ExprKind::Call(name, args) = &sub.kind {
                let after = if FREE_FNS.contains(&name.as_str()) {
                    Ownership::Freed
                } else if HANDOFF_FNS.contains(&name.as_str()) {
                    Ownership::Moved
                } else {
                    return;
                };
                if let Some(Expr { kind: ExprKind::Var(v), .. }) = args.first() {
                    env.set(v, after);
                }
            }
        });
    }
}

impl Domain for OwnershipDomain {
    type Value = Ownership;

    fn name(&self) -> &'static str {
        "ownership"
    }

    fn entry_env(&self, _func: &Function) -> Env<Ownership> {
        Env::reachable_top()
    }

    fn transfer(&self, env: &mut Env<Ownership>, inst: &CfgInst) {
        // Release effects first, then bindings: `p = alloc_buffer(n)` after
        // a free re-establishes ownership of the (re-bound) handle.
        match inst {
            CfgInst::Decl { init: Some(e), .. }
            | CfgInst::Expr(e)
            | CfgInst::Branch(e)
            | CfgInst::Return(Some(e)) => Self::apply_release_effects(env, e),
            CfgInst::Assign { value, .. } => Self::apply_release_effects(env, value),
            _ => {}
        }
        match inst {
            CfgInst::Decl { name, init, .. } => {
                let v = match init {
                    Some(e) => self.eval_expr(env, e),
                    None => Ownership::Unknown,
                };
                env.set(name, v);
            }
            CfgInst::Assign { target, value } => {
                if let crate::ast::LValue::Var(name) = target {
                    let v = self.eval_expr(env, value);
                    env.set(name, v);
                }
            }
            CfgInst::Expr(_) | CfgInst::Branch(_) | CfgInst::Return(_) => {}
        }
        for name in super::domain::inst_addr_taken(inst) {
            env.havoc(name);
        }
    }

    fn eval(&self, env: &Env<Ownership>, e: &Expr) -> Ownership {
        self.eval_expr(env, e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [Ownership; 6] = [
        Ownership::Bottom,
        Ownership::Owned,
        Ownership::Freed,
        Ownership::Moved,
        Ownership::MaybeFreed,
        Ownership::Unknown,
    ];

    #[test]
    fn join_is_commutative_idempotent_and_rank_monotone() {
        for a in ALL {
            assert_eq!(a.join(&a), a, "idempotence for {a:?}");
            for b in ALL {
                let j = a.join(&b);
                assert_eq!(j, b.join(&a), "commutativity for {a:?} ⊔ {b:?}");
                assert!(j.rank() >= a.rank().max(b.rank()), "{a:?} ⊔ {b:?} = {j:?}");
            }
        }
    }

    #[test]
    fn join_is_associative() {
        for a in ALL {
            for b in ALL {
                for c in ALL {
                    assert_eq!(
                        a.join(&b).join(&c),
                        a.join(&b.join(&c)),
                        "associativity for {a:?}, {b:?}, {c:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn distinct_atoms_join_to_maybe_freed() {
        use Ownership::*;
        assert_eq!(Owned.join(&Freed), MaybeFreed);
        assert_eq!(Freed.join(&Moved), MaybeFreed);
        assert_eq!(Owned.join(&MaybeFreed), MaybeFreed);
        assert_eq!(Unknown.join(&Freed), Unknown, "no report without tracked provenance");
        assert_eq!(Bottom.join(&Freed), Freed);
    }

    #[test]
    fn widening_terminates_on_every_ascending_chain() {
        // Finite height 4: the default widen (= join) stabilises any chain
        // in at most three climbs.
        for start in ALL {
            let mut cur = start;
            let mut climbs = 0;
            for next in ALL {
                let w = cur.widen(&next);
                if w != cur {
                    climbs += 1;
                    cur = w;
                }
            }
            assert!(climbs <= 3, "chain from {start:?} climbed {climbs} times");
        }
    }

    #[test]
    fn bug_predicates_match_the_report_policy() {
        use Ownership::*;
        assert!(Freed.use_is_proven_bug());
        assert!(MaybeFreed.use_is_possible_bug());
        assert!(!Moved.use_is_proven_bug(), "reads stay valid after a handoff");
        assert!(Freed.free_is_proven_bug());
        assert!(Moved.free_is_proven_bug(), "the new owner frees; we must not");
        assert!(MaybeFreed.free_is_possible_bug());
        assert!(!Unknown.use_is_proven_bug() && !Unknown.free_is_proven_bug());
        assert!(!Owned.use_is_proven_bug() && !Owned.free_is_proven_bug());
    }
}
