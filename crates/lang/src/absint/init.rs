//! Definite-initialization domain: tracks whether a local variable has been
//! assigned before it is read.
//!
//! Lattice: `Bottom < {Init, Uninit} < MaybeUninit < Unknown` (top).
//! `Uninit` means *definitely* uninitialized on every path (a must-bug at a
//! read); `MaybeUninit` arises only from joining an initialized path with a
//! definitely-uninitialized one, so it carries provenance the checker can
//! report at medium confidence. Parameters are initialized by the caller;
//! arrays count as initialized storage (reading a fresh array is C idiom the
//! corpus uses for buffers, not the bug class this domain chases).

use super::domain::{AbstractValue, Domain, Env};
use crate::ast::{Function, Type};
use crate::cfg::CfgInst;
use std::fmt;

/// Abstract initialization state of a variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Init {
    /// Unreachable / no value.
    Bottom,
    /// Definitely assigned on every path.
    Yes,
    /// Definitely not assigned on any path.
    No,
    /// Assigned on some paths only.
    Maybe,
    /// No information (top, e.g. a name this domain never saw declared).
    Unknown,
}

impl Init {
    /// Whether reading a variable in this state is report-worthy.
    pub fn is_read_bug(self) -> bool {
        matches!(self, Init::No | Init::Maybe)
    }
}

impl AbstractValue for Init {
    fn top() -> Self {
        Init::Unknown
    }

    fn join(&self, other: &Self) -> Self {
        use Init::*;
        match (self, other) {
            (a, b) if a == b => *a,
            (Bottom, x) | (x, Bottom) => *x,
            (Unknown, _) | (_, Unknown) => Unknown,
            (Maybe, _) | (_, Maybe) => Maybe,
            (Yes, No) | (No, Yes) => Maybe,
            _ => Unknown,
        }
    }
}

impl fmt::Display for Init {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Init::Bottom => "bottom",
            Init::Yes => "initialized",
            Init::No => "uninitialized",
            Init::Maybe => "maybe-uninitialized",
            Init::Unknown => "unknown",
        };
        write!(f, "{s}")
    }
}

/// Definite-initialization transfer functions. No interprocedural component:
/// initialization is a purely local property in this dialect (parameters
/// arrive initialized, address-taken locals are promoted on the spot).
#[derive(Debug, Clone, Default)]
pub struct InitDomain;

impl Domain for InitDomain {
    type Value = Init;

    fn name(&self) -> &'static str {
        "init"
    }

    fn entry_env(&self, func: &Function) -> Env<Init> {
        let mut env = Env::reachable_top();
        for p in &func.params {
            env.set(&p.name, Init::Yes);
        }
        env
    }

    fn transfer(&self, env: &mut Env<Init>, inst: &CfgInst) {
        match inst {
            CfgInst::Decl { name, ty, init } => {
                let v = match (ty, init) {
                    (_, Some(_)) => Init::Yes,
                    // Declared-then-filled arrays are normal buffer idiom.
                    (Type::Array(_, _), None) => Init::Yes,
                    (_, None) => Init::No,
                };
                env.set(name, v);
            }
            CfgInst::Assign { target, .. } => {
                if let crate::ast::LValue::Var(name) = target {
                    env.set(name, Init::Yes);
                }
            }
            CfgInst::Expr(_) | CfgInst::Branch(_) | CfgInst::Return(_) => {}
        }
        // `use(&x)` hands the location out as an out-parameter; assume the
        // callee initialized it (the conservative, false-positive-free read).
        for name in super::domain::inst_addr_taken(inst) {
            env.set(name, Init::Yes);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_models_branchy_initialization() {
        use Init::*;
        assert_eq!(Yes.join(&No), Maybe);
        assert_eq!(Maybe.join(&Yes), Maybe);
        assert_eq!(Unknown.join(&No), Unknown);
        assert!(No.is_read_bug());
        assert!(Maybe.is_read_bug());
        assert!(!Yes.is_read_bug());
        assert!(!Unknown.is_read_bug());
    }
}
