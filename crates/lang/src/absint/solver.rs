//! Reverse-post-order worklist fixpoint solver for the monotone framework.

use super::domain::{Domain, Env};
use crate::ast::Function;
use crate::cfg::{BlockId, Cfg, CfgInst, SpannedInst};
use std::collections::BTreeSet;

/// Solver knobs. Defaults are tuned so every program the corpus generator
/// can emit converges without hitting the iteration backstop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolverConfig {
    /// Number of times a block's entry state may change under plain joins
    /// before the solver switches to widening for that block. Higher values
    /// trade iterations for precision inside loops.
    pub widening_threshold: usize,
    /// Hard backstop on block visits; exceeding it flips
    /// [`SolverStats::converged`] to `false` instead of hanging.
    pub max_iterations: u64,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig { widening_threshold: 4, max_iterations: 10_000 }
    }
}

/// What the fixpoint iteration did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Total block visits (transfer applications over whole blocks).
    pub iterations: u64,
    /// Number of widening applications that changed a state.
    pub widenings: u64,
    /// `false` only if the `max_iterations` backstop fired.
    pub converged: bool,
}

impl SolverStats {
    /// Merges another run's stats into this one (conjunction of
    /// convergence, sums elsewhere).
    pub fn absorb(&mut self, other: &SolverStats) {
        self.iterations += other.iterations;
        self.widenings += other.widenings;
        self.converged &= other.converged;
    }
}

/// Result of analysing one function: the abstract state at the entry of
/// every basic block, plus iteration statistics.
#[derive(Debug, Clone)]
pub struct DomainAnalysis<V> {
    /// Per-block entry state (`Env::bottom()` for unreachable blocks).
    pub block_entry: Vec<Env<V>>,
    /// Iteration statistics.
    pub stats: SolverStats,
}

impl<V: super::domain::AbstractValue> DomainAnalysis<V> {
    /// Replays the transfer function through `block`, yielding the state
    /// *before* each instruction together with the instruction itself. This
    /// is how checkers obtain the evidence state at a report point without
    /// the solver having to store per-instruction environments.
    pub fn replay<'c, D: Domain<Value = V>>(
        &self,
        domain: &D,
        cfg: &'c Cfg,
        block: BlockId,
    ) -> Vec<(Env<V>, &'c SpannedInst)> {
        let mut env = self.block_entry[block].clone();
        let mut out = Vec::with_capacity(cfg.blocks[block].insts.len());
        for inst in &cfg.blocks[block].insts {
            let pre = env.clone();
            domain.transfer(&mut env, &inst.inst);
            out.push((pre, inst));
        }
        out
    }

    /// The state at the end of `block` after all its instructions.
    pub fn block_exit<D: Domain<Value = V>>(
        &self,
        domain: &D,
        cfg: &Cfg,
        block: BlockId,
    ) -> Env<V> {
        let mut env = self.block_entry[block].clone();
        for inst in &cfg.blocks[block].insts {
            domain.transfer(&mut env, &inst.inst);
        }
        env
    }
}

/// The worklist fixpoint engine. Blocks are prioritised by reverse
/// post-order rank so forward information flows in as few sweeps as
/// possible; re-enqueueing uses the same rank, keeping iteration order — and
/// therefore results and statistics — fully deterministic.
#[derive(Debug, Clone, Copy, Default)]
pub struct Solver {
    config: SolverConfig,
}

impl Solver {
    /// A solver with the given configuration.
    pub fn new(config: SolverConfig) -> Self {
        Solver { config }
    }

    /// Runs `domain` over `cfg` to a fixpoint and returns per-block entry
    /// states. `func` seeds the entry environment (parameters etc.).
    pub fn run<D: Domain>(
        &self,
        domain: &D,
        cfg: &Cfg,
        func: &Function,
    ) -> DomainAnalysis<D::Value> {
        let n = cfg.blocks.len();
        let rpo = cfg.reverse_post_order();
        let mut rank = vec![usize::MAX; n];
        for (i, &b) in rpo.iter().enumerate() {
            rank[b] = i;
        }

        let mut entry: Vec<Env<D::Value>> = vec![Env::bottom(); n];
        entry[cfg.entry] = domain.entry_env(func);
        let mut changes = vec![0usize; n];
        let mut stats = SolverStats { converged: true, ..SolverStats::default() };

        // (rank, block) ordered set: pop_first gives the earliest block in
        // RPO among all pending ones.
        let mut worklist: BTreeSet<(usize, BlockId)> = BTreeSet::new();
        worklist.insert((rank[cfg.entry], cfg.entry));

        while let Some(&(r, b)) = worklist.iter().next() {
            worklist.remove(&(r, b));
            if stats.iterations >= self.config.max_iterations {
                stats.converged = false;
                break;
            }
            stats.iterations += 1;

            // Propagate this block's exit state into each successor,
            // refining along branch outcomes.
            let mut out = entry[b].clone();
            let mut branch_cond: Option<&crate::ast::Expr> = None;
            for inst in &cfg.blocks[b].insts {
                domain.transfer(&mut out, &inst.inst);
                if let CfgInst::Branch(c) = &inst.inst {
                    branch_cond = Some(c);
                }
            }
            for (i, &s) in cfg.blocks[b].succs.iter().enumerate() {
                if rank[s] == usize::MAX {
                    continue; // successor unreachable in RPO (defensive)
                }
                let mut edge_env = out.clone();
                if let Some(cond) = branch_cond {
                    if cfg.blocks[b].succs.len() == 2 {
                        domain.refine(&mut edge_env, cond, i == 0);
                    }
                }
                let joined = entry[s].join(&edge_env);
                let next = if changes[s] >= self.config.widening_threshold {
                    let widened = entry[s].widen(&joined);
                    if widened != entry[s] {
                        stats.widenings += 1;
                    }
                    widened
                } else {
                    joined
                };
                if next != entry[s] {
                    entry[s] = next;
                    changes[s] += 1;
                    worklist.insert((rank[s], s));
                }
            }
        }

        DomainAnalysis { block_entry: entry, stats }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::absint::interval::{Interval, IntervalDomain};
    use crate::absint::AbstractValue;
    use crate::parse;

    fn solve(src: &str) -> (Cfg, DomainAnalysis<Interval>, IntervalDomain) {
        let p = parse(src).unwrap();
        let cfg = Cfg::build(&p.functions[0]);
        let domain = IntervalDomain::default();
        let analysis = Solver::new(SolverConfig::default()).run(&domain, &cfg, &p.functions[0]);
        (cfg, analysis, domain)
    }

    #[test]
    fn constant_propagation_through_straight_line() {
        let (cfg, analysis, domain) =
            solve("int f() { int i = 3; i = i * 4; int t = i + 1; return t; }");
        assert!(analysis.stats.converged);
        let states = analysis.replay(&domain, &cfg, cfg.entry);
        // Before `return t`, t must be exactly 13.
        let (pre, _) = states.last().unwrap();
        assert!(pre.get("t").is_point(13), "t = {}", pre.get("t"));
        assert!(pre.get("i").is_point(12));
    }

    #[test]
    fn loop_counter_widens_and_converges() {
        let (_, analysis, _) =
            solve("int f(int n) { int i = 0; while (i < n) { i = i + 1; } return i; }");
        assert!(analysis.stats.converged);
        assert!(analysis.stats.iterations < 100, "{:?}", analysis.stats);
    }

    #[test]
    fn branch_refinement_narrows_the_guarded_range() {
        let (cfg, analysis, domain) =
            solve("int f(int x) { int r = 0; if (x < 10) { r = x; } return r; }");
        // Find the block that assigns r = x inside the guard.
        let mut saw = false;
        for b in 0..cfg.blocks.len() {
            for (pre, inst) in analysis.replay(&domain, &cfg, b) {
                if let crate::cfg::CfgInst::Assign { target, .. } = &inst.inst {
                    if target.base_var() == Some("r")
                        && pre.is_reachable()
                        && pre.get("x").hi() < 10
                    {
                        saw = true;
                    }
                }
            }
        }
        assert!(saw, "taken edge of x < 10 must bound x above by 9");
    }

    #[test]
    fn join_at_diamond_merges_both_arms() {
        let (cfg, analysis, domain) =
            solve("int f(int c) { int r = 0; if (c) { r = 1; } else { r = 5; } return r; }");
        let mut seen = None;
        for b in 0..cfg.blocks.len() {
            for (pre, inst) in analysis.replay(&domain, &cfg, b) {
                if matches!(inst.inst, crate::cfg::CfgInst::Return(_)) {
                    seen = Some(pre.get("r"));
                }
            }
        }
        let r = seen.expect("return reached");
        assert_eq!(r, Interval::point(1).join(&Interval::point(5)));
    }

    #[test]
    fn unreachable_blocks_stay_bottom() {
        let (cfg, analysis, _) = solve("int f(int x) { if (x) { return 1; x = 2; } return x; }");
        let reachable = cfg.reachable();
        for (b, env) in analysis.block_entry.iter().enumerate() {
            if !reachable[b] {
                assert!(!env.is_reachable(), "dead block {b} got a state: {env}");
            }
        }
    }

    #[test]
    fn iteration_backstop_reports_non_convergence() {
        let cfgless =
            parse("int f(int n) { int i = 0; while (i < n) { i = i + 1; } return i; }").unwrap();
        let cfg = Cfg::build(&cfgless.functions[0]);
        let domain = IntervalDomain::default();
        let tight = SolverConfig { widening_threshold: 4, max_iterations: 2 };
        let analysis = Solver::new(tight).run(&domain, &cfg, &cfgless.functions[0]);
        assert!(!analysis.stats.converged);
    }
}
