//! Nullness domain: tracks whether a pointer-valued variable can be the
//! literal null constant, with provenance.
//!
//! The lattice is `Bottom < {Null, NonNull} < MaybeNull < Unknown` (top).
//! `MaybeNull` is strictly below top on purpose: it only arises by joining a
//! path where the variable is the literal `0` with a path where it is not,
//! so a checker can report it with *provenance* ("null flows in from the
//! branch at …") instead of flagging every unannotated pointer. `Unknown`
//! (no information, e.g. a bare parameter) is never report-worthy.

use super::domain::{AbstractValue, Domain, Env};
use crate::ast::{BinOp, Expr, ExprKind, Function, Type, UnOp};
use crate::cfg::CfgInst;
use std::collections::BTreeMap;
use std::fmt;

/// Abstract nullness of a value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Nullness {
    /// Unreachable / no value.
    Bottom,
    /// Definitely the literal null (0) on every path.
    Null,
    /// Definitely a valid non-null value (literal, allocation, address-of).
    NonNull,
    /// Null on some path, non-null on another — literal-null provenance.
    MaybeNull,
    /// No information (top).
    Unknown,
}

impl Nullness {
    #[cfg(test)]
    fn rank(self) -> u8 {
        match self {
            Nullness::Bottom => 0,
            Nullness::Null | Nullness::NonNull => 1,
            Nullness::MaybeNull => 2,
            Nullness::Unknown => 3,
        }
    }

    /// Whether a dereference of a value in this state is report-worthy.
    pub fn is_derefable_bug(self) -> bool {
        matches!(self, Nullness::Null | Nullness::MaybeNull)
    }
}

impl AbstractValue for Nullness {
    fn top() -> Self {
        Nullness::Unknown
    }

    fn join(&self, other: &Self) -> Self {
        use Nullness::*;
        match (self, other) {
            (a, b) if a == b => *a,
            (Bottom, x) | (x, Bottom) => *x,
            (Unknown, _) | (_, Unknown) => Unknown,
            (MaybeNull, _) | (_, MaybeNull) => MaybeNull,
            (Null, NonNull) | (NonNull, Null) => MaybeNull,
            _ => Unknown,
        }
    }
}

impl fmt::Display for Nullness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Nullness::Bottom => "bottom",
            Nullness::Null => "null",
            Nullness::NonNull => "non-null",
            Nullness::MaybeNull => "maybe-null",
            Nullness::Unknown => "unknown",
        };
        write!(f, "{s}")
    }
}

/// Nullness transfer functions, with interprocedural return summaries.
#[derive(Debug, Clone, Default)]
pub struct NullnessDomain {
    /// Abstract return nullness per analysed function. Externals fall back
    /// to the allocator convention: an unknown callee returning a pointer is
    /// assumed non-null (the bug class we chase is the literal-null path,
    /// not allocation failure).
    pub summaries: BTreeMap<String, Nullness>,
}

impl NullnessDomain {
    /// A domain with the given interprocedural summaries.
    pub fn with_summaries(summaries: BTreeMap<String, Nullness>) -> Self {
        NullnessDomain { summaries }
    }

    fn eval_expr(&self, env: &Env<Nullness>, e: &Expr) -> Nullness {
        match &e.kind {
            ExprKind::Int(0) => Nullness::Null,
            ExprKind::Int(_) | ExprKind::Char(_) | ExprKind::Str(_) => Nullness::NonNull,
            ExprKind::Var(name) => env.get(name),
            ExprKind::Unary(UnOp::AddrOf, _) => Nullness::NonNull,
            ExprKind::Unary(_, _) => Nullness::Unknown,
            // Pointer arithmetic preserves the base pointer's nullness
            // provenance closely enough for our must-style checks.
            ExprKind::Binary(BinOp::Add | BinOp::Sub, l, r) => {
                let a = self.eval_expr(env, l);
                let b = self.eval_expr(env, r);
                if a == Nullness::NonNull || b == Nullness::NonNull {
                    Nullness::NonNull
                } else {
                    Nullness::Unknown
                }
            }
            ExprKind::Binary(_, _, _) => Nullness::Unknown,
            ExprKind::Call(name, _) => {
                self.summaries.get(name.as_str()).copied().unwrap_or(Nullness::NonNull)
            }
            ExprKind::Index(_, _) => Nullness::Unknown,
        }
    }
}

impl Domain for NullnessDomain {
    type Value = Nullness;

    fn name(&self) -> &'static str {
        "nullness"
    }

    fn entry_env(&self, _func: &Function) -> Env<Nullness> {
        Env::reachable_top()
    }

    fn transfer(&self, env: &mut Env<Nullness>, inst: &CfgInst) {
        match inst {
            CfgInst::Decl { name, ty, init } => {
                let v = match (ty, init) {
                    // Array storage exists, so the "pointer" is non-null.
                    (Type::Array(_, _), _) => Nullness::NonNull,
                    (_, Some(e)) => self.eval_expr(env, e),
                    (_, None) => Nullness::Unknown,
                };
                env.set(name, v);
            }
            CfgInst::Assign { target, value } => {
                if let crate::ast::LValue::Var(name) = target {
                    let v = self.eval_expr(env, value);
                    env.set(name, v);
                }
            }
            CfgInst::Expr(_) | CfgInst::Branch(_) | CfgInst::Return(_) => {}
        }
        for name in super::domain::inst_addr_taken(inst) {
            env.havoc(name);
        }
    }

    fn eval(&self, env: &Env<Nullness>, e: &Expr) -> Nullness {
        self.eval_expr(env, e)
    }

    fn refine(&self, env: &mut Env<Nullness>, cond: &Expr, taken: bool) {
        // Recognised guards: `p`, `!p`, `p == 0`, `p != 0`, `p == NULL`-style
        // comparisons against the literal zero.
        match &cond.kind {
            ExprKind::Unary(UnOp::Not, inner) => self.refine(env, inner, !taken),
            ExprKind::Var(name) => {
                // `if (p)` — taken means non-null; the zero value for an int
                // variable is harmless to record the same way.
                env.set(name, if taken { Nullness::NonNull } else { Nullness::Null });
            }
            ExprKind::Binary(op @ (BinOp::Eq | BinOp::Ne), l, r) => {
                let (var, other) = match (&l.kind, &r.kind) {
                    (ExprKind::Var(v), _) => (v, r),
                    (_, ExprKind::Var(v)) => (v, l),
                    _ => return,
                };
                if !matches!(other.kind, ExprKind::Int(0)) {
                    return;
                }
                let equals_null = (*op == BinOp::Eq) == taken;
                env.set(var, if equals_null { Nullness::Null } else { Nullness::NonNull });
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_preserves_literal_null_provenance() {
        use Nullness::*;
        assert_eq!(Null.join(&NonNull), MaybeNull);
        assert_eq!(MaybeNull.join(&NonNull), MaybeNull);
        assert_eq!(Unknown.join(&Null), Unknown, "no provenance without a tracked null");
        assert_eq!(Bottom.join(&Null), Null);
        assert!(MaybeNull.is_derefable_bug());
        assert!(Null.is_derefable_bug());
        assert!(!Unknown.is_derefable_bug());
        assert!(!NonNull.is_derefable_bug());
    }

    #[test]
    fn join_is_monotone_in_rank() {
        use Nullness::*;
        for a in [Bottom, Null, NonNull, MaybeNull, Unknown] {
            for b in [Bottom, Null, NonNull, MaybeNull, Unknown] {
                let j = a.join(&b);
                assert!(j.rank() >= a.rank().min(b.rank()), "{a:?} ⊔ {b:?} = {j:?}");
                assert_eq!(j, b.join(&a), "join must be commutative");
            }
        }
    }
}
