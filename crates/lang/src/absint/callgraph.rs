//! Program call graph and the bottom-up interprocedural analysis driver.
//!
//! Summaries are context-insensitive: one abstract return value per
//! function, computed with callees analysed first (post-order over the call
//! graph). Calls into functions not yet summarised — externals, or members
//! of a recursive cycle — evaluate to the domain's top, which keeps the
//! single bottom-up pass sound without an inter-function fixpoint.

use super::domain::{AbstractValue, Domain, Env};
use super::solver::{DomainAnalysis, Solver, SolverConfig, SolverStats};
use crate::ast::{Function, Program};
use crate::cfg::{Cfg, CfgInst};
use std::collections::{BTreeMap, BTreeSet};

/// A directed call graph over the functions defined in a [`Program`].
/// Edges to undefined (external) callees are not represented; externals are
/// handled by the domains' top fallback.
#[derive(Debug, Clone)]
pub struct CallGraph {
    names: Vec<String>,
    index: BTreeMap<String, usize>,
    callees: Vec<Vec<usize>>,
    callers: Vec<Vec<usize>>,
}

impl CallGraph {
    /// Builds the call graph of all defined functions.
    pub fn build(program: &Program) -> CallGraph {
        let names: Vec<String> = program.functions.iter().map(|f| f.name.to_string()).collect();
        let index: BTreeMap<String, usize> =
            names.iter().enumerate().map(|(i, n)| (n.clone(), i)).collect();
        let mut callees: Vec<Vec<usize>> = vec![Vec::new(); names.len()];
        let mut callers: Vec<Vec<usize>> = vec![Vec::new(); names.len()];
        for (i, f) in program.functions.iter().enumerate() {
            let mut seen = BTreeSet::new();
            for callee in f.callees() {
                if let Some(&j) = index.get(callee.as_str()) {
                    if seen.insert(j) {
                        callees[i].push(j);
                        callers[j].push(i);
                    }
                }
            }
        }
        CallGraph { names, index, callees, callers }
    }

    /// Builds a call graph directly from adjacency lists over arbitrary node
    /// names. The corpus graph (`vulnman-analysis`) uses this to reuse the
    /// SCC condensation and bottom-up machinery over unit-qualified function
    /// nodes that no single [`Program`] contains. Duplicate and
    /// out-of-range callee indices are dropped; first occurrence wins.
    ///
    /// # Panics
    ///
    /// Panics if `edges.len() != names.len()`.
    pub fn from_edges(names: Vec<String>, edges: &[Vec<usize>]) -> CallGraph {
        assert_eq!(names.len(), edges.len(), "one adjacency list per node");
        let index: BTreeMap<String, usize> =
            names.iter().enumerate().map(|(i, n)| (n.clone(), i)).collect();
        let mut callees: Vec<Vec<usize>> = vec![Vec::new(); names.len()];
        let mut callers: Vec<Vec<usize>> = vec![Vec::new(); names.len()];
        for (i, adj) in edges.iter().enumerate() {
            let mut seen = BTreeSet::new();
            for &j in adj {
                if j < names.len() && seen.insert(j) {
                    callees[i].push(j);
                    callers[j].push(i);
                }
            }
        }
        CallGraph { names, index, callees, callers }
    }

    /// Number of defined functions.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the graph has no functions.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Defined callees of `name`, in first-call order.
    pub fn callees_of(&self, name: &str) -> Vec<&str> {
        match self.index.get(name) {
            Some(&i) => self.callees[i].iter().map(|&j| self.names[j].as_str()).collect(),
            None => Vec::new(),
        }
    }

    /// Defined callers of `name`.
    pub fn callers_of(&self, name: &str) -> Vec<&str> {
        match self.index.get(name) {
            Some(&i) => self.callers[i].iter().map(|&j| self.names[j].as_str()).collect(),
            None => Vec::new(),
        }
    }

    /// Function names in bottom-up order: every callee appears before each
    /// of its callers wherever the graph is acyclic; cycles are broken at
    /// the deterministic DFS back-edge (members keep their post-order).
    pub fn bottom_up(&self) -> Vec<&str> {
        let mut state = vec![0u8; self.names.len()]; // 0 new, 1 visiting, 2 done
        let mut order = Vec::with_capacity(self.names.len());
        for start in 0..self.names.len() {
            self.post_order(start, &mut state, &mut order);
        }
        order.iter().map(|&i| self.names[i].as_str()).collect()
    }

    fn post_order(&self, node: usize, state: &mut [u8], order: &mut Vec<usize>) {
        if state[node] != 0 {
            return;
        }
        state[node] = 1;
        for &c in &self.callees[node] {
            if state[c] == 0 {
                self.post_order(c, state, order);
            }
        }
        state[node] = 2;
        order.push(node);
    }

    /// Strongly connected components of the call graph, in bottom-up
    /// topological order of the condensation: every defined callee of a
    /// component's members lies in the same or an earlier component.
    /// Members within a component are listed in ascending function-index
    /// order. Iterative Tarjan, so deeply nested call chains cannot blow
    /// the stack, and the output is a pure function of the graph.
    pub fn sccs(&self) -> Vec<Vec<usize>> {
        const UNVISITED: usize = usize::MAX;
        let n = self.names.len();
        let mut index = vec![UNVISITED; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut next_index = 0usize;
        let mut out: Vec<Vec<usize>> = Vec::new();
        // Explicit DFS frames: (node, next-callee position).
        let mut frames: Vec<(usize, usize)> = Vec::new();
        for root in 0..n {
            if index[root] != UNVISITED {
                continue;
            }
            frames.push((root, 0));
            index[root] = next_index;
            low[root] = next_index;
            next_index += 1;
            stack.push(root);
            on_stack[root] = true;
            while let Some(&mut (v, ref mut ci)) = frames.last_mut() {
                if let Some(&w) = self.callees[v].get(*ci) {
                    *ci += 1;
                    if index[w] == UNVISITED {
                        index[w] = next_index;
                        low[w] = next_index;
                        next_index += 1;
                        stack.push(w);
                        on_stack[w] = true;
                        frames.push((w, 0));
                    } else if on_stack[w] {
                        low[v] = low[v].min(index[w]);
                    }
                } else {
                    frames.pop();
                    if let Some(&(parent, _)) = frames.last() {
                        low[parent] = low[parent].min(low[v]);
                    }
                    if low[v] == index[v] {
                        let mut comp = Vec::new();
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow");
                            on_stack[w] = false;
                            comp.push(w);
                            if w == v {
                                break;
                            }
                        }
                        comp.sort_unstable();
                        out.push(comp);
                    }
                }
            }
        }
        out
    }

    /// Whether `name` participates in a call cycle (including self-recursion).
    pub fn in_cycle(&self, name: &str) -> bool {
        let Some(&start) = self.index.get(name) else {
            return false;
        };
        // DFS from the node's callees back to itself.
        let mut stack: Vec<usize> = self.callees[start].clone();
        let mut seen = BTreeSet::new();
        while let Some(n) = stack.pop() {
            if n == start {
                return true;
            }
            if seen.insert(n) {
                stack.extend(self.callees[n].iter().copied());
            }
        }
        false
    }
}

/// The result of an interprocedural analysis pass: one solved function at a
/// time, in bottom-up call-graph order.
#[derive(Debug)]
pub struct ProgramAnalysis<V> {
    /// Abstract return value per defined function.
    pub summaries: BTreeMap<String, V>,
    /// Aggregated solver statistics across all functions.
    pub stats: SolverStats,
}

/// Analyses every function of `program` bottom-up, building interprocedural
/// summaries as it goes. `make_domain` constructs the domain for a function
/// from the summaries of everything analysed so far; `visit` is invoked per
/// function with its CFG, the domain it was solved under, and the solution —
/// this is where checkers inspect per-instruction states via
/// [`DomainAnalysis::replay`].
pub fn analyze_program<D, M, F>(
    program: &Program,
    config: SolverConfig,
    mut make_domain: M,
    mut visit: F,
) -> ProgramAnalysis<D::Value>
where
    D: Domain,
    M: FnMut(&BTreeMap<String, D::Value>) -> D,
    F: FnMut(&Function, &Cfg, &D, &DomainAnalysis<D::Value>),
{
    let cg = CallGraph::build(program);
    let solver = Solver::new(config);
    let mut summaries: BTreeMap<String, D::Value> = BTreeMap::new();
    let mut stats = SolverStats { converged: true, ..SolverStats::default() };
    for name in cg.bottom_up() {
        let func = program.function(name).expect("call graph node is a defined function");
        let cfg = Cfg::build(func);
        let domain = make_domain(&summaries);
        let analysis = solver.run(&domain, &cfg, func);
        stats.absorb(&analysis.stats);
        let ret = return_summary(&domain, &cfg, &analysis);
        visit(func, &cfg, &domain, &analysis);
        summaries.insert(name.to_string(), ret);
    }
    ProgramAnalysis { summaries, stats }
}

/// [`analyze_program`] with the per-function fixpoints solved on up to
/// `jobs` scoped worker threads, byte-identical to the sequential driver.
///
/// The call graph is condensed into strongly connected components and the
/// condensation is level-scheduled: a component's level is one past the
/// deepest level among its callee components, so when a level runs, every
/// summary its functions can look up is final. Components on the same
/// level solve concurrently (members of one component stay sequential, in
/// the sequential driver's relative order, so cycle members see exactly
/// the same partial summary tables). Solved functions are buffered and
/// `visit` runs on the caller's thread in the exact bottom-up order of
/// [`analyze_program`], which is what makes the two drivers
/// indistinguishable to checkers.
///
/// `make_domain` must derive the domain only from the summaries of the
/// function's (transitive) callees — true of every domain in this
/// workspace, where summaries are consulted exclusively at call sites.
/// Small programs and `jobs <= 1` fall back to the sequential driver:
/// thread setup costs more than solving a handful of CFGs.
pub fn analyze_program_parallel<D, M, F>(
    program: &Program,
    config: SolverConfig,
    jobs: usize,
    make_domain: M,
    mut visit: F,
) -> ProgramAnalysis<D::Value>
where
    D: Domain + Send,
    D::Value: Send + Sync + Clone,
    M: Fn(&BTreeMap<String, D::Value>) -> D + Sync,
    F: FnMut(&Function, &Cfg, &D, &DomainAnalysis<D::Value>),
{
    let cg = CallGraph::build(program);
    if jobs <= 1 || cg.len() < 4 {
        return analyze_program(program, config, |s| make_domain(s), visit);
    }

    // Relative sequential position of every function: components are
    // processed (and results delivered) in this order so recursion cliques
    // accumulate summaries exactly like the sequential driver.
    let order: Vec<usize> = {
        let mut state = vec![0u8; cg.len()];
        let mut order = Vec::with_capacity(cg.len());
        for start in 0..cg.len() {
            cg.post_order(start, &mut state, &mut order);
        }
        order
    };
    let mut pos = vec![0usize; cg.len()];
    for (i, &f) in order.iter().enumerate() {
        pos[f] = i;
    }

    let mut sccs = cg.sccs();
    for comp in &mut sccs {
        comp.sort_unstable_by_key(|&m| pos[m]);
    }
    let mut comp_of = vec![0usize; cg.len()];
    for (ci, comp) in sccs.iter().enumerate() {
        for &m in comp {
            comp_of[m] = ci;
        }
    }
    // Level scheduling over the condensation (callee levels are final
    // because `sccs` is already bottom-up-topological).
    let mut level = vec![0usize; sccs.len()];
    let mut depth = 0usize;
    for (ci, comp) in sccs.iter().enumerate() {
        let mut lv = 0usize;
        for &m in comp {
            for &c in &cg.callees[m] {
                if comp_of[c] != ci {
                    lv = lv.max(level[comp_of[c]] + 1);
                }
            }
        }
        level[ci] = lv;
        depth = depth.max(lv);
    }
    let mut by_level: Vec<Vec<usize>> = vec![Vec::new(); depth + 1];
    for (ci, &lv) in level.iter().enumerate() {
        by_level[lv].push(ci);
    }

    let solver = Solver::new(config);
    type Solved<D> = (Cfg, D, DomainAnalysis<<D as Domain>::Value>, <D as Domain>::Value);
    let mut slots: Vec<Option<Solved<D>>> = (0..cg.len()).map(|_| None).collect();
    let mut completed: BTreeMap<String, D::Value> = BTreeMap::new();

    for comps in &by_level {
        let chunk = comps.len().div_ceil(jobs).max(1);
        let outputs: Vec<Vec<(usize, Solved<D>)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = comps
                .chunks(chunk)
                .map(|group| {
                    let completed = &completed;
                    let solver = &solver;
                    let make_domain = &make_domain;
                    let cg = &cg;
                    let sccs = &sccs;
                    scope.spawn(move || {
                        let mut out = Vec::new();
                        for &ci in group {
                            // Cycle members feed each other through a local
                            // overlay, exactly like the sequential table.
                            let mut local: Option<BTreeMap<String, D::Value>> = None;
                            for &m in &sccs[ci] {
                                let name = cg.names[m].as_str();
                                let func = program
                                    .function(name)
                                    .expect("call graph node is a defined function");
                                let cfg = Cfg::build(func);
                                let table = local.as_ref().unwrap_or(completed);
                                let domain = make_domain(table);
                                let analysis = solver.run(&domain, &cfg, func);
                                let ret = return_summary(&domain, &cfg, &analysis);
                                if sccs[ci].len() > 1 {
                                    local
                                        .get_or_insert_with(|| completed.clone())
                                        .insert(name.to_string(), ret.clone());
                                }
                                out.push((m, (cfg, domain, analysis, ret)));
                            }
                        }
                        out
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("absint worker thread panicked")).collect()
        });
        for (m, solved) in outputs.into_iter().flatten() {
            completed.insert(cg.names[m].clone(), solved.3.clone());
            slots[m] = Some(solved);
        }
    }

    // Deliver buffered results in the sequential driver's exact order.
    let mut summaries: BTreeMap<String, D::Value> = BTreeMap::new();
    let mut stats = SolverStats { converged: true, ..SolverStats::default() };
    for &f in &order {
        let (cfg, domain, analysis, ret) =
            slots[f].take().expect("every function is solved exactly once");
        let func =
            program.function(cg.names[f].as_str()).expect("call graph node is a defined function");
        stats.absorb(&analysis.stats);
        visit(func, &cfg, &domain, &analysis);
        summaries.insert(cg.names[f].clone(), ret);
    }
    ProgramAnalysis { summaries, stats }
}

/// Joins the abstract value of every reachable `return e;` in the function.
/// Functions that never return a value (or only fall off the end) summarise
/// to top. Shared with the incremental driver (`crate::incremental`), which
/// must compute summaries exactly like the batch drivers.
pub(crate) fn return_summary<D: Domain>(
    domain: &D,
    cfg: &Cfg,
    analysis: &DomainAnalysis<D::Value>,
) -> D::Value {
    let mut acc: Option<D::Value> = None;
    let reachable = cfg.reachable();
    for (b, block) in cfg.blocks.iter().enumerate() {
        if !reachable[b] || block.insts.is_empty() {
            continue;
        }
        let mut env: Env<D::Value> = analysis.block_entry[b].clone();
        for inst in &block.insts {
            if let CfgInst::Return(Some(e)) = &inst.inst {
                let v = domain.eval(&env, e);
                acc = Some(match acc {
                    None => v,
                    Some(a) => a.join(&v),
                });
            }
            domain.transfer(&mut env, &inst.inst);
        }
    }
    acc.unwrap_or_else(D::Value::top)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::absint::interval::IntervalDomain;
    use crate::parse;

    #[test]
    fn bottom_up_orders_callees_first() {
        let p = parse(
            "int leaf() { return 1; }\n\
             int mid() { return leaf() + 1; }\n\
             int top_fn() { return mid() + leaf(); }",
        )
        .unwrap();
        let cg = CallGraph::build(&p);
        let order = cg.bottom_up();
        let pos = |n: &str| order.iter().position(|&x| x == n).unwrap();
        assert!(pos("leaf") < pos("mid"));
        assert!(pos("mid") < pos("top_fn"));
        assert_eq!(cg.callees_of("top_fn"), vec!["mid", "leaf"]);
        assert_eq!(cg.callers_of("leaf"), vec!["mid", "top_fn"]);
        assert!(!cg.in_cycle("leaf"));
    }

    #[test]
    fn recursion_is_detected_and_summaries_stay_sound() {
        let p = parse("int r(int n) { if (n) { return r(n - 1); } return 0; }").unwrap();
        let cg = CallGraph::build(&p);
        assert!(cg.in_cycle("r"));
        let pa = analyze_program(
            &p,
            SolverConfig::default(),
            |s| IntervalDomain::with_summaries(s.clone()),
            |_, _, _, _| {},
        );
        assert!(pa.stats.converged);
        // The self-call evaluated to top mid-analysis, so the summary joins
        // top with the constant 0 — i.e. top. Sound, not precise.
        assert!(pa.summaries.contains_key("r"));
    }

    #[test]
    fn parallel_driver_is_byte_identical_to_sequential() {
        // Diamond call structure plus a two-function recursion clique, so
        // the parallel driver exercises both concurrent independent
        // components and the sequential-within-SCC overlay path.
        let p = parse(
            "int leaf() { return 2; }\n\
             int even(int n) { if (n) { return odd(n - 1); } return 1; }\n\
             int odd(int n) { if (n) { return even(n - 1); } return 0; }\n\
             int mid(int x) { return leaf() + even(x); }\n\
             int top_fn(int x) { int d = mid(x); return d / leaf(); }",
        )
        .unwrap();
        let trace = |jobs: usize| {
            let mut visits: Vec<String> = Vec::new();
            let pa = analyze_program_parallel::<IntervalDomain, _, _>(
                &p,
                SolverConfig::default(),
                jobs,
                |s| IntervalDomain::with_summaries(s.clone()),
                |f, _, _, a| visits.push(format!("{} {:?}", f.name, a.block_entry)),
            );
            (visits, format!("{:?}", pa.summaries), pa.stats)
        };
        let (seq_visits, seq_summaries, seq_stats) = trace(1);
        assert_eq!(seq_visits.len(), 5);
        for jobs in [2, 4, 8] {
            let (visits, summaries, stats) = trace(jobs);
            assert_eq!(visits, seq_visits, "visit trace diverged at jobs={jobs}");
            assert_eq!(summaries, seq_summaries, "summaries diverged at jobs={jobs}");
            assert_eq!(stats, seq_stats, "solver stats diverged at jobs={jobs}");
        }
    }

    #[test]
    fn sccs_condense_cycles_bottom_up() {
        let p = parse(
            "int leaf() { return 1; }\n\
             int even(int n) { if (n) { return odd(n - 1); } return leaf(); }\n\
             int odd(int n) { if (n) { return even(n - 1); } return 0; }\n\
             int top_fn(int x) { return even(x); }",
        )
        .unwrap();
        let cg = CallGraph::build(&p);
        let sccs = cg.sccs();
        // Every function appears exactly once.
        let mut all: Vec<usize> = sccs.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..cg.len()).collect::<Vec<_>>());
        // even/odd share a component; the order is bottom-up: every callee
        // component precedes its callers.
        let comp_idx = |name: &str| sccs.iter().position(|c| c.contains(&cg.index[name])).unwrap();
        assert_eq!(comp_idx("even"), comp_idx("odd"));
        assert!(comp_idx("leaf") < comp_idx("even"));
        assert!(comp_idx("even") < comp_idx("top_fn"));
    }

    #[test]
    fn interprocedural_constant_flows_to_caller() {
        let p = parse(
            "int denom() { return 8 - 8; }\n\
             int f(int x) { int d = denom(); return x / d; }",
        )
        .unwrap();
        let pa = analyze_program(
            &p,
            SolverConfig::default(),
            |s| IntervalDomain::with_summaries(s.clone()),
            |_, _, _, _| {},
        );
        assert!(pa.summaries["denom"].is_point(0), "summary = {}", pa.summaries["denom"]);
    }
}
