//! Program call graph and the bottom-up interprocedural analysis driver.
//!
//! Summaries are context-insensitive: one abstract return value per
//! function, computed with callees analysed first (post-order over the call
//! graph). Calls into functions not yet summarised — externals, or members
//! of a recursive cycle — evaluate to the domain's top, which keeps the
//! single bottom-up pass sound without an inter-function fixpoint.

use super::domain::{AbstractValue, Domain, Env};
use super::solver::{DomainAnalysis, Solver, SolverConfig, SolverStats};
use crate::ast::{Function, Program};
use crate::cfg::{Cfg, CfgInst};
use std::collections::{BTreeMap, BTreeSet};

/// A directed call graph over the functions defined in a [`Program`].
/// Edges to undefined (external) callees are not represented; externals are
/// handled by the domains' top fallback.
#[derive(Debug, Clone)]
pub struct CallGraph {
    names: Vec<String>,
    index: BTreeMap<String, usize>,
    callees: Vec<Vec<usize>>,
    callers: Vec<Vec<usize>>,
}

impl CallGraph {
    /// Builds the call graph of all defined functions.
    pub fn build(program: &Program) -> CallGraph {
        let names: Vec<String> = program.functions.iter().map(|f| f.name.clone()).collect();
        let index: BTreeMap<String, usize> =
            names.iter().enumerate().map(|(i, n)| (n.clone(), i)).collect();
        let mut callees: Vec<Vec<usize>> = vec![Vec::new(); names.len()];
        let mut callers: Vec<Vec<usize>> = vec![Vec::new(); names.len()];
        for (i, f) in program.functions.iter().enumerate() {
            let mut seen = BTreeSet::new();
            for callee in f.callees() {
                if let Some(&j) = index.get(&callee) {
                    if seen.insert(j) {
                        callees[i].push(j);
                        callers[j].push(i);
                    }
                }
            }
        }
        CallGraph { names, index, callees, callers }
    }

    /// Number of defined functions.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the graph has no functions.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Defined callees of `name`, in first-call order.
    pub fn callees_of(&self, name: &str) -> Vec<&str> {
        match self.index.get(name) {
            Some(&i) => self.callees[i].iter().map(|&j| self.names[j].as_str()).collect(),
            None => Vec::new(),
        }
    }

    /// Defined callers of `name`.
    pub fn callers_of(&self, name: &str) -> Vec<&str> {
        match self.index.get(name) {
            Some(&i) => self.callers[i].iter().map(|&j| self.names[j].as_str()).collect(),
            None => Vec::new(),
        }
    }

    /// Function names in bottom-up order: every callee appears before each
    /// of its callers wherever the graph is acyclic; cycles are broken at
    /// the deterministic DFS back-edge (members keep their post-order).
    pub fn bottom_up(&self) -> Vec<&str> {
        let mut state = vec![0u8; self.names.len()]; // 0 new, 1 visiting, 2 done
        let mut order = Vec::with_capacity(self.names.len());
        for start in 0..self.names.len() {
            self.post_order(start, &mut state, &mut order);
        }
        order.iter().map(|&i| self.names[i].as_str()).collect()
    }

    fn post_order(&self, node: usize, state: &mut [u8], order: &mut Vec<usize>) {
        if state[node] != 0 {
            return;
        }
        state[node] = 1;
        for &c in &self.callees[node] {
            if state[c] == 0 {
                self.post_order(c, state, order);
            }
        }
        state[node] = 2;
        order.push(node);
    }

    /// Whether `name` participates in a call cycle (including self-recursion).
    pub fn in_cycle(&self, name: &str) -> bool {
        let Some(&start) = self.index.get(name) else {
            return false;
        };
        // DFS from the node's callees back to itself.
        let mut stack: Vec<usize> = self.callees[start].clone();
        let mut seen = BTreeSet::new();
        while let Some(n) = stack.pop() {
            if n == start {
                return true;
            }
            if seen.insert(n) {
                stack.extend(self.callees[n].iter().copied());
            }
        }
        false
    }
}

/// The result of an interprocedural analysis pass: one solved function at a
/// time, in bottom-up call-graph order.
#[derive(Debug)]
pub struct ProgramAnalysis<V> {
    /// Abstract return value per defined function.
    pub summaries: BTreeMap<String, V>,
    /// Aggregated solver statistics across all functions.
    pub stats: SolverStats,
}

/// Analyses every function of `program` bottom-up, building interprocedural
/// summaries as it goes. `make_domain` constructs the domain for a function
/// from the summaries of everything analysed so far; `visit` is invoked per
/// function with its CFG, the domain it was solved under, and the solution —
/// this is where checkers inspect per-instruction states via
/// [`DomainAnalysis::replay`].
pub fn analyze_program<D, M, F>(
    program: &Program,
    config: SolverConfig,
    mut make_domain: M,
    mut visit: F,
) -> ProgramAnalysis<D::Value>
where
    D: Domain,
    M: FnMut(&BTreeMap<String, D::Value>) -> D,
    F: FnMut(&Function, &Cfg, &D, &DomainAnalysis<D::Value>),
{
    let cg = CallGraph::build(program);
    let solver = Solver::new(config);
    let mut summaries: BTreeMap<String, D::Value> = BTreeMap::new();
    let mut stats = SolverStats { converged: true, ..SolverStats::default() };
    for name in cg.bottom_up() {
        let func = program.function(name).expect("call graph node is a defined function");
        let cfg = Cfg::build(func);
        let domain = make_domain(&summaries);
        let analysis = solver.run(&domain, &cfg, func);
        stats.absorb(&analysis.stats);
        let ret = return_summary(&domain, &cfg, &analysis);
        visit(func, &cfg, &domain, &analysis);
        summaries.insert(name.to_string(), ret);
    }
    ProgramAnalysis { summaries, stats }
}

/// Joins the abstract value of every reachable `return e;` in the function.
/// Functions that never return a value (or only fall off the end) summarise
/// to top.
fn return_summary<D: Domain>(
    domain: &D,
    cfg: &Cfg,
    analysis: &DomainAnalysis<D::Value>,
) -> D::Value {
    let mut acc: Option<D::Value> = None;
    let reachable = cfg.reachable();
    for (b, block) in cfg.blocks.iter().enumerate() {
        if !reachable[b] || block.insts.is_empty() {
            continue;
        }
        let mut env: Env<D::Value> = analysis.block_entry[b].clone();
        for inst in &block.insts {
            if let CfgInst::Return(Some(e)) = &inst.inst {
                let v = domain.eval(&env, e);
                acc = Some(match acc {
                    None => v,
                    Some(a) => a.join(&v),
                });
            }
            domain.transfer(&mut env, &inst.inst);
        }
    }
    acc.unwrap_or_else(D::Value::top)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::absint::interval::IntervalDomain;
    use crate::parse;

    #[test]
    fn bottom_up_orders_callees_first() {
        let p = parse(
            "int leaf() { return 1; }\n\
             int mid() { return leaf() + 1; }\n\
             int top_fn() { return mid() + leaf(); }",
        )
        .unwrap();
        let cg = CallGraph::build(&p);
        let order = cg.bottom_up();
        let pos = |n: &str| order.iter().position(|&x| x == n).unwrap();
        assert!(pos("leaf") < pos("mid"));
        assert!(pos("mid") < pos("top_fn"));
        assert_eq!(cg.callees_of("top_fn"), vec!["mid", "leaf"]);
        assert_eq!(cg.callers_of("leaf"), vec!["mid", "top_fn"]);
        assert!(!cg.in_cycle("leaf"));
    }

    #[test]
    fn recursion_is_detected_and_summaries_stay_sound() {
        let p = parse("int r(int n) { if (n) { return r(n - 1); } return 0; }").unwrap();
        let cg = CallGraph::build(&p);
        assert!(cg.in_cycle("r"));
        let pa = analyze_program(
            &p,
            SolverConfig::default(),
            |s| IntervalDomain::with_summaries(s.clone()),
            |_, _, _, _| {},
        );
        assert!(pa.stats.converged);
        // The self-call evaluated to top mid-analysis, so the summary joins
        // top with the constant 0 — i.e. top. Sound, not precise.
        assert!(pa.summaries.contains_key("r"));
    }

    #[test]
    fn interprocedural_constant_flows_to_caller() {
        let p = parse(
            "int denom() { return 8 - 8; }\n\
             int f(int x) { int d = denom(); return x / d; }",
        )
        .unwrap();
        let pa = analyze_program(
            &p,
            SolverConfig::default(),
            |s| IntervalDomain::with_summaries(s.clone()),
            |_, _, _, _| {},
        );
        assert!(pa.summaries["denom"].is_point(0), "summary = {}", pa.summaries["denom"]);
    }
}
