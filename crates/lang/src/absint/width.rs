//! Width domain: value ranges with *type-boundary* widening, for proving
//! integer truncation (CWE-197) and sharpening overflow (CWE-190) reasoning.
//!
//! The value lattice is the same `[lo, hi]` range as
//! [`super::interval::Interval`] — it even delegates its arithmetic — but
//! the widening operator differs: instead of jumping an unstable bound
//! straight to ±∞, it snaps the bound outward to the next *storage-type
//! boundary* on the ladder ±2⁷, ±2¹⁵, ±2³¹, ±2⁶³, ±∞. Each unstable bound
//! therefore climbs a strictly increasing finite ladder (termination), while
//! a loop counter that in truth stays inside `char` or `int` range keeps a
//! bound tight enough to *prove* whether a narrowing store truncates.
//!
//! A checker reports a narrowing store as CWE-197 only when the stored
//! value's range lies **entirely outside** the destination's representable
//! range — a must-fact; may-truncation is deliberately not reported.

use super::domain::{AbstractValue, Domain, Env};
use super::interval::Interval;
use crate::ast::{BinOp, Expr, ExprKind, Function, Type, UnOp};
use crate::cfg::CfgInst;
use std::collections::BTreeMap;
use std::fmt;

/// −∞ sentinel (mirrors the interval domain's encoding).
const NINF: i128 = i128::MIN;
/// +∞ sentinel.
const PINF: i128 = i128::MAX;

/// The storage-type boundary ladder for lower bounds, tightest first.
const LO_LADDER: [i128; 4] = [-(1 << 7), -(1 << 15), -(1 << 31), -(1 << 63)];
/// The storage-type boundary ladder for upper bounds, tightest first.
const HI_LADDER: [i128; 4] = [(1 << 7) - 1, (1 << 15) - 1, (1 << 31) - 1, (1 << 63) - 1];

/// A value range with type-boundary widening. Wraps [`Interval`] for all
/// order/arithmetic structure; only `widen` differs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Width {
    iv: Interval,
}

impl Width {
    /// The empty range (bottom).
    pub const BOTTOM: Width = Width { iv: Interval::BOTTOM };

    /// The full range (top).
    pub const TOP: Width = Width { iv: Interval::TOP };

    /// A single concrete value.
    pub fn point(v: i64) -> Width {
        Width { iv: Interval::point(v) }
    }

    /// The range `[lo, hi]` (bottom when `lo > hi`).
    pub fn range(lo: i128, hi: i128) -> Width {
        Width { iv: Interval::range(lo, hi) }
    }

    /// Whether this is the empty range.
    pub fn is_bottom(&self) -> bool {
        self.iv.is_bottom()
    }

    /// Lower bound (meaningless for bottom).
    pub fn lo(&self) -> i128 {
        self.iv.lo()
    }

    /// Upper bound (meaningless for bottom).
    pub fn hi(&self) -> i128 {
        self.iv.hi()
    }

    /// Greatest lower bound.
    pub fn meet(&self, other: &Width) -> Width {
        Width { iv: self.iv.meet(&other.iv) }
    }

    /// Whether every possible value lies **outside** the signed `bits`-wide
    /// representable range — a proof that storing it into a `bits`-wide slot
    /// truncates on every path.
    pub fn provably_exceeds_bits(&self, bits: u32) -> bool {
        if self.is_bottom() {
            return false;
        }
        let max = (1i128 << (bits - 1)) - 1;
        let min = -(1i128 << (bits - 1));
        self.lo() > max || self.hi() < min
    }

    /// Whether every possible value fits the signed `bits`-wide range.
    pub fn fits_bits(&self, bits: u32) -> bool {
        if self.is_bottom() {
            return true;
        }
        let max = (1i128 << (bits - 1)) - 1;
        let min = -(1i128 << (bits - 1));
        self.lo() >= min && self.hi() <= max
    }
}

impl AbstractValue for Width {
    fn top() -> Self {
        Width::TOP
    }

    fn join(&self, other: &Self) -> Self {
        Width { iv: self.iv.join(&other.iv) }
    }

    fn widen(&self, other: &Self) -> Self {
        if self.is_bottom() {
            return *other;
        }
        if other.is_bottom() {
            return *self;
        }
        // Snap each unstable bound outward to the next storage-type
        // boundary that covers the new iterate, instead of straight to ±∞.
        // The snapped bound is ≤/≥ the new iterate (soundness) and strictly
        // beyond the previous one, and the ladder is finite (termination).
        let lo = if other.lo() < self.lo() {
            LO_LADDER.iter().copied().find(|b| *b <= other.lo()).unwrap_or(NINF)
        } else {
            self.lo()
        };
        let hi = if other.hi() > self.hi() {
            HI_LADDER.iter().copied().find(|b| *b >= other.hi()).unwrap_or(PINF)
        } else {
            self.hi()
        };
        Width::range(lo, hi)
    }
}

impl fmt::Display for Width {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.iv.fmt(f)
    }
}

/// Width transfer functions over the mini-C instruction set, mirroring
/// [`super::interval::IntervalDomain`] with interprocedural summaries.
#[derive(Debug, Clone, Default)]
pub struct WidthDomain {
    /// Abstract return range per analysed function.
    pub summaries: BTreeMap<String, Width>,
}

impl WidthDomain {
    /// A domain with the given interprocedural summaries.
    pub fn with_summaries(summaries: BTreeMap<String, Width>) -> Self {
        WidthDomain { summaries }
    }

    fn eval_expr(&self, env: &Env<Width>, e: &Expr) -> Width {
        match &e.kind {
            ExprKind::Int(v) => Width::point(*v),
            ExprKind::Char(c) => Width::point(*c as i64),
            ExprKind::Str(_) => Width::TOP,
            ExprKind::Var(name) => env.get(name),
            ExprKind::Unary(op, inner) => {
                let v = self.eval_expr(env, inner);
                match op {
                    UnOp::Neg => Width { iv: v.iv.neg() },
                    UnOp::Not => Width::range(0, 1),
                    UnOp::Deref | UnOp::AddrOf => Width::TOP,
                }
            }
            ExprKind::Binary(op, l, r) => {
                let a = self.eval_expr(env, l);
                let b = self.eval_expr(env, r);
                let iv = match op {
                    BinOp::Add => a.iv.add(&b.iv),
                    BinOp::Sub => a.iv.sub(&b.iv),
                    BinOp::Mul => a.iv.mul(&b.iv),
                    BinOp::Div => a.iv.div(&b.iv),
                    BinOp::Rem => a.iv.rem(&b.iv),
                    op if op.is_comparison() => Interval::range(0, 1),
                    _ => Interval::TOP,
                };
                Width { iv }
            }
            ExprKind::Call(name, _) => {
                self.summaries.get(name.as_str()).copied().unwrap_or(Width::TOP)
            }
            ExprKind::Index(_, _) => Width::TOP,
        }
    }

    /// Applies the comparison `var_value (op) rhs` as a constraint.
    fn constrain(var_value: Width, op: BinOp, rhs: &Width) -> Width {
        if rhs.is_bottom() {
            return var_value;
        }
        match op {
            BinOp::Lt => var_value.meet(&Width::range(NINF, super::interval::badd(rhs.hi(), -1))),
            BinOp::Le => var_value.meet(&Width::range(NINF, rhs.hi())),
            BinOp::Gt => var_value.meet(&Width::range(super::interval::badd(rhs.lo(), 1), PINF)),
            BinOp::Ge => var_value.meet(&Width::range(rhs.lo(), PINF)),
            BinOp::Eq => var_value.meet(rhs),
            BinOp::Ne => match rhs.iv.as_finite_point() {
                Some(k) if var_value.lo() == k as i128 => {
                    Width::range(var_value.lo() + 1, var_value.hi())
                }
                Some(k) if var_value.hi() == k as i128 => {
                    Width::range(var_value.lo(), var_value.hi() - 1)
                }
                _ => var_value,
            },
            _ => var_value,
        }
    }

    fn negate_cmp(op: BinOp) -> Option<BinOp> {
        Some(match op {
            BinOp::Lt => BinOp::Ge,
            BinOp::Le => BinOp::Gt,
            BinOp::Gt => BinOp::Le,
            BinOp::Ge => BinOp::Lt,
            BinOp::Eq => BinOp::Ne,
            BinOp::Ne => BinOp::Eq,
            _ => return None,
        })
    }

    fn flip_cmp(op: BinOp) -> BinOp {
        match op {
            BinOp::Lt => BinOp::Gt,
            BinOp::Le => BinOp::Ge,
            BinOp::Gt => BinOp::Lt,
            BinOp::Ge => BinOp::Le,
            other => other,
        }
    }
}

impl Domain for WidthDomain {
    type Value = Width;

    fn name(&self) -> &'static str {
        "width"
    }

    fn entry_env(&self, _func: &Function) -> Env<Width> {
        Env::reachable_top()
    }

    fn transfer(&self, env: &mut Env<Width>, inst: &CfgInst) {
        match inst {
            CfgInst::Decl { name, ty, init } => {
                let v = match (ty, init) {
                    (Type::Array(_, _), _) => Width::TOP,
                    (_, Some(e)) => self.eval_expr(env, e),
                    (_, None) => Width::TOP,
                };
                env.set(name, v);
            }
            CfgInst::Assign { target, value } => {
                if let crate::ast::LValue::Var(name) = target {
                    let v = self.eval_expr(env, value);
                    env.set(name, v);
                }
            }
            CfgInst::Expr(_) | CfgInst::Branch(_) | CfgInst::Return(_) => {}
        }
        for name in super::domain::inst_addr_taken(inst) {
            env.havoc(name);
        }
    }

    fn eval(&self, env: &Env<Width>, e: &Expr) -> Width {
        self.eval_expr(env, e)
    }

    fn refine(&self, env: &mut Env<Width>, cond: &Expr, taken: bool) {
        match &cond.kind {
            ExprKind::Unary(UnOp::Not, inner) => self.refine(env, inner, !taken),
            ExprKind::Var(name) if !taken => {
                let refined = env.get(name).meet(&Width::point(0));
                env.set(name, refined);
            }
            ExprKind::Binary(op, l, r) if op.is_comparison() => {
                let (op, var, other) = match (&l.kind, &r.kind) {
                    (ExprKind::Var(v), _) => (*op, v, r),
                    (_, ExprKind::Var(v)) => (Self::flip_cmp(*op), v, l),
                    _ => return,
                };
                let op = if taken {
                    op
                } else {
                    match Self::negate_cmp(op) {
                        Some(n) => n,
                        None => return,
                    }
                };
                let rhs = self.eval_expr(env, other);
                let refined = Self::constrain(env.get(var), op, &rhs);
                env.set(var, refined);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widening_snaps_to_type_boundaries_not_infinity() {
        let prev = Width::range(0, 3);
        let next = Width::range(0, 4);
        let w = prev.widen(&next);
        assert_eq!(w.hi(), 127, "first unstable climb lands on the char boundary");
        assert_eq!(w.lo(), 0, "stable bound kept");
        let w2 = w.widen(&Width::range(0, 128));
        assert_eq!(w2.hi(), 32767, "next climb lands on the short boundary");
        let w3 = w2.widen(&Width::range(-1, 32768));
        assert_eq!(w3.lo(), -128);
        assert_eq!(w3.hi(), (1 << 31) - 1);
    }

    #[test]
    fn widening_terminates_in_bounded_climbs() {
        // Feed an adversarial strictly-growing chain; each bound can climb
        // the 4-step ladder plus the final jump to ±∞, never more.
        let mut cur = Width::point(0);
        let mut climbs = 0;
        let mut grow = 1i128;
        for _ in 0..200 {
            let next = Width::range(-grow, grow);
            let w = cur.widen(&next);
            if w != cur {
                climbs += 1;
                cur = w;
            }
            grow = grow.saturating_mul(4);
        }
        assert!(climbs <= 5, "ladder widening must stabilise, took {climbs} climbs");
        assert_eq!(cur, Width::TOP);
    }

    #[test]
    fn widening_covers_the_new_iterate() {
        // Soundness: prev ∇ next ⊇ prev ⊔ next, across ladder steps.
        let cases = [
            (Width::range(0, 10), Width::range(-5, 300)),
            (Width::range(-200, 0), Width::range(-40000, 1)),
            (Width::point(5), Width::range(NINF, 5)),
        ];
        for (prev, next) in cases {
            let w = prev.widen(&next);
            let j = prev.join(&next);
            assert!(w.lo() <= j.lo() && w.hi() >= j.hi(), "{prev} ∇ {next} = {w} ⊉ {j}");
        }
    }

    #[test]
    fn join_is_commutative_and_idempotent() {
        let vals = [
            Width::BOTTOM,
            Width::point(0),
            Width::range(-128, 127),
            Width::range(0, 400),
            Width::TOP,
        ];
        for a in vals {
            assert_eq!(a.join(&a), a);
            for b in vals {
                assert_eq!(a.join(&b), b.join(&a));
                for c in vals {
                    assert_eq!(a.join(&b).join(&c), a.join(&b.join(&c)));
                }
            }
        }
    }

    #[test]
    fn truncation_proofs_are_must_facts() {
        assert!(Width::point(360).provably_exceeds_bits(8));
        assert!(Width::range(128, 400).provably_exceeds_bits(8));
        assert!(Width::range(NINF, -129).provably_exceeds_bits(8));
        assert!(!Width::range(100, 400).provably_exceeds_bits(8), "may-truncation is not a proof");
        assert!(!Width::TOP.provably_exceeds_bits(8));
        assert!(!Width::BOTTOM.provably_exceeds_bits(8));
        assert!(Width::range(-128, 127).fits_bits(8));
        assert!(!Width::range(-129, 0).fits_bits(8));
    }
}
