//! Provenance domain: tracks *which sink kinds* a value has been sanitized
//! for, proving format-string (CWE-134) and command-injection (CWE-78)
//! semantically.
//!
//! The rule-based taint pass treats sanitizers as kind-blind: any call in
//! the sanitizer vocabulary clears taint entirely, so `escape_sql(p)` flowing
//! into `exec_shell` looks safe to it. This domain keeps a *kind mask* —
//! the set of sink kinds a value is actually safe for — so a kind-mismatched
//! sanitizer is provably insufficient at the sink.
//!
//! The lattice is `Bottom < {Clean, Ext(mask)} < MaybeExt(mask) < Unknown`
//! (top). `Ext(mask)` means attacker-controlled on every path, sanitized for
//! exactly the kinds in `mask`; `MaybeExt` means attacker-controlled on some
//! path. Joins intersect masks (safe only for kinds both paths are safe
//! for). `Unknown` — a bare parameter, an unrecognised callee (including a
//! team's renamed sanitizer wrapper) — is never report-worthy, keeping the
//! checker must-style.

use super::domain::{AbstractValue, Domain, Env};
use crate::ast::{Expr, ExprKind, Function, Type, UnOp};
use crate::cfg::CfgInst;
use std::collections::BTreeMap;
use std::fmt;

/// Sink-kind bit: `format` (printf-style format-string position).
pub const KIND_FORMAT: u8 = 1 << 0;
/// Sink-kind bit: `command` (shell execution).
pub const KIND_COMMAND: u8 = 1 << 1;
/// Sink-kind bit: `sql`.
pub const KIND_SQL: u8 = 1 << 2;
/// Sink-kind bit: `xss` (HTML rendering).
pub const KIND_XSS: u8 = 1 << 3;
/// Sink-kind bit: `path` (filesystem access).
pub const KIND_PATH: u8 = 1 << 4;
/// All sink-kind bits.
pub const KIND_ALL: u8 = KIND_FORMAT | KIND_COMMAND | KIND_SQL | KIND_XSS | KIND_PATH;

/// Attacker-controlled data sources (the shared corpus vocabulary).
pub const SOURCE_FNS: [&str; 8] = [
    "read_input",
    "recv",
    "getenv",
    "http_param",
    "read_file",
    "read_socket",
    "get_request_field",
    "deserialize",
];

/// Sanitizers and the sink kinds they actually make a value safe for.
pub const SANITIZER_FNS: [(&str, u8); 8] = [
    ("escape_sql", KIND_SQL),
    ("escape_html", KIND_XSS),
    ("sanitize_path", KIND_PATH),
    ("escape_shell", KIND_COMMAND),
    ("validate_input", KIND_ALL),
    ("bound_check", KIND_ALL),
    ("sanitize", KIND_ALL),
    ("clamp_len", KIND_ALL),
];

/// Returns the kind mask a sanitizer grants, if `name` is one.
pub fn sanitizer_mask(name: &str) -> Option<u8> {
    SANITIZER_FNS.iter().find(|(n, _)| *n == name).map(|(_, m)| *m)
}

/// Abstract provenance of a value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Provenance {
    /// Unreachable / no value.
    Bottom,
    /// Definitely attacker-independent (literals, constants).
    Clean,
    /// Definitely attacker-controlled on every path; the mask holds the sink
    /// kinds it has been sanitized for.
    Ext(u8),
    /// Attacker-controlled on some path; mask as for [`Provenance::Ext`].
    MaybeExt(u8),
    /// No information (top).
    Unknown,
}

impl Provenance {
    #[cfg(test)]
    fn rank(self) -> u8 {
        match self {
            Provenance::Bottom => 0,
            Provenance::Clean | Provenance::Ext(_) => 1,
            Provenance::MaybeExt(_) => 2,
            Provenance::Unknown => 3,
        }
    }

    /// The kinds this value is safe for (`Clean` is safe for everything).
    fn mask(self) -> u8 {
        match self {
            Provenance::Ext(m) | Provenance::MaybeExt(m) => m,
            _ => KIND_ALL,
        }
    }

    /// Whether reaching a sink of `kind` is definitely an injection.
    pub fn sink_is_proven_bug(self, kind: u8) -> bool {
        matches!(self, Provenance::Ext(m) if m & kind == 0)
    }

    /// Whether reaching a sink of `kind` is an injection on some path.
    pub fn sink_is_possible_bug(self, kind: u8) -> bool {
        matches!(self, Provenance::MaybeExt(m) if m & kind == 0)
    }
}

impl AbstractValue for Provenance {
    fn top() -> Self {
        Provenance::Unknown
    }

    fn join(&self, other: &Self) -> Self {
        use Provenance::*;
        match (*self, *other) {
            (a, b) if a == b => a,
            (Bottom, x) | (x, Bottom) => x,
            (Unknown, _) | (_, Unknown) => Unknown,
            // Mixed external-ness: safe only for kinds both sides are safe
            // for; must-external only when both sides are must-external.
            (Ext(a), Ext(b)) => Ext(a & b),
            (a, b) => MaybeExt(a.mask() & b.mask()),
        }
    }
}

impl fmt::Display for Provenance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kinds = |m: u8| {
            let names: Vec<&str> = [
                (KIND_FORMAT, "format"),
                (KIND_COMMAND, "command"),
                (KIND_SQL, "sql"),
                (KIND_XSS, "xss"),
                (KIND_PATH, "path"),
            ]
            .iter()
            .filter(|(bit, _)| m & bit != 0)
            .map(|(_, n)| *n)
            .collect();
            if names.is_empty() {
                "none".to_string()
            } else {
                names.join("+")
            }
        };
        match self {
            Provenance::Bottom => write!(f, "bottom"),
            Provenance::Clean => write!(f, "clean"),
            Provenance::Ext(m) => write!(f, "external(safe-for: {})", kinds(*m)),
            Provenance::MaybeExt(m) => write!(f, "maybe-external(safe-for: {})", kinds(*m)),
            Provenance::Unknown => write!(f, "unknown"),
        }
    }
}

/// Provenance transfer functions, with interprocedural return summaries.
#[derive(Debug, Clone, Default)]
pub struct ProvenanceDomain {
    /// Abstract return provenance per analysed function (a local wrapper
    /// around a source propagates external-ness to its callers). Externals
    /// outside the vocabulary evaluate to top.
    pub summaries: BTreeMap<String, Provenance>,
}

impl ProvenanceDomain {
    /// A domain with the given interprocedural summaries.
    pub fn with_summaries(summaries: BTreeMap<String, Provenance>) -> Self {
        ProvenanceDomain { summaries }
    }

    /// Combines operand provenances for string/arithmetic composition:
    /// external-ness propagates, kind masks intersect.
    fn combine(a: Provenance, b: Provenance) -> Provenance {
        use Provenance::*;
        match (a, b) {
            (Bottom, x) | (x, Bottom) => x,
            (Unknown, _) | (_, Unknown) => Unknown,
            (Clean, Clean) => Clean,
            (Ext(_), _) | (_, Ext(_)) => Ext(a.mask() & b.mask()),
            _ => MaybeExt(a.mask() & b.mask()),
        }
    }

    fn eval_expr(&self, env: &Env<Provenance>, e: &Expr) -> Provenance {
        match &e.kind {
            ExprKind::Int(_) | ExprKind::Char(_) | ExprKind::Str(_) => Provenance::Clean,
            ExprKind::Var(name) => env.get(name),
            ExprKind::Unary(UnOp::Not | UnOp::Neg, inner) => self.eval_expr(env, inner),
            ExprKind::Unary(_, _) => Provenance::Unknown,
            ExprKind::Binary(_, l, r) => {
                Self::combine(self.eval_expr(env, l), self.eval_expr(env, r))
            }
            ExprKind::Call(name, args) => {
                if SOURCE_FNS.contains(&name.as_str()) {
                    return Provenance::Ext(0);
                }
                if let Some(granted) = sanitizer_mask(name) {
                    // A sanitizer adds its kinds to the operand's safe mask.
                    return match args.first().map(|a| self.eval_expr(env, a)) {
                        Some(Provenance::Ext(m)) => Provenance::Ext(m | granted),
                        Some(Provenance::MaybeExt(m)) => Provenance::MaybeExt(m | granted),
                        Some(other) => other,
                        None => Provenance::Unknown,
                    };
                }
                if name == "concat" {
                    // The canonical string combiner forwards its operands'
                    // provenance, like a binary operator.
                    return args
                        .iter()
                        .map(|a| self.eval_expr(env, a))
                        .fold(Provenance::Clean, Self::combine);
                }
                self.summaries.get(name.as_str()).copied().unwrap_or(Provenance::Unknown)
            }
            ExprKind::Index(_, _) => Provenance::Unknown,
        }
    }
}

impl Domain for ProvenanceDomain {
    type Value = Provenance;

    fn name(&self) -> &'static str {
        "provenance"
    }

    fn entry_env(&self, _func: &Function) -> Env<Provenance> {
        Env::reachable_top()
    }

    fn transfer(&self, env: &mut Env<Provenance>, inst: &CfgInst) {
        match inst {
            CfgInst::Decl { name, ty, init } => {
                let v = match (ty, init) {
                    (Type::Array(_, _), _) => Provenance::Unknown,
                    (_, Some(e)) => self.eval_expr(env, e),
                    (_, None) => Provenance::Unknown,
                };
                env.set(name, v);
            }
            CfgInst::Assign { target, value } => {
                if let crate::ast::LValue::Var(name) = target {
                    let v = self.eval_expr(env, value);
                    env.set(name, v);
                }
            }
            CfgInst::Expr(_) | CfgInst::Branch(_) | CfgInst::Return(_) => {}
        }
        for name in super::domain::inst_addr_taken(inst) {
            env.havoc(name);
        }
    }

    fn eval(&self, env: &Env<Provenance>, e: &Expr) -> Provenance {
        self.eval_expr(env, e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: [Provenance; 8] = [
        Provenance::Bottom,
        Provenance::Clean,
        Provenance::Ext(0),
        Provenance::Ext(KIND_SQL),
        Provenance::Ext(KIND_ALL),
        Provenance::MaybeExt(0),
        Provenance::MaybeExt(KIND_COMMAND | KIND_SQL),
        Provenance::Unknown,
    ];

    #[test]
    fn join_is_commutative_idempotent_and_rank_monotone() {
        for a in SAMPLE {
            assert_eq!(a.join(&a), a, "idempotence for {a:?}");
            for b in SAMPLE {
                let j = a.join(&b);
                assert_eq!(j, b.join(&a), "commutativity for {a:?} ⊔ {b:?}");
                assert!(j.rank() >= a.rank().max(b.rank()), "{a:?} ⊔ {b:?} = {j:?}");
            }
        }
    }

    #[test]
    fn join_is_associative() {
        for a in SAMPLE {
            for b in SAMPLE {
                for c in SAMPLE {
                    assert_eq!(
                        a.join(&b).join(&c),
                        a.join(&b.join(&c)),
                        "associativity for {a:?}, {b:?}, {c:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn joins_intersect_safety_masks() {
        use Provenance::*;
        assert_eq!(Ext(KIND_SQL).join(&Ext(KIND_COMMAND)), Ext(0));
        assert_eq!(Ext(KIND_SQL).join(&Ext(KIND_SQL | KIND_XSS)), Ext(KIND_SQL));
        assert_eq!(Clean.join(&Ext(KIND_SQL)), MaybeExt(KIND_SQL));
        assert_eq!(MaybeExt(KIND_ALL).join(&Ext(KIND_SQL)), MaybeExt(KIND_SQL));
        assert_eq!(Unknown.join(&Ext(0)), Unknown, "no report without tracked provenance");
    }

    #[test]
    fn widening_terminates_on_every_ascending_chain() {
        // Finite height: rank climbs at most 3 times and the mask can only
        // lose bits (5 of them) — every chain stabilises.
        for start in SAMPLE {
            let mut cur = start;
            let mut climbs = 0;
            for next in SAMPLE {
                let w = cur.widen(&next);
                if w != cur {
                    climbs += 1;
                    cur = w;
                }
            }
            assert!(climbs <= 8, "chain from {start:?} climbed {climbs} times");
        }
    }

    #[test]
    fn kind_mismatch_is_a_proof_only_for_must_external() {
        assert!(Provenance::Ext(KIND_SQL).sink_is_proven_bug(KIND_COMMAND));
        assert!(!Provenance::Ext(KIND_SQL).sink_is_proven_bug(KIND_SQL));
        assert!(Provenance::MaybeExt(0).sink_is_possible_bug(KIND_FORMAT));
        assert!(!Provenance::MaybeExt(KIND_FORMAT).sink_is_possible_bug(KIND_FORMAT));
        assert!(!Provenance::Unknown.sink_is_proven_bug(KIND_COMMAND));
        assert!(!Provenance::Clean.sink_is_proven_bug(KIND_COMMAND));
    }
}
