//! Abstract interpretation: a generic monotone-framework fixpoint solver
//! over the [`crate::cfg`] layer with pluggable abstract domains.
//!
//! The module is organised as a classic monotone framework:
//!
//! * [`domain`] — the [`AbstractValue`] lattice contract, the per-variable
//!   [`Env`] state, and the [`Domain`] transfer-function trait;
//! * [`interval`] — value ranges with widening to ±∞ (out-of-bounds and
//!   division-by-zero reasoning);
//! * [`nullness`] — literal-null provenance tracking for pointers;
//! * [`init`] — definite-initialization;
//! * [`ownership`] — heap-handle allocation state (use-after-free and
//!   double-free as must-facts);
//! * [`width`] — value ranges with storage-type-boundary widening (integer
//!   truncation proofs, sharper overflow bounds);
//! * [`provenance`] — attacker-control tracking with per-sink-kind
//!   sanitizer masks (kind-mismatched sanitization proofs);
//! * [`solver`] — the reverse-post-order worklist fixpoint engine with a
//!   configurable widening threshold;
//! * [`callgraph`] — program call graph plus the bottom-up driver that
//!   computes context-insensitive interprocedural summaries (one abstract
//!   return value per function) so facts flow across function boundaries.
//!
//! Termination argument: every shipped domain is either of finite height
//! (nullness, init, ownership: chains of length ≤ 4; provenance: rank chains
//! of length ≤ 4 with masks that only lose bits) or equipped with a widening
//! operator that jumps unstable bounds along a finite ladder — straight to
//! ±∞ for intervals, through the storage-type boundaries ±2⁷…±2⁶³ for the
//! width domain — so each variable's abstract value can only climb a finite
//! chain. The solver joins for the
//! first [`solver::SolverConfig::widening_threshold`] visits of a block and
//! widens afterwards, which bounds the number of times any block can be
//! re-enqueued; a hard `max_iterations` backstop turns a (theoretically
//! impossible) divergence into a reported non-convergence instead of a hang.
//!
//! ```
//! use vulnman_lang::absint::interval::IntervalDomain;
//! use vulnman_lang::absint::solver::{Solver, SolverConfig};
//! use vulnman_lang::cfg::Cfg;
//! use vulnman_lang::parse;
//!
//! let p = parse("int f() { int i = 0; while (i < 10) { i = i + 1; } return i; }").unwrap();
//! let cfg = Cfg::build(&p.functions[0]);
//! let domain = IntervalDomain::default();
//! let analysis = Solver::new(SolverConfig::default()).run(&domain, &cfg, &p.functions[0]);
//! assert!(analysis.stats.converged);
//! ```

pub mod callgraph;
pub mod domain;
pub mod init;
pub mod interval;
pub mod nullness;
pub mod ownership;
pub mod provenance;
pub mod solver;
pub mod width;

pub use callgraph::{analyze_program, analyze_program_parallel, CallGraph, ProgramAnalysis};
pub use domain::{AbstractValue, Domain, Env};
pub use init::{Init, InitDomain};
pub use interval::{Interval, IntervalDomain};
pub use nullness::{Nullness, NullnessDomain};
pub use ownership::{Ownership, OwnershipDomain};
pub use provenance::{Provenance, ProvenanceDomain};
pub use solver::{DomainAnalysis, Solver, SolverConfig, SolverStats};
pub use width::{Width, WidthDomain};
