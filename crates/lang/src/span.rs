//! Source locations.
//!
//! Every token and AST node carries a [`Span`] so that analyses (taint
//! tracking, detectors) can report findings at precise source locations,
//! mirroring line-level vulnerability prediction tools such as LineVul.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A half-open byte range `[start, end)` into a source file, with the
/// 1-based line and column of its start for human-readable reporting.
///
/// # Examples
///
/// ```
/// use vulnman_lang::span::Span;
/// let s = Span::new(0, 3, 1, 1);
/// assert_eq!(s.len(), 3);
/// assert!(!s.is_empty());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
    /// 1-based line number of `start`.
    pub line: u32,
    /// 1-based column number of `start`.
    pub col: u32,
}

impl Span {
    /// Creates a span from raw parts.
    pub fn new(start: usize, end: usize, line: u32, col: u32) -> Self {
        Span { start, end, line, col }
    }

    /// A placeholder span for synthesized nodes that have no source text.
    pub fn dummy() -> Self {
        Span { start: 0, end: 0, line: 0, col: 0 }
    }

    /// Returns `true` if this is the placeholder produced by [`Span::dummy`].
    pub fn is_dummy(&self) -> bool {
        self.line == 0
    }

    /// Length of the span in bytes.
    pub fn len(&self) -> usize {
        self.end.saturating_sub(self.start)
    }

    /// Returns `true` if the span covers no bytes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Smallest span covering both `self` and `other`.
    ///
    /// The line/column of the earlier span is kept.
    pub fn to(self, other: Span) -> Span {
        let (first, _) = if self.start <= other.start { (self, other) } else { (other, self) };
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
            line: first.line,
            col: first.col,
        }
    }

    /// Returns `true` if `self` fully contains `other`.
    pub fn contains(&self, other: &Span) -> bool {
        self.start <= other.start && other.end <= self.end
    }
}

impl Default for Span {
    fn default() -> Self {
        Span::dummy()
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dummy_is_recognizable() {
        assert!(Span::dummy().is_dummy());
        assert!(!Span::new(0, 1, 1, 1).is_dummy());
    }

    #[test]
    fn join_covers_both() {
        let a = Span::new(0, 4, 1, 1);
        let b = Span::new(10, 14, 2, 3);
        let j = a.to(b);
        assert_eq!(j.start, 0);
        assert_eq!(j.end, 14);
        assert_eq!(j.line, 1);
        // Join is symmetric in extent.
        let k = b.to(a);
        assert_eq!(k.start, 0);
        assert_eq!(k.end, 14);
        assert_eq!(k.line, 1);
    }

    #[test]
    fn containment() {
        let outer = Span::new(0, 10, 1, 1);
        let inner = Span::new(2, 5, 1, 3);
        assert!(outer.contains(&inner));
        assert!(!inner.contains(&outer));
    }

    #[test]
    fn display_is_line_col() {
        assert_eq!(Span::new(5, 9, 3, 7).to_string(), "3:7");
    }
}
