//! # vulnman-lang
//!
//! Program-analysis substrate for the `vulnman` workspace: a mini-C dialect
//! with a lexer, parser, pretty-printer, control-flow graphs, classic
//! data-flow analyses, and an interprocedural taint engine.
//!
//! The dialect is intentionally small (functions, `int`/`char`/pointers/
//! arrays, structured control flow) but expressive enough to encode every
//! vulnerability pattern exercised by the corpus generator in
//! `vulnman-synth`, and analyzable enough to support the rule-based
//! detectors and expert ML features the paper's gap studies require.
//!
//! ## Quick start
//!
//! ```
//! # fn main() -> Result<(), vulnman_lang::error::ParseError> {
//! use vulnman_lang::{parser::parse, taint::{TaintAnalysis, TaintConfig}};
//!
//! let program = parse(r#"
//!     void handler() {
//!         char* id = http_param("user_id");
//!         exec_query(id); // SQL injection
//!     }
//! "#)?;
//!
//! let taint = TaintAnalysis::run(&program, &TaintConfig::default_config());
//! assert_eq!(taint.findings.len(), 1);
//! assert_eq!(taint.findings[0].sink_kind, "sql");
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod absint;
pub mod ast;
pub mod cache;
pub mod cfg;
pub mod clone;
pub mod dataflow;
pub mod error;
pub mod incremental;
pub mod intern;
pub mod interp;
pub mod lexer;
pub mod metrics;
pub mod parser;
pub mod printer;
pub mod span;
pub mod taint;
pub mod token;

pub use ast::{Expr, Function, Program, Stmt, Type};
pub use cache::{AnalysisCache, CacheFaultHook, CacheOp, CacheStats, Stage, STAGE_TABLE_FANOUT};
pub use clone::{CloneConfig, CloneIndex, MinHasher, TokenAlignment, UnionFind};
pub use error::{ParseError, ParseResult};
pub use incremental::{
    analyze_program_incremental, analyze_program_incremental_in, fingerprint_function,
    IncrementalContext, IncrementalRun, IncrementalTrace,
};
pub use intern::{Interner, Symbol};
pub use parser::parse;
pub use printer::print_program;
pub use span::Span;
