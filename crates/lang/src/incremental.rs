//! Per-function incremental recompute for the abstract-interpretation
//! pipeline.
//!
//! The batch drivers in [`crate::absint::callgraph`] re-solve every function
//! of a program on every call. A long-running service sees the *same*
//! program resubmitted with one function edited, over and over — re-running
//! the whole fixpoint is almost entirely wasted work. This module keys each
//! pipeline stage by a hash of exactly the inputs that determine its output,
//! so a resubmission re-runs only the stages whose input hashes changed:
//!
//! * **CFG** ([`Stage::Cfg`]) — keyed per function by the function's
//!   [fingerprint](fingerprint_function): a hash of its full AST `Debug`
//!   rendering, which covers the name, parameters, types, body, doc
//!   comments, *and every source span*. Two functions share a CFG entry only
//!   when their ASTs — locations included — are identical, which is what
//!   makes reusing span-bearing results sound.
//! * **Summary** ([`Stage::Summary`]) and **findings**
//!   ([`Stage::Findings`]) — keyed per call-graph strongly connected
//!   component by the pass tag, the fingerprints of every member, and the
//!   *summary values* of every defined external callee. Keying by callee
//!   summary values (not callee fingerprints) is the dependency tracker: if
//!   an edited callee happens to produce the same summary, its callers'
//!   keys are unchanged and their fixpoints are skipped — early cutoff,
//!   exactly like a build system keyed on content rather than timestamps.
//!
//! Lex and parse stage accounting for whole units lives on
//! [`AnalysisCache::parse_stage`] and [`Stage::Lex`]; this module handles
//! everything from the CFG down.
//!
//! ## Equivalence argument
//!
//! The driver mirrors [`analyze_program_parallel`]'s component walk: SCCs
//! are processed in bottom-up topological order, members of a cycle feed
//! each other through a local overlay table in the sequential driver's
//! relative order, and results are delivered in the exact sequential
//! post-order. A function's solved fixpoint depends only on its own AST and
//! the summaries of its defined callees (the workspace-wide `make_domain`
//! contract documented on [`analyze_program_parallel`]), which is precisely
//! what the stage keys hash — so a stage hit returns byte-identical values
//! to the recompute it skipped, and [`SolverStats`] fold commutatively, so
//! the aggregate statistics match the batch drivers too.

use crate::absint::callgraph::{return_summary, CallGraph, ProgramAnalysis};
use crate::absint::domain::Domain;
use crate::absint::solver::{DomainAnalysis, Solver, SolverConfig, SolverStats};
use crate::ast::{Function, Program};
use crate::cache::{AnalysisCache, Stage};
use crate::cfg::Cfg;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::sync::Arc;

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

/// FNV-1a over a byte slice.
fn fnv(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    h
}

/// A [`std::fmt::Write`] sink that FNV-1a-hashes everything written to it.
/// Hashing `Debug` output as it streams produces the same value as
/// formatting into a `String` first, without the allocation — fingerprints
/// sit on the per-request hot path of the serving loop.
struct FnvWriter(u64);

impl std::fmt::Write for FnvWriter {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        for &b in s.as_bytes() {
            self.0 = (self.0 ^ b as u64).wrapping_mul(FNV_PRIME);
        }
        Ok(())
    }
}

/// splitmix64 finalizer, used to separate the per-stage key spaces derived
/// from one base hash.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// Content fingerprint of one function: FNV-1a over the AST's `Debug`
/// rendering, which includes every identifier, literal, type, doc comment,
/// and source span. Two functions with equal fingerprints have structurally
/// identical ASTs at identical source locations, so every per-function
/// analysis result — spans and line numbers included — is interchangeable
/// between them.
pub fn fingerprint_function(func: &Function) -> u64 {
    let mut w = FnvWriter(FNV_OFFSET);
    let _ = write!(w, "{func:?}");
    w.0
}

/// Pass-independent per-program context for
/// [`analyze_program_incremental_in`]: the call graph, its bottom-up
/// order, and every function's fingerprint. All three are pure functions
/// of the program, so a caller running several domain passes over the same
/// AST (the semantic engine runs three) builds this once per request
/// instead of once per pass — on the serving hot path that framing cost,
/// not the fixpoint, dominates an incremental hit.
pub struct IncrementalContext {
    graph: CallGraph,
    order: Vec<String>,
    pos: BTreeMap<String, usize>,
    fps: BTreeMap<String, u64>,
}

impl IncrementalContext {
    /// Builds the context for `program`. The context must only be used
    /// with the exact program it was built from.
    pub fn new(program: &Program) -> IncrementalContext {
        Self::build(program, fingerprint_function)
    }

    /// Builds the context for `program` using the *source slice*
    /// fingerprint ([`fingerprint_function_source`]) instead of the AST
    /// `Debug` fingerprint. When the caller still has the source text in
    /// hand (the serving loop always does), hashing each function's raw
    /// bytes skips re-rendering the whole AST per request — the single
    /// largest fixed cost of an incremental resubmission. `program` must
    /// be the parse of exactly this `source`.
    pub fn with_source(program: &Program, source: &str) -> IncrementalContext {
        Self::build(program, |f| fingerprint_function_source(source, f))
    }

    fn build(program: &Program, fp: impl Fn(&Function) -> u64) -> IncrementalContext {
        let graph = CallGraph::build(program);
        let order: Vec<String> = graph.bottom_up().iter().map(|n| n.to_string()).collect();
        let pos: BTreeMap<String, usize> =
            order.iter().enumerate().map(|(i, n)| (n.clone(), i)).collect();
        let fps: BTreeMap<String, u64> =
            program.functions.iter().map(|f| (f.name.to_string(), fp(f))).collect();
        IncrementalContext { graph, order, pos, fps }
    }

    /// The fingerprint of the named function, if defined.
    pub fn fingerprint_of(&self, name: &str) -> Option<u64> {
        self.fps.get(name).copied()
    }
}

/// Content fingerprint of one function computed from its raw source slice
/// plus its absolute position (`start`, `line`, `col`). The parser is
/// deterministic, so two functions with equal slices at equal positions
/// have identical ASTs — every inner span is derived from the function's
/// start position plus offsets within the slice. The one exception is the
/// attached doc comment, which lives *above* the span; doc text flows into
/// no CFG, summary, or finding, so artifacts keyed by this fingerprint are
/// still interchangeable. Equivalent to [`fingerprint_function`] as a
/// validity criterion, at a fraction of the cost (no `Debug` rendering).
pub fn fingerprint_function_source(source: &str, func: &Function) -> u64 {
    let span = func.span;
    let Some(slice) = source.as_bytes().get(span.start..span.end) else {
        // The span does not address `source`; the caller paired a program
        // with the wrong text. Fall back to the AST fingerprint, which is
        // always sound.
        return fingerprint_function(func);
    };
    let mut h = FNV_OFFSET;
    for bytes in [
        &(span.start as u64).to_le_bytes()[..],
        &(span.line as u64).to_le_bytes()[..],
        &(span.col as u64).to_le_bytes()[..],
        slice,
    ] {
        for &b in bytes {
            h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
        }
    }
    h
}

/// Which functions an incremental pass actually re-solved, and which it
/// served from the stage cache. This is the evidence the equivalence suite
/// uses to prove untouched functions were not re-analyzed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IncrementalTrace {
    /// Functions whose fixpoint ran during this call, in delivery order.
    pub solved: Vec<String>,
    /// Functions served entirely from cached summaries + findings.
    pub reused: Vec<String>,
}

impl IncrementalTrace {
    /// Folds another pass's trace in: a function counts as solved if *any*
    /// pass solved it, and reused only if every pass reused it.
    pub fn merge(&mut self, other: &IncrementalTrace) {
        let solved: BTreeSet<String> = self.solved.iter().chain(&other.solved).cloned().collect();
        self.reused.retain(|n| !solved.contains(n));
        for n in &other.reused {
            if !solved.contains(n) && !self.reused.contains(n) {
                self.reused.push(n.clone());
            }
        }
        for n in &other.solved {
            if !self.solved.contains(n) {
                self.solved.push(n.clone());
            }
        }
    }
}

/// Result of one incremental pass: the interprocedural analysis (summaries
/// plus aggregated solver statistics, byte-identical to the batch drivers),
/// the per-function checker payloads in exact sequential post-order, and
/// the recompute trace.
#[derive(Debug)]
pub struct IncrementalRun<V, T> {
    /// Summaries and solver statistics, as [`analyze_program`] would
    /// return them.
    ///
    /// [`analyze_program`]: crate::absint::analyze_program
    pub analysis: ProgramAnalysis<V>,
    /// One checker payload per function, in the sequential driver's
    /// delivery (post-) order.
    pub payloads: Vec<(String, T)>,
    /// Which functions were re-solved vs. served from cache.
    pub trace: IncrementalTrace,
}

/// Per-SCC cached summary artifact: member summaries in sequential member
/// order plus the component's folded solver statistics.
struct SummaryArtifact<V> {
    members: Vec<(String, V)>,
    stats: SolverStats,
}

/// Per-SCC cached findings artifact: one checker payload per member, in
/// sequential member order.
struct FindingsArtifact<T>(Vec<(String, T)>);

/// Analyses `program` like [`analyze_program`], but through the per-stage
/// tables of `cache`: CFGs are reused per function fingerprint, and
/// summaries + checker payloads per call-graph component whose members and
/// callee summaries are unchanged. `pass_tag` must fingerprint everything
/// else the outputs depend on — the domain's identity, the solver
/// configuration, and the checker configuration — so distinct passes never
/// share entries.
///
/// `check` is the per-function checker: it sees exactly what a
/// [`analyze_program`] visit closure sees and returns the payload to cache
/// (for semantic checkers, the function's findings).
///
/// [`analyze_program`]: crate::absint::analyze_program
pub fn analyze_program_incremental<D, M, C, T>(
    program: &Program,
    cache: &AnalysisCache,
    config: SolverConfig,
    pass_tag: u64,
    make_domain: M,
    check: C,
) -> IncrementalRun<D::Value, T>
where
    D: Domain,
    D::Value: Clone + std::fmt::Debug + Send + Sync + 'static,
    M: Fn(&BTreeMap<String, D::Value>) -> D,
    C: Fn(&Function, &Cfg, &D, &DomainAnalysis<D::Value>) -> T,
    T: Clone + Send + Sync + 'static,
{
    let ctx = IncrementalContext::new(program);
    analyze_program_incremental_in(&ctx, program, cache, config, pass_tag, make_domain, check)
}

/// [`analyze_program_incremental`] with a caller-supplied
/// [`IncrementalContext`], so several passes over the same program share
/// one call-graph construction and one fingerprinting sweep. `ctx` must
/// have been built from this exact `program`.
pub fn analyze_program_incremental_in<D, M, C, T>(
    ctx: &IncrementalContext,
    program: &Program,
    cache: &AnalysisCache,
    config: SolverConfig,
    pass_tag: u64,
    make_domain: M,
    check: C,
) -> IncrementalRun<D::Value, T>
where
    D: Domain,
    D::Value: Clone + std::fmt::Debug + Send + Sync + 'static,
    M: Fn(&BTreeMap<String, D::Value>) -> D,
    C: Fn(&Function, &Cfg, &D, &DomainAnalysis<D::Value>) -> T,
    T: Clone + Send + Sync + 'static,
{
    let cg = &ctx.graph;
    let order = &ctx.order;
    let pos = &ctx.pos;
    let fps = &ctx.fps;

    let solver = Solver::new(config);
    let mut completed: BTreeMap<String, D::Value> = BTreeMap::new();
    let mut payload_map: BTreeMap<String, T> = BTreeMap::new();
    let mut stats = SolverStats { converged: true, ..SolverStats::default() };
    let mut trace = IncrementalTrace::default();

    for comp in cg.sccs() {
        // Members in the sequential driver's relative order, so cycle
        // members accumulate overlay summaries exactly like the batch walk.
        let mut members: Vec<&Function> = comp.iter().map(|&i| &program.functions[i]).collect();
        members.sort_by_key(|f| pos[f.name.as_str()]);
        let member_names: BTreeSet<&str> = members.iter().map(|f| f.name.as_str()).collect();

        // The component key: pass tag, member fingerprints (order matters —
        // it is the solve order), then each defined external callee's name
        // and *summary value*. Hashing the summary's Debug rendering gives
        // early cutoff: an edited callee whose summary lands on the same
        // value leaves every caller key unchanged.
        let mut h = mix64(pass_tag);
        for f in &members {
            h = mix64(h ^ fps[f.name.as_str()]);
        }
        let mut externals: BTreeSet<&str> = BTreeSet::new();
        for f in &members {
            for callee in cg.callees_of(f.name.as_str()) {
                if !member_names.contains(callee) {
                    externals.insert(callee);
                }
            }
        }
        for callee in externals {
            let summary = &completed[callee];
            let mut w = FnvWriter(FNV_OFFSET);
            let _ = write!(w, "{summary:?}");
            h = mix64(h ^ fnv(callee.as_bytes()));
            h = mix64(h ^ w.0);
        }
        let summary_key = mix64(h ^ 0x5e55);
        let findings_key = mix64(h ^ 0xf1fd);

        let cached_summary =
            cache.stage_get::<SummaryArtifact<D::Value>>(Stage::Summary, summary_key);
        let cached_findings = cache.stage_get::<FindingsArtifact<T>>(Stage::Findings, findings_key);
        if let (Some(s), Some(f)) = (&cached_summary, &cached_findings) {
            for (name, v) in &s.members {
                completed.insert(name.clone(), v.clone());
                trace.reused.push(name.clone());
            }
            stats.absorb(&s.stats);
            for (name, t) in &f.0 {
                payload_map.insert(name.clone(), t.clone());
            }
            continue;
        }

        // Miss on either table: solve the component. The overlay table
        // mirrors `analyze_program_parallel`'s cycle handling.
        let mut local: Option<BTreeMap<String, D::Value>> = None;
        let mut art_members: Vec<(String, D::Value)> = Vec::with_capacity(members.len());
        let mut art_payloads: Vec<(String, T)> = Vec::with_capacity(members.len());
        let mut comp_stats = SolverStats { converged: true, ..SolverStats::default() };
        for func in &members {
            let name = func.name.as_str();
            let cfg = cache.stage(Stage::Cfg, fps[name], || Cfg::build(func));
            let table = local.as_ref().unwrap_or(&completed);
            let domain = make_domain(table);
            let analysis = solver.run(&domain, &cfg, func);
            let ret = return_summary(&domain, &cfg, &analysis);
            comp_stats.absorb(&analysis.stats);
            let payload = check(func, &cfg, &domain, &analysis);
            if members.len() > 1 {
                local
                    .get_or_insert_with(|| completed.clone())
                    .insert(name.to_string(), ret.clone());
            }
            art_members.push((name.to_string(), ret));
            art_payloads.push((name.to_string(), payload));
            trace.solved.push(name.to_string());
        }
        for (name, v) in &art_members {
            completed.insert(name.clone(), v.clone());
        }
        for (name, t) in &art_payloads {
            payload_map.insert(name.clone(), t.clone());
        }
        stats.absorb(&comp_stats);
        if cached_summary.is_none() {
            cache.stage_put(
                Stage::Summary,
                summary_key,
                Arc::new(SummaryArtifact { members: art_members, stats: comp_stats }),
            );
        }
        if cached_findings.is_none() {
            cache.stage_put(
                Stage::Findings,
                findings_key,
                Arc::new(FindingsArtifact(art_payloads)),
            );
        }
    }

    // Deliver payloads in the exact sequential post-order, which is what
    // keeps downstream concatenation (and the stable findings sort on top
    // of it) byte-identical to the batch drivers.
    let payloads: Vec<(String, T)> = order
        .iter()
        .map(|n| (n.clone(), payload_map.remove(n.as_str()).expect("every function has a payload")))
        .collect();
    IncrementalRun { analysis: ProgramAnalysis { summaries: completed, stats }, payloads, trace }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::absint::interval::IntervalDomain;
    use crate::absint::{analyze_program, Interval};
    use crate::parse;

    const PROG: &str = "int leaf() { return 2; }\n\
                        int even(int n) { if (n) { return odd(n - 1); } return 1; }\n\
                        int odd(int n) { if (n) { return even(n - 1); } return 0; }\n\
                        int mid(int x) { return leaf() + even(x); }\n\
                        int top_fn(int x) { int d = mid(x); return d / leaf(); }";

    fn run_incremental(
        program: &Program,
        cache: &AnalysisCache,
    ) -> IncrementalRun<Interval, String> {
        analyze_program_incremental::<IntervalDomain, _, _, String>(
            program,
            cache,
            SolverConfig::default(),
            7,
            |s| IntervalDomain::with_summaries(s.clone()),
            |f, _, _, a| format!("{} {:?}", f.name, a.block_entry),
        )
    }

    #[test]
    fn incremental_matches_sequential_driver() {
        let p = parse(PROG).unwrap();
        let mut seq_payloads: Vec<String> = Vec::new();
        let seq = analyze_program(
            &p,
            SolverConfig::default(),
            |s| IntervalDomain::with_summaries(s.clone()),
            |f, _, _, a| seq_payloads.push(format!("{} {:?}", f.name, a.block_entry)),
        );
        let cache = AnalysisCache::new();
        for round in 0..3 {
            let inc = run_incremental(&p, &cache);
            let inc_payloads: Vec<String> = inc.payloads.iter().map(|(_, t)| t.clone()).collect();
            assert_eq!(inc_payloads, seq_payloads, "round {round}");
            assert_eq!(format!("{:?}", inc.analysis.summaries), format!("{:?}", seq.summaries));
            assert_eq!(inc.analysis.stats, seq.stats, "round {round}");
            if round == 0 {
                assert_eq!(inc.trace.solved.len(), 5, "cold run solves everything");
            } else {
                assert!(inc.trace.solved.is_empty(), "warm run solves nothing");
                assert_eq!(inc.trace.reused.len(), 5);
            }
        }
    }

    #[test]
    fn editing_one_leaf_function_reanalyzes_only_the_affected_cone() {
        let p = parse(PROG).unwrap();
        let cache = AnalysisCache::new();
        run_incremental(&p, &cache);
        // Change `top_fn` (a root: nothing calls it) — only it re-solves.
        let edited = parse(&PROG.replace("return d / leaf();", "return d + leaf();")).unwrap();
        let inc = run_incremental(&edited, &cache);
        assert_eq!(inc.trace.solved, vec!["top_fn".to_string()]);
        assert_eq!(inc.trace.reused.len(), 4);
        // And the result still matches a cold full analysis.
        let cold = run_incremental(&edited, &AnalysisCache::disabled());
        assert_eq!(
            format!("{:?}", inc.analysis.summaries),
            format!("{:?}", cold.analysis.summaries)
        );
        assert_eq!(inc.payloads, cold.payloads);
    }

    // The edited function is *last*, so an edit of any length shifts no
    // other function's spans — untouched callers keep their fingerprints.
    const CUT: &str = "int mid() { return leaf() + 1; }\n\
                       int top_fn() { return mid() * 2; }\n\
                       int side(int x) { return x * 2; }\n\
                       int leaf() { return 2; }";

    #[test]
    fn early_cutoff_spares_callers_when_a_summary_is_unchanged() {
        // `leaf` changes body but keeps the same summary value [2, 2]; its
        // callers' component keys hash the summary, not the text, so only
        // `leaf` itself re-solves.
        let p = parse(CUT).unwrap();
        let cache = AnalysisCache::new();
        run_incremental(&p, &cache);
        let edited =
            parse(&CUT.replace("int leaf() { return 2; }", "int leaf() { int a = 2; return a; }"))
                .unwrap();
        let inc = run_incremental(&edited, &cache);
        assert_eq!(inc.trace.solved, vec!["leaf".to_string()], "early cutoff failed");
        assert_eq!(inc.trace.reused.len(), 3);
    }

    #[test]
    fn changed_summary_invalidates_transitive_callers() {
        let p = parse(CUT).unwrap();
        let cache = AnalysisCache::new();
        run_incremental(&p, &cache);
        // `leaf` now summarises to [3, 3]: `mid`'s summary becomes [4, 4],
        // so `top_fn` re-solves too; `side` has no path to `leaf` and is
        // reused.
        let edited =
            parse(&CUT.replace("int leaf() { return 2; }", "int leaf() { return 3; }")).unwrap();
        let inc = run_incremental(&edited, &cache);
        let solved: BTreeSet<&str> = inc.trace.solved.iter().map(String::as_str).collect();
        assert_eq!(solved, BTreeSet::from(["leaf", "mid", "top_fn"]));
        assert_eq!(inc.trace.reused, vec!["side".to_string()]);
        let cold = run_incremental(&edited, &AnalysisCache::disabled());
        assert_eq!(inc.payloads, cold.payloads);
    }

    #[test]
    fn fingerprints_cover_spans() {
        // Same text at a different location must not share a fingerprint:
        // findings carry absolute spans.
        let a = parse("int f() { return 1; }").unwrap();
        let b = parse("\n\nint f() { return 1; }").unwrap();
        assert_ne!(fingerprint_function(&a.functions[0]), fingerprint_function(&b.functions[0]));
    }

    #[test]
    fn trace_merge_prefers_solved() {
        let mut a =
            IncrementalTrace { solved: vec!["f".into()], reused: vec!["g".into(), "h".into()] };
        let b = IncrementalTrace { solved: vec!["g".into()], reused: vec!["f".into(), "h".into()] };
        a.merge(&b);
        assert_eq!(a.solved, vec!["f".to_string(), "g".to_string()]);
        assert_eq!(a.reused, vec!["h".to_string()]);
    }
}
