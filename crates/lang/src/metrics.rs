//! Structural source metrics used for complexity tiers and ML features.

use crate::ast::{ExprKind, Function, Program, Stmt, StmtKind};
use crate::cfg::Cfg;
use serde::{Deserialize, Serialize};

/// Structural metrics of a single function.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct FunctionMetrics {
    /// Number of statements (recursively).
    pub statements: usize,
    /// Cyclomatic complexity from the CFG (`E - N + 2`).
    pub cyclomatic: usize,
    /// Maximum nesting depth of control structures.
    pub max_nesting: usize,
    /// Number of call expressions.
    pub calls: usize,
    /// Number of distinct callee names.
    pub distinct_callees: usize,
    /// Number of parameters.
    pub params: usize,
    /// Number of local declarations.
    pub locals: usize,
    /// Number of loops (`while` + `for`).
    pub loops: usize,
    /// Number of conditionals.
    pub branches: usize,
    /// Number of array-index expressions.
    pub index_exprs: usize,
    /// Number of pointer dereferences (reads or writes through `*`).
    pub derefs: usize,
}

impl FunctionMetrics {
    /// Computes metrics for `func`.
    ///
    /// # Examples
    ///
    /// ```
    /// # fn main() -> Result<(), vulnman_lang::error::ParseError> {
    /// use vulnman_lang::{metrics::FunctionMetrics, parser::parse};
    /// let p = parse("int f(int n) { int s = 0; for (int i = 0; i < n; i++) { s += i; } return s; }")?;
    /// let m = FunctionMetrics::compute(&p.functions[0]);
    /// assert_eq!(m.loops, 1);
    /// assert!(m.cyclomatic >= 2);
    /// # Ok(())
    /// # }
    /// ```
    pub fn compute(func: &Function) -> FunctionMetrics {
        let cfg = Cfg::build(func);
        let mut m = FunctionMetrics {
            statements: func.stmt_count(),
            cyclomatic: cfg.cyclomatic_complexity(),
            params: func.params.len(),
            max_nesting: nesting(&func.body, 0),
            ..FunctionMetrics::default()
        };
        let mut callees = std::collections::HashSet::new();
        func.walk_stmts(&mut |s: &Stmt| match &s.kind {
            StmtKind::Decl { .. } => m.locals += 1,
            StmtKind::While { .. } | StmtKind::For { .. } => m.loops += 1,
            StmtKind::If { .. } => m.branches += 1,
            _ => {}
        });
        func.walk_exprs(&mut |e| match &e.kind {
            ExprKind::Call(name, _) => {
                m.calls += 1;
                callees.insert(name.clone());
            }
            ExprKind::Index(_, _) => m.index_exprs += 1,
            ExprKind::Unary(crate::ast::UnOp::Deref, _) => m.derefs += 1,
            _ => {}
        });
        m.distinct_callees = callees.len();
        m
    }

    /// A scalar "complexity score" combining the dimensions; used by the
    /// corpus generator to assign complexity tiers.
    pub fn complexity_score(&self) -> f64 {
        self.statements as f64
            + 3.0 * self.cyclomatic as f64
            + 2.0 * self.max_nesting as f64
            + self.calls as f64
            + 0.5 * self.index_exprs as f64
            + 0.5 * self.derefs as f64
    }
}

fn nesting(stmts: &[Stmt], depth: usize) -> usize {
    let mut max = depth;
    for s in stmts {
        let d = match &s.kind {
            StmtKind::If { then_branch, else_branch, .. } => {
                let mut d = nesting(then_branch, depth + 1);
                if let Some(e) = else_branch {
                    d = d.max(nesting(e, depth + 1));
                }
                d
            }
            StmtKind::While { body, .. } => nesting(body, depth + 1),
            StmtKind::For { body, .. } => nesting(body, depth + 1),
            _ => depth,
        };
        max = max.max(d);
    }
    max
}

/// Metrics for a whole program.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct ProgramMetrics {
    /// Number of functions.
    pub functions: usize,
    /// Sum of statement counts.
    pub statements: usize,
    /// Mean cyclomatic complexity.
    pub mean_cyclomatic: f64,
    /// Maximum cyclomatic complexity.
    pub max_cyclomatic: usize,
}

impl ProgramMetrics {
    /// Computes aggregate metrics for `program`.
    pub fn compute(program: &Program) -> ProgramMetrics {
        let per: Vec<FunctionMetrics> =
            program.functions.iter().map(FunctionMetrics::compute).collect();
        let functions = per.len();
        let statements = per.iter().map(|m| m.statements).sum();
        let max_cyclomatic = per.iter().map(|m| m.cyclomatic).max().unwrap_or(0);
        let mean_cyclomatic = if functions == 0 {
            0.0
        } else {
            per.iter().map(|m| m.cyclomatic as f64).sum::<f64>() / functions as f64
        };
        ProgramMetrics { functions, statements, mean_cyclomatic, max_cyclomatic }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn straight_line_metrics() {
        let p = parse("void f() { int a = 1; int b = 2; log(a, b); }").unwrap();
        let m = FunctionMetrics::compute(&p.functions[0]);
        assert_eq!(m.statements, 3);
        assert_eq!(m.cyclomatic, 1);
        assert_eq!(m.max_nesting, 0);
        assert_eq!(m.locals, 2);
        assert_eq!(m.calls, 1);
    }

    #[test]
    fn nesting_depth() {
        let p = parse("void f(int a) { if (a) { while (a) { if (a > 1) { dec(a); } } } }").unwrap();
        let m = FunctionMetrics::compute(&p.functions[0]);
        assert_eq!(m.max_nesting, 3);
        assert_eq!(m.branches, 2);
        assert_eq!(m.loops, 1);
    }

    #[test]
    fn distinct_callees_deduplicate() {
        let p = parse("void f() { a(); a(); b(); }").unwrap();
        let m = FunctionMetrics::compute(&p.functions[0]);
        assert_eq!(m.calls, 3);
        assert_eq!(m.distinct_callees, 2);
    }

    #[test]
    fn complexity_score_monotone_in_size() {
        let small = parse("void f() { int a = 1; }").unwrap();
        let big =
            parse("void f(int n) { for (int i = 0; i < n; i++) { if (i % 2) { work(i); } } }")
                .unwrap();
        let ms = FunctionMetrics::compute(&small.functions[0]);
        let mb = FunctionMetrics::compute(&big.functions[0]);
        assert!(mb.complexity_score() > ms.complexity_score());
    }

    #[test]
    fn program_metrics_aggregate() {
        let p = parse("void a() { x(); }\nvoid b(int n) { if (n) { y(); } }").unwrap();
        let m = ProgramMetrics::compute(&p);
        assert_eq!(m.functions, 2);
        assert!(m.mean_cyclomatic >= 1.0);
        assert_eq!(m.max_cyclomatic, 2);
    }

    #[test]
    fn empty_program_metrics() {
        let m = ProgramMetrics::compute(&crate::ast::Program::new());
        assert_eq!(m.functions, 0);
        assert_eq!(m.mean_cyclomatic, 0.0);
    }
}
