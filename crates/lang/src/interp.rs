//! A sanitizer-instrumented interpreter for the mini-C dialect.
//!
//! Executes programs under an adversarial input model (every source
//! function returns attacker-controlled data) with runtime checks in the
//! spirit of ASan/MSan: bounds on every indexed access, liveness on every
//! pointer use, null checks, 32-bit overflow detection, and dynamic taint
//! tracking into sinks. This is the *dynamic analysis* leg of the paper's
//! Figure 1 ("automated assessments mainly leverage rule-based analysis
//! tools, including dynamic and static analysis").

use crate::ast::{BinOp, Expr, ExprKind, Function, LValue, Program, StmtKind, Type, UnOp};
use crate::intern::Symbol;
use crate::span::Span;
use crate::taint::TaintConfig;
use std::collections::HashMap;

/// What went wrong (or was observed) at runtime.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum DynamicEventKind {
    /// Write past the end (or before the start) of an object.
    OutOfBoundsWrite,
    /// Read past the end (or before the start) of an object.
    OutOfBoundsRead,
    /// Use of a freed object.
    UseAfterFree,
    /// Dereference of a null pointer.
    NullDereference,
    /// 32-bit signed arithmetic wrapped.
    IntegerOverflow,
    /// Attacker-tainted data reached a sink; the label is the sink category
    /// (`"sql"`, `"command"`, …).
    TaintedSink(String),
}

/// One runtime observation.
#[derive(Debug, Clone, PartialEq)]
pub struct DynamicEvent {
    /// What was observed.
    pub kind: DynamicEventKind,
    /// Function being executed.
    pub function: String,
    /// Source location of the faulting expression/statement.
    pub span: Span,
}

/// Interpreter configuration: the adversarial input model and limits.
#[derive(Debug, Clone)]
pub struct InterpConfig {
    /// Taint vocabulary (sources/sinks/sanitizers).
    pub taint: TaintConfig,
    /// Length of attacker-supplied strings (long enough to blow typical
    /// fixed buffers).
    pub attacker_string_len: usize,
    /// Integer returned by `to_int` on attacker data (large enough to
    /// trigger 32-bit overflow when multiplied by small element sizes).
    pub attacker_int: i64,
    /// Value used for synthesized integer arguments of entry functions.
    pub entry_int: i64,
    /// Whether lookup functions (`find_entry`, …) return null (worst case).
    pub lookups_fail: bool,
    /// Maximum interpreted statements/expressions per entry point.
    pub step_budget: usize,
    /// Maximum call depth.
    pub max_call_depth: usize,
}

impl Default for InterpConfig {
    fn default() -> Self {
        InterpConfig {
            taint: TaintConfig::default_config(),
            attacker_string_len: 200,
            attacker_int: 600_000_000,
            entry_int: 4,
            lookups_fail: true,
            step_budget: 200_000,
            max_call_depth: 64,
        }
    }
}

/// A runtime value: 64-bit int, pointer into an object, or null. Taint is
/// carried on every value.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Value {
    kind: ValueKind,
    tainted: bool,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum ValueKind {
    Int(i64),
    Ptr { obj: usize, offset: i64 },
    Null,
}

impl Value {
    fn int(v: i64) -> Self {
        Value { kind: ValueKind::Int(v), tainted: false }
    }

    fn truthy(&self) -> bool {
        match self.kind {
            ValueKind::Int(v) => v != 0,
            ValueKind::Ptr { .. } => true,
            ValueKind::Null => false,
        }
    }

    fn as_int(&self) -> i64 {
        match self.kind {
            ValueKind::Int(v) => v,
            ValueKind::Ptr { .. } => 1,
            ValueKind::Null => 0,
        }
    }
}

#[derive(Debug, Clone)]
struct HeapObject {
    data: Vec<i64>,
    alive: bool,
    /// Taint of the object's *contents* as a whole (per-cell taint would be
    /// overkill for this dialect).
    tainted: bool,
}

/// Control-flow signal while executing statements.
enum Flow {
    Normal,
    Return(Value),
    Break,
    Continue,
}

/// A fault that aborts the current entry point (after being recorded).
struct Fault;

/// Result of interpreting a program.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DynamicReport {
    /// All observations across all executed entry points, deduplicated by
    /// `(kind, function)`.
    pub events: Vec<DynamicEvent>,
    /// Entry points that were executed.
    pub entries_run: Vec<String>,
    /// Entry points that crashed (aborted on a fault).
    pub crashed: Vec<String>,
}

impl DynamicReport {
    /// Returns `true` if any event of `kind` was observed.
    pub fn has(&self, kind: &DynamicEventKind) -> bool {
        self.events.iter().any(|e| &e.kind == kind)
    }

    /// Events observed in `function`.
    pub fn in_function(&self, function: &str) -> Vec<&DynamicEvent> {
        self.events.iter().filter(|e| e.function == function).collect()
    }
}

/// Runs every entry point (function not called by any other in-program
/// function) under the adversarial input model.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), vulnman_lang::ParseError> {
/// use vulnman_lang::interp::{run_program, DynamicEventKind, InterpConfig};
/// let p = vulnman_lang::parse(r#"
///     void f() {
///         char buf[8];
///         char* s = read_input();
///         int i = 0;
///         while (s[i] != '\0') { buf[i] = s[i]; i++; }
///     }
/// "#)?;
/// let report = run_program(&p, &InterpConfig::default());
/// assert!(report.has(&DynamicEventKind::OutOfBoundsWrite));
/// # Ok(())
/// # }
/// ```
pub fn run_program(program: &Program, config: &InterpConfig) -> DynamicReport {
    let called: std::collections::HashSet<Symbol> =
        program.functions.iter().flat_map(|f| f.callees()).collect();
    let mut report = DynamicReport::default();
    for f in &program.functions {
        if called.contains(&f.name) {
            continue;
        }
        let mut interp = Interp::new(program, config);
        let args: Vec<Value> = f
            .params
            .iter()
            .map(|p| match &p.ty {
                Type::Ptr(_) => interp.attacker_string(),
                Type::Array(_, n) => interp.fresh_buffer(*n, false),
                _ => Value::int(config.entry_int),
            })
            .collect();
        let crashed = interp.call_function(f, args).is_err();
        report.entries_run.push(f.name.to_string());
        if crashed {
            report.crashed.push(f.name.to_string());
        }
        report.events.extend(interp.events);
    }
    // Deduplicate by (kind, function).
    let mut seen = std::collections::HashSet::new();
    report.events.retain(|e| seen.insert((e.kind.clone(), e.function.clone())));
    report
}

struct Interp<'a> {
    program: &'a Program,
    config: &'a InterpConfig,
    heap: Vec<HeapObject>,
    events: Vec<DynamicEvent>,
    steps: usize,
    depth: usize,
    current_fn: Vec<String>,
}

impl<'a> Interp<'a> {
    fn new(program: &'a Program, config: &'a InterpConfig) -> Self {
        Interp {
            program,
            config,
            heap: Vec::new(),
            events: Vec::new(),
            steps: 0,
            depth: 0,
            current_fn: Vec::new(),
        }
    }

    fn record(&mut self, kind: DynamicEventKind, span: Span) {
        let function = self.current_fn.last().cloned().unwrap_or_default();
        self.events.push(DynamicEvent { kind, function, span });
    }

    fn alloc(&mut self, len: usize, tainted: bool) -> usize {
        self.heap.push(HeapObject { data: vec![0; len], alive: true, tainted });
        self.heap.len() - 1
    }

    fn fresh_buffer(&mut self, len: usize, tainted: bool) -> Value {
        let obj = self.alloc(len, tainted);
        Value { kind: ValueKind::Ptr { obj, offset: 0 }, tainted }
    }

    fn attacker_string(&mut self) -> Value {
        let len = self.config.attacker_string_len;
        let obj = self.alloc(len + 1, true);
        for i in 0..len {
            self.heap[obj].data[i] = b'A' as i64;
        }
        self.heap[obj].data[len] = 0;
        Value { kind: ValueKind::Ptr { obj, offset: 0 }, tainted: true }
    }

    fn string_value(&mut self, s: &str, tainted: bool) -> Value {
        let bytes: Vec<i64> = s.bytes().map(|b| b as i64).chain(std::iter::once(0)).collect();
        let obj = self.alloc(bytes.len(), tainted);
        self.heap[obj].data = bytes;
        Value { kind: ValueKind::Ptr { obj, offset: 0 }, tainted }
    }

    fn tick(&mut self) -> Result<(), Fault> {
        self.steps += 1;
        if self.steps > self.config.step_budget {
            Err(Fault)
        } else {
            Ok(())
        }
    }

    fn call_function(&mut self, func: &Function, args: Vec<Value>) -> Result<Value, Fault> {
        if self.depth >= self.config.max_call_depth {
            return Ok(Value::int(0));
        }
        self.depth += 1;
        self.current_fn.push(func.name.to_string());
        let mut env: HashMap<Symbol, Value> = HashMap::new();
        for (p, v) in func.params.iter().zip(args) {
            env.insert(p.name.clone(), v);
        }
        let result = self.exec_block(&func.body, &mut env);
        self.current_fn.pop();
        self.depth -= 1;
        match result? {
            Flow::Return(v) => Ok(v),
            _ => Ok(Value::int(0)),
        }
    }

    fn exec_block(
        &mut self,
        stmts: &[crate::ast::Stmt],
        env: &mut HashMap<Symbol, Value>,
    ) -> Result<Flow, Fault> {
        for s in stmts {
            match self.exec_stmt(s, env)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(
        &mut self,
        s: &crate::ast::Stmt,
        env: &mut HashMap<Symbol, Value>,
    ) -> Result<Flow, Fault> {
        self.tick()?;
        match &s.kind {
            StmtKind::Decl { name, ty, init } => {
                let value = match (ty, init) {
                    (Type::Array(_, n), _) => self.fresh_buffer(*n, false),
                    (_, Some(e)) => self.eval(e, env)?,
                    (_, None) => Value::int(0),
                };
                env.insert(name.clone(), value);
                Ok(Flow::Normal)
            }
            StmtKind::Assign { target, value, op } => {
                let mut rhs = self.eval(value, env)?;
                if let Some(op) = op {
                    let current = self.read_lvalue(target, env, s.span)?;
                    rhs = self.binop(*op, current, rhs, s.span);
                }
                self.write_lvalue(target, rhs, env, s.span)?;
                Ok(Flow::Normal)
            }
            StmtKind::If { cond, then_branch, else_branch } => {
                let c = self.eval(cond, env)?;
                if c.truthy() {
                    self.exec_block(then_branch, env)
                } else if let Some(els) = else_branch {
                    self.exec_block(els, env)
                } else {
                    Ok(Flow::Normal)
                }
            }
            StmtKind::While { cond, body } => {
                loop {
                    self.tick()?;
                    if !self.eval(cond, env)?.truthy() {
                        break;
                    }
                    match self.exec_block(body, env)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        _ => {}
                    }
                }
                Ok(Flow::Normal)
            }
            StmtKind::For { init, cond, step, body } => {
                if let Some(i) = init {
                    self.exec_stmt(i, env)?;
                }
                loop {
                    self.tick()?;
                    if let Some(c) = cond {
                        if !self.eval(c, env)?.truthy() {
                            break;
                        }
                    }
                    match self.exec_block(body, env)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        _ => {}
                    }
                    if let Some(st) = step {
                        self.exec_stmt(st, env)?;
                    }
                }
                Ok(Flow::Normal)
            }
            StmtKind::Return(e) => {
                let v = match e {
                    Some(e) => self.eval(e, env)?,
                    None => Value::int(0),
                };
                Ok(Flow::Return(v))
            }
            StmtKind::Expr(e) => {
                self.eval(e, env)?;
                Ok(Flow::Normal)
            }
            StmtKind::Break => Ok(Flow::Break),
            StmtKind::Continue => Ok(Flow::Continue),
        }
    }

    fn read_lvalue(
        &mut self,
        target: &LValue,
        env: &mut HashMap<Symbol, Value>,
        span: Span,
    ) -> Result<Value, Fault> {
        match target {
            LValue::Var(name) => Ok(env.get(name).copied().unwrap_or(Value::int(0))),
            LValue::Deref(e) => {
                let p = self.eval(e, env)?;
                self.load(p, 0, span)
            }
            LValue::Index(base, idx) => {
                let b = self.eval(base, env)?;
                let i = self.eval(idx, env)?.as_int();
                self.load(b, i, span)
            }
        }
    }

    fn write_lvalue(
        &mut self,
        target: &LValue,
        value: Value,
        env: &mut HashMap<Symbol, Value>,
        span: Span,
    ) -> Result<(), Fault> {
        match target {
            LValue::Var(name) => {
                env.insert(name.clone(), value);
                Ok(())
            }
            LValue::Deref(e) => {
                let p = self.eval(e, env)?;
                self.store(p, 0, value, span)
            }
            LValue::Index(base, idx) => {
                let b = self.eval(base, env)?;
                let i = self.eval(idx, env)?.as_int();
                self.store(b, i, value, span)
            }
        }
    }

    fn check_access(
        &mut self,
        ptr: Value,
        index: i64,
        write: bool,
        span: Span,
    ) -> Result<(usize, usize), Fault> {
        match ptr.kind {
            ValueKind::Null => {
                self.record(DynamicEventKind::NullDereference, span);
                Err(Fault)
            }
            ValueKind::Int(_) => {
                // Treating an integer as a pointer: model as null deref.
                self.record(DynamicEventKind::NullDereference, span);
                Err(Fault)
            }
            ValueKind::Ptr { obj, offset } => {
                if !self.heap[obj].alive {
                    self.record(DynamicEventKind::UseAfterFree, span);
                    return Err(Fault);
                }
                let at = offset + index;
                if at < 0 || at as usize >= self.heap[obj].data.len() {
                    self.record(
                        if write {
                            DynamicEventKind::OutOfBoundsWrite
                        } else {
                            DynamicEventKind::OutOfBoundsRead
                        },
                        span,
                    );
                    return Err(Fault);
                }
                Ok((obj, at as usize))
            }
        }
    }

    fn load(&mut self, ptr: Value, index: i64, span: Span) -> Result<Value, Fault> {
        let (obj, at) = self.check_access(ptr, index, false, span)?;
        let tainted = self.heap[obj].tainted || ptr.tainted;
        Ok(Value { kind: ValueKind::Int(self.heap[obj].data[at]), tainted })
    }

    fn store(&mut self, ptr: Value, index: i64, value: Value, span: Span) -> Result<(), Fault> {
        let (obj, at) = self.check_access(ptr, index, true, span)?;
        self.heap[obj].data[at] = value.as_int();
        if value.tainted {
            self.heap[obj].tainted = true;
        }
        Ok(())
    }

    fn binop(&mut self, op: BinOp, l: Value, r: Value, span: Span) -> Value {
        use BinOp::*;
        let tainted = l.tainted || r.tainted;
        // Null/pointer comparisons.
        if matches!(op, Eq | Ne) {
            let l_null = matches!(l.kind, ValueKind::Null)
                || l.as_int() == 0 && matches!(l.kind, ValueKind::Int(_));
            let r_null = matches!(r.kind, ValueKind::Null)
                || r.as_int() == 0 && matches!(r.kind, ValueKind::Int(_));
            if matches!(l.kind, ValueKind::Null | ValueKind::Ptr { .. })
                || matches!(r.kind, ValueKind::Null | ValueKind::Ptr { .. })
            {
                let same = match (l.kind, r.kind) {
                    (
                        ValueKind::Ptr { obj: a, offset: x },
                        ValueKind::Ptr { obj: b, offset: y },
                    ) => a == b && x == y,
                    (ValueKind::Null, ValueKind::Null) => true,
                    (ValueKind::Null, _) => r_null,
                    (_, ValueKind::Null) => l_null,
                    _ => l.as_int() == r.as_int(),
                };
                let out = if op == Eq { same } else { !same };
                return Value { kind: ValueKind::Int(out as i64), tainted };
            }
        }
        let a = l.as_int();
        let b = r.as_int();
        let raw: i64 = match op {
            Add => a.wrapping_add(b),
            Sub => a.wrapping_sub(b),
            Mul => a.wrapping_mul(b),
            Div => {
                if b == 0 {
                    0
                } else {
                    a / b
                }
            }
            Rem => {
                if b == 0 {
                    0
                } else {
                    a % b
                }
            }
            Shl => a.wrapping_shl(b as u32 & 63),
            Shr => a.wrapping_shr(b as u32 & 63),
            BitAnd => a & b,
            BitOr => a | b,
            BitXor => a ^ b,
            Eq => (a == b) as i64,
            Ne => (a != b) as i64,
            Lt => (a < b) as i64,
            Le => (a <= b) as i64,
            Gt => (a > b) as i64,
            Ge => (a >= b) as i64,
            And => (l.truthy() && r.truthy()) as i64,
            Or => (l.truthy() || r.truthy()) as i64,
        };
        // 32-bit semantics for arithmetic: wrap and record overflow.
        let value = if matches!(op, Add | Sub | Mul | Shl)
            && (raw > i32::MAX as i64 || raw < i32::MIN as i64)
        {
            self.record(DynamicEventKind::IntegerOverflow, span);
            raw as i32 as i64
        } else {
            raw
        };
        Value { kind: ValueKind::Int(value), tainted }
    }

    fn eval(&mut self, e: &Expr, env: &mut HashMap<Symbol, Value>) -> Result<Value, Fault> {
        self.tick()?;
        match &e.kind {
            ExprKind::Int(v) => Ok(Value::int(*v)),
            ExprKind::Char(c) => Ok(Value::int(*c as i64)),
            ExprKind::Str(s) => Ok(self.string_value(s, false)),
            ExprKind::Var(name) => Ok(env.get(name).copied().unwrap_or(Value::int(0))),
            ExprKind::Unary(op, inner) => {
                match op {
                    UnOp::Deref => {
                        let p = self.eval(inner, env)?;
                        self.load(p, 0, e.span)
                    }
                    UnOp::AddrOf => {
                        // &expr: for &arr[i] produce an interior pointer;
                        // otherwise degrade to the value itself.
                        if let ExprKind::Index(base, idx) = &inner.kind {
                            let b = self.eval(base, env)?;
                            let i = self.eval(idx, env)?.as_int();
                            if let ValueKind::Ptr { obj, offset } = b.kind {
                                return Ok(Value {
                                    kind: ValueKind::Ptr { obj, offset: offset + i },
                                    tainted: b.tainted,
                                });
                            }
                        }
                        self.eval(inner, env)
                    }
                    UnOp::Neg => {
                        let v = self.eval(inner, env)?;
                        Ok(Value { kind: ValueKind::Int(-v.as_int()), tainted: v.tainted })
                    }
                    UnOp::Not => {
                        let v = self.eval(inner, env)?;
                        Ok(Value { kind: ValueKind::Int(!v.truthy() as i64), tainted: v.tainted })
                    }
                }
            }
            ExprKind::Binary(op, l, r) => {
                let lv = self.eval(l, env)?;
                // Short-circuit logic.
                if *op == BinOp::And && !lv.truthy() {
                    return Ok(Value { kind: ValueKind::Int(0), tainted: lv.tainted });
                }
                if *op == BinOp::Or && lv.truthy() {
                    return Ok(Value { kind: ValueKind::Int(1), tainted: lv.tainted });
                }
                let rv = self.eval(r, env)?;
                Ok(self.binop(*op, lv, rv, e.span))
            }
            ExprKind::Index(base, idx) => {
                let b = self.eval(base, env)?;
                let i = self.eval(idx, env)?.as_int();
                self.load(b, i, e.span)
            }
            ExprKind::Call(name, args) => {
                let mut values = Vec::with_capacity(args.len());
                for a in args {
                    values.push(self.eval(a, env)?);
                }
                self.call(name, &values, e.span)
            }
        }
    }

    /// String length of the object `p` points at (up to NUL).
    fn cstrlen(&self, p: Value) -> usize {
        if let ValueKind::Ptr { obj, offset } = p.kind {
            let data = &self.heap[obj].data;
            let mut i = offset.max(0) as usize;
            let mut n = 0;
            while i < data.len() && data[i] != 0 {
                i += 1;
                n += 1;
            }
            n
        } else {
            0
        }
    }

    fn check_sink(&mut self, name: &str, args: &[Value], span: Span) {
        if let Some(positions) = self.config.taint.sink_positions(name) {
            let kind = self.config.taint.sink_kind(name).to_string();
            let dangerous: Vec<usize> =
                if positions.is_empty() { (0..args.len()).collect() } else { positions.to_vec() };
            for p in dangerous {
                if args.get(p).map(|v| self.value_tainted(*v)).unwrap_or(false) {
                    self.record(DynamicEventKind::TaintedSink(kind.clone()), span);
                    break;
                }
            }
        }
    }

    fn value_tainted(&self, v: Value) -> bool {
        v.tainted
            || match v.kind {
                ValueKind::Ptr { obj, .. } => self.heap[obj].tainted,
                _ => false,
            }
    }

    fn call(&mut self, name: &str, args: &[Value], span: Span) -> Result<Value, Fault> {
        // In-program functions first (they shadow nothing in the default
        // vocabulary by construction).
        if let Some(func) = self.program.function(name) {
            return self.call_function(func, args.to_vec());
        }
        // Sinks observe their arguments regardless of the intrinsic below.
        self.check_sink(name, args, span);
        if self.config.taint.is_source(name) {
            return Ok(self.attacker_string());
        }
        if self.config.taint.is_sanitizer(name) {
            // Clean copy of the argument.
            let src = args.first().copied().unwrap_or(Value::int(0));
            let len = self.cstrlen(src);
            let out = self.fresh_buffer(len + 1, false);
            if let (ValueKind::Ptr { obj: so, offset: sofs }, ValueKind::Ptr { obj: dobj, .. }) =
                (src.kind, out.kind)
            {
                for i in 0..len {
                    let v = self.heap[so].data[(sofs as usize) + i];
                    self.heap[dobj].data[i] = v;
                }
            }
            return Ok(out);
        }
        match name {
            "to_int" => {
                let v = args.first().copied().unwrap_or(Value::int(0));
                if self.value_tainted(v) {
                    Ok(Value { kind: ValueKind::Int(self.config.attacker_int), tainted: true })
                } else {
                    Ok(Value::int(1))
                }
            }
            "concat" => {
                let a = args.first().copied().unwrap_or(Value::int(0));
                let b = args.get(1).copied().unwrap_or(Value::int(0));
                let (la, lb) = (self.cstrlen(a), self.cstrlen(b));
                let tainted = self.value_tainted(a) || self.value_tainted(b);
                let out = self.fresh_buffer(la + lb + 1, tainted);
                if let ValueKind::Ptr { obj: dobj, .. } = out.kind {
                    let mut k = 0;
                    for src in [a, b] {
                        if let ValueKind::Ptr { obj, offset } = src.kind {
                            let n = self.cstrlen(src);
                            for i in 0..n {
                                let v = self.heap[obj].data[(offset as usize) + i];
                                self.heap[dobj].data[k] = v;
                                k += 1;
                            }
                        }
                    }
                    self.heap[dobj].data[k] = 0;
                }
                Ok(out)
            }
            "alloc_buffer" => {
                let n = args.first().map(|v| v.as_int()).unwrap_or(0);
                if n <= 0 || n > 1 << 20 {
                    Ok(Value { kind: ValueKind::Null, tainted: false })
                } else {
                    Ok(self.fresh_buffer(n as usize, false))
                }
            }
            "free_mem" => {
                if let Some(Value { kind: ValueKind::Ptr { obj, .. }, .. }) = args.first() {
                    if !self.heap[*obj].alive {
                        // Double free manifests as use-after-free.
                        self.record(DynamicEventKind::UseAfterFree, span);
                        return Err(Fault);
                    }
                    self.heap[*obj].alive = false;
                }
                Ok(Value::int(0))
            }
            "strcpy" => {
                let dst = args.first().copied().unwrap_or(Value::int(0));
                let src = args.get(1).copied().unwrap_or(Value::int(0));
                let n = self.cstrlen(src);
                let src_tainted = self.value_tainted(src);
                for i in 0..=n {
                    let v = if let ValueKind::Ptr { obj, offset } = src.kind {
                        let data = &self.heap[obj].data;
                        data.get((offset as usize) + i).copied().unwrap_or(0)
                    } else {
                        0
                    };
                    self.store(
                        dst,
                        i as i64,
                        Value { kind: ValueKind::Int(v), tainted: src_tainted },
                        span,
                    )?;
                }
                Ok(Value::int(0))
            }
            "memcpy" | "copy_bounded" => {
                let dst = args.first().copied().unwrap_or(Value::int(0));
                let src = args.get(1).copied().unwrap_or(Value::int(0));
                let n = args.get(2).map(|v| v.as_int()).unwrap_or(0).max(0) as usize;
                let n = if name == "copy_bounded" { n.min(self.cstrlen(src)) } else { n };
                let src_tainted = self.value_tainted(src);
                for i in 0..n {
                    let v = if let ValueKind::Ptr { obj, offset } = src.kind {
                        self.heap[obj].data.get((offset as usize) + i).copied().unwrap_or(0)
                    } else {
                        0
                    };
                    self.store(
                        dst,
                        i as i64,
                        Value { kind: ValueKind::Int(v), tainted: src_tainted },
                        span,
                    )?;
                }
                Ok(Value::int(0))
            }
            "fill_data" | "fill_items" => {
                let dst = args.first().copied().unwrap_or(Value::int(0));
                let n = args.get(1).map(|v| v.as_int()).unwrap_or(0).max(0) as usize;
                // Touch first and last cells: faithful enough to catch
                // UAF/OOB/null without O(attacker_int) work.
                if n > 0 {
                    self.store(dst, 0, Value::int(1), span)?;
                    self.store(dst, (n - 1) as i64, Value::int(1), span)?;
                }
                Ok(Value::int(0))
            }
            "send_data" | "consume" | "read_all" | "use" => {
                // Reads the object: liveness/null checked.
                if let Some(&p) = args.first() {
                    if matches!(p.kind, ValueKind::Ptr { .. } | ValueKind::Null) {
                        self.load(p, 0, span)?;
                    }
                }
                Ok(Value::int(0))
            }
            "init_table" => {
                let dst = args.first().copied().unwrap_or(Value::int(0));
                let n = args.get(1).map(|v| v.as_int()).unwrap_or(0).max(0);
                for i in 0..n {
                    self.store(dst, i, Value::int(i), span)?;
                }
                Ok(Value::int(0))
            }
            "find_entry" | "lookup_user" | "get_config" | "find_session" => {
                if self.config.lookups_fail {
                    Ok(Value { kind: ValueKind::Null, tainted: false })
                } else {
                    Ok(self.fresh_buffer(16, false))
                }
            }
            "load_secret" => Ok(self.string_value("runtime-secret", false)),
            "file_exists" => Ok(Value::int(1)),
            "open_file_atomic" => Ok(Value::int(3)),
            "close_file" | "log_event" | "record_metric" | "tick_counter" | "config_flag" => {
                Ok(Value::int(0))
            }
            "connect_service" | "authenticate" | "open_session" | "check_secret" => {
                Ok(Value::int(0))
            }
            // Sinks that also "return" something (fd, status).
            "open_file" | "fopen_path" | "system" | "exec_shell" | "popen" | "exec_query"
            | "sql_execute" | "render_html" | "write_response" | "printf_fmt" | "eval_expr" => {
                Ok(Value::int(3))
            }
            _ => {
                // Unknown library call: a benign stub. Dynamic analysis only
                // observes what actually executes — an unlinked team-library
                // function neither faults nor forwards taint (its *static*
                // counterpart must over-approximate instead; see E17).
                Ok(Value::int(0))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn run(src: &str) -> DynamicReport {
        run_program(&parse(src).unwrap(), &InterpConfig::default())
    }

    #[test]
    fn clean_program_has_no_events() {
        let r = run("int add(int a, int b) { return a + b; }");
        assert!(r.events.is_empty(), "{:?}", r.events);
        assert_eq!(r.entries_run, vec!["add"]);
        assert!(r.crashed.is_empty());
    }

    #[test]
    fn unbounded_copy_overflows() {
        let r = run(
            r#"void f() { char buf[8]; char* s = read_input(); int i = 0; while (s[i] != '\0') { buf[i] = s[i]; i++; } }"#,
        );
        assert!(r.has(&DynamicEventKind::OutOfBoundsWrite), "{:?}", r.events);
        assert_eq!(r.crashed, vec!["f"]);
    }

    #[test]
    fn bounded_copy_is_clean() {
        let r = run(
            r#"void f() { char buf[8]; char* s = read_input(); int i = 0; while (s[i] != '\0' && i < 7) { buf[i] = s[i]; i++; } buf[i] = '\0'; }"#,
        );
        assert!(!r.has(&DynamicEventKind::OutOfBoundsWrite), "{:?}", r.events);
    }

    #[test]
    fn strcpy_overflow_detected() {
        let r = run(r#"void f() { char buf[16]; char* s = read_input(); strcpy(buf, s); }"#);
        assert!(r.has(&DynamicEventKind::OutOfBoundsWrite));
    }

    #[test]
    fn oob_read_with_attacker_index() {
        let r = run(
            r#"void f() { int t[8]; init_table(t, 8); int i = to_int(http_param("x")); int v = t[i]; use(v); }"#,
        );
        assert!(r.has(&DynamicEventKind::OutOfBoundsRead), "{:?}", r.events);
    }

    #[test]
    fn checked_read_is_clean() {
        let r = run(
            r#"void f() { int t[8]; init_table(t, 8); int i = to_int(http_param("x")); if (i < 0 || i >= 8) { return; } int v = t[i]; use(v); }"#,
        );
        assert!(r.events.is_empty(), "{:?}", r.events);
    }

    #[test]
    fn use_after_free_detected() {
        let r = run(
            r#"void f() { char* p = alloc_buffer(64); fill_data(p, 64); free_mem(p); send_data(p, 64); }"#,
        );
        assert!(r.has(&DynamicEventKind::UseAfterFree));
    }

    #[test]
    fn free_after_use_is_clean() {
        let r = run(
            r#"void f() { char* p = alloc_buffer(64); fill_data(p, 64); send_data(p, 64); free_mem(p); }"#,
        );
        assert!(r.events.is_empty(), "{:?}", r.events);
    }

    #[test]
    fn null_lookup_dereference_detected() {
        let r = run(r#"void f() { char* e = find_entry(3); e[0] = 'A'; }"#);
        assert!(r.has(&DynamicEventKind::NullDereference));
    }

    #[test]
    fn null_check_prevents_crash() {
        let r = run(r#"void f() { char* e = find_entry(3); if (e == 0) { return; } e[0] = 'A'; }"#);
        assert!(r.events.is_empty(), "{:?}", r.events);
        assert!(r.crashed.is_empty());
    }

    #[test]
    fn integer_overflow_on_attacker_count() {
        let r = run(
            r#"void f() { int c = to_int(read_input()); int total = c * 8; char* b = alloc_buffer(total); fill_items(b, c); }"#,
        );
        assert!(r.has(&DynamicEventKind::IntegerOverflow), "{:?}", r.events);
    }

    #[test]
    fn guarded_multiplication_is_clean() {
        let r = run(
            r#"void f() { int c = to_int(read_input()); if (c < 0 || c > 1000) { return; } int total = c * 8; char* b = alloc_buffer(total); fill_items(b, c); }"#,
        );
        assert!(!r.has(&DynamicEventKind::IntegerOverflow), "{:?}", r.events);
    }

    #[test]
    fn tainted_sql_sink_flagged() {
        let r = run(r#"void f() { char* q = http_param("id"); exec_query(q); }"#);
        assert!(r.has(&DynamicEventKind::TaintedSink("sql".into())), "{:?}", r.events);
    }

    #[test]
    fn sanitized_sink_clean() {
        let r = run(r#"void f() { char* q = http_param("id"); exec_query(escape_sql(q)); }"#);
        assert!(r.events.is_empty(), "{:?}", r.events);
    }

    #[test]
    fn taint_flows_through_concat_and_wrappers() {
        let r = run(r#"
            char* fetch() { return read_input(); }
            void runq(char* q) { exec_query(q); }
            void f() { char* u = fetch(); char* q = concat("SELECT ", u); runq(q); }
            "#);
        assert!(r.has(&DynamicEventKind::TaintedSink("sql".into())), "{:?}", r.events);
        // The event is attributed to the function executing the sink call.
        assert!(r.events.iter().any(|e| e.function == "runq"));
    }

    #[test]
    fn infinite_loop_hits_step_budget() {
        let cfg = InterpConfig { step_budget: 1000, ..InterpConfig::default() };
        let p = parse("void f() { int x = 0; while (1) { x += 1; } }").unwrap();
        let r = run_program(&p, &cfg);
        assert_eq!(r.crashed, vec!["f"], "budget exhaustion aborts the entry");
    }

    #[test]
    fn recursion_depth_bounded() {
        let r = run("int f(int n) { return f(n); }");
        assert!(r.events.is_empty());
    }

    #[test]
    fn double_free_flagged() {
        let r = run(r#"void f() { char* p = alloc_buffer(8); free_mem(p); free_mem(p); }"#);
        assert!(r.has(&DynamicEventKind::UseAfterFree));
    }

    #[test]
    fn events_deduplicated_per_function() {
        let r = run(r#"void f() { char* a = read_input(); exec_query(a); exec_query(a); }"#);
        let sql_events = r
            .events
            .iter()
            .filter(|e| matches!(&e.kind, DynamicEventKind::TaintedSink(k) if k == "sql"))
            .count();
        assert_eq!(sql_events, 1);
    }
}
