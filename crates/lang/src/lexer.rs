//! Lexer for the mini-C dialect.
//!
//! Produces a token stream plus the comment trivia the corpus generator and
//! multimodal feature extractors rely on.
//!
//! The scanner itself is zero-copy: [`lex_ref`] emits tokens whose
//! identifier and string payloads are `Cow` slices borrowing the source
//! buffer (strings only allocate when an escape sequence forces a rewrite),
//! and keywords are classified on the raw slice before any allocation.
//! [`lex`] is the owned convenience wrapper for callers that keep tokens
//! past the source's lifetime.

use crate::error::{ParseError, ParseResult};
use crate::span::Span;
use crate::token::{Comment, CommentRef, Token, TokenKind, TokenKindRef, TokenRef};
use std::borrow::Cow;

/// Output of [`lex`]/[`lex_ref`]: the token stream (terminated by
/// [`TokenKind::Eof`]) and all comments encountered, in source order.
#[derive(Debug, Clone, PartialEq)]
pub struct LexOutput<S = String> {
    /// Tokens, ending with a single `Eof` token.
    pub tokens: Vec<Token<S>>,
    /// Comment trivia in source order.
    pub comments: Vec<Comment<S>>,
}

impl<S: Into<String>> LexOutput<S> {
    /// Converts to the owned form, copying borrowed payloads.
    pub fn into_owned(self) -> LexOutput<String> {
        LexOutput {
            tokens: self.tokens.into_iter().map(Token::into_owned).collect(),
            comments: self.comments.into_iter().map(Comment::into_owned).collect(),
        }
    }
}

/// Tokenizes `source` into owned tokens.
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input: unterminated string or block
/// comment, bad character literal, an integer that overflows `i64`, or a
/// character that is not part of the language.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), vulnman_lang::error::ParseError> {
/// let out = vulnman_lang::lexer::lex("int x = 42; // answer")?;
/// assert_eq!(out.comments.len(), 1);
/// assert_eq!(out.comments[0].text, "answer");
/// # Ok(())
/// # }
/// ```
pub fn lex(source: &str) -> ParseResult<LexOutput> {
    Ok(lex_ref(source)?.into_owned())
}

/// Tokenizes `source` without copying: identifier and string payloads borrow
/// the source buffer (strings fall back to an owned buffer only when escape
/// sequences rewrite the text). This is the hot-path entry the parser uses.
///
/// # Errors
///
/// Same failure modes as [`lex`].
pub fn lex_ref(source: &str) -> ParseResult<LexOutput<Cow<'_, str>>> {
    Lexer::new(source).run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
    tokens: Vec<TokenRef<'a>>,
    comments: Vec<CommentRef<'a>>,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
            tokens: Vec::new(),
            comments: Vec::new(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.bytes.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn here(&self) -> (usize, u32, u32) {
        (self.pos, self.line, self.col)
    }

    fn span_from(&self, start: (usize, u32, u32)) -> Span {
        Span::new(start.0, self.pos, start.1, start.2)
    }

    fn run(mut self) -> ParseResult<LexOutput<Cow<'a, str>>> {
        while let Some(b) = self.peek() {
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek2() == Some(b'/') => self.line_comment(),
                b'/' if self.peek2() == Some(b'*') => self.block_comment()?,
                b'0'..=b'9' => self.number()?,
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.ident(),
                b'"' => self.string()?,
                b'\'' => self.char_lit()?,
                _ => self.operator()?,
            }
        }
        let eof = Span::new(self.pos, self.pos, self.line, self.col);
        self.tokens.push(Token::new(TokenKind::Eof, eof));
        Ok(LexOutput { tokens: self.tokens, comments: self.comments })
    }

    /// Trims the comment payload in `text_start..self.pos` and returns the
    /// borrowed text together with a span of exactly the trimmed bytes, so
    /// reported comment locations match the text they carry.
    /// `text_at` is the `(pos, line, col)` cursor at `text_start`.
    fn trimmed_comment(
        &self,
        text_start: usize,
        text_at: (usize, u32, u32),
    ) -> (Cow<'a, str>, Span) {
        let raw = &self.src[text_start..self.pos];
        let text = raw.trim();
        let lead = raw.len() - raw.trim_start().len();
        let trim_start = text_start + lead;
        let trim_end = trim_start + text.len();
        // Re-derive line/col at the trimmed start by walking the leading
        // whitespace (block comments may skip newlines here).
        let (mut line, mut col) = (text_at.1, text_at.2);
        for &b in &self.bytes[text_start..trim_start] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        (Cow::Borrowed(text), Span::new(trim_start, trim_end, line, col))
    }

    fn line_comment(&mut self) {
        let start = self.here();
        self.bump();
        self.bump();
        let text_at = self.here();
        while let Some(b) = self.peek() {
            if b == b'\n' {
                break;
            }
            self.bump();
        }
        let (text, text_span) = self.trimmed_comment(text_at.0, text_at);
        self.comments.push(Comment { text, span: self.span_from(start), text_span, block: false });
    }

    fn block_comment(&mut self) -> ParseResult<()> {
        let start = self.here();
        self.bump();
        self.bump();
        let text_at = self.here();
        loop {
            match self.peek() {
                Some(b'*') if self.peek2() == Some(b'/') => {
                    let (text, text_span) = self.trimmed_comment(text_at.0, text_at);
                    self.bump();
                    self.bump();
                    self.comments.push(Comment {
                        text,
                        span: self.span_from(start),
                        text_span,
                        block: true,
                    });
                    return Ok(());
                }
                Some(_) => {
                    self.bump();
                }
                None => {
                    return Err(ParseError::new(
                        "unterminated block comment",
                        self.span_from(start),
                    ))
                }
            }
        }
    }

    fn number(&mut self) -> ParseResult<()> {
        let start = self.here();
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.bump();
        }
        let text = &self.src[start.0..self.pos];
        let value: i64 = text.parse().map_err(|_| {
            ParseError::new(
                format!("integer literal `{text}` overflows i64"),
                self.span_from(start),
            )
        })?;
        self.push(TokenKind::Int(value), start);
        Ok(())
    }

    fn ident(&mut self) {
        let start = self.here();
        while matches!(self.peek(), Some(b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_')) {
            self.bump();
        }
        let text = &self.src[start.0..self.pos];
        // Keyword lookup happens on the borrowed slice; identifiers stay
        // borrowed too — no allocation on this path.
        let kind = TokenKind::keyword(text).unwrap_or(TokenKind::Ident(Cow::Borrowed(text)));
        self.push(kind, start);
    }

    fn string(&mut self) -> ParseResult<()> {
        let start = self.here();
        self.bump(); // opening quote
        let body_start = self.pos;
        // Fast path: scan for the closing quote; only escape sequences force
        // an owned buffer (the payload must hold the *resolved* text).
        let mut owned: Option<String> = None;
        loop {
            let at = self.pos;
            match self.bump() {
                Some(b'"') => {
                    let value = match owned {
                        Some(s) => Cow::Owned(s),
                        None => Cow::Borrowed(&self.src[body_start..at]),
                    };
                    self.push(TokenKind::Str(value), start);
                    return Ok(());
                }
                Some(b'\\') => {
                    let buf = owned.get_or_insert_with(|| self.src[body_start..at].to_string());
                    let esc = self.bump().ok_or_else(|| {
                        ParseError::new("unterminated string literal", self.span_from(start))
                    })?;
                    buf.push(unescape(esc, self.span_from(start))?);
                }
                Some(b'\n') | None => {
                    return Err(ParseError::new(
                        "unterminated string literal",
                        self.span_from(start),
                    ))
                }
                Some(b) => {
                    if let Some(buf) = owned.as_mut() {
                        buf.push(b as char);
                    }
                }
            }
        }
    }

    fn char_lit(&mut self) -> ParseResult<()> {
        let start = self.here();
        self.bump(); // opening quote
        let c = match self.bump() {
            Some(b'\\') => {
                let esc = self.bump().ok_or_else(|| {
                    ParseError::new("unterminated char literal", self.span_from(start))
                })?;
                unescape(esc, self.span_from(start))?
            }
            Some(b'\'') | None => {
                return Err(ParseError::new("empty char literal", self.span_from(start)))
            }
            Some(b) => b as char,
        };
        match self.bump() {
            Some(b'\'') => {}
            _ => return Err(ParseError::new("unterminated char literal", self.span_from(start))),
        }
        self.push(TokenKind::Char(c), start);
        Ok(())
    }

    fn operator(&mut self) -> ParseResult<()> {
        let start = self.here();
        let b = self.bump().expect("operator called at end of input");
        let two = |l: &mut Lexer<'a>, next: u8, yes: TokenKindRef<'a>, no: TokenKindRef<'a>| {
            if l.peek() == Some(next) {
                l.bump();
                yes
            } else {
                no
            }
        };
        let kind = match b {
            b'(' => TokenKind::LParen,
            b')' => TokenKind::RParen,
            b'{' => TokenKind::LBrace,
            b'}' => TokenKind::RBrace,
            b'[' => TokenKind::LBracket,
            b']' => TokenKind::RBracket,
            b',' => TokenKind::Comma,
            b';' => TokenKind::Semi,
            b'^' => TokenKind::Caret,
            b'%' => TokenKind::Percent,
            b'/' => TokenKind::Slash,
            b'+' => {
                if self.peek() == Some(b'+') {
                    self.bump();
                    TokenKind::PlusPlus
                } else {
                    two(self, b'=', TokenKind::PlusAssign, TokenKind::Plus)
                }
            }
            b'-' => {
                if self.peek() == Some(b'-') {
                    self.bump();
                    TokenKind::MinusMinus
                } else {
                    two(self, b'=', TokenKind::MinusAssign, TokenKind::Minus)
                }
            }
            b'*' => TokenKind::Star,
            b'&' => two(self, b'&', TokenKind::AmpAmp, TokenKind::Amp),
            b'|' => two(self, b'|', TokenKind::PipePipe, TokenKind::Pipe),
            b'!' => two(self, b'=', TokenKind::Ne, TokenKind::Bang),
            b'=' => two(self, b'=', TokenKind::Eq, TokenKind::Assign),
            b'<' => {
                if self.peek() == Some(b'<') {
                    self.bump();
                    TokenKind::Shl
                } else {
                    two(self, b'=', TokenKind::Le, TokenKind::Lt)
                }
            }
            b'>' => {
                if self.peek() == Some(b'>') {
                    self.bump();
                    TokenKind::Shr
                } else {
                    two(self, b'=', TokenKind::Ge, TokenKind::Gt)
                }
            }
            other => {
                return Err(ParseError::new(
                    format!("unexpected character `{}`", other as char),
                    self.span_from(start),
                ))
            }
        };
        self.push(kind, start);
        Ok(())
    }

    fn push(&mut self, kind: TokenKindRef<'a>, start: (usize, u32, u32)) {
        let span = self.span_from(start);
        self.tokens.push(Token::new(kind, span));
    }
}

fn unescape(b: u8, span: Span) -> ParseResult<char> {
    Ok(match b {
        b'n' => '\n',
        b't' => '\t',
        b'r' => '\r',
        b'0' => '\0',
        b'\\' => '\\',
        b'\'' => '\'',
        b'"' => '"',
        other => {
            return Err(ParseError::new(format!("unknown escape `\\{}`", other as char), span))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().tokens.into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_declaration() {
        assert_eq!(
            kinds("int x = 42;"),
            vec![
                TokenKind::KwInt,
                TokenKind::Ident("x".into()),
                TokenKind::Assign,
                TokenKind::Int(42),
                TokenKind::Semi,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_two_char_operators() {
        assert_eq!(
            kinds("a <= b == c != d >= e && f || g << h >> i"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Le,
                TokenKind::Ident("b".into()),
                TokenKind::Eq,
                TokenKind::Ident("c".into()),
                TokenKind::Ne,
                TokenKind::Ident("d".into()),
                TokenKind::Ge,
                TokenKind::Ident("e".into()),
                TokenKind::AmpAmp,
                TokenKind::Ident("f".into()),
                TokenKind::PipePipe,
                TokenKind::Ident("g".into()),
                TokenKind::Shl,
                TokenKind::Ident("h".into()),
                TokenKind::Shr,
                TokenKind::Ident("i".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn captures_line_and_block_comments() {
        let out = lex("// top\nint x; /* middle */ int y;").unwrap();
        assert_eq!(out.comments.len(), 2);
        assert_eq!(out.comments[0].text, "top");
        assert!(!out.comments[0].block);
        assert_eq!(out.comments[1].text, "middle");
        assert!(out.comments[1].block);
    }

    #[test]
    fn comment_text_span_slices_back_to_text() {
        let src = "//   padded   \nint x; /*\n  multi\n  line\n*/ int y; //\n/**/";
        let out = lex(src).unwrap();
        assert_eq!(out.comments.len(), 4);
        for c in &out.comments {
            assert_eq!(
                &src[c.text_span.start..c.text_span.end],
                c.text,
                "text_span must slice back to exactly the trimmed text"
            );
            // The payload sits inside the delimited comment.
            assert!(c.text_span.start >= c.span.start && c.text_span.end <= c.span.end);
        }
        // Trimmed boundaries, not the raw post-delimiter position.
        assert_eq!(out.comments[0].text, "padded");
        assert_eq!(out.comments[0].text_span.start, 5);
        assert_eq!(out.comments[0].text_span.col, 6);
        // Multi-line block comment: line/col track the trimmed start.
        assert_eq!(out.comments[1].text, "multi\n  line");
        assert_eq!(out.comments[1].text_span.line, 3);
        assert_eq!(out.comments[1].text_span.col, 3);
        // Empty comments yield empty spans.
        assert_eq!(out.comments[2].text, "");
        assert_eq!(out.comments[2].text_span.start, out.comments[2].text_span.end);
        assert_eq!(out.comments[3].text, "");
    }

    #[test]
    fn token_spans_slice_back_to_token_text() {
        let src = "int buf_len = 42;\nif (buf_len >= 10) { s = \"ok\"; c = 'x'; }";
        let out = lex_ref(src).unwrap();
        for t in &out.tokens {
            let sliced = &src[t.span.start..t.span.end];
            match &t.kind {
                TokenKind::Ident(s) => assert_eq!(sliced, s.as_ref()),
                TokenKind::Int(v) => assert_eq!(sliced, v.to_string()),
                TokenKind::Str(s) => assert_eq!(sliced, format!("{:?}", s.as_ref())),
                TokenKind::Char(c) => assert_eq!(sliced, format!("'{c}'")),
                TokenKind::Eof => assert_eq!(sliced, ""),
                other => assert_eq!(sliced, other.describe().trim_matches('`')),
            }
        }
    }

    #[test]
    fn zero_copy_idents_and_plain_strings_borrow() {
        let out = lex_ref("int abc = 1; s = \"plain\"; t = \"esc\\n\";").unwrap();
        let mut borrowed_idents = 0;
        for t in &out.tokens {
            match &t.kind {
                TokenKind::Ident(Cow::Borrowed(_)) => borrowed_idents += 1,
                TokenKind::Ident(Cow::Owned(_)) => panic!("identifier allocated"),
                TokenKind::Str(s) if s.as_ref() == "plain" => {
                    assert!(matches!(s, Cow::Borrowed(_)), "escape-free string allocated")
                }
                TokenKind::Str(s) if s.as_ref() == "esc\n" => {
                    assert!(matches!(s, Cow::Owned(_)))
                }
                _ => {}
            }
        }
        assert_eq!(borrowed_idents, 3);
    }

    #[test]
    fn string_escapes_resolve() {
        let out = lex(r#""a\nb\"c""#).unwrap();
        assert_eq!(out.tokens[0].kind, TokenKind::Str("a\nb\"c".into()));
    }

    #[test]
    fn char_literals() {
        let out = lex(r"'x' '\n' '\0'").unwrap();
        let cs: Vec<_> = out
            .tokens
            .iter()
            .filter_map(|t| match t.kind {
                TokenKind::Char(c) => Some(c),
                _ => None,
            })
            .collect();
        assert_eq!(cs, vec!['x', '\n', '\0']);
    }

    #[test]
    fn tracks_line_numbers() {
        let out = lex("int a;\nint b;\n  int c;").unwrap();
        let c_tok = out.tokens.iter().find(|t| t.as_ident() == Some("c")).unwrap();
        assert_eq!(c_tok.span.line, 3);
        assert_eq!(c_tok.span.col, 7);
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(lex("\"abc").is_err());
        assert!(lex("\"abc\ndef\"").is_err());
    }

    #[test]
    fn unterminated_block_comment_is_error() {
        assert!(lex("/* never ends").is_err());
    }

    #[test]
    fn unknown_character_is_error() {
        let err = lex("int @x;").unwrap_err();
        assert!(err.message().contains('@'), "{err}");
    }

    #[test]
    fn overflowing_integer_is_error() {
        assert!(lex("99999999999999999999").is_err());
    }

    #[test]
    fn increment_and_compound_assign() {
        assert_eq!(
            kinds("i++ + j-- += k -= 1"),
            vec![
                TokenKind::Ident("i".into()),
                TokenKind::PlusPlus,
                TokenKind::Plus,
                TokenKind::Ident("j".into()),
                TokenKind::MinusMinus,
                TokenKind::PlusAssign,
                TokenKind::Ident("k".into()),
                TokenKind::MinusAssign,
                TokenKind::Int(1),
                TokenKind::Eof,
            ]
        );
    }
}
