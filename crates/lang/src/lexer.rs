//! Lexer for the mini-C dialect.
//!
//! Produces a token stream plus the comment trivia the corpus generator and
//! multimodal feature extractors rely on.

use crate::error::{ParseError, ParseResult};
use crate::span::Span;
use crate::token::{Comment, Token, TokenKind};

/// Output of [`lex`]: the token stream (terminated by [`TokenKind::Eof`]) and
/// all comments encountered, in source order.
#[derive(Debug, Clone, PartialEq)]
pub struct LexOutput {
    /// Tokens, ending with a single `Eof` token.
    pub tokens: Vec<Token>,
    /// Comment trivia in source order.
    pub comments: Vec<Comment>,
}

/// Tokenizes `source`.
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input: unterminated string or block
/// comment, bad character literal, an integer that overflows `i64`, or a
/// character that is not part of the language.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), vulnman_lang::error::ParseError> {
/// let out = vulnman_lang::lexer::lex("int x = 42; // answer")?;
/// assert_eq!(out.comments.len(), 1);
/// assert_eq!(out.comments[0].text, "answer");
/// # Ok(())
/// # }
/// ```
pub fn lex(source: &str) -> ParseResult<LexOutput> {
    Lexer::new(source).run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
    tokens: Vec<Token>,
    comments: Vec<Comment>,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
            tokens: Vec::new(),
            comments: Vec::new(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.bytes.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn here(&self) -> (usize, u32, u32) {
        (self.pos, self.line, self.col)
    }

    fn span_from(&self, start: (usize, u32, u32)) -> Span {
        Span::new(start.0, self.pos, start.1, start.2)
    }

    fn run(mut self) -> ParseResult<LexOutput> {
        while let Some(b) = self.peek() {
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek2() == Some(b'/') => self.line_comment(),
                b'/' if self.peek2() == Some(b'*') => self.block_comment()?,
                b'0'..=b'9' => self.number()?,
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.ident(),
                b'"' => self.string()?,
                b'\'' => self.char_lit()?,
                _ => self.operator()?,
            }
        }
        let eof = Span::new(self.pos, self.pos, self.line, self.col);
        self.tokens.push(Token::new(TokenKind::Eof, eof));
        Ok(LexOutput { tokens: self.tokens, comments: self.comments })
    }

    fn line_comment(&mut self) {
        let start = self.here();
        self.bump();
        self.bump();
        let text_start = self.pos;
        while let Some(b) = self.peek() {
            if b == b'\n' {
                break;
            }
            self.bump();
        }
        let text = self.src[text_start..self.pos].trim().to_string();
        self.comments.push(Comment { text, span: self.span_from(start), block: false });
    }

    fn block_comment(&mut self) -> ParseResult<()> {
        let start = self.here();
        self.bump();
        self.bump();
        let text_start = self.pos;
        loop {
            match self.peek() {
                Some(b'*') if self.peek2() == Some(b'/') => {
                    let text = self.src[text_start..self.pos].trim().to_string();
                    self.bump();
                    self.bump();
                    self.comments.push(Comment { text, span: self.span_from(start), block: true });
                    return Ok(());
                }
                Some(_) => {
                    self.bump();
                }
                None => {
                    return Err(ParseError::new(
                        "unterminated block comment",
                        self.span_from(start),
                    ))
                }
            }
        }
    }

    fn number(&mut self) -> ParseResult<()> {
        let start = self.here();
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.bump();
        }
        let text = &self.src[start.0..self.pos];
        let value: i64 = text.parse().map_err(|_| {
            ParseError::new(
                format!("integer literal `{text}` overflows i64"),
                self.span_from(start),
            )
        })?;
        self.push(TokenKind::Int(value), start);
        Ok(())
    }

    fn ident(&mut self) {
        let start = self.here();
        while matches!(self.peek(), Some(b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_')) {
            self.bump();
        }
        let text = &self.src[start.0..self.pos];
        let kind = TokenKind::keyword(text).unwrap_or_else(|| TokenKind::Ident(text.to_string()));
        self.push(kind, start);
    }

    fn string(&mut self) -> ParseResult<()> {
        let start = self.here();
        self.bump(); // opening quote
        let mut value = String::new();
        loop {
            match self.bump() {
                Some(b'"') => break,
                Some(b'\\') => {
                    let esc = self.bump().ok_or_else(|| {
                        ParseError::new("unterminated string literal", self.span_from(start))
                    })?;
                    value.push(unescape(esc, self.span_from(start))?);
                }
                Some(b'\n') | None => {
                    return Err(ParseError::new(
                        "unterminated string literal",
                        self.span_from(start),
                    ))
                }
                Some(b) => value.push(b as char),
            }
        }
        self.push(TokenKind::Str(value), start);
        Ok(())
    }

    fn char_lit(&mut self) -> ParseResult<()> {
        let start = self.here();
        self.bump(); // opening quote
        let c = match self.bump() {
            Some(b'\\') => {
                let esc = self.bump().ok_or_else(|| {
                    ParseError::new("unterminated char literal", self.span_from(start))
                })?;
                unescape(esc, self.span_from(start))?
            }
            Some(b'\'') | None => {
                return Err(ParseError::new("empty char literal", self.span_from(start)))
            }
            Some(b) => b as char,
        };
        match self.bump() {
            Some(b'\'') => {}
            _ => return Err(ParseError::new("unterminated char literal", self.span_from(start))),
        }
        self.push(TokenKind::Char(c), start);
        Ok(())
    }

    fn operator(&mut self) -> ParseResult<()> {
        let start = self.here();
        let b = self.bump().expect("operator called at end of input");
        let two = |l: &mut Lexer<'a>, next: u8, yes: TokenKind, no: TokenKind| {
            if l.peek() == Some(next) {
                l.bump();
                yes
            } else {
                no
            }
        };
        let kind = match b {
            b'(' => TokenKind::LParen,
            b')' => TokenKind::RParen,
            b'{' => TokenKind::LBrace,
            b'}' => TokenKind::RBrace,
            b'[' => TokenKind::LBracket,
            b']' => TokenKind::RBracket,
            b',' => TokenKind::Comma,
            b';' => TokenKind::Semi,
            b'^' => TokenKind::Caret,
            b'%' => TokenKind::Percent,
            b'/' => TokenKind::Slash,
            b'+' => {
                if self.peek() == Some(b'+') {
                    self.bump();
                    TokenKind::PlusPlus
                } else {
                    two(self, b'=', TokenKind::PlusAssign, TokenKind::Plus)
                }
            }
            b'-' => {
                if self.peek() == Some(b'-') {
                    self.bump();
                    TokenKind::MinusMinus
                } else {
                    two(self, b'=', TokenKind::MinusAssign, TokenKind::Minus)
                }
            }
            b'*' => TokenKind::Star,
            b'&' => two(self, b'&', TokenKind::AmpAmp, TokenKind::Amp),
            b'|' => two(self, b'|', TokenKind::PipePipe, TokenKind::Pipe),
            b'!' => two(self, b'=', TokenKind::Ne, TokenKind::Bang),
            b'=' => two(self, b'=', TokenKind::Eq, TokenKind::Assign),
            b'<' => {
                if self.peek() == Some(b'<') {
                    self.bump();
                    TokenKind::Shl
                } else {
                    two(self, b'=', TokenKind::Le, TokenKind::Lt)
                }
            }
            b'>' => {
                if self.peek() == Some(b'>') {
                    self.bump();
                    TokenKind::Shr
                } else {
                    two(self, b'=', TokenKind::Ge, TokenKind::Gt)
                }
            }
            other => {
                return Err(ParseError::new(
                    format!("unexpected character `{}`", other as char),
                    self.span_from(start),
                ))
            }
        };
        self.push(kind, start);
        Ok(())
    }

    fn push(&mut self, kind: TokenKind, start: (usize, u32, u32)) {
        let span = self.span_from(start);
        self.tokens.push(Token::new(kind, span));
    }
}

fn unescape(b: u8, span: Span) -> ParseResult<char> {
    Ok(match b {
        b'n' => '\n',
        b't' => '\t',
        b'r' => '\r',
        b'0' => '\0',
        b'\\' => '\\',
        b'\'' => '\'',
        b'"' => '"',
        other => {
            return Err(ParseError::new(format!("unknown escape `\\{}`", other as char), span))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().tokens.into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_declaration() {
        assert_eq!(
            kinds("int x = 42;"),
            vec![
                TokenKind::KwInt,
                TokenKind::Ident("x".into()),
                TokenKind::Assign,
                TokenKind::Int(42),
                TokenKind::Semi,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_two_char_operators() {
        assert_eq!(
            kinds("a <= b == c != d >= e && f || g << h >> i"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Le,
                TokenKind::Ident("b".into()),
                TokenKind::Eq,
                TokenKind::Ident("c".into()),
                TokenKind::Ne,
                TokenKind::Ident("d".into()),
                TokenKind::Ge,
                TokenKind::Ident("e".into()),
                TokenKind::AmpAmp,
                TokenKind::Ident("f".into()),
                TokenKind::PipePipe,
                TokenKind::Ident("g".into()),
                TokenKind::Shl,
                TokenKind::Ident("h".into()),
                TokenKind::Shr,
                TokenKind::Ident("i".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn captures_line_and_block_comments() {
        let out = lex("// top\nint x; /* middle */ int y;").unwrap();
        assert_eq!(out.comments.len(), 2);
        assert_eq!(out.comments[0].text, "top");
        assert!(!out.comments[0].block);
        assert_eq!(out.comments[1].text, "middle");
        assert!(out.comments[1].block);
    }

    #[test]
    fn string_escapes_resolve() {
        let out = lex(r#""a\nb\"c""#).unwrap();
        assert_eq!(out.tokens[0].kind, TokenKind::Str("a\nb\"c".into()));
    }

    #[test]
    fn char_literals() {
        let out = lex(r"'x' '\n' '\0'").unwrap();
        let cs: Vec<_> = out
            .tokens
            .iter()
            .filter_map(|t| match t.kind {
                TokenKind::Char(c) => Some(c),
                _ => None,
            })
            .collect();
        assert_eq!(cs, vec!['x', '\n', '\0']);
    }

    #[test]
    fn tracks_line_numbers() {
        let out = lex("int a;\nint b;\n  int c;").unwrap();
        let c_tok = out.tokens.iter().find(|t| t.as_ident() == Some("c")).unwrap();
        assert_eq!(c_tok.span.line, 3);
        assert_eq!(c_tok.span.col, 7);
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(lex("\"abc").is_err());
        assert!(lex("\"abc\ndef\"").is_err());
    }

    #[test]
    fn unterminated_block_comment_is_error() {
        assert!(lex("/* never ends").is_err());
    }

    #[test]
    fn unknown_character_is_error() {
        let err = lex("int @x;").unwrap_err();
        assert!(err.message().contains('@'), "{err}");
    }

    #[test]
    fn overflowing_integer_is_error() {
        assert!(lex("99999999999999999999").is_err());
    }

    #[test]
    fn increment_and_compound_assign() {
        assert_eq!(
            kinds("i++ + j-- += k -= 1"),
            vec![
                TokenKind::Ident("i".into()),
                TokenKind::PlusPlus,
                TokenKind::Plus,
                TokenKind::Ident("j".into()),
                TokenKind::MinusMinus,
                TokenKind::PlusAssign,
                TokenKind::Ident("k".into()),
                TokenKind::MinusAssign,
                TokenKind::Int(1),
                TokenKind::Eof,
            ]
        );
    }
}
