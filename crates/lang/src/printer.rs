//! Pretty-printer for the mini-C AST.
//!
//! Printing then re-parsing yields a structurally identical AST (round-trip
//! property, covered by property tests). The anonymization pipeline and the
//! corpus generator both rely on this printer to materialize source text.

use crate::ast::*;
use std::fmt::Write;

/// Renders a whole program as source text.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), vulnman_lang::error::ParseError> {
/// use vulnman_lang::{parser::parse, printer::print_program};
/// let prog = parse("int id(int x) { return x; }")?;
/// let text = print_program(&prog);
/// assert!(text.contains("int id(int x)"));
/// // Round-trip.
/// assert_eq!(parse(&text)?, parse(&print_program(&parse(&text)?))?);
/// # Ok(())
/// # }
/// ```
pub fn print_program(program: &Program) -> String {
    let mut out = String::new();
    for (i, f) in program.functions.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        print_function(&mut out, f);
    }
    out
}

/// Renders a single function as source text (doc comments included).
pub fn print_function_to_string(f: &Function) -> String {
    let mut out = String::new();
    print_function(&mut out, f);
    out
}

/// Renders a single expression as source text.
pub fn print_expr(e: &Expr) -> String {
    let mut out = String::new();
    expr(&mut out, e);
    out
}

/// Renders a single statement as source text at the given indent level.
pub fn print_stmt(s: &Stmt, indent: usize) -> String {
    let mut out = String::new();
    stmt(&mut out, s, indent);
    out
}

fn print_function(out: &mut String, f: &Function) {
    for line in &f.doc {
        let _ = writeln!(out, "// {line}");
    }
    let _ = write!(out, "{} {}(", f.ret, f.name);
    for (i, p) in f.params.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        param(out, p);
    }
    out.push_str(") {\n");
    for s in &f.body {
        stmt(out, s, 1);
    }
    out.push_str("}\n");
}

fn param(out: &mut String, p: &Param) {
    match &p.ty {
        Type::Array(inner, n) => {
            let _ = write!(out, "{inner} {}[{n}]", p.name);
        }
        ty => {
            let _ = write!(out, "{ty} {}", p.name);
        }
    }
}

fn indent_str(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

fn stmt(out: &mut String, s: &Stmt, level: usize) {
    indent_str(out, level);
    match &s.kind {
        StmtKind::Decl { name, ty, init } => {
            match ty {
                Type::Array(inner, n) => {
                    let _ = write!(out, "{inner} {name}[{n}]");
                }
                ty => {
                    let _ = write!(out, "{ty} {name}");
                }
            }
            if let Some(e) = init {
                out.push_str(" = ");
                expr(out, e);
            }
            out.push_str(";\n");
        }
        StmtKind::Assign { target, value, op } => {
            lvalue(out, target);
            match op {
                None => out.push_str(" = "),
                Some(BinOp::Add) => out.push_str(" += "),
                Some(BinOp::Sub) => out.push_str(" -= "),
                Some(other) => {
                    // No compound token for this operator: desugar.
                    out.push_str(" = ");
                    lvalue(out, target);
                    let _ = write!(out, " {} ", other.symbol());
                }
            }
            expr(out, value);
            out.push_str(";\n");
        }
        StmtKind::If { cond, then_branch, else_branch } => {
            out.push_str("if (");
            expr(out, cond);
            out.push_str(") {\n");
            for s in then_branch {
                stmt(out, s, level + 1);
            }
            indent_str(out, level);
            out.push('}');
            if let Some(els) = else_branch {
                out.push_str(" else {\n");
                for s in els {
                    stmt(out, s, level + 1);
                }
                indent_str(out, level);
                out.push('}');
            }
            out.push('\n');
        }
        StmtKind::While { cond, body } => {
            out.push_str("while (");
            expr(out, cond);
            out.push_str(") {\n");
            for s in body {
                stmt(out, s, level + 1);
            }
            indent_str(out, level);
            out.push_str("}\n");
        }
        StmtKind::For { init, cond, step, body } => {
            out.push_str("for (");
            if let Some(i) = init {
                inline_stmt(out, i);
            }
            out.push_str("; ");
            if let Some(c) = cond {
                expr(out, c);
            }
            out.push_str("; ");
            if let Some(st) = step {
                inline_stmt(out, st);
            }
            out.push_str(") {\n");
            for s in body {
                stmt(out, s, level + 1);
            }
            indent_str(out, level);
            out.push_str("}\n");
        }
        StmtKind::Return(e) => {
            out.push_str("return");
            if let Some(e) = e {
                out.push(' ');
                expr(out, e);
            }
            out.push_str(";\n");
        }
        StmtKind::Expr(e) => {
            expr(out, e);
            out.push_str(";\n");
        }
        StmtKind::Break => out.push_str("break;\n"),
        StmtKind::Continue => out.push_str("continue;\n"),
    }
}

/// A statement without trailing `;\n` or indentation (for `for` headers).
fn inline_stmt(out: &mut String, s: &Stmt) {
    let mut tmp = String::new();
    stmt(&mut tmp, s, 0);
    let trimmed = tmp.trim_end().trim_end_matches(';');
    out.push_str(trimmed);
}

fn lvalue(out: &mut String, lv: &LValue) {
    match lv {
        LValue::Var(name) => out.push_str(name),
        LValue::Deref(e) => {
            out.push('*');
            expr_prec(out, e, 12);
        }
        LValue::Index(base, idx) => {
            expr_prec(out, base, 12);
            out.push('[');
            expr(out, idx);
            out.push(']');
        }
    }
}

fn expr(out: &mut String, e: &Expr) {
    expr_prec(out, e, 0);
}

fn prec_of(op: BinOp) -> u8 {
    match op {
        BinOp::Or => 1,
        BinOp::And => 2,
        BinOp::BitOr => 3,
        BinOp::BitXor => 4,
        BinOp::BitAnd => 5,
        BinOp::Eq | BinOp::Ne => 6,
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 7,
        BinOp::Shl | BinOp::Shr => 8,
        BinOp::Add | BinOp::Sub => 9,
        BinOp::Mul | BinOp::Div | BinOp::Rem => 10,
    }
}

fn expr_prec(out: &mut String, e: &Expr, min_prec: u8) {
    match &e.kind {
        ExprKind::Int(v) => {
            if *v < 0 {
                // Negative literals print parenthesized so unary minus
                // round-trips unambiguously.
                let _ = write!(out, "({v})");
            } else {
                let _ = write!(out, "{v}");
            }
        }
        ExprKind::Char(c) => {
            let escaped = match c {
                '\n' => "\\n".to_string(),
                '\t' => "\\t".to_string(),
                '\r' => "\\r".to_string(),
                '\0' => "\\0".to_string(),
                '\\' => "\\\\".to_string(),
                '\'' => "\\'".to_string(),
                other => other.to_string(),
            };
            let _ = write!(out, "'{escaped}'");
        }
        ExprKind::Str(s) => {
            out.push('"');
            for c in s.chars() {
                match c {
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    '\r' => out.push_str("\\r"),
                    '\0' => out.push_str("\\0"),
                    '\\' => out.push_str("\\\\"),
                    '"' => out.push_str("\\\""),
                    other => out.push(other),
                }
            }
            out.push('"');
        }
        ExprKind::Var(name) => out.push_str(name),
        ExprKind::Unary(op, inner) => {
            let need = min_prec > 11;
            if need {
                out.push('(');
            }
            out.push_str(op.symbol());
            expr_prec(out, inner, 11);
            if need {
                out.push(')');
            }
        }
        ExprKind::Binary(op, l, r) => {
            let p = prec_of(*op);
            let need = p < min_prec;
            if need {
                out.push('(');
            }
            expr_prec(out, l, p);
            let _ = write!(out, " {} ", op.symbol());
            expr_prec(out, r, p + 1);
            if need {
                out.push(')');
            }
        }
        ExprKind::Call(name, args) => {
            out.push_str(name);
            out.push('(');
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                expr(out, a);
            }
            out.push(')');
        }
        ExprKind::Index(base, idx) => {
            expr_prec(out, base, 12);
            out.push('[');
            expr(out, idx);
            out.push(']');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse, parse_expr};

    fn roundtrip(src: &str) {
        let p1 = parse(src).unwrap();
        let text = print_program(&p1);
        let p2 = parse(&text).unwrap_or_else(|e| panic!("reprint failed: {e}\n{text}"));
        // Compare ignoring spans by printing again.
        assert_eq!(text, print_program(&p2), "unstable print for:\n{text}");
        assert_eq!(p1.functions.len(), p2.functions.len());
    }

    #[test]
    fn roundtrips_basic_function() {
        roundtrip("int add(int a, int b) { return a + b; }");
    }

    #[test]
    fn roundtrips_control_flow() {
        roundtrip(
            "void f(int n) { for (int i = 0; i < n; i++) { if (i % 2 == 0) { emit(i); } else { skip(); } } while (n > 0) { n -= 1; } }",
        );
    }

    #[test]
    fn roundtrips_pointers_strings() {
        roundtrip(
            r#"void g(char* s) { char buf[8]; int* p; p = &buf[0]; *p = s[0]; log("got: \n", s); }"#,
        );
    }

    #[test]
    fn precedence_preserved() {
        let e = parse_expr("(a + b) * c").unwrap();
        assert_eq!(print_expr(&e), "(a + b) * c");
        let e = parse_expr("a + b * c").unwrap();
        assert_eq!(print_expr(&e), "a + b * c");
        let e = parse_expr("a - (b - c)").unwrap();
        assert_eq!(print_expr(&e), "a - (b - c)");
    }

    #[test]
    fn negative_literal_roundtrips() {
        roundtrip("int f() { return 0 - 5; }");
        let e = parse_expr("-x + 1").unwrap();
        let printed = print_expr(&e);
        let e2 = parse_expr(&printed).unwrap();
        assert_eq!(print_expr(&e2), printed);
    }

    #[test]
    fn doc_comments_print() {
        let p = parse("// Hello.\nint f() { return 1; }").unwrap();
        let text = print_program(&p);
        assert!(text.starts_with("// Hello.\n"));
        let p2 = parse(&text).unwrap();
        assert_eq!(p2.functions[0].doc, vec!["Hello."]);
    }

    #[test]
    fn char_escapes_print() {
        roundtrip(r"void f() { char c; c = '\n'; c = '\\'; c = '\''; }");
    }

    #[test]
    fn array_param_prints() {
        roundtrip("void f(char buf[32]) { buf[0] = 'x'; }");
    }
}
