//! Error types shared by the lexer and parser.

use crate::span::Span;
use std::error::Error;
use std::fmt;

/// An error produced while lexing or parsing mini-C source.
///
/// Implements [`std::error::Error`] and is `Send + Sync` so it composes with
/// standard error-handling machinery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    message: String,
    span: Span,
}

impl ParseError {
    /// Creates a new error at `span`.
    pub fn new(message: impl Into<String>, span: Span) -> Self {
        ParseError { message: message.into(), span }
    }

    /// The human-readable description, without location.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// Where the error occurred.
    pub fn span(&self) -> Span {
        self.span
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.span, self.message)
    }
}

impl Error for ParseError {}

/// Convenience alias for lex/parse results.
pub type ParseResult<T> = Result<T, ParseError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_location() {
        let e = ParseError::new("unexpected `;`", Span::new(3, 4, 2, 1));
        assert_eq!(e.to_string(), "parse error at 2:1: unexpected `;`");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ParseError>();
    }
}
