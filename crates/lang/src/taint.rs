//! Interprocedural taint analysis.
//!
//! Tracks data from configurable *sources* (e.g. `read_input`, `recv`,
//! `http_param`) to *sinks* (e.g. `strcpy`, `system`, `exec_query`), with
//! *sanitizers* cutting propagation. Function summaries make the analysis
//! interprocedural: a wrapper that forwards its parameter into a sink is
//! itself treated as a sink, and a function returning attacker data is
//! itself treated as a source.
//!
//! This engine backs the rule-based detectors in `vulnman-analysis` (the
//! "traditional static analysis tools" of the paper's Figure 1) and the
//! expert-feature extractor in `vulnman-ml` (Gap Observation 5).

use crate::ast::{Expr, ExprKind, Function, LValue, Program};
use crate::cfg::{Cfg, CfgInst};
use crate::span::Span;
use std::collections::{BTreeMap, HashMap, HashSet};

/// Maximum number of parameters tracked relationally per function.
const MAX_PARAMS: usize = 62;
/// Origin bit marking data produced by a taint source.
const SOURCE_BIT: u64 = 1 << 63;

/// Taint origins as a bitmask: bit 63 = from a source call, bits `0..62` =
/// from the corresponding parameter.
pub type Origins = u64;

/// Configuration of sources, sinks, and sanitizers.
///
/// # Examples
///
/// ```
/// use vulnman_lang::taint::TaintConfig;
/// let cfg = TaintConfig::default_config();
/// assert!(cfg.is_source("read_input"));
/// assert!(cfg.sink_positions("strcpy").is_some());
/// assert!(cfg.is_sanitizer("escape_sql"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct TaintConfig {
    sources: HashSet<String>,
    /// sink name -> dangerous argument positions (empty = all positions).
    sinks: HashMap<String, Vec<usize>>,
    /// sink name -> category label used in findings (e.g. "sql", "memory").
    sink_kinds: HashMap<String, String>,
    sanitizers: HashSet<String>,
}

impl TaintConfig {
    /// Creates an empty configuration.
    pub fn new() -> Self {
        TaintConfig::default()
    }

    /// The default source/sink/sanitizer vocabulary shared by the corpus
    /// generator and the rule-based detectors.
    pub fn default_config() -> Self {
        let mut cfg = TaintConfig::new();
        for s in [
            "read_input",
            "recv",
            "getenv",
            "http_param",
            "read_file",
            "read_socket",
            "get_request_field",
            "deserialize",
        ] {
            cfg.add_source(s);
        }
        // (name, positions, kind)
        let sinks: &[(&str, &[usize], &str)] = &[
            ("strcpy", &[1], "memory"),
            ("strcat", &[1], "memory"),
            ("memcpy", &[1, 2], "memory"),
            ("sprintf", &[1], "format"),
            ("printf_fmt", &[0], "format"),
            ("system", &[0], "command"),
            ("exec_shell", &[0], "command"),
            ("popen", &[0], "command"),
            ("exec_query", &[0], "sql"),
            ("sql_execute", &[0], "sql"),
            ("render_html", &[0], "xss"),
            ("write_response", &[0], "xss"),
            ("open_file", &[0], "path"),
            ("fopen_path", &[0], "path"),
            ("eval_expr", &[0], "injection"),
        ];
        for (name, positions, kind) in sinks {
            cfg.add_sink(*name, positions.to_vec(), *kind);
        }
        for s in [
            "escape_sql",
            "escape_html",
            "sanitize_path",
            "validate_input",
            "bound_check",
            "escape_shell",
            "sanitize",
            "clamp_len",
        ] {
            cfg.add_sanitizer(s);
        }
        cfg
    }

    /// Registers a source function: its return value is attacker-controlled.
    pub fn add_source(&mut self, name: impl Into<String>) -> &mut Self {
        self.sources.insert(name.into());
        self
    }

    /// Registers a sink with the argument positions that must not be tainted
    /// and a category label for findings.
    pub fn add_sink(
        &mut self,
        name: impl Into<String>,
        positions: Vec<usize>,
        kind: impl Into<String>,
    ) -> &mut Self {
        let name = name.into();
        self.sink_kinds.insert(name.clone(), kind.into());
        self.sinks.insert(name, positions);
        self
    }

    /// Registers a sanitizer: its return value is always clean.
    pub fn add_sanitizer(&mut self, name: impl Into<String>) -> &mut Self {
        self.sanitizers.insert(name.into());
        self
    }

    /// Returns `true` if `name` is a registered source.
    pub fn is_source(&self, name: &str) -> bool {
        self.sources.contains(name)
    }

    /// Returns `true` if `name` is a registered sanitizer.
    pub fn is_sanitizer(&self, name: &str) -> bool {
        self.sanitizers.contains(name)
    }

    /// Dangerous argument positions of `name`, if it is a sink.
    pub fn sink_positions(&self, name: &str) -> Option<&[usize]> {
        self.sinks.get(name).map(|v| v.as_slice())
    }

    /// Category label of sink `name` (defaults to `"generic"`).
    pub fn sink_kind(&self, name: &str) -> &str {
        self.sink_kinds.get(name).map(String::as_str).unwrap_or("generic")
    }

    /// Iterates over all registered source names.
    pub fn source_names(&self) -> impl Iterator<Item = &str> {
        self.sources.iter().map(String::as_str)
    }
}

/// Interprocedural summary of one function.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FnSummary {
    /// Origins the return value may carry: `SOURCE_BIT` and/or parameter bits.
    pub ret_origins: Origins,
    /// For each parameter index, the sink kinds that parameter may flow into
    /// inside this function (making the function a *derived sink*).
    pub param_to_sink: BTreeMap<usize, Vec<String>>,
    /// Whether a source-tainted value reaches a sink entirely inside this
    /// function (a self-contained vulnerability).
    pub internal_flow: bool,
}

/// A source-to-sink flow detected by the analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaintFinding {
    /// Function in which the dangerous call occurs.
    pub function: String,
    /// The called function at the dangerous site (may be a wrapper).
    pub call: String,
    /// Category of the underlying sink (`"sql"`, `"memory"`, …).
    pub sink_kind: String,
    /// Location of the dangerous call.
    pub span: Span,
    /// Whether the flow passed through at least one other function.
    pub interprocedural: bool,
}

/// Result of analyzing a whole program.
#[derive(Debug, Clone, Default)]
pub struct TaintAnalysis {
    /// Per-function summaries.
    pub summaries: HashMap<String, FnSummary>,
    /// All source-to-sink findings.
    pub findings: Vec<TaintFinding>,
}

impl TaintAnalysis {
    /// Runs the interprocedural analysis on `program` under `config`.
    ///
    /// The summary fixpoint iterates to convergence (bounded by the number of
    /// functions, so it terminates even on recursive call graphs).
    ///
    /// # Examples
    ///
    /// ```
    /// # fn main() -> Result<(), vulnman_lang::error::ParseError> {
    /// use vulnman_lang::{parser::parse, taint::{TaintAnalysis, TaintConfig}};
    /// let p = parse(r#"
    ///     void handle() {
    ///         char* q = http_param("id");
    ///         exec_query(q);
    ///     }
    /// "#)?;
    /// let result = TaintAnalysis::run(&p, &TaintConfig::default_config());
    /// assert_eq!(result.findings.len(), 1);
    /// assert_eq!(result.findings[0].sink_kind, "sql");
    /// # Ok(())
    /// # }
    /// ```
    pub fn run(program: &Program, config: &TaintConfig) -> TaintAnalysis {
        let mut summaries: HashMap<String, FnSummary> =
            program.functions.iter().map(|f| (f.name.clone(), FnSummary::default())).collect();
        let cfgs: Vec<(usize, Cfg)> =
            program.functions.iter().enumerate().map(|(i, f)| (i, Cfg::build(f))).collect();

        // Fixpoint over summaries.
        let max_rounds = program.functions.len().max(1) + 2;
        for _ in 0..max_rounds {
            let mut changed = false;
            for (idx, cfg) in &cfgs {
                let func = &program.functions[*idx];
                let (summary, _) = analyze_function(func, cfg, config, &summaries);
                let slot = summaries.get_mut(&func.name).expect("summary slot");
                if *slot != summary {
                    *slot = summary;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        // Final pass: collect findings with stable summaries.
        let mut findings = Vec::new();
        for (idx, cfg) in &cfgs {
            let func = &program.functions[*idx];
            let (_, mut fnd) = analyze_function(func, cfg, config, &summaries);
            findings.append(&mut fnd);
        }
        findings.sort_by_key(|f| (f.span.start, f.call.clone()));
        findings.dedup();
        TaintAnalysis { summaries, findings }
    }

    /// Runs the analysis *intraprocedurally*: no function summaries, so
    /// wrappers around sources, sinks, or sanitizers are opaque (unknown
    /// calls conservatively propagate argument taint). This is the ablation
    /// baseline for measuring what the interprocedural machinery buys.
    pub fn run_intraprocedural(program: &Program, config: &TaintConfig) -> TaintAnalysis {
        let summaries: HashMap<String, FnSummary> = HashMap::new();
        let mut findings = Vec::new();
        for func in &program.functions {
            let cfg = Cfg::build(func);
            let (_, mut fnd) = analyze_function(func, &cfg, config, &summaries);
            findings.append(&mut fnd);
        }
        findings.sort_by_key(|f| (f.span.start, f.call.clone()));
        findings.dedup();
        TaintAnalysis { summaries, findings }
    }

    /// Findings whose sink category is `kind`.
    pub fn findings_of_kind(&self, kind: &str) -> Vec<&TaintFinding> {
        self.findings.iter().filter(|f| f.sink_kind == kind).collect()
    }

    /// Returns `true` if any finding lies inside `function`.
    pub fn function_has_finding(&self, function: &str) -> bool {
        self.findings.iter().any(|f| f.function == function)
    }
}

/// Analyzes a single function; returns its summary and local findings.
fn analyze_function(
    func: &Function,
    cfg: &Cfg,
    config: &TaintConfig,
    summaries: &HashMap<String, FnSummary>,
) -> (FnSummary, Vec<TaintFinding>) {
    let param_bits: HashMap<&str, Origins> = func
        .params
        .iter()
        .take(MAX_PARAMS)
        .enumerate()
        .map(|(i, p)| (p.name.as_str(), 1u64 << i))
        .collect();

    let n = cfg.blocks.len();
    let mut at_entry: Vec<HashMap<String, Origins>> = vec![HashMap::new(); n];
    // Parameters carry their own origin bit at function entry.
    for (name, bit) in &param_bits {
        at_entry[cfg.entry].insert((*name).to_string(), *bit);
    }

    let order = cfg.reverse_post_order();
    let mut at_exit: Vec<HashMap<String, Origins>> = vec![HashMap::new(); n];
    let mut ret_origins: Origins = 0;
    for _ in 0..(n * 2 + 4) {
        let mut changed = false;
        for &b in &order {
            let mut env: HashMap<String, Origins> = if b == cfg.entry {
                at_entry[cfg.entry].clone()
            } else {
                let mut merged: HashMap<String, Origins> = HashMap::new();
                for &p in &cfg.blocks[b].preds {
                    for (k, v) in &at_exit[p] {
                        *merged.entry(k.clone()).or_insert(0) |= v;
                    }
                }
                merged
            };
            if b != cfg.entry && env != at_entry[b] {
                at_entry[b] = env.clone();
                changed = true;
            }
            for si in &cfg.blocks[b].insts {
                match &si.inst {
                    CfgInst::Decl { name, init, .. } => {
                        let t =
                            init.as_ref().map_or(0, |e| expr_origins(e, &env, config, summaries));
                        env.insert(name.clone(), t);
                    }
                    CfgInst::Assign { target, value } => {
                        let t = expr_origins(value, &env, config, summaries);
                        match target {
                            LValue::Var(name) => {
                                env.insert(name.clone(), t);
                            }
                            LValue::Deref(e) | LValue::Index(e, _) => {
                                // Indirect store taints the base object (weak
                                // update: union with existing taint).
                                if let ExprKind::Var(base) = &e.kind {
                                    *env.entry(base.clone()).or_insert(0) |= t;
                                }
                            }
                        }
                    }
                    CfgInst::Return(e) => {
                        if let Some(e) = e {
                            ret_origins |= expr_origins(e, &env, config, summaries);
                        }
                    }
                    CfgInst::Expr(_) | CfgInst::Branch(_) => {}
                }
            }
            if env != at_exit[b] {
                at_exit[b] = env;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Collect sink hits and derived-sink parameters with the converged state.
    let mut findings = Vec::new();
    let mut param_to_sink: BTreeMap<usize, Vec<String>> = BTreeMap::new();
    let mut internal_flow = false;
    for (b, block) in cfg.blocks.iter().enumerate() {
        // Replay the block from its entry state to get per-instruction envs.
        let mut env =
            if b == cfg.entry { at_entry[cfg.entry].clone() } else { at_entry[b].clone() };
        for si in &block.insts {
            // Check every call appearing in this instruction.
            let exprs: Vec<&Expr> = si.inst.expr().into_iter().collect();
            for root in exprs {
                root.walk(&mut |e| {
                    if let ExprKind::Call(name, args) = &e.kind {
                        check_call(
                            func,
                            name,
                            args,
                            e.span,
                            &env,
                            config,
                            summaries,
                            &mut findings,
                            &mut param_to_sink,
                            &mut internal_flow,
                        );
                    }
                });
            }
            // Indirect-target expressions can also contain calls.
            if let CfgInst::Assign { target, .. } = &si.inst {
                let tgt_exprs: Vec<&Expr> = match target {
                    LValue::Var(_) => Vec::new(),
                    LValue::Deref(e) => vec![e],
                    LValue::Index(b2, i2) => vec![b2, i2],
                };
                for root in tgt_exprs {
                    root.walk(&mut |e| {
                        if let ExprKind::Call(name, args) = &e.kind {
                            check_call(
                                func,
                                name,
                                args,
                                e.span,
                                &env,
                                config,
                                summaries,
                                &mut findings,
                                &mut param_to_sink,
                                &mut internal_flow,
                            );
                        }
                    });
                }
            }
            // Apply the transfer for subsequent instructions in the block.
            match &si.inst {
                CfgInst::Decl { name, init, .. } => {
                    let t = init.as_ref().map_or(0, |e| expr_origins(e, &env, config, summaries));
                    env.insert(name.clone(), t);
                }
                CfgInst::Assign { target, value } => {
                    let t = expr_origins(value, &env, config, summaries);
                    match target {
                        LValue::Var(name) => {
                            env.insert(name.clone(), t);
                        }
                        LValue::Deref(e) | LValue::Index(e, _) => {
                            if let ExprKind::Var(base) = &e.kind {
                                *env.entry(base.clone()).or_insert(0) |= t;
                            }
                        }
                    }
                }
                _ => {}
            }
        }
    }

    (FnSummary { ret_origins, param_to_sink, internal_flow }, findings)
}

#[allow(clippy::too_many_arguments)]
fn check_call(
    func: &Function,
    name: &str,
    args: &[Expr],
    span: Span,
    env: &HashMap<String, Origins>,
    config: &TaintConfig,
    summaries: &HashMap<String, FnSummary>,
    findings: &mut Vec<TaintFinding>,
    param_to_sink: &mut BTreeMap<usize, Vec<String>>,
    internal_flow: &mut bool,
) {
    // Positions that are dangerous for this callee: direct sinks from config,
    // derived sinks from summaries.
    let mut dangerous: Vec<(usize, String, bool)> = Vec::new(); // (arg pos, kind, via wrapper)
    if let Some(positions) = config.sink_positions(name) {
        let kind = config.sink_kind(name).to_string();
        if positions.is_empty() {
            for i in 0..args.len() {
                dangerous.push((i, kind.clone(), false));
            }
        } else {
            for &p in positions {
                dangerous.push((p, kind.clone(), false));
            }
        }
    }
    if let Some(s) = summaries.get(name) {
        for (p, kinds) in &s.param_to_sink {
            for k in kinds {
                dangerous.push((*p, k.clone(), true));
            }
        }
    }
    for (pos, kind, via_wrapper) in dangerous {
        let Some(arg) = args.get(pos) else { continue };
        let t = expr_origins(arg, env, config, summaries);
        if t & SOURCE_BIT != 0 {
            findings.push(TaintFinding {
                function: func.name.clone(),
                call: name.to_string(),
                sink_kind: kind.clone(),
                span,
                interprocedural: via_wrapper,
            });
            *internal_flow = true;
        }
        // Record parameter-origin flows for the derived-sink summary.
        for (i, _) in func.params.iter().take(MAX_PARAMS).enumerate() {
            if t & (1u64 << i) != 0 {
                let kinds = param_to_sink.entry(i).or_default();
                if !kinds.contains(&kind) {
                    kinds.push(kind.clone());
                }
            }
        }
    }
}

/// Computes the origin mask of an expression under `env`.
fn expr_origins(
    e: &Expr,
    env: &HashMap<String, Origins>,
    config: &TaintConfig,
    summaries: &HashMap<String, FnSummary>,
) -> Origins {
    match &e.kind {
        ExprKind::Int(_) | ExprKind::Char(_) | ExprKind::Str(_) => 0,
        ExprKind::Var(name) => env.get(name).copied().unwrap_or(0),
        ExprKind::Unary(_, inner) => expr_origins(inner, env, config, summaries),
        ExprKind::Binary(_, l, r) => {
            expr_origins(l, env, config, summaries) | expr_origins(r, env, config, summaries)
        }
        ExprKind::Index(b, i) => {
            expr_origins(b, env, config, summaries) | expr_origins(i, env, config, summaries)
        }
        ExprKind::Call(name, args) => {
            if config.is_sanitizer(name) {
                return 0;
            }
            let mut t = 0;
            if config.is_source(name) {
                t |= SOURCE_BIT;
            }
            match summaries.get(name.as_str()) {
                Some(s) => {
                    // Known function: return carries SOURCE if the callee
                    // returns source data, plus the origins of any argument
                    // the return value depends on.
                    if s.ret_origins & SOURCE_BIT != 0 {
                        t |= SOURCE_BIT;
                    }
                    for (i, arg) in args.iter().enumerate().take(MAX_PARAMS) {
                        if s.ret_origins & (1u64 << i) != 0 {
                            t |= expr_origins(arg, env, config, summaries);
                        }
                    }
                }
                None => {
                    // Unknown library function: conservatively propagate
                    // argument taint through the return value.
                    for arg in args {
                        t |= expr_origins(arg, env, config, summaries);
                    }
                }
            }
            t
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn run(src: &str) -> TaintAnalysis {
        let p = parse(src).unwrap();
        TaintAnalysis::run(&p, &TaintConfig::default_config())
    }

    #[test]
    fn direct_flow_detected() {
        let r = run(r#"void f() { char* q = http_param("id"); exec_query(q); }"#);
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].sink_kind, "sql");
        assert!(!r.findings[0].interprocedural);
    }

    #[test]
    fn sanitizer_blocks_flow() {
        let r = run(
            r#"void f() { char* q = http_param("id"); char* s = escape_sql(q); exec_query(s); }"#,
        );
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn clean_data_not_flagged() {
        let r = run(r#"void f() { char* q = "SELECT 1"; exec_query(q); }"#);
        assert!(r.findings.is_empty());
    }

    #[test]
    fn flow_through_arithmetic_and_concat() {
        let r = run(
            r#"void f() { char* u = read_input(); char* q = concat("SELECT ", u); exec_query(q); }"#,
        );
        assert_eq!(r.findings.len(), 1, "unknown helper propagates taint");
    }

    #[test]
    fn flow_through_branches() {
        let r = run(
            r#"void f(int c) { char* q = "ok"; if (c) { q = http_param("x"); } exec_query(q); }"#,
        );
        assert_eq!(r.findings.len(), 1, "taint must survive the join");
    }

    #[test]
    fn flow_through_loop() {
        let r = run(
            r#"void f(int n) { char* acc = ""; while (n > 0) { acc = concat(acc, read_input()); n -= 1; } system(acc); }"#,
        );
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].sink_kind, "command");
    }

    #[test]
    fn interprocedural_source_wrapper() {
        let r = run(r#"
            char* fetch() { char* v = read_input(); return v; }
            void f() { char* q = fetch(); exec_query(q); }
            "#);
        assert_eq!(r.findings.len(), 1);
        let s = &r.summaries["fetch"];
        assert_ne!(s.ret_origins & SOURCE_BIT, 0, "fetch returns source data");
    }

    #[test]
    fn interprocedural_sink_wrapper() {
        let r = run(r#"
            void run_query(char* q) { exec_query(q); }
            void f() { char* u = http_param("id"); run_query(u); }
            "#);
        let in_f: Vec<_> = r.findings.iter().filter(|x| x.function == "f").collect();
        assert_eq!(in_f.len(), 1, "{:?}", r.findings);
        assert!(in_f[0].interprocedural);
        assert_eq!(r.summaries["run_query"].param_to_sink[&0], vec!["sql".to_string()]);
    }

    #[test]
    fn two_level_wrapper_chain() {
        let r = run(r#"
            void level1(char* a) { exec_query(a); }
            void level2(char* b) { level1(b); }
            void f() { level2(getenv("X")); }
            "#);
        assert!(r.function_has_finding("f"), "{:?}", r.findings);
    }

    #[test]
    fn sanitizing_wrapper_is_clean() {
        let r = run(r#"
            char* clean_fetch() { return escape_sql(read_input()); }
            void f() { exec_query(clean_fetch()); }
            "#);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn param_passthrough_summary() {
        let r = run("char* ident(char* x) { return x; }");
        assert_eq!(r.summaries["ident"].ret_origins, 1, "returns param 0");
    }

    #[test]
    fn indirect_store_taints_buffer() {
        let r = run(
            r#"void f() { char buf[64]; char* u = read_input(); buf[0] = u[0]; system(buf); }"#,
        );
        assert_eq!(r.findings.len(), 1);
    }

    #[test]
    fn recursion_terminates() {
        let r = run(r#"
            char* spin(char* x, int n) { if (n > 0) { return spin(x, n - 1); } return x; }
            void f() { exec_query(spin(read_input(), 3)); }
            "#);
        assert_eq!(r.findings.len(), 1);
    }

    #[test]
    fn intraprocedural_misses_wrapped_flows_but_sees_direct_ones() {
        let src = r#"
            void run_query(char* q) { exec_query(q); }
            char* fetch() { return read_input(); }
            void direct() { exec_query(http_param("id")); }
            void sink_wrapped() { run_query(http_param("id")); }
            void source_wrapped() { exec_query(fetch()); }
        "#;
        let p = parse(src).unwrap();
        let cfg = TaintConfig::default_config();
        let intra = TaintAnalysis::run_intraprocedural(&p, &cfg);
        let inter = TaintAnalysis::run(&p, &cfg);
        // Direct flow: both see it.
        assert!(intra.function_has_finding("direct"));
        assert!(inter.function_has_finding("direct"));
        // Wrapped sink and wrapped source: only the interprocedural
        // analysis connects the flow — exactly what the summaries buy.
        assert!(!intra.function_has_finding("sink_wrapped"));
        assert!(inter.function_has_finding("sink_wrapped"));
        assert!(!intra.function_has_finding("source_wrapped"));
        assert!(inter.function_has_finding("source_wrapped"));
    }

    #[test]
    fn findings_of_kind_filters() {
        let r = run(r#"void f() { char* a = read_input(); exec_query(a); system(a); }"#);
        assert_eq!(r.findings.len(), 2);
        assert_eq!(r.findings_of_kind("sql").len(), 1);
        assert_eq!(r.findings_of_kind("command").len(), 1);
        assert!(r.findings_of_kind("path").is_empty());
    }

    #[test]
    fn multiple_sink_args_checked() {
        let r = run(r#"void f(char* dst) { char* s = recv(); memcpy(dst, s, 8); }"#);
        assert_eq!(r.findings.len(), 1, "tainted src argument of memcpy");
    }

    #[test]
    fn custom_config_sources() {
        let p = parse(r#"void f() { char* t = my_source(); my_sink(t); }"#).unwrap();
        let mut cfg = TaintConfig::new();
        cfg.add_source("my_source");
        cfg.add_sink("my_sink", vec![0], "custom");
        let r = TaintAnalysis::run(&p, &cfg);
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].sink_kind, "custom");
    }
}
