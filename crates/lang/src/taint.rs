//! Interprocedural taint analysis.
//!
//! Tracks data from configurable *sources* (e.g. `read_input`, `recv`,
//! `http_param`) to *sinks* (e.g. `strcpy`, `system`, `exec_query`), with
//! *sanitizers* cutting propagation. Function summaries make the analysis
//! interprocedural: a wrapper that forwards its parameter into a sink is
//! itself treated as a sink, and a function returning attacker data is
//! itself treated as a source.
//!
//! This engine backs the rule-based detectors in `vulnman-analysis` (the
//! "traditional static analysis tools" of the paper's Figure 1) and the
//! expert-feature extractor in `vulnman-ml` (Gap Observation 5).
//!
//! ## Performance shape
//!
//! Per-function data-flow state is a dense `Vec<Origins>` indexed by a
//! per-function *slot map* (variable name → index) built once up front, so
//! joins are elementwise ORs over a flat vector and transfer functions never
//! hash or clone variable names. An absent map key in the old representation
//! meant "no origins" (`0`), which is exactly what an untouched slot holds,
//! so the dense form computes identical results. Findings are only
//! materialized on the final pass; fixpoint rounds compute summaries alone.

use crate::ast::{Expr, ExprKind, Function, LValue, Program};
use crate::cfg::{Cfg, CfgInst};
use crate::intern::FnvBuildHasher;
use crate::span::Span;
use std::collections::{BTreeMap, HashMap, HashSet};

/// Function-summary table keyed by function name.
pub type SummaryMap = HashMap<String, FnSummary, FnvBuildHasher>;

/// Per-function variable slot map (name → dense index).
type SlotMap<'p> = HashMap<&'p str, usize, FnvBuildHasher>;

/// Maximum number of parameters tracked relationally per function.
const MAX_PARAMS: usize = 62;
/// Origin bit marking data produced by a taint source.
const SOURCE_BIT: u64 = 1 << 63;

/// Taint origins as a bitmask: bit 63 = from a source call, bits `0..62` =
/// from the corresponding parameter.
pub type Origins = u64;

/// Configuration of sources, sinks, and sanitizers.
///
/// # Examples
///
/// ```
/// use vulnman_lang::taint::TaintConfig;
/// let cfg = TaintConfig::default_config();
/// assert!(cfg.is_source("read_input"));
/// assert!(cfg.sink_positions("strcpy").is_some());
/// assert!(cfg.is_sanitizer("escape_sql"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct TaintConfig {
    sources: HashSet<String>,
    /// sink name -> dangerous argument positions (empty = all positions).
    sinks: HashMap<String, Vec<usize>>,
    /// sink name -> category label used in findings (e.g. "sql", "memory").
    sink_kinds: HashMap<String, String>,
    sanitizers: HashSet<String>,
}

impl TaintConfig {
    /// Creates an empty configuration.
    pub fn new() -> Self {
        TaintConfig::default()
    }

    /// The default source/sink/sanitizer vocabulary shared by the corpus
    /// generator and the rule-based detectors.
    pub fn default_config() -> Self {
        let mut cfg = TaintConfig::new();
        for s in [
            "read_input",
            "recv",
            "getenv",
            "http_param",
            "read_file",
            "read_socket",
            "get_request_field",
            "deserialize",
        ] {
            cfg.add_source(s);
        }
        // (name, positions, kind)
        let sinks: &[(&str, &[usize], &str)] = &[
            ("strcpy", &[1], "memory"),
            ("strcat", &[1], "memory"),
            ("memcpy", &[1, 2], "memory"),
            ("sprintf", &[1], "format"),
            ("printf_fmt", &[0], "format"),
            ("system", &[0], "command"),
            ("exec_shell", &[0], "command"),
            ("popen", &[0], "command"),
            ("exec_query", &[0], "sql"),
            ("sql_execute", &[0], "sql"),
            ("render_html", &[0], "xss"),
            ("write_response", &[0], "xss"),
            ("open_file", &[0], "path"),
            ("fopen_path", &[0], "path"),
            ("eval_expr", &[0], "injection"),
        ];
        for (name, positions, kind) in sinks {
            cfg.add_sink(*name, positions.to_vec(), *kind);
        }
        for s in [
            "escape_sql",
            "escape_html",
            "sanitize_path",
            "validate_input",
            "bound_check",
            "escape_shell",
            "sanitize",
            "clamp_len",
        ] {
            cfg.add_sanitizer(s);
        }
        cfg
    }

    /// Registers a source function: its return value is attacker-controlled.
    pub fn add_source(&mut self, name: impl Into<String>) -> &mut Self {
        self.sources.insert(name.into());
        self
    }

    /// Registers a sink with the argument positions that must not be tainted
    /// and a category label for findings.
    pub fn add_sink(
        &mut self,
        name: impl Into<String>,
        positions: Vec<usize>,
        kind: impl Into<String>,
    ) -> &mut Self {
        let name = name.into();
        self.sink_kinds.insert(name.clone(), kind.into());
        self.sinks.insert(name, positions);
        self
    }

    /// Registers a sanitizer: its return value is always clean.
    pub fn add_sanitizer(&mut self, name: impl Into<String>) -> &mut Self {
        self.sanitizers.insert(name.into());
        self
    }

    /// Returns `true` if `name` is a registered source.
    pub fn is_source(&self, name: &str) -> bool {
        self.sources.contains(name)
    }

    /// Returns `true` if `name` is a registered sanitizer.
    pub fn is_sanitizer(&self, name: &str) -> bool {
        self.sanitizers.contains(name)
    }

    /// Dangerous argument positions of `name`, if it is a sink.
    pub fn sink_positions(&self, name: &str) -> Option<&[usize]> {
        self.sinks.get(name).map(|v| v.as_slice())
    }

    /// Category label of sink `name` (defaults to `"generic"`).
    pub fn sink_kind(&self, name: &str) -> &str {
        self.sink_kinds.get(name).map(String::as_str).unwrap_or("generic")
    }

    /// Iterates over all registered source names.
    pub fn source_names(&self) -> impl Iterator<Item = &str> {
        self.sources.iter().map(String::as_str)
    }
}

/// Interprocedural summary of one function.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FnSummary {
    /// Origins the return value may carry: `SOURCE_BIT` and/or parameter bits.
    pub ret_origins: Origins,
    /// For each parameter index, the sink kinds that parameter may flow into
    /// inside this function (making the function a *derived sink*).
    pub param_to_sink: BTreeMap<usize, Vec<String>>,
    /// Whether a source-tainted value reaches a sink entirely inside this
    /// function (a self-contained vulnerability).
    pub internal_flow: bool,
}

/// A source-to-sink flow detected by the analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaintFinding {
    /// Function in which the dangerous call occurs.
    pub function: String,
    /// The called function at the dangerous site (may be a wrapper).
    pub call: String,
    /// Category of the underlying sink (`"sql"`, `"memory"`, …).
    pub sink_kind: String,
    /// Location of the dangerous call.
    pub span: Span,
    /// Whether the flow passed through at least one other function.
    pub interprocedural: bool,
}

/// Result of analyzing a whole program.
#[derive(Debug, Clone, Default)]
pub struct TaintAnalysis {
    /// Per-function summaries.
    pub summaries: SummaryMap,
    /// All source-to-sink findings.
    pub findings: Vec<TaintFinding>,
}

/// Per-function analysis unit: the CFG plus the dense variable slot map.
struct FnUnit<'p> {
    func: &'p Function,
    cfg: Cfg,
    slots: SlotMap<'p>,
}

impl<'p> FnUnit<'p> {
    fn build(func: &'p Function) -> Self {
        let cfg = Cfg::build(func);
        let mut slots: SlotMap<'p> = SlotMap::default();
        for p in &func.params {
            let next = slots.len();
            slots.entry(p.name.as_str()).or_insert(next);
        }
        // Every name the transfer functions can read or write: declarations,
        // direct/indirect assignment bases, and variable reads. The CFG only
        // re-arranges AST statements (it never invents variables), so walking
        // the AST covers everything the block replay will look up.
        func.walk_stmts(&mut |s| {
            use crate::ast::StmtKind;
            match &s.kind {
                StmtKind::Decl { name, .. } => {
                    let next = slots.len();
                    slots.entry(name.as_str()).or_insert(next);
                }
                StmtKind::Assign { target, .. } => {
                    if let Some(base) = target.base_var() {
                        let next = slots.len();
                        slots.entry(base).or_insert(next);
                    }
                }
                _ => {}
            }
        });
        func.walk_exprs(&mut |e| {
            if let ExprKind::Var(name) = &e.kind {
                let next = slots.len();
                slots.entry(name.as_str()).or_insert(next);
            }
        });
        FnUnit { func, cfg, slots }
    }
}

impl TaintAnalysis {
    /// Runs the interprocedural analysis on `program` under `config`.
    ///
    /// The summary fixpoint iterates to convergence (bounded by the number of
    /// functions, so it terminates even on recursive call graphs).
    ///
    /// # Examples
    ///
    /// ```
    /// # fn main() -> Result<(), vulnman_lang::error::ParseError> {
    /// use vulnman_lang::{parser::parse, taint::{TaintAnalysis, TaintConfig}};
    /// let p = parse(r#"
    ///     void handle() {
    ///         char* q = http_param("id");
    ///         exec_query(q);
    ///     }
    /// "#)?;
    /// let result = TaintAnalysis::run(&p, &TaintConfig::default_config());
    /// assert_eq!(result.findings.len(), 1);
    /// assert_eq!(result.findings[0].sink_kind, "sql");
    /// # Ok(())
    /// # }
    /// ```
    pub fn run(program: &Program, config: &TaintConfig) -> TaintAnalysis {
        let mut summaries: SummaryMap =
            program.functions.iter().map(|f| (f.name.to_string(), FnSummary::default())).collect();
        let units: Vec<FnUnit<'_>> = program.functions.iter().map(FnUnit::build).collect();
        let (order, cyclic) = bottom_up_order(&units);

        let mut findings = Vec::new();
        if !cyclic {
            // Acyclic call graph (the overwhelmingly common case): in
            // callee-first order every summary a function consults is already
            // final, so one Gauss-Seidel sweep computes the exact fixpoint —
            // summaries *and* findings come out of a single analyze per
            // function instead of per-round re-analyses plus a replay pass.
            // A function's own summary is never consulted while analyzing it
            // (only callees are looked up), so inline findings match the
            // converge-then-replay result bit for bit.
            for &i in &order {
                let unit = &units[i];
                let (summary, mut fnd) = analyze_function(unit, config, &summaries, true);
                *summaries.get_mut(unit.func.name.as_str()).expect("summary slot") = summary;
                findings.append(&mut fnd);
            }
        } else {
            // Recursive programs: iterate to the least fixpoint. The transfer
            // is monotone in the summary table (bigger summaries only add
            // origin bits and derived-sink entries), so the fixpoint is
            // unique and iteration order only affects how fast we get there —
            // callee-first is fastest.
            let max_rounds = program.functions.len().max(1) + 2;
            for _ in 0..max_rounds {
                let mut changed = false;
                for &i in &order {
                    let unit = &units[i];
                    let (summary, _) = analyze_function(unit, config, &summaries, false);
                    let slot = summaries.get_mut(unit.func.name.as_str()).expect("summary slot");
                    if *slot != summary {
                        *slot = summary;
                        changed = true;
                    }
                }
                if !changed {
                    break;
                }
            }
            // Final pass: collect findings with stable summaries.
            for unit in &units {
                let (_, mut fnd) = analyze_function(unit, config, &summaries, true);
                findings.append(&mut fnd);
            }
        }
        findings.sort_by_key(|f| (f.span.start, f.call.clone()));
        findings.dedup();
        TaintAnalysis { summaries, findings }
    }

    /// Runs the analysis *intraprocedurally*: no function summaries, so
    /// wrappers around sources, sinks, or sanitizers are opaque (unknown
    /// calls conservatively propagate argument taint). This is the ablation
    /// baseline for measuring what the interprocedural machinery buys.
    pub fn run_intraprocedural(program: &Program, config: &TaintConfig) -> TaintAnalysis {
        let summaries = SummaryMap::default();
        let mut findings = Vec::new();
        for func in &program.functions {
            let unit = FnUnit::build(func);
            let (_, mut fnd) = analyze_function(&unit, config, &summaries, true);
            findings.append(&mut fnd);
        }
        findings.sort_by_key(|f| (f.span.start, f.call.clone()));
        findings.dedup();
        TaintAnalysis { summaries, findings }
    }

    /// Findings whose sink category is `kind`.
    pub fn findings_of_kind(&self, kind: &str) -> Vec<&TaintFinding> {
        self.findings.iter().filter(|f| f.sink_kind == kind).collect()
    }

    /// Returns `true` if any finding lies inside `function`.
    pub fn function_has_finding(&self, function: &str) -> bool {
        self.findings.iter().any(|f| f.function == function)
    }
}

/// Computes a callee-first (post-order) traversal of the program's call
/// graph and whether any call cycle (recursion) exists. The order is
/// deterministic: roots are tried in program order and callee edges in
/// first-occurrence order.
fn bottom_up_order(units: &[FnUnit<'_>]) -> (Vec<usize>, bool) {
    let n = units.len();
    let mut index: HashMap<&str, usize, FnvBuildHasher> = HashMap::default();
    for (i, u) in units.iter().enumerate() {
        index.entry(u.func.name.as_str()).or_insert(i);
    }
    let mut callees: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, u) in units.iter().enumerate() {
        u.func.walk_exprs(&mut |e| {
            if let ExprKind::Call(name, _) = &e.kind {
                if let Some(&j) = index.get(name.as_str()) {
                    if !callees[i].contains(&j) {
                        callees[i].push(j);
                    }
                }
            }
        });
    }
    let mut state = vec![0u8; n]; // 0 = unvisited, 1 = on stack, 2 = done
    let mut order = Vec::with_capacity(n);
    let mut cyclic = false;
    let mut stack: Vec<(usize, usize)> = Vec::new();
    for root in 0..n {
        if state[root] != 0 {
            continue;
        }
        state[root] = 1;
        stack.push((root, 0));
        while let Some(frame) = stack.last_mut() {
            let node = frame.0;
            if frame.1 < callees[node].len() {
                let next = callees[node][frame.1];
                frame.1 += 1;
                match state[next] {
                    0 => {
                        state[next] = 1;
                        stack.push((next, 0));
                    }
                    1 => cyclic = true, // back edge: direct or mutual recursion
                    _ => {}
                }
            } else {
                state[node] = 2;
                order.push(node);
                stack.pop();
            }
        }
    }
    (order, cyclic)
}

/// Analyzes a single function; returns its summary and (when
/// `collect_findings` is set) local findings. Fixpoint rounds pass `false`
/// so no finding records are allocated until summaries have converged.
fn analyze_function(
    unit: &FnUnit<'_>,
    config: &TaintConfig,
    summaries: &SummaryMap,
    collect_findings: bool,
) -> (FnSummary, Vec<TaintFinding>) {
    let FnUnit { func, cfg, slots } = unit;
    let nslots = slots.len();

    // Parameters carry their own origin bit at function entry.
    let mut entry_env = vec![0u64; nslots];
    for (i, p) in func.params.iter().take(MAX_PARAMS).enumerate() {
        if let Some(&s) = slots.get(p.name.as_str()) {
            entry_env[s] = 1u64 << i;
        }
    }

    let n = cfg.blocks.len();
    let order = cfg.reverse_post_order();
    // In reverse post-order every forward edge points rightward, so when the
    // CFG has no back edge (loop-free function — the common case) all
    // predecessor exits are final by the time a block is visited: one sweep
    // computes the exact solution. (The entry block never merges predecessor
    // state — parameters are its fixed entry facts — so a stray edge back
    // into it cannot carry information and does not spoil exactness.)
    let mut pos = vec![0usize; n];
    for (i, &b) in order.iter().enumerate() {
        pos[b] = i;
    }
    let acyclic =
        (0..n).all(|b| b == cfg.entry || cfg.blocks[b].preds.iter().all(|&p| pos[p] < pos[b]));

    let mut findings = Vec::new();
    let mut param_to_sink: BTreeMap<usize, Vec<String>> = BTreeMap::new();
    let mut internal_flow = false;
    let mut ret_origins: Origins = 0;

    if acyclic {
        // Single exact pass: the sink checks run on the same per-instruction
        // environments the dataflow sweep computes, so there is no separate
        // fixpoint or replay. Findings are order-normalized by the caller's
        // sort, and the summary pieces (`ret_origins`, `param_to_sink`,
        // `internal_flow`) are all accumulative, so visiting blocks in
        // reverse post-order instead of index order changes nothing.
        let mut at_exit: Vec<Vec<Origins>> = vec![Vec::new(); n];
        let mut reached = vec![false; n];
        for &b in &order {
            reached[b] = true;
            let mut env: Vec<Origins> = if b == cfg.entry {
                entry_env.clone()
            } else {
                let mut merged = vec![0u64; nslots];
                for &p in &cfg.blocks[b].preds {
                    for (m, v) in merged.iter_mut().zip(&at_exit[p]) {
                        *m |= v;
                    }
                }
                merged
            };
            for si in &cfg.blocks[b].insts {
                check_inst_calls(
                    func,
                    &si.inst,
                    &env,
                    slots,
                    config,
                    summaries,
                    collect_findings.then_some(&mut findings),
                    &mut param_to_sink,
                    &mut internal_flow,
                );
                apply_transfer(
                    &si.inst,
                    &mut env,
                    slots,
                    config,
                    summaries,
                    Some(&mut ret_origins),
                );
            }
            at_exit[b] = env;
        }
        // Blocks unreachable from the entry never execute, but they have
        // always been scanned from an all-clean state (a directly source-fed
        // sink there is still a finding); returns in dead code never reach a
        // caller, so they do not feed `ret_origins`.
        for (b, block) in cfg.blocks.iter().enumerate() {
            if reached[b] {
                continue;
            }
            let mut env = vec![0u64; nslots];
            for si in &block.insts {
                check_inst_calls(
                    func,
                    &si.inst,
                    &env,
                    slots,
                    config,
                    summaries,
                    collect_findings.then_some(&mut findings),
                    &mut param_to_sink,
                    &mut internal_flow,
                );
                apply_transfer(&si.inst, &mut env, slots, config, summaries, None);
            }
        }
    } else {
        // Loops: iterate block states to a fixpoint, then replay each block
        // from its converged entry state to run the sink checks.
        let mut at_entry: Vec<Vec<Origins>> = vec![vec![0; nslots]; n];
        at_entry[cfg.entry] = entry_env;
        let mut at_exit: Vec<Vec<Origins>> = vec![vec![0; nslots]; n];
        for _ in 0..(n * 2 + 4) {
            let mut changed = false;
            for &b in &order {
                let mut env: Vec<Origins> = if b == cfg.entry {
                    at_entry[cfg.entry].clone()
                } else {
                    let mut merged = vec![0u64; nslots];
                    for &p in &cfg.blocks[b].preds {
                        for (m, v) in merged.iter_mut().zip(&at_exit[p]) {
                            *m |= v;
                        }
                    }
                    merged
                };
                if b != cfg.entry && env != at_entry[b] {
                    at_entry[b].copy_from_slice(&env);
                    changed = true;
                }
                for si in &cfg.blocks[b].insts {
                    apply_transfer(
                        &si.inst,
                        &mut env,
                        slots,
                        config,
                        summaries,
                        Some(&mut ret_origins),
                    );
                }
                if env != at_exit[b] {
                    at_exit[b] = env;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        for (b, block) in cfg.blocks.iter().enumerate() {
            let mut env = at_entry[b].clone();
            for si in &block.insts {
                check_inst_calls(
                    func,
                    &si.inst,
                    &env,
                    slots,
                    config,
                    summaries,
                    collect_findings.then_some(&mut findings),
                    &mut param_to_sink,
                    &mut internal_flow,
                );
                apply_transfer(&si.inst, &mut env, slots, config, summaries, None);
            }
        }
    }

    (FnSummary { ret_origins, param_to_sink, internal_flow }, findings)
}

/// Runs [`check_call`] on every call expression appearing in `inst`
/// (including calls nested in indirect assignment targets), under the
/// environment holding *before* the instruction executes.
#[allow(clippy::too_many_arguments)]
fn check_inst_calls(
    func: &Function,
    inst: &CfgInst,
    env: &[Origins],
    slots: &SlotMap<'_>,
    config: &TaintConfig,
    summaries: &SummaryMap,
    mut findings: Option<&mut Vec<TaintFinding>>,
    param_to_sink: &mut BTreeMap<usize, Vec<String>>,
    internal_flow: &mut bool,
) {
    let mut check = |e: &Expr| {
        if let ExprKind::Call(name, args) = &e.kind {
            check_call(
                func,
                name.as_str(),
                args,
                e.span,
                env,
                slots,
                config,
                summaries,
                findings.as_deref_mut(),
                param_to_sink,
                internal_flow,
            );
        }
    };
    if let Some(root) = inst.expr() {
        root.walk(&mut check);
    }
    // Indirect-target expressions can also contain calls.
    if let CfgInst::Assign { target, .. } = inst {
        match target {
            LValue::Var(_) => {}
            LValue::Deref(e) => e.walk(&mut check),
            LValue::Index(b2, i2) => {
                b2.walk(&mut check);
                i2.walk(&mut check);
            }
        }
    }
}

/// Applies one instruction's dataflow transfer to `env`. Return-value
/// origins are accumulated into `ret_origins` when provided (the replay
/// passes skip it — dead and already-summarized returns must not feed the
/// summary twice).
fn apply_transfer(
    inst: &CfgInst,
    env: &mut [Origins],
    slots: &SlotMap<'_>,
    config: &TaintConfig,
    summaries: &SummaryMap,
    ret_origins: Option<&mut Origins>,
) {
    match inst {
        CfgInst::Decl { name, init, .. } => {
            let t = init.as_ref().map_or(0, |e| expr_origins(e, env, slots, config, summaries));
            if let Some(&s) = slots.get(name.as_str()) {
                env[s] = t;
            }
        }
        CfgInst::Assign { target, value } => {
            let t = expr_origins(value, env, slots, config, summaries);
            match target {
                LValue::Var(name) => {
                    if let Some(&s) = slots.get(name.as_str()) {
                        env[s] = t;
                    }
                }
                LValue::Deref(e) | LValue::Index(e, _) => {
                    // Indirect store taints the base object (weak update:
                    // union with existing taint).
                    if let ExprKind::Var(base) = &e.kind {
                        if let Some(&s) = slots.get(base.as_str()) {
                            env[s] |= t;
                        }
                    }
                }
            }
        }
        CfgInst::Return(e) => {
            if let (Some(r), Some(e)) = (ret_origins, e) {
                *r |= expr_origins(e, env, slots, config, summaries);
            }
        }
        CfgInst::Expr(_) | CfgInst::Branch(_) => {}
    }
}

#[allow(clippy::too_many_arguments)]
fn check_call(
    func: &Function,
    name: &str,
    args: &[Expr],
    span: Span,
    env: &[Origins],
    slots: &SlotMap<'_>,
    config: &TaintConfig,
    summaries: &SummaryMap,
    mut findings: Option<&mut Vec<TaintFinding>>,
    param_to_sink: &mut BTreeMap<usize, Vec<String>>,
    internal_flow: &mut bool,
) {
    // Positions that are dangerous for this callee: direct sinks from config,
    // derived sinks from summaries. Kinds stay borrowed until a finding or a
    // new derived-sink entry actually needs an owned copy.
    let mut dangerous: Vec<(usize, &str, bool)> = Vec::new(); // (arg pos, kind, via wrapper)
    if let Some(positions) = config.sink_positions(name) {
        let kind = config.sink_kind(name);
        if positions.is_empty() {
            for i in 0..args.len() {
                dangerous.push((i, kind, false));
            }
        } else {
            for &p in positions {
                dangerous.push((p, kind, false));
            }
        }
    }
    if let Some(s) = summaries.get(name) {
        for (p, kinds) in &s.param_to_sink {
            for k in kinds {
                dangerous.push((*p, k.as_str(), true));
            }
        }
    }
    for (pos, kind, via_wrapper) in dangerous {
        let Some(arg) = args.get(pos) else { continue };
        let t = expr_origins(arg, env, slots, config, summaries);
        if t & SOURCE_BIT != 0 {
            if let Some(findings) = findings.as_deref_mut() {
                findings.push(TaintFinding {
                    function: func.name.to_string(),
                    call: name.to_string(),
                    sink_kind: kind.to_string(),
                    span,
                    interprocedural: via_wrapper,
                });
            }
            *internal_flow = true;
        }
        // Record parameter-origin flows for the derived-sink summary.
        for (i, _) in func.params.iter().take(MAX_PARAMS).enumerate() {
            if t & (1u64 << i) != 0 {
                let kinds = param_to_sink.entry(i).or_default();
                if !kinds.iter().any(|k| k == kind) {
                    kinds.push(kind.to_string());
                }
            }
        }
    }
}

/// Computes the origin mask of an expression under the dense `env`.
fn expr_origins(
    e: &Expr,
    env: &[Origins],
    slots: &SlotMap<'_>,
    config: &TaintConfig,
    summaries: &SummaryMap,
) -> Origins {
    match &e.kind {
        ExprKind::Int(_) | ExprKind::Char(_) | ExprKind::Str(_) => 0,
        ExprKind::Var(name) => slots.get(name.as_str()).map_or(0, |&s| env[s]),
        ExprKind::Unary(_, inner) => expr_origins(inner, env, slots, config, summaries),
        ExprKind::Binary(_, l, r) => {
            expr_origins(l, env, slots, config, summaries)
                | expr_origins(r, env, slots, config, summaries)
        }
        ExprKind::Index(b, i) => {
            expr_origins(b, env, slots, config, summaries)
                | expr_origins(i, env, slots, config, summaries)
        }
        ExprKind::Call(name, args) => {
            if config.is_sanitizer(name.as_str()) {
                return 0;
            }
            let mut t = 0;
            if config.is_source(name.as_str()) {
                t |= SOURCE_BIT;
            }
            match summaries.get(name.as_str()) {
                Some(s) => {
                    // Known function: return carries SOURCE if the callee
                    // returns source data, plus the origins of any argument
                    // the return value depends on.
                    if s.ret_origins & SOURCE_BIT != 0 {
                        t |= SOURCE_BIT;
                    }
                    for (i, arg) in args.iter().enumerate().take(MAX_PARAMS) {
                        if s.ret_origins & (1u64 << i) != 0 {
                            t |= expr_origins(arg, env, slots, config, summaries);
                        }
                    }
                }
                None => {
                    // Unknown library function: conservatively propagate
                    // argument taint through the return value.
                    for arg in args {
                        t |= expr_origins(arg, env, slots, config, summaries);
                    }
                }
            }
            t
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn run(src: &str) -> TaintAnalysis {
        let p = parse(src).unwrap();
        TaintAnalysis::run(&p, &TaintConfig::default_config())
    }

    #[test]
    fn direct_flow_detected() {
        let r = run(r#"void f() { char* q = http_param("id"); exec_query(q); }"#);
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].sink_kind, "sql");
        assert!(!r.findings[0].interprocedural);
    }

    #[test]
    fn sanitizer_blocks_flow() {
        let r = run(
            r#"void f() { char* q = http_param("id"); char* s = escape_sql(q); exec_query(s); }"#,
        );
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn clean_data_not_flagged() {
        let r = run(r#"void f() { char* q = "SELECT 1"; exec_query(q); }"#);
        assert!(r.findings.is_empty());
    }

    #[test]
    fn flow_through_arithmetic_and_concat() {
        let r = run(
            r#"void f() { char* u = read_input(); char* q = concat("SELECT ", u); exec_query(q); }"#,
        );
        assert_eq!(r.findings.len(), 1, "unknown helper propagates taint");
    }

    #[test]
    fn flow_through_branches() {
        let r = run(
            r#"void f(int c) { char* q = "ok"; if (c) { q = http_param("x"); } exec_query(q); }"#,
        );
        assert_eq!(r.findings.len(), 1, "taint must survive the join");
    }

    #[test]
    fn flow_through_loop() {
        let r = run(
            r#"void f(int n) { char* acc = ""; while (n > 0) { acc = concat(acc, read_input()); n -= 1; } system(acc); }"#,
        );
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].sink_kind, "command");
    }

    #[test]
    fn interprocedural_source_wrapper() {
        let r = run(r#"
            char* fetch() { char* v = read_input(); return v; }
            void f() { char* q = fetch(); exec_query(q); }
            "#);
        assert_eq!(r.findings.len(), 1);
        let s = &r.summaries["fetch"];
        assert_ne!(s.ret_origins & SOURCE_BIT, 0, "fetch returns source data");
    }

    #[test]
    fn interprocedural_sink_wrapper() {
        let r = run(r#"
            void run_query(char* q) { exec_query(q); }
            void f() { char* u = http_param("id"); run_query(u); }
            "#);
        let in_f: Vec<_> = r.findings.iter().filter(|x| x.function == "f").collect();
        assert_eq!(in_f.len(), 1, "{:?}", r.findings);
        assert!(in_f[0].interprocedural);
        assert_eq!(r.summaries["run_query"].param_to_sink[&0], vec!["sql".to_string()]);
    }

    #[test]
    fn two_level_wrapper_chain() {
        let r = run(r#"
            void level1(char* a) { exec_query(a); }
            void level2(char* b) { level1(b); }
            void f() { level2(getenv("X")); }
            "#);
        assert!(r.function_has_finding("f"), "{:?}", r.findings);
    }

    #[test]
    fn sanitizing_wrapper_is_clean() {
        let r = run(r#"
            char* clean_fetch() { return escape_sql(read_input()); }
            void f() { exec_query(clean_fetch()); }
            "#);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn param_passthrough_summary() {
        let r = run("char* ident(char* x) { return x; }");
        assert_eq!(r.summaries["ident"].ret_origins, 1, "returns param 0");
    }

    #[test]
    fn indirect_store_taints_buffer() {
        let r = run(
            r#"void f() { char buf[64]; char* u = read_input(); buf[0] = u[0]; system(buf); }"#,
        );
        assert_eq!(r.findings.len(), 1);
    }

    #[test]
    fn recursion_terminates() {
        let r = run(r#"
            char* spin(char* x, int n) { if (n > 0) { return spin(x, n - 1); } return x; }
            void f() { exec_query(spin(read_input(), 3)); }
            "#);
        assert_eq!(r.findings.len(), 1);
    }

    #[test]
    fn intraprocedural_misses_wrapped_flows_but_sees_direct_ones() {
        let src = r#"
            void run_query(char* q) { exec_query(q); }
            char* fetch() { return read_input(); }
            void direct() { exec_query(http_param("id")); }
            void sink_wrapped() { run_query(http_param("id")); }
            void source_wrapped() { exec_query(fetch()); }
        "#;
        let p = parse(src).unwrap();
        let cfg = TaintConfig::default_config();
        let intra = TaintAnalysis::run_intraprocedural(&p, &cfg);
        let inter = TaintAnalysis::run(&p, &cfg);
        // Direct flow: both see it.
        assert!(intra.function_has_finding("direct"));
        assert!(inter.function_has_finding("direct"));
        // Wrapped sink and wrapped source: only the interprocedural
        // analysis connects the flow — exactly what the summaries buy.
        assert!(!intra.function_has_finding("sink_wrapped"));
        assert!(inter.function_has_finding("sink_wrapped"));
        assert!(!intra.function_has_finding("source_wrapped"));
        assert!(inter.function_has_finding("source_wrapped"));
    }

    #[test]
    fn findings_of_kind_filters() {
        let r = run(r#"void f() { char* a = read_input(); exec_query(a); system(a); }"#);
        assert_eq!(r.findings.len(), 2);
        assert_eq!(r.findings_of_kind("sql").len(), 1);
        assert_eq!(r.findings_of_kind("command").len(), 1);
        assert!(r.findings_of_kind("path").is_empty());
    }

    #[test]
    fn multiple_sink_args_checked() {
        let r = run(r#"void f(char* dst) { char* s = recv(); memcpy(dst, s, 8); }"#);
        assert_eq!(r.findings.len(), 1, "tainted src argument of memcpy");
    }

    #[test]
    fn custom_config_sources() {
        let p = parse(r#"void f() { char* t = my_source(); my_sink(t); }"#).unwrap();
        let mut cfg = TaintConfig::new();
        cfg.add_source("my_source");
        cfg.add_sink("my_sink", vec![0], "custom");
        let r = TaintAnalysis::run(&p, &cfg);
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].sink_kind, "custom");
    }
}
