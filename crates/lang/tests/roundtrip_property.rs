//! Printer↔parser round-trip property: `parse(print(parse(src)))` is a
//! fixed point across the synth generator's full style/tier/CWE space.
//!
//! The differential oracle's shrinker (vulnman-analysis) edits ASTs and
//! re-validates every candidate through print→parse, so any source the
//! generator can emit must survive the round trip with an *identical* AST
//! and a *byte-stable* second print. This suite pins that invariant at the
//! full cross product the corpus builder draws from.

use vulnman_lang::ast::{Expr, ExprKind, LValue, Program, Stmt, StmtKind};
use vulnman_lang::parse;
use vulnman_lang::printer::print_program;
use vulnman_lang::span::Span;
use vulnman_synth::cwe::Cwe;
use vulnman_synth::generator::SampleGenerator;
use vulnman_synth::style::StyleProfile;
use vulnman_synth::tier::Tier;

/// Rewrites every span to the dummy span so ASTs can be compared
/// structurally: source positions legitimately change across a print →
/// parse cycle, structure must not.
fn strip_spans(program: &mut Program) {
    fn in_expr(e: &mut Expr) {
        e.span = Span::dummy();
        match &mut e.kind {
            ExprKind::Unary(_, inner) => in_expr(inner),
            ExprKind::Binary(_, l, r) => {
                in_expr(l);
                in_expr(r);
            }
            ExprKind::Index(b, i) => {
                in_expr(b);
                in_expr(i);
            }
            ExprKind::Call(_, args) => args.iter_mut().for_each(in_expr),
            ExprKind::Int(_) | ExprKind::Char(_) | ExprKind::Str(_) | ExprKind::Var(_) => {}
        }
    }
    fn in_stmt(s: &mut Stmt) {
        s.span = Span::dummy();
        match &mut s.kind {
            StmtKind::Decl { init, .. } => {
                if let Some(e) = init {
                    in_expr(e);
                }
            }
            StmtKind::Assign { target, value, .. } => {
                match target {
                    LValue::Var(_) => {}
                    LValue::Deref(e) => in_expr(e),
                    LValue::Index(b, i) => {
                        in_expr(b);
                        in_expr(i);
                    }
                }
                in_expr(value);
            }
            StmtKind::If { cond, then_branch, else_branch } => {
                in_expr(cond);
                then_branch.iter_mut().for_each(in_stmt);
                if let Some(els) = else_branch {
                    els.iter_mut().for_each(in_stmt);
                }
            }
            StmtKind::While { cond, body } => {
                in_expr(cond);
                body.iter_mut().for_each(in_stmt);
            }
            StmtKind::For { init, cond, step, body } => {
                if let Some(s) = init {
                    in_stmt(s);
                }
                if let Some(e) = cond {
                    in_expr(e);
                }
                if let Some(s) = step {
                    in_stmt(s);
                }
                body.iter_mut().for_each(in_stmt);
            }
            StmtKind::Return(e) => {
                if let Some(e) = e {
                    in_expr(e);
                }
            }
            StmtKind::Expr(e) => in_expr(e),
            StmtKind::Break | StmtKind::Continue => {}
        }
    }
    for f in &mut program.functions {
        f.span = Span::dummy();
        f.body.iter_mut().for_each(in_stmt);
    }
}

/// Asserts the full round-trip property for one source unit.
///
/// 1. `src` parses (the generator only emits valid mini-C),
/// 2. printing and re-parsing reproduces the same AST modulo source
///    positions, and
/// 3. a second print of the re-parsed AST is byte-identical to the first
///    (the printer is a canonical form, i.e. printing is idempotent).
fn assert_round_trip(src: &str, context: &str) {
    let mut first: Program =
        parse(src).unwrap_or_else(|e| panic!("{context}: no parse: {e}\n{src}"));
    let printed = print_program(&first);
    let mut second = parse(&printed)
        .unwrap_or_else(|e| panic!("{context}: canonical form no longer parses: {e}\n{printed}"));
    let reprinted = print_program(&second);
    assert_eq!(reprinted, printed, "{context}: printer is not idempotent on its own output\n{src}");
    strip_spans(&mut first);
    strip_spans(&mut second);
    assert_eq!(
        second, first,
        "{context}: AST changed across print->parse\noriginal:\n{src}\nprinted:\n{printed}"
    );
}

fn all_styles() -> Vec<StyleProfile> {
    let mut styles = vec![StyleProfile::mainstream()];
    styles.extend(StyleProfile::internal_teams());
    styles
}

#[test]
fn vulnerable_and_fixed_pairs_round_trip_across_the_full_space() {
    for (si, style) in all_styles().into_iter().enumerate() {
        for tier in Tier::ALL {
            for cwe in Cwe::ALL {
                for seed in 0..3u64 {
                    let mut g = SampleGenerator::new(
                        seed * 1009 + si as u64 * 31 + cwe.id() as u64,
                        style.clone(),
                    );
                    let (vuln, fixed) = g.vulnerable_pair(cwe, tier, "rt");
                    let ctx = format!("style#{si} {tier:?} {cwe} seed={seed}");
                    assert_round_trip(&vuln.source, &format!("{ctx} vulnerable"));
                    assert_round_trip(&fixed.source, &format!("{ctx} fixed"));
                }
            }
        }
    }
}

#[test]
fn benign_and_benign_risky_samples_round_trip() {
    for (si, style) in all_styles().into_iter().enumerate() {
        for tier in Tier::ALL {
            for seed in 0..5u64 {
                let mut g = SampleGenerator::new(seed * 7919 + si as u64, style.clone());
                let risky = g.benign_risky(tier, "rt");
                let plain = g.benign(tier, "rt");
                let ctx = format!("style#{si} {tier:?} seed={seed}");
                assert_round_trip(&risky.source, &format!("{ctx} benign_risky"));
                assert_round_trip(&plain.source, &format!("{ctx} benign"));
            }
        }
    }
}

#[test]
fn handwritten_edge_cases_round_trip() {
    // Constructs the generator uses sparsely, pinned explicitly: nested
    // control flow, for-loop forms with absent clauses, compound
    // assignment, pointer/index lvalues, char/string escapes, and unary
    // chains — the exact node shapes the oracle's shrinker rewrites.
    let sources = [
        "int f() { for (;;) { break; } return 0; }",
        "int f(int n) { for (int i = 0; i < n; i += 2) { n -= 1; } return n; }",
        "void f(char* p, int i) { *p = 'x'; p[i + 1] = '\\n'; }",
        "int f(int a) { return 0 - (0 - a); }",
        r#"void f() { char* s = "tab\tquote\"backslash\\"; log_msg(s); }"#,
        "int f(int a, int b) { if (a) { if (b) { return 1; } } else { while (a) { a -= 1; } } return 2; }",
        "void f() { int x = 3; x = x * (x + 2) / (x - 1); }",
    ];
    for (i, src) in sources.iter().enumerate() {
        assert_round_trip(src, &format!("edge case #{i}"));
    }
}
