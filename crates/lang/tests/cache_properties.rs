//! Property tests for the analysis cache's observability accounting: for
//! any lookup sequence, `hits + misses` equals the number of lookups, and
//! the shared-registry counters agree with `stats()`.

use proptest::prelude::*;
use vulnman_lang::cache::AnalysisCache;
use vulnman_obs::Registry;

/// A small pool of distinct, parseable sources to draw lookups from.
fn source(idx: usize) -> String {
    format!("int f{idx}(int x) {{ int y = x + {idx}; return y; }}")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `hits + misses == lookups` for any interleaving of parse and
    /// analysis lookups over any key pool, and the attached registry's
    /// counters match `stats()` exactly.
    #[test]
    fn hits_plus_misses_equals_lookups(
        picks in proptest::collection::vec((0usize..6, any::<bool>()), 0..80),
    ) {
        let metrics = Registry::new();
        let cache = AnalysisCache::with_metrics(&metrics);
        let mut lookups = 0u64;
        let mut seen_parse = std::collections::HashSet::new();
        let mut seen_analysis = std::collections::HashSet::new();
        let mut expected_hits = 0u64;
        for (idx, use_analysis) in picks {
            let src = source(idx);
            if use_analysis {
                let program = vulnman_lang::parse(&src).unwrap();
                let _ = cache.analysis(&src, "prop-pass", 0, || program.functions.len());
                if !seen_analysis.insert(idx) {
                    expected_hits += 1;
                }
            } else {
                let _ = cache.parse(&src);
                if !seen_parse.insert(idx) {
                    expected_hits += 1;
                }
            }
            lookups += 1;
            let stats = cache.stats();
            prop_assert_eq!(stats.hits + stats.misses, lookups,
                "hits+misses must equal lookups after every operation");
        }
        let stats = cache.stats();
        prop_assert_eq!(stats.hits, expected_hits);
        let snap = metrics.snapshot();
        prop_assert_eq!(snap.counters["cache.hits"], stats.hits);
        prop_assert_eq!(snap.counters["cache.misses"], stats.misses);
    }

    /// A disabled cache recomputes everything: every lookup is a miss and
    /// the hit counter stays at zero, but results are still correct.
    #[test]
    fn disabled_cache_only_misses(picks in proptest::collection::vec(0usize..4, 1..40)) {
        let metrics = Registry::new();
        let cache = AnalysisCache::disabled_with_metrics(&metrics);
        for &idx in &picks {
            let program = cache.parse(&source(idx)).unwrap();
            prop_assert_eq!(program.functions.len(), 1);
        }
        let stats = cache.stats();
        prop_assert_eq!(stats.hits, 0);
        prop_assert_eq!(stats.misses, picks.len() as u64);
        prop_assert_eq!(metrics.snapshot().counters["cache.misses"], picks.len() as u64);
    }
}
