//! Robustness: the front end must never panic, only return errors.

use proptest::prelude::*;
use vulnman_lang::interp::{run_program, InterpConfig};
use vulnman_lang::{lexer::lex, parse};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes: lexing and parsing return, never panic.
    #[test]
    fn lexer_and_parser_total_on_arbitrary_input(input in ".*") {
        let _ = lex(&input);
        let _ = parse(&input);
    }

    /// Arbitrary token soup from the language's own alphabet: still total.
    #[test]
    fn parser_total_on_token_soup(
        words in prop::collection::vec(
            prop::sample::select(vec![
                "int", "char", "void", "if", "else", "while", "for", "return",
                "break", "continue", "x", "y", "f", "42", "\"s\"", "'c'",
                "(", ")", "{", "}", "[", "]", ";", ",", "+", "-", "*", "/",
                "=", "==", "<", ">", "&&", "||", "&", "!",
            ]),
            0..64,
        )
    ) {
        let source = words.join(" ");
        let _ = parse(&source);
    }

    /// Anything that parses can be interpreted without panicking.
    #[test]
    fn interpreter_total_on_parsed_soup(
        words in prop::collection::vec(
            prop::sample::select(vec![
                "int", "char", "if", "else", "while", "return", "x", "y",
                "1", "2", "(", ")", "{", "}", ";", "+", "-", "=", "<",
            ]),
            0..48,
        )
    ) {
        let source = format!("void fuzz(int x, char* y) {{ {} }}", words.join(" "));
        if let Ok(program) = parse(&source) {
            let cfg = InterpConfig { step_budget: 5_000, ..InterpConfig::default() };
            let _ = run_program(&program, &cfg);
        }
    }
}
