//! Team customization: security standards and fine-tuning orchestration
//! (Gap Observation 2 / Future Direction Proposal 2).
//!
//! Industry needs models that "can be tailored to various products and
//! scalable to adapt to different security standards across teams". This
//! module models a team's `SecurityStandard` (which classes it treats as
//! blocking, its custom sanitizer vocabulary) and orchestrates fine-tuning
//! a generic model onto a team's codebase.

use serde::{Deserialize, Serialize};
use vulnman_lang::taint::TaintConfig;
use vulnman_ml::eval::Metrics;
use vulnman_ml::pipeline::DetectionModel;
use vulnman_synth::cwe::Cwe;
use vulnman_synth::dataset::Dataset;
use vulnman_synth::style::StyleProfile;

/// Severity a team assigns to a CWE class in its own standard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PolicySeverity {
    /// Must be fixed before shipping.
    Blocking,
    /// Tracked with an SLA.
    Tracked,
    /// Accepted risk for this product.
    Accepted,
}

/// A team's security standard.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SecurityStandard {
    /// Owning team.
    pub team: String,
    /// Per-class policy (unlisted classes default to `Tracked`).
    pub policies: Vec<(Cwe, PolicySeverity)>,
    /// Team-specific sanitizer function names (wrappers the taint engine
    /// should trust).
    pub custom_sanitizers: Vec<String>,
}

impl SecurityStandard {
    /// A standard derived from a style profile: alias-prefix teams register
    /// their wrapper sanitizers; vocabulary-appropriate classes block.
    pub fn for_team(style: &StyleProfile) -> Self {
        let custom_sanitizers = match &style.sanitizer_alias_prefix {
            Some(prefix) => ["sql", "html", "path", "shell", "input"]
                .iter()
                .map(|tail| format!("{prefix}_clean_{tail}"))
                .collect(),
            None => Vec::new(),
        };
        // Backend-ish teams block injection; systems teams block memory.
        let policies = match style.team.as_str() {
            "kernel" => vec![
                (Cwe::OutOfBoundsWrite, PolicySeverity::Blocking),
                (Cwe::UseAfterFree, PolicySeverity::Blocking),
                (Cwe::IntegerOverflow, PolicySeverity::Blocking),
                (Cwe::SqlInjection, PolicySeverity::Accepted),
                (Cwe::CrossSiteScripting, PolicySeverity::Accepted),
            ],
            _ => vec![
                (Cwe::SqlInjection, PolicySeverity::Blocking),
                (Cwe::CommandInjection, PolicySeverity::Blocking),
                (Cwe::HardcodedCredentials, PolicySeverity::Blocking),
                (Cwe::OutOfBoundsWrite, PolicySeverity::Tracked),
            ],
        };
        SecurityStandard { team: style.team.clone(), policies, custom_sanitizers }
    }

    /// Policy for a class (`Tracked` when unlisted).
    pub fn policy(&self, cwe: Cwe) -> PolicySeverity {
        self.policies
            .iter()
            .find(|(c, _)| *c == cwe)
            .map(|(_, p)| *p)
            .unwrap_or(PolicySeverity::Tracked)
    }

    /// A taint configuration extended with the team's custom sanitizers —
    /// how a rule-based tool is customized to a team in one line.
    pub fn taint_config(&self) -> TaintConfig {
        let mut cfg = TaintConfig::default_config();
        for s in &self.custom_sanitizers {
            cfg.add_sanitizer(s.clone());
        }
        cfg
    }
}

/// Outcome of customizing a generic model to one team.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CustomizationOutcome {
    /// Team the model was adapted to.
    pub team: String,
    /// Style distance from the generic training distribution.
    pub style_distance: f64,
    /// Generic model's metrics on the team's held-out code.
    pub generic: Metrics,
    /// Fine-tuned model's metrics on the same held-out code.
    pub fine_tuned: Metrics,
}

impl CustomizationOutcome {
    /// Absolute F1 lift from fine-tuning.
    pub fn f1_lift(&self) -> f64 {
        self.fine_tuned.f1() - self.generic.f1()
    }
}

/// Fine-tunes `model` (already trained on a generic corpus) on
/// `team_train`, evaluating on `team_test` before and after.
///
/// # Panics
///
/// Panics if the model is untrained or either dataset is empty.
pub fn customize_to_team(
    model: &mut DetectionModel,
    team: &StyleProfile,
    generic_distance: f64,
    team_train: &Dataset,
    team_test: &Dataset,
) -> CustomizationOutcome {
    assert!(model.is_trained(), "fine-tuning starts from a trained model");
    assert!(!team_train.is_empty() && !team_test.is_empty(), "team data required");
    let generic = model.evaluate(team_test);
    model.fine_tune(team_train);
    let fine_tuned = model.evaluate(team_test);
    CustomizationOutcome {
        team: team.team.clone(),
        style_distance: generic_distance,
        generic,
        fine_tuned,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vulnman_ml::pipeline::model_zoo;
    use vulnman_ml::split::stratified_split;
    use vulnman_synth::dataset::DatasetBuilder;
    use vulnman_synth::tier::Tier;

    #[test]
    fn standards_differ_by_team() {
        let teams = StyleProfile::internal_teams();
        let kernel = SecurityStandard::for_team(&teams[2]);
        let payments = SecurityStandard::for_team(&teams[0]);
        assert_eq!(kernel.policy(Cwe::UseAfterFree), PolicySeverity::Blocking);
        assert_eq!(kernel.policy(Cwe::SqlInjection), PolicySeverity::Accepted);
        assert_eq!(payments.policy(Cwe::SqlInjection), PolicySeverity::Blocking);
        assert_eq!(payments.policy(Cwe::RaceCondition), PolicySeverity::Tracked);
    }

    #[test]
    fn alias_team_standard_registers_wrappers() {
        let media = &StyleProfile::internal_teams()[1];
        let std_ = SecurityStandard::for_team(media);
        assert!(std_.custom_sanitizers.contains(&"mi_clean_sql".to_string()));
        let cfg = std_.taint_config();
        assert!(cfg.is_sanitizer("mi_clean_sql"));
        assert!(cfg.is_sanitizer("escape_sql"), "defaults retained");
    }

    #[test]
    fn fine_tuning_improves_on_divergent_team() {
        // Generic corpus: mainstream style. Target team: kernel (max
        // divergence: short names, aliased sanitizers, heavy wrapping).
        // The team backlog is injection-heavy with hard negatives, the
        // regime where sanitizer-vocabulary adaptation matters most.
        use vulnman_synth::cwe::CweDistribution;
        let generic = DatasetBuilder::new(31).vulnerable_count(150).build();
        let team_style = StyleProfile::internal_teams()[2].clone();
        let injection_heavy = CweDistribution::new(vec![
            (Cwe::SqlInjection, 3.0),
            (Cwe::CommandInjection, 2.0),
            (Cwe::CrossSiteScripting, 2.0),
            (Cwe::PathTraversal, 2.0),
            (Cwe::FormatString, 1.0),
        ]);
        let team_ds = DatasetBuilder::new(32)
            .teams(vec![team_style.clone()])
            .vulnerable_count(250)
            .cwe_distribution(injection_heavy)
            .hard_negative_fraction(0.7)
            .tier_mix(vec![(Tier::Curated, 1.0)])
            .build();
        let team_split = stratified_split(&team_ds, 0.4, 5);

        let mut model = model_zoo(3).remove(0); // token-lr: style-sensitive
        model.train(&generic);
        let distance = StyleProfile::mainstream().distance(&team_style);
        let outcome = customize_to_team(
            &mut model,
            &team_style,
            distance,
            &team_split.train,
            &team_split.test,
        );
        assert!(
            outcome.f1_lift() > 0.05,
            "fine-tuning should lift F1 substantially: generic={:.2} tuned={:.2}",
            outcome.generic.f1(),
            outcome.fine_tuned.f1()
        );
        assert!(outcome.style_distance > 0.5);
    }

    #[test]
    #[should_panic(expected = "trained model")]
    fn untrained_model_rejected() {
        let ds = DatasetBuilder::new(1).vulnerable_count(4).build();
        let mut model = model_zoo(1).remove(0);
        let style = StyleProfile::mainstream();
        let _ = customize_to_team(&mut model, &style, 0.0, &ds, &ds);
    }
}
