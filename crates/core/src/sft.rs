//! Security SFT (supervised fine-tuning) dataset construction.
//!
//! Section II-B of the paper: "constructing security SFT datasets also
//! presents an appealing opportunity … SFT datasets can be utilized in
//! various scenarios, such as significantly enhancing the prediction quality
//! of LLM models." This module harvests instruction/response pairs from the
//! workflow's own artifacts — detection findings, verified auto-fixes, and
//! analyst review traces — with full provenance, mirroring the paper's
//! "wider view of vulnerabilities" point (industry traces carry analyst
//! strategy, not just code pairs).

use crate::workflow::WorkflowReport;
use serde::{Deserialize, Serialize};
use vulnman_analysis::detectors::RuleEngine;
use vulnman_synth::sample::Sample;

/// Task family of an SFT pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum SftTask {
    /// "Is this code vulnerable? Explain."
    Detect,
    /// "Fix this vulnerability."
    Repair,
    /// "Review this change as a security analyst."
    Review,
}

/// Where a pair's supervision came from.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Provenance {
    /// Detector finding (tool name recorded).
    DetectorFinding(String),
    /// Verified auto-fix patch from the workflow.
    VerifiedAutoFix,
    /// Matched vulnerable/fixed pair from version history.
    FixCommitPair,
    /// Analyst review note.
    AnalystNote,
}

/// One instruction/response pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SftPair {
    /// Task family.
    pub task: SftTask,
    /// Instruction shown to the model.
    pub instruction: String,
    /// Target response.
    pub response: String,
    /// Supervision source.
    pub provenance: Provenance,
    /// Originating sample id.
    pub sample_id: u64,
}

/// A collected SFT dataset.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SftDataset {
    pairs: Vec<SftPair>,
}

impl SftDataset {
    /// Creates an empty dataset.
    pub fn new() -> Self {
        SftDataset::default()
    }

    /// The pairs in harvest order.
    pub fn pairs(&self) -> &[SftPair] {
        &self.pairs
    }

    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Returns `true` when no pairs were harvested.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Count per task family, in stable task order (reports iterate this).
    pub fn task_counts(&self) -> std::collections::BTreeMap<SftTask, usize> {
        let mut h = std::collections::BTreeMap::new();
        for p in &self.pairs {
            *h.entry(p.task).or_insert(0) += 1;
        }
        h
    }

    /// Serializes to JSON-lines (one pair per line).
    ///
    /// # Errors
    ///
    /// Returns a serialization error if a pair cannot be encoded (should not
    /// happen for well-formed pairs).
    pub fn to_jsonl(&self) -> Result<String, serde_json::Error> {
        let mut out = String::new();
        for p in &self.pairs {
            out.push_str(&serde_json::to_string(p)?);
            out.push('\n');
        }
        Ok(out)
    }
}

/// Harvests SFT pairs from samples and a finished workflow run.
///
/// * Every ground-truth labeled sample yields a **Detect** pair whose
///   response cites the concrete detector findings when available.
/// * Every verified auto-fix patch yields a **Repair** pair (broken →
///   patched).
/// * Samples with analyst notes or review comments yield **Review** pairs.
pub fn harvest(samples: &[Sample], report: &WorkflowReport) -> SftDataset {
    let engine = RuleEngine::default_suite();
    let mut ds = SftDataset::new();
    for sample in samples {
        // Detect pairs.
        let findings = engine.scan_source(&sample.source).unwrap_or_default();
        let response = if sample.label {
            let detail = findings
                .iter()
                .map(|f| format!("- {} at line {}: {}", f.cwe, f.line(), f.message))
                .collect::<Vec<_>>()
                .join("\n");
            let cwe = sample
                .cwe
                .map(|c| c.to_string())
                .unwrap_or_else(|| "an unclassified flaw".to_string());
            if detail.is_empty() {
                format!("Vulnerable: the function `{}` contains {cwe}.", sample.target_fn)
            } else {
                format!(
                    "Vulnerable: the function `{}` contains {cwe}.\nEvidence:\n{detail}",
                    sample.target_fn
                )
            }
        } else {
            "Not vulnerable: no exploitable flaw in this unit.".to_string()
        };
        let provenance = findings
            .first()
            .map(|f| Provenance::DetectorFinding(f.detector.clone()))
            .unwrap_or(Provenance::FixCommitPair);
        ds.pairs.push(SftPair {
            task: SftTask::Detect,
            instruction: format!(
                "Audit the following code for security vulnerabilities:\n\n{}",
                sample.source
            ),
            response,
            provenance,
            sample_id: sample.id,
        });

        // Review pairs from analyst traces.
        if let Some(note) = &sample.artifacts.analyst_note {
            ds.pairs.push(SftPair {
                task: SftTask::Review,
                instruction: format!(
                    "As a security analyst, review this change:\n\n{}",
                    sample.source
                ),
                response: note.clone(),
                provenance: Provenance::AnalystNote,
                sample_id: sample.id,
            });
        }
    }

    // Repair pairs from verified workflow patches.
    for case in &report.cases {
        if let Some(patched) = &case.patched_source {
            if let Some(sample) = samples.iter().find(|s| s.id == case.sample_id) {
                ds.pairs.push(SftPair {
                    task: SftTask::Repair,
                    instruction: format!(
                        "Fix the security vulnerability in this code:\n\n{}",
                        sample.source
                    ),
                    response: patched.clone(),
                    provenance: Provenance::VerifiedAutoFix,
                    sample_id: sample.id,
                });
            }
        }
    }
    ds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::{DetectorRegistry, RuleBasedDetector};
    use crate::workflow::{WorkflowConfig, WorkflowEngine};
    use vulnman_synth::dataset::DatasetBuilder;

    fn run() -> (Vec<Sample>, WorkflowReport) {
        let samples = DatasetBuilder::new(17)
            .vulnerable_count(12)
            .vulnerable_fraction(0.5)
            .build()
            .samples()
            .to_vec();
        let mut registry = DetectorRegistry::new();
        registry.register(Box::new(RuleBasedDetector::standard()));
        let engine = WorkflowEngine::new(registry, WorkflowConfig::default());
        let report = engine.process(&samples);
        (samples, report)
    }

    #[test]
    fn harvest_produces_all_task_families() {
        let (samples, report) = run();
        let ds = harvest(&samples, &report);
        let counts = ds.task_counts();
        assert_eq!(counts[&SftTask::Detect], samples.len());
        assert!(counts.get(&SftTask::Repair).copied().unwrap_or(0) > 0, "{counts:?}");
        assert!(counts.get(&SftTask::Review).copied().unwrap_or(0) > 0, "{counts:?}");
    }

    #[test]
    fn detect_pairs_cite_evidence() {
        let (samples, report) = run();
        let ds = harvest(&samples, &report);
        let vuln_detect = ds
            .pairs()
            .iter()
            .find(|p| p.task == SftTask::Detect && p.response.starts_with("Vulnerable"))
            .expect("vulnerable detect pair");
        assert!(vuln_detect.response.contains("CWE-"), "{}", vuln_detect.response);
    }

    #[test]
    fn repair_pairs_come_from_verified_patches() {
        let (samples, report) = run();
        let ds = harvest(&samples, &report);
        for p in ds.pairs().iter().filter(|p| p.task == SftTask::Repair) {
            assert_eq!(p.provenance, Provenance::VerifiedAutoFix);
            vulnman_lang::parse(&p.response).expect("patched response parses");
        }
    }

    #[test]
    fn jsonl_roundtrips() {
        let (samples, report) = run();
        let ds = harvest(&samples, &report);
        let jsonl = ds.to_jsonl().unwrap();
        let n = jsonl.lines().count();
        assert_eq!(n, ds.len());
        let first: SftPair = serde_json::from_str(jsonl.lines().next().unwrap()).unwrap();
        assert_eq!(&first, &ds.pairs()[0]);
    }
}
