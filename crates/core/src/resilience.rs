//! Bridge between the dependency-free fault layer and the metrics registry.
//!
//! `vulnman_faults` reports resilience events through its [`FaultObserver`]
//! trait so the crate itself stays free of workspace dependencies; this
//! module is the one concrete observer, translating events into the
//! pre-registered `fault.*` instruments. Instrument handles are resolved at
//! construction (the same schema-stability pattern as `ENGINE_SPANS`), so
//! the hot path never formats a metric name.

use vulnman_faults::{FaultKind, FaultObserver, Site};
use vulnman_obs::{Counter, Histogram, Registry};

/// Pre-registers every `fault.*` instrument, so the exported metrics schema
/// is identical whether or not a run injects faults (and regardless of
/// which sites actually fire).
pub(crate) fn register_fault_instruments(metrics: &Registry) {
    for site in Site::ALL {
        metrics.counter(&format!("fault.injected.{site}"));
        metrics.counter(&format!("fault.recovered.{site}"));
        metrics.counter(&format!("fault.exhausted.{site}"));
    }
    metrics.histogram("fault.retries");
    metrics.histogram("fault.backoff_micros");
    metrics.gauge("fault.degraded");
    metrics.counter("fault.shard_crashes");
}

/// Feeds [`FaultObserver`] events into per-site counters plus retry and
/// virtual-backoff histograms.
pub(crate) struct ObsFaultObserver {
    injected: [Counter; Site::ALL.len()],
    recovered: [Counter; Site::ALL.len()],
    exhausted: [Counter; Site::ALL.len()],
    retries: Histogram,
    backoff: Histogram,
}

impl ObsFaultObserver {
    pub(crate) fn new(metrics: &Registry) -> Self {
        register_fault_instruments(metrics);
        let per_site =
            |prefix: &str| Site::ALL.map(|s| metrics.counter(&format!("fault.{prefix}.{s}")));
        ObsFaultObserver {
            injected: per_site("injected"),
            recovered: per_site("recovered"),
            exhausted: per_site("exhausted"),
            retries: metrics.histogram("fault.retries"),
            backoff: metrics.histogram("fault.backoff_micros"),
        }
    }

    fn idx(site: Site) -> usize {
        Site::ALL.iter().position(|s| *s == site).unwrap_or(0)
    }
}

impl FaultObserver for ObsFaultObserver {
    fn on_fault(&self, site: Site, _kind: FaultKind, _attempt: u32) {
        self.injected[Self::idx(site)].inc();
    }

    fn on_backoff(&self, _site: Site, micros: u64) {
        self.backoff.observe(micros);
    }

    fn on_recovered(&self, site: Site, retries: u32) {
        // A first-try success is not a recovery; only retried successes
        // count (the ML predict path reports every clean call here).
        if retries > 0 {
            self.recovered[Self::idx(site)].inc();
            self.retries.observe(u64::from(retries));
        }
    }

    fn on_exhausted(&self, site: Site) {
        self.exhausted[Self::idx(site)].inc();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use vulnman_faults::{FaultConfig, FaultInjector, FaultMix};

    #[test]
    fn instruments_are_registered_up_front() {
        let metrics = Registry::new();
        register_fault_instruments(&metrics);
        let snap = metrics.snapshot();
        for site in Site::ALL {
            assert!(snap.counters.contains_key(&format!("fault.injected.{site}")));
            assert!(snap.counters.contains_key(&format!("fault.exhausted.{site}")));
        }
        assert!(snap.histograms.contains_key("fault.retries"));
        assert!(snap.gauges.contains_key("fault.degraded"));
    }

    #[test]
    fn observer_translates_events_into_counters() {
        let metrics = Registry::new();
        let observer = Arc::new(ObsFaultObserver::new(&metrics));
        let cfg = FaultConfig {
            seed: 2,
            rate: 0.5,
            mix: FaultMix::transient_only(),
            ..Default::default()
        };
        let inj = FaultInjector::with_observer(&cfg, observer);
        for key in 0..200 {
            let _ = inj.run(Site::DetectorCall, key, || ());
        }
        let snap = metrics.snapshot();
        assert!(snap.counters["fault.injected.detector_call"] > 0);
        assert!(snap.counters["fault.recovered.detector_call"] > 0);
        assert!(snap.histograms["fault.backoff_micros"].count > 0);
        // Other sites never fired but their keys exist with zero counts.
        assert_eq!(snap.counters["fault.injected.cache_get"], 0);
        // Clean first-try successes are not recoveries.
        assert!(
            snap.counters["fault.recovered.detector_call"]
                <= snap.counters["fault.injected.detector_call"]
        );
    }
}
