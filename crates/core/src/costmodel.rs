//! Financial model for vulnerability-management deployments.
//!
//! Gap Observation 3: "previous research works inadequately discuss
//! [financial benefits] … such as computation power versus human resources."
//! This module prices a detector deployment end to end: compute to scan,
//! analyst time to triage findings (true *and* false), expert time to fix,
//! and expected breach losses from misses — and derives the adoption
//! break-even points Future Direction Proposal 3 calls for.

use serde::{Deserialize, Serialize};
use vulnman_ml::eval::Metrics;

/// Unit costs for a deployment, in dollars.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostParams {
    /// Fully loaded security-analyst cost per hour.
    pub analyst_hourly_usd: f64,
    /// Minutes an analyst spends triaging one flagged finding.
    pub triage_minutes_per_finding: f64,
    /// Expert hours to remediate one confirmed vulnerability.
    pub fix_hours_per_vuln: f64,
    /// Compute cost to scan one thousand samples.
    pub compute_usd_per_1k_samples: f64,
    /// Expected loss if one exploitable vulnerability ships (probability of
    /// exploitation is folded in by the caller via exploitability priors).
    pub breach_cost_usd: f64,
    /// Mean exploitability of a shipped vulnerability in `[0, 1]`.
    pub mean_exploitability: f64,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            analyst_hourly_usd: 120.0,
            triage_minutes_per_finding: 15.0,
            fix_hours_per_vuln: 4.0,
            compute_usd_per_1k_samples: 2.0,
            breach_cost_usd: 250_000.0,
            mean_exploitability: 0.25,
        }
    }
}

/// Priced outcome of a deployment over an evaluation window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostReport {
    /// Analyst dollars spent triaging all flagged samples (TP + FP).
    pub triage_cost: f64,
    /// Expert dollars spent fixing confirmed vulnerabilities (TP).
    pub fix_cost: f64,
    /// Compute dollars for scanning.
    pub compute_cost: f64,
    /// Expected breach losses from missed vulnerabilities (FN).
    pub missed_loss: f64,
    /// Expected breach losses *prevented* by caught vulnerabilities (TP).
    pub prevented_loss: f64,
    /// Net value = prevented − (triage + fix + compute + missed).
    pub net_value: f64,
    /// False positives triaged per true positive.
    pub fp_per_tp: f64,
}

/// Prices a deployment from its confusion-matrix outcome.
///
/// # Examples
///
/// ```
/// use vulnman_core::costmodel::{price_deployment, CostParams};
/// use vulnman_ml::eval::Metrics;
/// let good = Metrics { tp: 50, fp: 10, tn: 900, fn_: 5 };
/// let report = price_deployment(&good, &CostParams::default());
/// assert!(report.net_value > 0.0);
/// ```
pub fn price_deployment(metrics: &Metrics, params: &CostParams) -> CostReport {
    let flagged = (metrics.tp + metrics.fp) as f64;
    let triage_cost =
        flagged * params.triage_minutes_per_finding / 60.0 * params.analyst_hourly_usd;
    let fix_cost = metrics.tp as f64 * params.fix_hours_per_vuln * params.analyst_hourly_usd;
    let compute_cost = metrics.total() as f64 / 1000.0 * params.compute_usd_per_1k_samples;
    let expected_breach = params.breach_cost_usd * params.mean_exploitability;
    let missed_loss = metrics.fn_ as f64 * expected_breach;
    let prevented_loss = metrics.tp as f64 * expected_breach;
    let net_value = prevented_loss - triage_cost - fix_cost - compute_cost - missed_loss;
    CostReport {
        triage_cost,
        fix_cost,
        compute_cost,
        missed_loss,
        prevented_loss,
        net_value,
        fp_per_tp: metrics.fp_per_tp(),
    }
}

/// The precision below which a deployment destroys value, holding recall
/// fixed: solves `net_value = 0` over precision for a window with
/// `n_vulnerable` true positives available.
///
/// Returns a value in `(0, 1]`; lower is more forgiving. Deployments whose
/// precision falls below this threshold cost more in triage than the
/// breaches they prevent are worth.
pub fn break_even_precision(params: &CostParams, recall: f64) -> f64 {
    // Per caught vuln: value = E[breach]; costs = fix + triage(TP) and
    // triage of FP = triage_cost_per_finding * (1/p - 1) per TP.
    let triage_per_finding = params.triage_minutes_per_finding / 60.0 * params.analyst_hourly_usd;
    let value_per_tp = params.breach_cost_usd * params.mean_exploitability
        - params.fix_hours_per_vuln * params.analyst_hourly_usd
        - triage_per_finding;
    if value_per_tp <= 0.0 {
        return 1.0; // never profitable
    }
    let _ = recall; // recall scales both sides; precision threshold is invariant
                    // value_per_tp = triage_per_finding * (1 - p) / p  =>  p = t / (v + t)
    (triage_per_finding / (value_per_tp + triage_per_finding)).clamp(f64::MIN_POSITIVE, 1.0)
}

/// Sweeps class imbalance for a fixed per-class detector quality and prices
/// each point — the paper's core financial argument that 50-50 benchmark
/// results do not survive contact with realistic base rates.
///
/// `tpr`/`fpr` are the detector's per-sample true/false positive rates;
/// `vulnerable_fraction` points are priced over a window of `n` samples.
pub fn imbalance_sweep(
    tpr: f64,
    fpr: f64,
    n: usize,
    fractions: &[f64],
    params: &CostParams,
) -> Vec<(f64, Metrics, CostReport)> {
    fractions
        .iter()
        .map(|&frac| {
            let pos = (n as f64 * frac).round() as usize;
            let neg = n - pos;
            let tp = (pos as f64 * tpr).round() as usize;
            let fp = (neg as f64 * fpr).round() as usize;
            let m = Metrics { tp, fp, tn: neg - fp, fn_: pos - tp };
            let r = price_deployment(&m, params);
            (frac, m, r)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn high_precision_deployment_is_profitable() {
        let m = Metrics { tp: 40, fp: 8, tn: 940, fn_: 12 };
        let r = price_deployment(&m, &CostParams::default());
        assert!(r.net_value > 0.0, "{r:?}");
        assert!(r.prevented_loss > r.triage_cost);
    }

    #[test]
    fn fp_flood_destroys_value() {
        // Same recall, but 50 false positives per true positive at scale:
        // triage burden should overwhelm prevented-breach value only when
        // breach costs are modest.
        let params = CostParams { breach_cost_usd: 10_000.0, ..CostParams::default() };
        let m = Metrics { tp: 10, fp: 2000, tn: 90_000, fn_: 10 };
        let r = price_deployment(&m, &params);
        assert!(r.net_value < 0.0, "{r:?}");
        assert!((r.fp_per_tp - 200.0).abs() < 1e-9);
    }

    #[test]
    fn net_value_identity() {
        let m = Metrics { tp: 5, fp: 5, tn: 85, fn_: 5 };
        let p = CostParams::default();
        let r = price_deployment(&m, &p);
        let recomputed =
            r.prevented_loss - r.triage_cost - r.fix_cost - r.compute_cost - r.missed_loss;
        assert!((r.net_value - recomputed).abs() < 1e-9);
    }

    #[test]
    fn break_even_precision_sane() {
        let p = CostParams::default();
        let be = break_even_precision(&p, 0.8);
        assert!(be > 0.0 && be < 0.05, "rich breach costs tolerate many FPs: {be}");
        // Cheap breaches demand much higher precision.
        let stingy = CostParams {
            breach_cost_usd: 2_000.0,
            mean_exploitability: 0.1,
            ..CostParams::default()
        };
        assert_eq!(break_even_precision(&stingy, 0.8), 1.0, "never profitable");
    }

    #[test]
    fn imbalance_sweep_precision_collapses() {
        let p = CostParams::default();
        let pts = imbalance_sweep(0.9, 0.05, 100_000, &[0.5, 0.1, 0.01], &p);
        let precisions: Vec<f64> = pts.iter().map(|(_, m, _)| m.precision()).collect();
        assert!(precisions[0] > 0.9);
        assert!(precisions[2] < 0.2, "precision at 1% base rate: {}", precisions[2]);
        let fp_ratios: Vec<f64> = pts.iter().map(|(_, _, r)| r.fp_per_tp).collect();
        assert!(fp_ratios[2] > 5.0, "≈10× FP per TP at realistic rates: {}", fp_ratios[2]);
    }

    #[test]
    fn sweep_counts_consistent() {
        let pts = imbalance_sweep(0.8, 0.02, 10_000, &[0.2], &CostParams::default());
        let (_, m, _) = pts[0];
        assert_eq!(m.total(), 10_000);
        assert_eq!(m.tp + m.fn_, 2_000);
    }
}
