//! Plain-text table rendering for experiment reports.
//!
//! Every experiment binary in `vulnman-bench` prints its results through
//! this module so outputs are uniform and diff-able.

use std::fmt::Write as _;

/// A simple aligned text table.
///
/// # Examples
///
/// ```
/// use vulnman_core::report::Table;
/// let mut t = Table::new(vec!["model", "F1"]);
/// t.row(vec!["token-lr".into(), "0.91".into()]);
/// let s = t.render();
/// assert!(s.contains("token-lr"));
/// assert!(s.contains("F1"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    pub fn new(headers: Vec<&str>) -> Self {
        assert!(!headers.is_empty(), "table needs at least one column");
        Table { headers: headers.into_iter().map(String::from).collect(), rows: Vec::new() }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row(&mut self, mut cells: Vec<String>) -> &mut Self {
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate().take(cols) {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{c:<width$}", width = widths[i]);
            }
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        line(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for r in &self.rows {
            line(&mut out, r);
        }
        out
    }

    /// Prints the table to stdout with a title banner.
    pub fn print(&self, title: &str) {
        println!("\n== {title} ==");
        print!("{}", self.render());
    }
}

/// Formats a float with 3 decimal places (experiment convention).
pub fn fmt3(x: f64) -> String {
    if x.is_infinite() {
        "inf".to_string()
    } else {
        format!("{x:.3}")
    }
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats a dollar amount.
pub fn usd(x: f64) -> String {
    if x < 0.0 {
        format!("-${:.0}", -x)
    } else {
        format!("${x:.0}")
    }
}

/// Renders a [`DegradationSummary`] as a two-column table, for chaos-mode
/// experiment output (empty ledger → empty table, so fault-free runs print
/// nothing extra).
///
/// [`DegradationSummary`]: crate::workflow::DegradationSummary
pub fn degradation_table(deg: &crate::workflow::DegradationSummary) -> Table {
    let mut t = Table::new(vec!["degradation", "value"]);
    let injected = deg.transient + deg.timeout + deg.corrupt + deg.crash;
    if injected == 0 && !deg.is_degraded() {
        return t;
    }
    for (label, value) in [
        ("faults injected", injected),
        ("  transient", deg.transient),
        ("  timeout", deg.timeout),
        ("  corrupt", deg.corrupt),
        ("  crash", deg.crash),
        ("retries", deg.retries),
        ("recovered", deg.recovered),
        ("exhausted", deg.exhausted),
        ("assessments lost", deg.assessments_lost),
        ("ml failures", deg.ml_failures),
        ("degraded samples", deg.degraded_samples as u64),
    ] {
        t.row(vec![label.into(), value.to_string()]);
    }
    let quarantined =
        if deg.quarantined.is_empty() { "none".into() } else { deg.quarantined.join(", ") };
    t.row(vec!["quarantined".into(), quarantined]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer-name".into(), "2".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // The value column starts at the same offset on data rows.
        let off1 = lines[2].find('1').unwrap();
        let off2 = lines[3].find('2').unwrap();
        assert_eq!(off1, off2);
    }

    #[test]
    fn short_rows_padded() {
        let mut t = Table::new(vec!["a", "b", "c"]);
        t.row(vec!["x".into()]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        assert!(t.render().contains('x'));
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt3(0.12345), "0.123");
        assert_eq!(fmt3(f64::INFINITY), "inf");
        assert_eq!(pct(0.255), "25.5%");
        assert_eq!(usd(1234.7), "$1235");
        assert_eq!(usd(-50.0), "-$50");
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn empty_headers_rejected() {
        let _ = Table::new(vec![]);
    }

    #[test]
    fn degradation_table_is_empty_for_clean_runs_and_full_for_degraded() {
        let clean = crate::workflow::DegradationSummary::default();
        assert!(degradation_table(&clean).is_empty());
        let degraded = crate::workflow::DegradationSummary {
            transient: 3,
            retries: 4,
            recovered: 2,
            exhausted: 1,
            assessments_lost: 1,
            degraded_samples: 1,
            quarantined: vec!["rule-suite".into()],
            ..Default::default()
        };
        let rendered = degradation_table(&degraded).render();
        assert!(rendered.contains("faults injected"));
        assert!(rendered.contains("rule-suite"));
    }
}
