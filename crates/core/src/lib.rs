//! # vulnman-core
//!
//! The industry AI-based vulnerability-management platform described by
//! *"Bridging the Gap: A Study of AI-based Vulnerability Management between
//! Industry and Academia"* (DSN 2024), plus one module per gap study the
//! paper develops.
//!
//! * [`workflow`] — the Figure-1 pipeline: automated detection →
//!   threat-model gating → manual review → repair (auto-fix / AI suggestion
//!   / expert) → training feedback; sequential or crossbeam-staged.
//! * [`detector`] — one interface over rule-based tools and ML models, with
//!   per-CWE scoping and combination policies.
//! * [`costmodel`] — the financial model Gap Observation 3 asks for
//!   (compute vs analyst hours vs breach risk; break-even analysis).
//! * [`agreement`] — multi-model agreement studies (Gap Observation 1).
//! * [`customize`] — team security standards + fine-tuning orchestration
//!   (Gap Observation 2).
//! * [`anonymize`] — privacy/utility-tunable code anonymization (Future
//!   Direction Proposal 4).
//! * [`sft`] — SFT dataset construction from workflow traces (§II-B).
//! * [`artifacts`] — research-artifact release process model (the 25.5% /
//!   54.5% / 27.3% survey, Gap Observation 2).
//! * [`repair`] — repair engines + verification harness (the SWE-bench-gap
//!   experiment, Gap Observation 3).
//! * [`training`] — security-training program simulation (§II-A/B).
//! * [`report`] — uniform text tables for the experiment binaries.
//!
//! ## Quick start
//!
//! ```
//! use vulnman_core::detector::{DetectorRegistry, RuleBasedDetector};
//! use vulnman_core::workflow::{WorkflowConfig, WorkflowEngine};
//! use vulnman_synth::dataset::DatasetBuilder;
//!
//! let corpus = DatasetBuilder::new(1).vulnerable_count(10).build();
//! let mut registry = DetectorRegistry::new();
//! registry.register(Box::new(RuleBasedDetector::standard()));
//! let engine = WorkflowEngine::new(registry, WorkflowConfig::default());
//! let report = engine.process(corpus.samples());
//! assert!(report.detection_metrics().recall() > 0.5);
//! ```

#![warn(missing_docs)]

pub mod agreement;
pub mod anonymize;
pub mod artifacts;
pub mod costmodel;
pub mod customize;
pub mod detector;
pub mod feedback;
pub mod repair;
pub mod report;
mod resilience;
pub mod sft;
pub mod training;
pub mod triage;
pub mod workflow;

pub use costmodel::{price_deployment, CostParams, CostReport};
pub use detector::{
    audit_ml_verdict, AssessError, Assessment, CombinePolicy, Detector, DetectorRegistry,
    SemanticDetector,
};
pub use workflow::{DegradationSummary, WorkflowConfig, WorkflowEngine, WorkflowReport};
