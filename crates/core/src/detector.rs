//! Unified detector abstraction over rule-based tools and ML models.
//!
//! Gap Observation 2 stresses that adopted models must "integrate seamlessly
//! with existing tools": this module gives the workflow engine one interface
//! over both worlds, with per-CWE scoping so specialized tools can be
//! composed the way industry actually deploys them ("each tool selected is
//! often specialized to address certain vulnerabilities").

use serde::{Deserialize, Serialize};
use std::sync::Arc;
use vulnman_analysis::checkers::SemanticEngine;
use vulnman_analysis::detectors::RuleEngine;
use vulnman_analysis::finding::Finding;
use vulnman_faults::{FaultInjector, Site};
use vulnman_ml::pipeline::DetectionModel;
use vulnman_obs::{Counter, Histogram, Registry};
use vulnman_synth::cwe::Cwe;
use vulnman_synth::sample::Sample;

/// Verdict of one detector on one sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Assessment {
    /// Whether the detector believes the sample is vulnerable.
    pub vulnerable: bool,
    /// Confidence score in `[0, 1]` when available.
    pub score: f64,
    /// Structured findings (rule-based detectors only).
    pub findings: Vec<Finding>,
    /// Name of the detector that produced this assessment.
    pub detector: String,
}

/// A detector invocation that produced no assessment — the failure surface
/// of fallible backends (ML prediction under fault injection). The engine
/// degrades by omitting the assessment, never by panicking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AssessError {
    /// Name of the detector that failed.
    pub detector: String,
    /// Human-readable failure reason.
    pub reason: String,
}

impl std::fmt::Display for AssessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "detector {} failed: {}", self.detector, self.reason)
    }
}

impl std::error::Error for AssessError {}

/// A vulnerability detector usable by the workflow engine.
pub trait Detector: Send + Sync {
    /// Display name.
    fn name(&self) -> &str;

    /// CWE classes this detector is scoped to (`None` = general-purpose).
    fn scope(&self) -> Option<Vec<Cwe>> {
        None
    }

    /// Assesses one sample.
    fn assess(&self, sample: &Sample) -> Assessment;

    /// Assesses one sample with access to a shared content-addressed
    /// analysis cache. Detectors whose work is source-derived (parse, CFG,
    /// dataflow, taint) override this to memoize per unique content; the
    /// default ignores the cache. Must return exactly what
    /// [`Detector::assess`] returns.
    fn assess_cached(&self, sample: &Sample, _cache: &vulnman_lang::AnalysisCache) -> Assessment {
        self.assess(sample)
    }

    /// [`Detector::assess_cached`] with a precomputed content key
    /// ([`vulnman_lang::AnalysisCache::content_key`] of the sample source),
    /// so the assessment stage hashes each sample once no matter how many
    /// cache-aware detectors run. Must return exactly what
    /// [`Detector::assess_cached`] returns; the default ignores the key.
    fn assess_cached_keyed(
        &self,
        sample: &Sample,
        cache: &vulnman_lang::AnalysisCache,
        _content_key: u64,
    ) -> Assessment {
        self.assess_cached(sample, cache)
    }

    /// Fallible [`Detector::assess_cached`]: detectors with fallible
    /// backends (e.g. ML prediction under fault injection) override this to
    /// surface failures the engine degrades on. The default never fails.
    fn try_assess_cached(
        &self,
        sample: &Sample,
        cache: &vulnman_lang::AnalysisCache,
    ) -> Result<Assessment, AssessError> {
        Ok(self.assess_cached(sample, cache))
    }

    /// [`Detector::try_assess_cached`] with a precomputed content key
    /// ([`vulnman_lang::AnalysisCache::content_key`] of the sample source),
    /// so the assessment stage hashes each sample once no matter how many
    /// cache-aware detectors run. Must return exactly what
    /// [`Detector::try_assess_cached`] returns; the default ignores the key.
    fn try_assess_cached_keyed(
        &self,
        sample: &Sample,
        cache: &vulnman_lang::AnalysisCache,
        _content_key: u64,
    ) -> Result<Assessment, AssessError> {
        self.try_assess_cached(sample, cache)
    }

    /// Whether this detector's assessment is invariant under the clone
    /// equivalence the workflow's dedup stage proves: identical token
    /// streams modulo one injective identifier renaming (comments and
    /// whitespace already erased by lexing). Only invariant detectors may
    /// have their results propagated from a clone representative to the
    /// other class members; everything else (e.g. ML models reading raw
    /// token text and source length) runs directly on every member. The
    /// conservative default is `false`.
    fn clone_invariant(&self) -> bool {
        false
    }

    /// Receives the engine's fault injector at construction. Detectors
    /// whose backends consult a fault plan (ML prediction) forward it; the
    /// default ignores it.
    fn attach_faults(&mut self, _injector: Arc<FaultInjector>) {}

    /// Receives the engine's metrics registry when one is attached.
    /// Detectors with their own instrument families (the semantic suite's
    /// `absint.*` solver telemetry) store it; the default ignores it.
    fn attach_metrics(&mut self, _metrics: &Registry) {}
}

/// Adapter: the rule-based suite as a [`Detector`].
#[derive(Debug)]
pub struct RuleBasedDetector {
    engine: RuleEngine,
    name: String,
}

impl RuleBasedDetector {
    /// Wraps the default industry rule suite.
    pub fn standard() -> Self {
        RuleBasedDetector { engine: RuleEngine::default_suite(), name: "rule-suite".into() }
    }

    /// Wraps a custom engine under a display name.
    pub fn new(name: impl Into<String>, engine: RuleEngine) -> Self {
        RuleBasedDetector { engine, name: name.into() }
    }
}

impl Detector for RuleBasedDetector {
    fn name(&self) -> &str {
        &self.name
    }

    fn assess(&self, sample: &Sample) -> Assessment {
        let findings = self.engine.scan_source(&sample.source).unwrap_or_default();
        self.to_assessment(findings)
    }

    fn assess_cached(&self, sample: &Sample, cache: &vulnman_lang::AnalysisCache) -> Assessment {
        let findings = self.engine.scan_source_cached(&sample.source, cache).unwrap_or_default();
        self.to_assessment(findings)
    }

    fn assess_cached_keyed(
        &self,
        sample: &Sample,
        cache: &vulnman_lang::AnalysisCache,
        content_key: u64,
    ) -> Assessment {
        let findings = self
            .engine
            .scan_source_cached_keyed(content_key, &sample.source, cache)
            .unwrap_or_default();
        self.to_assessment(findings)
    }

    fn try_assess_cached_keyed(
        &self,
        sample: &Sample,
        cache: &vulnman_lang::AnalysisCache,
        content_key: u64,
    ) -> Result<Assessment, AssessError> {
        Ok(self.assess_cached_keyed(sample, cache, content_key))
    }

    /// Rule findings are derived from the lexed/parsed program, where
    /// identifier spelling only flows into messages — which the dedup
    /// stage remaps alongside the rename.
    fn clone_invariant(&self) -> bool {
        true
    }
}

impl RuleBasedDetector {
    /// The unit is flagged when any rule fires; findings in shared helpers
    /// count too if nothing is in the target.
    fn to_assessment(&self, findings: Vec<Finding>) -> Assessment {
        let vulnerable = !findings.is_empty();
        Assessment {
            vulnerable,
            score: if vulnerable { 1.0 } else { 0.0 },
            findings,
            detector: self.name.clone(),
        }
    }
}

/// Adapter: the abstract-interpretation checker suite as a [`Detector`].
///
/// Cache-aware (the `"absint-findings"` kind, shared with the differential
/// oracle's absint view) and fault-aware: when the engine attaches an
/// injector, every invocation consults the
/// [`checker_call`](vulnman_faults::Site::CheckerCall) site keyed by sample
/// id, so checker failures are deterministic per sample regardless of
/// sharding, and the engine degrades by omitting the assessment.
#[derive(Debug)]
pub struct SemanticDetector {
    engine: SemanticEngine,
    faults: Option<Arc<FaultInjector>>,
    metrics: Registry,
}

impl SemanticDetector {
    /// Wraps the default semantic checker suite.
    pub fn standard() -> Self {
        SemanticDetector::new(SemanticEngine::new())
    }

    /// Wraps a custom-configured engine.
    pub fn new(engine: SemanticEngine) -> Self {
        SemanticDetector { engine, faults: None, metrics: Registry::noop() }
    }

    fn to_assessment(&self, findings: Vec<Finding>) -> Assessment {
        let vulnerable = !findings.is_empty();
        Assessment {
            vulnerable,
            score: if vulnerable { 1.0 } else { 0.0 },
            findings,
            detector: "semantic-suite".into(),
        }
    }

    /// Same cache key as `SemanticEngine::scan_source_cached`, but cold
    /// scans flow through `scan_with_metrics` so the `absint.*`
    /// instruments see real solver work. Warm hits skip the fixpoint and
    /// leave the counters untouched, which is exactly what they measure.
    fn assess_cached_with_key(
        &self,
        sample: &Sample,
        cache: &vulnman_lang::AnalysisCache,
        content_key: u64,
    ) -> Assessment {
        let program = match cache.parse_keyed(content_key, &sample.source) {
            Ok(p) => p,
            Err(_) => return self.to_assessment(Vec::new()),
        };
        let findings =
            cache.analysis_keyed(content_key, "absint-findings", self.engine.fingerprint(), || {
                self.engine.scan_with_metrics(&program, &self.metrics)
            });
        self.to_assessment((*findings).clone())
    }
}

impl Detector for SemanticDetector {
    fn name(&self) -> &str {
        "semantic-suite"
    }

    fn assess(&self, sample: &Sample) -> Assessment {
        let findings = self.engine.scan_source(&sample.source).unwrap_or_default();
        self.to_assessment(findings)
    }

    fn assess_cached(&self, sample: &Sample, cache: &vulnman_lang::AnalysisCache) -> Assessment {
        let key = vulnman_lang::AnalysisCache::content_key(&sample.source);
        self.assess_cached_with_key(sample, cache, key)
    }

    fn assess_cached_keyed(
        &self,
        sample: &Sample,
        cache: &vulnman_lang::AnalysisCache,
        content_key: u64,
    ) -> Assessment {
        self.assess_cached_with_key(sample, cache, content_key)
    }

    fn try_assess_cached(
        &self,
        sample: &Sample,
        cache: &vulnman_lang::AnalysisCache,
    ) -> Result<Assessment, AssessError> {
        let key = vulnman_lang::AnalysisCache::content_key(&sample.source);
        self.try_assess_cached_keyed(sample, cache, key)
    }

    fn try_assess_cached_keyed(
        &self,
        sample: &Sample,
        cache: &vulnman_lang::AnalysisCache,
        content_key: u64,
    ) -> Result<Assessment, AssessError> {
        match &self.faults {
            Some(inj) => inj
                .run(Site::CheckerCall, sample.id, || {
                    self.assess_cached_with_key(sample, cache, content_key)
                })
                .map(|attempted| attempted.value)
                .map_err(|e| AssessError {
                    detector: "semantic-suite".into(),
                    reason: e.to_string(),
                }),
            None => Ok(self.assess_cached_with_key(sample, cache, content_key)),
        }
    }

    fn attach_faults(&mut self, injector: Arc<FaultInjector>) {
        self.faults = Some(injector);
    }

    fn attach_metrics(&mut self, metrics: &Registry) {
        self.metrics = metrics.clone();
    }

    /// The abstract-interpretation checkers work over the parsed AST;
    /// identifier spelling only reaches evidence text, which the dedup
    /// stage remaps alongside the rename.
    fn clone_invariant(&self) -> bool {
        true
    }
}

/// Adapter making a [`RuleEngine`] usable as feature input for ML models
/// (see [`vulnman_ml::features::ToolAugmentedFeatures`]): the "learning from
/// existing tool ecosystems" integration of Future Direction Proposal 2.
#[derive(Debug)]
pub struct RuleEngineToolSuite {
    engine: RuleEngine,
}

impl RuleEngineToolSuite {
    /// Wraps the default industry suite.
    pub fn standard() -> Self {
        RuleEngineToolSuite { engine: RuleEngine::default_suite() }
    }

    /// Wraps a custom engine.
    pub fn new(engine: RuleEngine) -> Self {
        RuleEngineToolSuite { engine }
    }
}

impl vulnman_ml::features::ToolSuite for RuleEngineToolSuite {
    fn scan_counts(&self, source: &str) -> Vec<(u32, f64)> {
        self.engine
            .scan_source(source)
            .unwrap_or_default()
            .into_iter()
            .map(|f| {
                let confidence = match f.confidence {
                    vulnman_analysis::Confidence::High => 1.0,
                    vulnman_analysis::Confidence::Medium => 0.7,
                    vulnman_analysis::Confidence::Low => 0.4,
                };
                (f.cwe.id(), confidence)
            })
            .collect()
    }
}

/// A trained [`DetectionModel`] as the audit matrix's `ml` column (see
/// [`vulnman_analysis::audit`]).
struct TrainedModelVerdict {
    model: DetectionModel,
}

impl vulnman_analysis::audit::MlVerdict for TrainedModelVerdict {
    fn name(&self) -> String {
        self.model.name().to_string()
    }

    fn flags(&self, sample: &Sample) -> bool {
        self.model.predict(sample)
    }
}

/// Builds the audit matrix's `ml` scorer: the tool-augmented model trained
/// on a seeded, class-balanced vulnerable/fixed corpus. Deterministic for a
/// given seed, so the committed audit baseline stays byte-stable. The
/// training stream is salted away from the audit's evaluation stream — the
/// column measures generalization to fresh instantiations, not replay.
pub fn audit_ml_verdict(seed: u64) -> Box<dyn vulnman_analysis::audit::MlVerdict> {
    use vulnman_synth::dataset::Dataset;
    use vulnman_synth::generator::SampleGenerator;
    use vulnman_synth::style::StyleProfile;
    use vulnman_synth::tier::Tier;
    let mut corpus = Dataset::new();
    for cwe in Cwe::ALL {
        let class_seed = (seed ^ 0x7A1B) ^ ((cwe.id() as u64) << 5);
        let mut generator = SampleGenerator::new(class_seed, StyleProfile::mainstream());
        for _ in 0..6 {
            let (vuln, fixed) = generator.vulnerable_pair(cwe, Tier::Curated, "audit-train");
            corpus.push(vuln);
            corpus.push(fixed);
        }
    }
    let mut model = tool_augmented_model(seed);
    model.train(&corpus);
    Box::new(TrainedModelVerdict { model })
}

/// A ready-made tool-augmented detection model: code tokens + the rule
/// suite's verdicts feeding one classifier.
pub fn tool_augmented_model(seed: u64) -> vulnman_ml::pipeline::DetectionModel {
    use vulnman_ml::features::{ComposedFeatures, TokenNgramFeatures, ToolAugmentedFeatures};
    let features = ComposedFeatures::new(vec![
        Box::new(TokenNgramFeatures::new(256)),
        Box::new(ToolAugmentedFeatures::new(Box::new(RuleEngineToolSuite::standard()))),
    ]);
    let dim = vulnman_ml::features::FeatureExtractor::dim(&features);
    vulnman_ml::pipeline::DetectionModel::new(
        "token+tools-lr",
        Box::new(features),
        Box::new(vulnman_ml::linear::LogisticRegression::new(dim, seed ^ 0x55)),
    )
}

/// Adapter: a trained ML model as a [`Detector`].
pub struct MlDetector {
    model: DetectionModel,
    scope: Option<Vec<Cwe>>,
}

impl std::fmt::Debug for MlDetector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MlDetector")
            .field("model", &self.model.name())
            .field("scope", &self.scope)
            .finish()
    }
}

impl MlDetector {
    /// Wraps a trained model as a general-purpose detector.
    ///
    /// # Panics
    ///
    /// Panics if the model has not been trained.
    pub fn new(model: DetectionModel) -> Self {
        assert!(model.is_trained(), "MlDetector requires a trained model");
        MlDetector { model, scope: None }
    }

    /// Wraps a trained model scoped to specific CWE classes (a *specialized*
    /// model in the sense of Future Direction Proposal 1).
    ///
    /// # Panics
    ///
    /// Panics if the model has not been trained.
    pub fn specialized(model: DetectionModel, scope: Vec<Cwe>) -> Self {
        assert!(model.is_trained(), "MlDetector requires a trained model");
        MlDetector { model, scope: Some(scope) }
    }

    /// The wrapped model.
    pub fn model(&self) -> &DetectionModel {
        &self.model
    }
}

impl Detector for MlDetector {
    fn name(&self) -> &str {
        self.model.name()
    }

    fn scope(&self) -> Option<Vec<Cwe>> {
        self.scope.clone()
    }

    fn assess(&self, sample: &Sample) -> Assessment {
        let score = self.model.predict_proba(sample);
        Assessment {
            vulnerable: score >= 0.5,
            score,
            findings: Vec::new(),
            detector: self.model.name().to_string(),
        }
    }

    fn try_assess_cached(
        &self,
        sample: &Sample,
        _cache: &vulnman_lang::AnalysisCache,
    ) -> Result<Assessment, AssessError> {
        match self.model.try_predict_proba(sample) {
            Ok(score) => Ok(Assessment {
                vulnerable: score >= 0.5,
                score,
                findings: Vec::new(),
                detector: self.model.name().to_string(),
            }),
            Err(e) => {
                Err(AssessError { detector: self.model.name().to_string(), reason: e.to_string() })
            }
        }
    }

    fn attach_faults(&mut self, injector: Arc<FaultInjector>) {
        self.model.attach_faults(injector);
    }
}

/// How a registry combines multiple detector verdicts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum CombinePolicy {
    /// Flag when any detector flags (maximum recall, industry default for
    /// high-severity classes).
    #[default]
    Any,
    /// Flag when a strict majority flags (suppresses disagreement noise).
    Majority,
}

/// Pre-resolved observability handles for one registered detector, so the
/// hot path never formats instrument names.
struct DetectorInstruments {
    calls: Counter,
    micros: Histogram,
}

/// A registry of detectors the assessment stage runs.
///
/// When a metrics [`Registry`] is attached (the workflow engine does this
/// at construction), every detector invocation is counted and timed under
/// `detector.<name>.calls` / `detector.<name>.micros`. Without one, the
/// default no-op recorder makes instrumentation cost a predicted branch.
#[derive(Default)]
pub struct DetectorRegistry {
    detectors: Vec<Box<dyn Detector>>,
    policy: CombinePolicy,
    metrics: Registry,
    instruments: Vec<DetectorInstruments>,
}

impl std::fmt::Debug for DetectorRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DetectorRegistry")
            .field(
                "detectors",
                &self.detectors.iter().map(|d| d.name().to_string()).collect::<Vec<_>>(),
            )
            .field("policy", &self.policy)
            .finish()
    }
}

impl DetectorRegistry {
    /// Creates an empty registry with the [`CombinePolicy::Any`] policy.
    pub fn new() -> Self {
        DetectorRegistry::default()
    }

    /// Sets the combination policy.
    pub fn with_policy(mut self, policy: CombinePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Registers a detector.
    pub fn register(&mut self, d: Box<dyn Detector>) -> &mut Self {
        self.instruments.push(self.make_instruments(d.name()));
        self.detectors.push(d);
        self
    }

    /// Attaches a metrics registry: per-detector invocation counters and
    /// latency histograms are (re-)registered for every detector, present
    /// and future, so the exported schema is fixed at attach time.
    pub fn attach_metrics(&mut self, metrics: Registry) {
        self.metrics = metrics;
        self.instruments = self.detectors.iter().map(|d| self.make_instruments(d.name())).collect();
        for d in &mut self.detectors {
            d.attach_metrics(&self.metrics);
        }
    }

    /// The attached metrics registry (no-op unless
    /// [`DetectorRegistry::attach_metrics`] was called).
    pub fn metrics(&self) -> &Registry {
        &self.metrics
    }

    fn make_instruments(&self, name: &str) -> DetectorInstruments {
        DetectorInstruments {
            calls: self.metrics.counter(&format!("detector.{name}.calls")),
            micros: self.metrics.histogram(&format!("detector.{name}.micros")),
        }
    }

    /// Runs `assess` for the detector at `idx`, counted and timed.
    fn observed<T>(&self, idx: usize, assess: impl FnOnce() -> T) -> T {
        let ins = &self.instruments[idx];
        ins.calls.inc();
        if ins.micros.is_enabled() {
            let t0 = std::time::Instant::now();
            let a = assess();
            ins.micros.observe_duration(t0.elapsed());
            a
        } else {
            assess()
        }
    }

    /// Propagates the engine's fault injector to every registered detector
    /// (see [`Detector::attach_faults`]).
    pub fn attach_faults(&mut self, injector: &Arc<FaultInjector>) {
        for d in &mut self.detectors {
            d.attach_faults(Arc::clone(injector));
        }
    }

    /// Registration indices of the detectors applicable to `sample`, in
    /// registration order (the engine's resilient path drives detectors
    /// individually through these).
    pub(crate) fn applicable_indices(&self, sample: &Sample) -> Vec<usize> {
        self.applicable(sample).map(|(i, _)| i).collect()
    }

    /// Whether the detector at `idx` declares its assessment invariant
    /// under the dedup stage's clone equivalence (see
    /// [`Detector::clone_invariant`]).
    pub(crate) fn clone_invariant_at(&self, idx: usize) -> bool {
        self.detectors[idx].clone_invariant()
    }

    /// Runs the detector at `idx` through the cache on the infallible
    /// path, counted and timed — the per-detector unit of
    /// [`DetectorRegistry::assess_all_cached_keyed`], used by the dedup
    /// stage to assess clone representatives detector by detector.
    pub(crate) fn assess_cached_keyed_at(
        &self,
        idx: usize,
        sample: &Sample,
        cache: &vulnman_lang::AnalysisCache,
        content_key: u64,
    ) -> Assessment {
        self.observed(idx, || self.detectors[idx].assess_cached_keyed(sample, cache, content_key))
    }

    /// Runs the detector at `idx` through the cache, counted and timed,
    /// surfacing fallible-backend errors instead of panicking.
    pub(crate) fn try_assess_cached_at(
        &self,
        idx: usize,
        sample: &Sample,
        cache: &vulnman_lang::AnalysisCache,
        content_key: u64,
    ) -> Result<Assessment, AssessError> {
        self.observed(idx, || {
            self.detectors[idx].try_assess_cached_keyed(sample, cache, content_key)
        })
    }

    /// Number of registered detectors.
    pub fn len(&self) -> usize {
        self.detectors.len()
    }

    /// Returns `true` if no detectors are registered.
    pub fn is_empty(&self) -> bool {
        self.detectors.is_empty()
    }

    /// Names of registered detectors.
    pub fn names(&self) -> Vec<String> {
        self.detectors.iter().map(|d| d.name().to_string()).collect()
    }

    /// Detectors applicable to a sample (scope matching the sample's CWE
    /// when the sample declares one; unscoped detectors always run), with
    /// their registration index for instrument lookup.
    fn applicable<'a>(
        &'a self,
        sample: &'a Sample,
    ) -> impl Iterator<Item = (usize, &'a dyn Detector)> {
        self.detectors
            .iter()
            .enumerate()
            .filter(|(_, d)| match (d.scope(), sample.cwe) {
                (Some(scope), Some(cwe)) => scope.contains(&cwe),
                (Some(_), None) => true, // scoped tools still scan unknown code
                (None, _) => true,
            })
            .map(|(i, d)| (i, d.as_ref()))
    }

    /// Runs every applicable detector.
    pub fn assess_all(&self, sample: &Sample) -> Vec<Assessment> {
        self.applicable(sample).map(|(i, d)| self.observed(i, || d.assess(sample))).collect()
    }

    /// Runs every applicable detector through a shared analysis cache.
    /// Assessments are identical to [`DetectorRegistry::assess_all`].
    pub fn assess_all_cached(
        &self,
        sample: &Sample,
        cache: &vulnman_lang::AnalysisCache,
    ) -> Vec<Assessment> {
        self.applicable(sample)
            .map(|(i, d)| self.observed(i, || d.assess_cached(sample, cache)))
            .collect()
    }

    /// [`DetectorRegistry::assess_all_cached`] with a precomputed content
    /// key, so every cache-aware detector shares one hash of the sample
    /// source. Assessments are identical to
    /// [`DetectorRegistry::assess_all`].
    pub fn assess_all_cached_keyed(
        &self,
        sample: &Sample,
        cache: &vulnman_lang::AnalysisCache,
        content_key: u64,
    ) -> Vec<Assessment> {
        self.applicable(sample)
            .map(|(i, d)| self.observed(i, || d.assess_cached_keyed(sample, cache, content_key)))
            .collect()
    }

    /// Combined verdict under the registry policy, along with the individual
    /// assessments.
    pub fn verdict(&self, sample: &Sample) -> (bool, Vec<Assessment>) {
        self.combine(self.assess_all(sample))
    }

    /// Cache-assisted [`DetectorRegistry::verdict`]; the verdict and the
    /// assessments are identical, only repeated work is skipped.
    pub fn verdict_cached(
        &self,
        sample: &Sample,
        cache: &vulnman_lang::AnalysisCache,
    ) -> (bool, Vec<Assessment>) {
        self.combine(self.assess_all_cached(sample, cache))
    }

    /// Keyed [`DetectorRegistry::verdict_cached`]: identical verdict and
    /// assessments, with the sample source hashed once by the caller.
    pub fn verdict_cached_keyed(
        &self,
        sample: &Sample,
        cache: &vulnman_lang::AnalysisCache,
        content_key: u64,
    ) -> (bool, Vec<Assessment>) {
        self.combine(self.assess_all_cached_keyed(sample, cache, content_key))
    }

    pub(crate) fn combine(&self, assessments: Vec<Assessment>) -> (bool, Vec<Assessment>) {
        let positive = assessments.iter().filter(|a| a.vulnerable).count();
        let flagged = match self.policy {
            CombinePolicy::Any => positive > 0,
            CombinePolicy::Majority => positive * 2 > assessments.len(),
        };
        (flagged, assessments)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vulnman_ml::pipeline::model_zoo;
    use vulnman_ml::split::stratified_split;
    use vulnman_synth::dataset::DatasetBuilder;
    use vulnman_synth::generator::SampleGenerator;
    use vulnman_synth::style::StyleProfile;
    use vulnman_synth::tier::Tier;

    #[test]
    fn rule_detector_flags_vulnerable_sample() {
        let mut g = SampleGenerator::new(1, StyleProfile::mainstream());
        let (v, f) = g.vulnerable_pair(Cwe::SqlInjection, Tier::Simple, "p");
        let d = RuleBasedDetector::standard();
        assert!(d.assess(&v).vulnerable);
        assert!(!d.assess(&f).vulnerable);
        assert!(!d.assess(&v).findings.is_empty());
    }

    #[test]
    fn ml_detector_requires_training() {
        let result = std::panic::catch_unwind(|| {
            let model = model_zoo(1).remove(0);
            MlDetector::new(model)
        });
        assert!(result.is_err());
    }

    #[test]
    fn attached_metrics_count_and_time_detectors() {
        let metrics = Registry::new();
        let mut r = DetectorRegistry::new();
        r.register(Box::new(RuleBasedDetector::standard()));
        r.attach_metrics(metrics.clone());
        let mut g = SampleGenerator::new(9, StyleProfile::mainstream());
        let (v, _) = g.vulnerable_pair(Cwe::SqlInjection, Tier::Simple, "p");
        r.verdict(&v);
        r.verdict(&v);
        assert_eq!(metrics.counter("detector.rule-suite.calls").get(), 2);
        let snap = metrics.snapshot();
        assert_eq!(snap.histograms["detector.rule-suite.micros"].count, 2);
        // Instruments exist in the schema even before the first call.
        let mut r2 = DetectorRegistry::new();
        r2.register(Box::new(RuleBasedDetector::standard()));
        let m2 = Registry::new();
        r2.attach_metrics(m2.clone());
        assert!(m2.snapshot().counters.contains_key("detector.rule-suite.calls"));
    }

    #[test]
    fn registry_policies_differ() {
        struct Fixed(bool, &'static str);
        impl Detector for Fixed {
            fn name(&self) -> &str {
                self.1
            }
            fn assess(&self, _: &Sample) -> Assessment {
                Assessment {
                    vulnerable: self.0,
                    score: if self.0 { 1.0 } else { 0.0 },
                    findings: vec![],
                    detector: self.1.into(),
                }
            }
        }
        let mut g = SampleGenerator::new(2, StyleProfile::mainstream());
        let sample = g.benign(Tier::Simple, "p");

        let mut any = DetectorRegistry::new();
        any.register(Box::new(Fixed(true, "a")));
        any.register(Box::new(Fixed(false, "b")));
        any.register(Box::new(Fixed(false, "c")));
        assert!(any.verdict(&sample).0);

        let mut majority = DetectorRegistry::new().with_policy(CombinePolicy::Majority);
        majority.register(Box::new(Fixed(true, "a")));
        majority.register(Box::new(Fixed(false, "b")));
        majority.register(Box::new(Fixed(false, "c")));
        assert!(!majority.verdict(&sample).0);
    }

    #[test]
    fn scoped_detector_skipped_for_other_classes() {
        struct AlwaysYes;
        impl Detector for AlwaysYes {
            fn name(&self) -> &str {
                "yes"
            }
            fn scope(&self) -> Option<Vec<Cwe>> {
                Some(vec![Cwe::SqlInjection])
            }
            fn assess(&self, _: &Sample) -> Assessment {
                Assessment {
                    vulnerable: true,
                    score: 1.0,
                    findings: vec![],
                    detector: "yes".into(),
                }
            }
        }
        let mut g = SampleGenerator::new(3, StyleProfile::mainstream());
        let (uaf, _) = g.vulnerable_pair(Cwe::UseAfterFree, Tier::Simple, "p");
        let (sql, _) = g.vulnerable_pair(Cwe::SqlInjection, Tier::Simple, "p");
        let mut r = DetectorRegistry::new();
        r.register(Box::new(AlwaysYes));
        assert!(r.assess_all(&uaf).is_empty(), "UAF sample is out of scope");
        assert_eq!(r.assess_all(&sql).len(), 1);
    }

    #[test]
    fn tool_augmented_model_beats_code_only_on_hard_data() {
        use vulnman_synth::tier::Tier;
        let ds = DatasetBuilder::new(41)
            .teams(vec![StyleProfile::mainstream()])
            .vulnerable_count(120)
            .vulnerable_fraction(0.4)
            .tier_mix(vec![(Tier::RealWorld, 1.0)])
            .build();
        let split = stratified_split(&ds, 0.35, 3);
        let mut code_only = model_zoo(21).remove(0);
        let mut augmented = tool_augmented_model(21);
        code_only.train(&split.train);
        augmented.train(&split.train);
        let f_code = code_only.evaluate(&split.test).f1();
        let f_aug = augmented.evaluate(&split.test).f1();
        assert!(
            f_aug > f_code,
            "tool ecosystem knowledge should lift the model: {f_aug} vs {f_code}"
        );
    }

    #[test]
    fn trained_ml_detector_integrates() {
        let ds = DatasetBuilder::new(4).vulnerable_count(40).build();
        let split = stratified_split(&ds, 0.3, 1);
        let mut model = model_zoo(2).remove(2); // graph-rf
        model.train(&split.train);
        let d = MlDetector::new(model);
        let mut registry = DetectorRegistry::new();
        registry.register(Box::new(d));
        registry.register(Box::new(RuleBasedDetector::standard()));
        assert_eq!(registry.len(), 2);
        let hits = split.test.iter().filter(|s| s.label).filter(|s| registry.verdict(s).0).count();
        let total = split.test.iter().filter(|s| s.label).count();
        assert!(hits * 10 >= total * 8, "combined registry should catch most: {hits}/{total}");
    }
}
