//! Data anonymization for industry→academia sharing (Future Direction
//! Proposal 4).
//!
//! Industry will only share vulnerability corpora if "sharing codebases will
//! not expose sensitive and identifying information"; academia needs the
//! shared data to retain "as much of the original patterns and contexts of
//! vulnerabilities". The [`Anonymizer`] implements three strength levels
//! and the module provides a *privacy leakage* metric (identifying-token
//! recall) so the utility/privacy trade-off can be measured (experiment
//! E13).

use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use vulnman_lang::ast::{Expr, ExprKind, Function, LValue, Stmt, StmtKind};
use vulnman_lang::{parse, print_program};
use vulnman_synth::sample::{Artifacts, Sample};

/// How aggressively to anonymize.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Strength {
    /// Rename local identifiers only; strings, comments, and artifacts kept.
    Light,
    /// Also redact string literals and drop comments/artifacts.
    Standard,
    /// Also rename unit-defined functions and bucket integer literals.
    Aggressive,
}

/// Result of anonymizing one sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Anonymized {
    /// The anonymized sample (source, target function, artifacts rewritten).
    pub sample: Sample,
    /// Mapping from original identifiers to their replacements.
    pub name_map: HashMap<String, String>,
}

/// Identifier/tooling anonymizer.
///
/// Library functions (sources, sinks, sanitizers, runtime helpers) are
/// *never* renamed — they are the shared vocabulary detectors and models
/// need; renaming them would destroy exactly the "patterns and contexts"
/// academia requires.
#[derive(Debug, Clone, Copy)]
pub struct Anonymizer {
    strength: Strength,
}

impl Anonymizer {
    /// Creates an anonymizer at the given strength.
    pub fn new(strength: Strength) -> Self {
        Anonymizer { strength }
    }

    /// The configured strength.
    pub fn strength(&self) -> Strength {
        self.strength
    }

    /// Anonymizes a sample. Returns `None` if the source does not parse.
    pub fn anonymize(&self, sample: &Sample) -> Option<Anonymized> {
        let mut program = parse(&sample.source).ok()?;
        let mut name_map = HashMap::new();

        // 1. Rename locals and parameters in every function.
        for (fi, func) in program.functions.iter_mut().enumerate() {
            rename_locals(func, fi, &mut name_map);
            if self.strength >= Strength::Standard {
                func.doc.clear();
            }
        }

        // 2. Standard: redact string literals (shape-preserving).
        if self.strength >= Strength::Standard {
            for func in &mut program.functions {
                for s in &mut func.body {
                    rewrite_exprs(s, &mut |e| {
                        if let ExprKind::Str(lit) = &mut e.kind {
                            *lit = redact_string(lit);
                        }
                    });
                }
            }
        }

        // 3. Aggressive: rename unit-defined functions, bucket int literals.
        // (Definition order, not set order, so renaming is deterministic.)
        if self.strength >= Strength::Aggressive {
            for (i, func) in program.functions.iter().enumerate() {
                name_map.insert(func.name.to_string(), format!("fn_{i}"));
            }
            for func in &mut program.functions {
                if let Some(fresh) = name_map.get(func.name.as_str()) {
                    func.name = fresh.as_str().into();
                }
                for s in &mut func.body {
                    rewrite_exprs(s, &mut |e| match &mut e.kind {
                        ExprKind::Call(name, _) => {
                            if let Some(fresh) = name_map.get(name.as_str()) {
                                *name = fresh.as_str().into();
                            }
                        }
                        ExprKind::Int(v)
                            // Bucket to the next power of two to hide exact
                            // internal constants while keeping magnitude.
                            if *v > 2 => {
                                *v = (*v as u64).next_power_of_two() as i64;
                            }
                        _ => {}
                    });
                }
            }
        }

        let mut out = sample.clone();
        out.source = print_program(&program);
        if let Some(fresh) = name_map.get(&sample.target_fn) {
            out.target_fn = fresh.clone();
        }
        if self.strength >= Strength::Standard {
            out.artifacts = Artifacts::default();
            out.project = "redacted".to_string();
            out.team = "redacted".to_string();
        }
        Some(Anonymized { sample: out, name_map })
    }
}

fn rename_locals(func: &mut Function, salt: usize, name_map: &mut HashMap<String, String>) {
    let mut local: HashMap<String, String> = HashMap::new();
    for (i, p) in func.params.iter_mut().enumerate() {
        let fresh = format!("arg{salt}_{i}");
        local.insert(p.name.to_string(), fresh.clone());
        name_map.insert(p.name.to_string(), fresh.clone());
        p.name = fresh.into();
    }
    let mut counter = 0usize;
    collect_decl_renames(&mut func.body, salt, &mut counter, &mut local, name_map);
    for s in &mut func.body {
        apply_renames(s, &local);
    }
}

fn collect_decl_renames(
    stmts: &mut [Stmt],
    salt: usize,
    counter: &mut usize,
    local: &mut HashMap<String, String>,
    global: &mut HashMap<String, String>,
) {
    for s in stmts {
        match &mut s.kind {
            StmtKind::Decl { name, .. } => {
                *counter += 1;
                let fresh = format!("var{salt}_{counter}");
                local.insert(name.to_string(), fresh.clone());
                global.insert(name.to_string(), fresh.clone());
                *name = fresh.into();
            }
            StmtKind::If { then_branch, else_branch, .. } => {
                collect_decl_renames(then_branch, salt, counter, local, global);
                if let Some(e) = else_branch {
                    collect_decl_renames(e, salt, counter, local, global);
                }
            }
            StmtKind::While { body, .. } => {
                collect_decl_renames(body, salt, counter, local, global)
            }
            StmtKind::For { init, step, body, .. } => {
                if let Some(i) = init {
                    collect_decl_renames(
                        std::slice::from_mut(i.as_mut()),
                        salt,
                        counter,
                        local,
                        global,
                    );
                }
                if let Some(st) = step {
                    collect_decl_renames(
                        std::slice::from_mut(st.as_mut()),
                        salt,
                        counter,
                        local,
                        global,
                    );
                }
                collect_decl_renames(body, salt, counter, local, global);
            }
            _ => {}
        }
    }
}

fn apply_renames(s: &mut Stmt, map: &HashMap<String, String>) {
    let rename_var = |name: &mut vulnman_lang::Symbol| {
        if let Some(fresh) = map.get(name.as_str()) {
            *name = fresh.as_str().into();
        }
    };
    match &mut s.kind {
        StmtKind::Decl { init, .. } => {
            if let Some(e) = init {
                rename_in_expr(e, map);
            }
        }
        StmtKind::Assign { target, value, .. } => {
            match target {
                LValue::Var(name) => rename_var(name),
                LValue::Deref(e) => rename_in_expr(e, map),
                LValue::Index(b, i) => {
                    rename_in_expr(b, map);
                    rename_in_expr(i, map);
                }
            }
            rename_in_expr(value, map);
        }
        StmtKind::If { cond, then_branch, else_branch } => {
            rename_in_expr(cond, map);
            for t in then_branch {
                apply_renames(t, map);
            }
            if let Some(e) = else_branch {
                for t in e {
                    apply_renames(t, map);
                }
            }
        }
        StmtKind::While { cond, body } => {
            rename_in_expr(cond, map);
            for t in body {
                apply_renames(t, map);
            }
        }
        StmtKind::For { init, cond, step, body } => {
            if let Some(i) = init {
                apply_renames(i, map);
            }
            if let Some(c) = cond {
                rename_in_expr(c, map);
            }
            if let Some(st) = step {
                apply_renames(st, map);
            }
            for t in body {
                apply_renames(t, map);
            }
        }
        StmtKind::Return(e) => {
            if let Some(e) = e {
                rename_in_expr(e, map);
            }
        }
        StmtKind::Expr(e) => rename_in_expr(e, map),
        StmtKind::Break | StmtKind::Continue => {}
    }
}

fn rename_in_expr(e: &mut Expr, map: &HashMap<String, String>) {
    match &mut e.kind {
        ExprKind::Var(name) => {
            if let Some(fresh) = map.get(name.as_str()) {
                *name = fresh.as_str().into();
            }
        }
        ExprKind::Unary(_, inner) => rename_in_expr(inner, map),
        ExprKind::Binary(_, l, r) => {
            rename_in_expr(l, map);
            rename_in_expr(r, map);
        }
        ExprKind::Call(_, args) => {
            for a in args {
                rename_in_expr(a, map);
            }
        }
        ExprKind::Index(b, i) => {
            rename_in_expr(b, map);
            rename_in_expr(i, map);
        }
        _ => {}
    }
}

fn rewrite_exprs(s: &mut Stmt, f: &mut impl FnMut(&mut Expr)) {
    fn walk(e: &mut Expr, f: &mut impl FnMut(&mut Expr)) {
        match &mut e.kind {
            ExprKind::Unary(_, inner) => walk(inner, f),
            ExprKind::Binary(_, l, r) => {
                walk(l, f);
                walk(r, f);
            }
            ExprKind::Call(_, args) => {
                for a in args {
                    walk(a, f);
                }
            }
            ExprKind::Index(b, i) => {
                walk(b, f);
                walk(i, f);
            }
            _ => {}
        }
        f(e);
    }
    match &mut s.kind {
        StmtKind::Decl { init, .. } => {
            if let Some(e) = init {
                walk(e, f);
            }
        }
        StmtKind::Assign { target, value, .. } => {
            match target {
                LValue::Var(_) => {}
                LValue::Deref(e) => walk(e, f),
                LValue::Index(b, i) => {
                    walk(b, f);
                    walk(i, f);
                }
            }
            walk(value, f);
        }
        StmtKind::If { cond, then_branch, else_branch } => {
            walk(cond, f);
            for t in then_branch {
                rewrite_exprs(t, f);
            }
            if let Some(e) = else_branch {
                for t in e {
                    rewrite_exprs(t, f);
                }
            }
        }
        StmtKind::While { cond, body } => {
            walk(cond, f);
            for t in body {
                rewrite_exprs(t, f);
            }
        }
        StmtKind::For { init, cond, step, body } => {
            if let Some(i) = init {
                rewrite_exprs(i, f);
            }
            if let Some(c) = cond {
                walk(c, f);
            }
            if let Some(st) = step {
                rewrite_exprs(st, f);
            }
            for t in body {
                rewrite_exprs(t, f);
            }
        }
        StmtKind::Return(e) => {
            if let Some(e) = e {
                walk(e, f);
            }
        }
        StmtKind::Expr(e) => walk(e, f),
        StmtKind::Break | StmtKind::Continue => {}
    }
}

/// Shape-preserving string redaction: length class and character classes
/// are kept, content is not.
fn redact_string(s: &str) -> String {
    if s.is_empty() {
        return String::new();
    }
    if s.starts_with('/') {
        return "/redacted/path/".to_string();
    }
    if s.contains(' ') {
        return "redacted text".to_string();
    }
    let has_digit = s.chars().any(|c| c.is_ascii_digit());
    if has_digit && s.len() >= 10 {
        return "X0x0x0x0x0x0".to_string(); // keeps "secret-shaped" class
    }
    "redacted".to_string()
}

/// Privacy leakage: the fraction of a sample's *identifying tokens*
/// (identifiers it declared plus its string literals) that survive verbatim
/// in the anonymized output. 0.0 = fully private, 1.0 = fully identifying.
pub fn identifier_leakage(original: &Sample, anonymized: &Sample) -> f64 {
    let idents = identifying_tokens(&original.source);
    if idents.is_empty() {
        return 0.0;
    }
    let leaked = idents.iter().filter(|t| anonymized.source.contains(t.as_str())).count();
    leaked as f64 / idents.len() as f64
}

/// The identifying tokens of a unit: declared variable/parameter/function
/// names plus string-literal contents (library vocabulary excluded).
fn identifying_tokens(source: &str) -> HashSet<String> {
    let mut out = HashSet::new();
    let Ok(program) = parse(source) else { return out };
    for f in &program.functions {
        out.insert(f.name.to_string());
        for p in &f.params {
            out.insert(p.name.to_string());
        }
        f.walk_stmts(&mut |s| {
            if let StmtKind::Decl { name, .. } = &s.kind {
                out.insert(name.to_string());
            }
        });
        f.walk_exprs(&mut |e| {
            if let ExprKind::Str(lit) = &e.kind {
                if lit.len() > 2 {
                    out.insert(lit.clone());
                }
            }
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vulnman_analysis::detectors::RuleEngine;
    use vulnman_synth::cwe::Cwe;
    use vulnman_synth::generator::SampleGenerator;
    use vulnman_synth::style::StyleProfile;
    use vulnman_synth::tier::Tier;

    fn sample_pair() -> (Sample, Sample) {
        let mut g = SampleGenerator::new(7, StyleProfile::mainstream());
        g.vulnerable_pair(Cwe::SqlInjection, Tier::Curated, "payments/core")
    }

    #[test]
    fn light_renames_locals_keeps_strings() {
        let mut v = sample_pair().0;
        v.source = r#"void handle_request() {
    char* raw_user_id = http_param("user_id");
    char* account_query = concat("SELECT plan FROM accounts WHERE id = ", raw_user_id);
    exec_query(account_query);
}
"#
        .to_string();
        v.target_fn = "handle_request".into();
        let a = Anonymizer::new(Strength::Light).anonymize(&v).unwrap();
        vulnman_lang::parse(&a.sample.source).unwrap();
        assert!(!a.name_map.is_empty());
        // Strings survive at Light strength; local names do not.
        assert!(a.sample.source.contains("SELECT plan"));
        assert!(!a.sample.source.contains("raw_user_id"));
        assert!(!a.sample.source.contains("account_query"));
    }

    #[test]
    fn leakage_decreases_with_strength() {
        let (v, _) = sample_pair();
        let mut last = 1.0;
        for strength in [Strength::Light, Strength::Standard, Strength::Aggressive] {
            let a = Anonymizer::new(strength).anonymize(&v).unwrap();
            let leak = identifier_leakage(&v, &a.sample);
            assert!(leak <= last + 1e-9, "{strength:?} leaked {leak} > previous {last}");
            last = leak;
        }
        assert!(last < 0.1, "aggressive should leak almost nothing: {last}");
    }

    #[test]
    fn vulnerability_pattern_survives_all_strengths() {
        let engine = RuleEngine::default_suite();
        for strength in [Strength::Light, Strength::Standard, Strength::Aggressive] {
            let (v, f) = sample_pair();
            let av = Anonymizer::new(strength).anonymize(&v).unwrap();
            let af = Anonymizer::new(strength).anonymize(&f).unwrap();
            let fv = engine.scan_source(&av.sample.source).unwrap();
            let ff = engine.scan_source(&af.sample.source).unwrap();
            assert!(
                fv.iter().any(|x| x.cwe == Cwe::SqlInjection),
                "{strength:?}: flaw must survive\n{}",
                av.sample.source
            );
            assert!(
                ff.iter().all(|x| x.cwe != Cwe::SqlInjection),
                "{strength:?}: fix must survive"
            );
        }
    }

    #[test]
    fn standard_strips_artifacts_and_org_info() {
        let (v, _) = sample_pair();
        let a = Anonymizer::new(Strength::Standard).anonymize(&v).unwrap();
        assert!(a.sample.artifacts.commit_message.is_empty());
        assert_eq!(a.sample.team, "redacted");
        assert_eq!(a.sample.project, "redacted");
    }

    #[test]
    fn aggressive_renames_functions_and_tracks_target() {
        let (v, _) = sample_pair();
        let a = Anonymizer::new(Strength::Aggressive).anonymize(&v).unwrap();
        assert_ne!(a.sample.target_fn, v.target_fn);
        assert!(a.sample.source.contains(&a.sample.target_fn));
        vulnman_lang::parse(&a.sample.source).unwrap();
    }

    #[test]
    fn secret_shape_class_preserved_under_redaction() {
        let mut g = SampleGenerator::new(8, StyleProfile::mainstream());
        let (v, _) = g.vulnerable_pair(Cwe::HardcodedCredentials, Tier::Simple, "p");
        let a = Anonymizer::new(Strength::Standard).anonymize(&v).unwrap();
        // The credential detector should still fire on the redacted secret.
        let engine = RuleEngine::default_suite();
        let fs = engine.scan_source(&a.sample.source).unwrap();
        assert!(fs.iter().any(|x| x.cwe == Cwe::HardcodedCredentials), "{}", a.sample.source);
    }
}
