//! Multi-model agreement studies (Gap Observation 1).
//!
//! Reproduces the Steenhoek et al. measurement the paper leans on: "leading
//! AI models only agree 7% of the time across various test data. Even among
//! the top three models, the agreement is less than 50%."

use serde::{Deserialize, Serialize};
use vulnman_ml::eval::{agreement, AgreementReport, Metrics};
use vulnman_ml::pipeline::DetectionModel;
use vulnman_synth::dataset::Dataset;

/// Result of an agreement study over a trained model pool.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AgreementStudy {
    /// Model names in pool order.
    pub models: Vec<String>,
    /// Per-model test F1 (for ranking "top-k" subsets).
    pub f1: Vec<f64>,
    /// Agreement over **all** test samples, all models.
    pub overall: AgreementReport,
    /// Agreement restricted to *vulnerable* samples — the paper's framing:
    /// do the models flag the same vulnerabilities?
    pub on_vulnerable: AgreementReport,
    /// Fraction of vulnerable samples that every model detects (unanimous
    /// true positives).
    pub unanimous_detection_rate: f64,
    /// Agreement of the top-3 models (by F1) on vulnerable samples.
    pub top3_on_vulnerable: Option<AgreementReport>,
    /// Unanimous-detection rate of the top-3 models.
    pub top3_detection_rate: Option<f64>,
}

/// How the training pool is distributed across the compared models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrainingRegime {
    /// All models see the same training set (in-house comparison).
    Shared,
    /// Each model trains on its own disjoint slice of the pool — the
    /// published-literature setting the paper's citation measures, where
    /// every research group curated its own corpus.
    Disjoint,
}

/// Trains each model on `train` (per `regime`), predicts on `test`, and
/// computes agreement statistics.
///
/// # Panics
///
/// Panics if fewer than two models are given or `test` is empty.
pub fn run_agreement_study(
    models: &mut [DetectionModel],
    train: &Dataset,
    test: &Dataset,
    regime: TrainingRegime,
) -> AgreementStudy {
    assert!(models.len() >= 2, "need at least two models");
    assert!(!test.is_empty(), "need test samples");
    let truth: Vec<bool> = test.iter().map(|s| s.label).collect();
    let n_models = models.len();
    let slices: Vec<Dataset> = match regime {
        TrainingRegime::Shared => (0..n_models).map(|_| train.clone()).collect(),
        TrainingRegime::Disjoint => {
            let shuffled = train.shuffled(0x5eed);
            let mut parts: Vec<Dataset> = (0..n_models).map(|_| Dataset::new()).collect();
            for (i, s) in shuffled.iter().enumerate() {
                parts[i % n_models].push(s.clone());
            }
            parts
        }
    };
    let mut names = Vec::new();
    let mut f1 = Vec::new();
    let mut preds: Vec<Vec<bool>> = Vec::new();
    for (m, slice) in models.iter_mut().zip(&slices) {
        m.train(slice);
        let p = m.predict_all(test);
        f1.push(Metrics::from_predictions(&p, &truth).f1());
        names.push(m.name().to_string());
        preds.push(p);
    }

    let overall = agreement(&preds);

    // Restrict to vulnerable samples.
    let vuln_idx: Vec<usize> =
        truth.iter().enumerate().filter(|(_, &t)| t).map(|(i, _)| i).collect();
    let vuln_preds: Vec<Vec<bool>> =
        preds.iter().map(|p| vuln_idx.iter().map(|&i| p[i]).collect()).collect();
    let on_vulnerable = agreement(&vuln_preds);
    let unanimous_detection_rate = if vuln_idx.is_empty() {
        0.0
    } else {
        vuln_idx.iter().enumerate().filter(|(row, _)| vuln_preds.iter().all(|p| p[*row])).count()
            as f64
            / vuln_idx.len() as f64
    };

    // Top-3 by F1.
    let (top3_on_vulnerable, top3_detection_rate) = if models.len() >= 3 {
        let mut order: Vec<usize> = (0..models.len()).collect();
        order.sort_by(|&a, &b| f1[b].partial_cmp(&f1[a]).unwrap_or(std::cmp::Ordering::Equal));
        let top: Vec<usize> = order.into_iter().take(3).collect();
        let top_preds: Vec<Vec<bool>> = top.iter().map(|&i| vuln_preds[i].clone()).collect();
        let rate = if vuln_idx.is_empty() {
            0.0
        } else {
            (0..vuln_idx.len()).filter(|&row| top_preds.iter().all(|p| p[row])).count() as f64
                / vuln_idx.len() as f64
        };
        (Some(agreement(&top_preds)), Some(rate))
    } else {
        (None, None)
    };

    AgreementStudy {
        models: names,
        f1,
        overall,
        on_vulnerable,
        unanimous_detection_rate,
        top3_on_vulnerable,
        top3_detection_rate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vulnman_ml::pipeline::model_zoo;
    use vulnman_ml::split::stratified_split;
    use vulnman_synth::dataset::DatasetBuilder;
    use vulnman_synth::style::StyleProfile;
    use vulnman_synth::tier::Tier;

    #[test]
    fn study_shape_holds_at_small_scale() {
        // Heterogeneous models on a hard (real-world tier, multi-team)
        // corpus: unanimity across all five should be much rarer than
        // pairwise agreement, and top-3 should agree more than all-5.
        let ds = DatasetBuilder::new(21)
            .teams(StyleProfile::internal_teams())
            .vulnerable_count(60)
            .vulnerable_fraction(0.4)
            .tier_mix(vec![(Tier::Curated, 1.0), (Tier::RealWorld, 2.0)])
            .build();
        let split = stratified_split(&ds, 0.4, 3);
        let mut models = model_zoo(5);
        let study =
            run_agreement_study(&mut models, &split.train, &split.test, TrainingRegime::Disjoint);

        assert_eq!(study.models.len(), 5);
        assert!(study.unanimous_detection_rate <= study.top3_detection_rate.unwrap() + 1e-9);
        assert!(study.on_vulnerable.unanimous_rate <= study.on_vulnerable.mean_pairwise + 1e-9);
        assert!(study.overall.n_samples >= study.on_vulnerable.n_samples);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn one_model_rejected() {
        let ds = DatasetBuilder::new(1).vulnerable_count(4).build();
        let mut models = vec![model_zoo(1).remove(0)];
        let _ = run_agreement_study(&mut models, &ds, &ds, TrainingRegime::Shared);
    }
}
