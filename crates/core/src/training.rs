//! Security-training program simulation (Figure 1's "Security Training"
//! box and experiment E16).
//!
//! The paper: "the key reason of introducing security flaws during software
//! development is a lack of awareness … [AI-based training] has demonstrated
//! effectiveness to prevent security problems (e.g., phishing attacks)".
//! Developers carry an awareness level; periodic training raises it with
//! diminishing returns while it decays between sessions; the vulnerability
//! *introduction* rate falls accordingly.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A simulated developer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Developer {
    /// Developer id.
    pub id: u32,
    /// Security awareness in `[0, 1]`.
    pub awareness: f64,
}

/// Training-program parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainingConfig {
    /// Base probability an untrained developer introduces a flaw per change.
    pub base_introduction_rate: f64,
    /// Maximum reduction factor full awareness achieves (e.g. 0.7 → a fully
    /// aware developer introduces 70% fewer flaws).
    pub max_reduction: f64,
    /// Awareness gained per session, scaled by remaining headroom
    /// (diminishing returns).
    pub session_gain: f64,
    /// Weekly awareness decay factor.
    pub weekly_decay: f64,
    /// Weeks between training sessions (`0` disables training).
    pub cadence_weeks: usize,
    /// Whether the training is AI-personalized (targets each developer's
    /// weakest areas: larger effective gain at low awareness).
    pub personalized: bool,
}

impl Default for TrainingConfig {
    fn default() -> Self {
        TrainingConfig {
            base_introduction_rate: 0.12,
            max_reduction: 0.7,
            session_gain: 0.35,
            weekly_decay: 0.985,
            cadence_weeks: 4,
            personalized: false,
        }
    }
}

/// Weekly trace of a program run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingTrace {
    /// Mean awareness per week.
    pub mean_awareness: Vec<f64>,
    /// Observed flaw-introduction rate per week.
    pub introduction_rate: Vec<f64>,
    /// Weeks in which a session ran.
    pub session_weeks: Vec<usize>,
}

impl TrainingTrace {
    /// Introduction rate averaged over the final quarter of the run
    /// (steady-state estimate).
    pub fn steady_state_rate(&self) -> f64 {
        let n = self.introduction_rate.len();
        if n == 0 {
            return 0.0;
        }
        let tail = &self.introduction_rate[n - (n / 4).max(1)..];
        tail.iter().sum::<f64>() / tail.len() as f64
    }
}

/// Simulates `weeks` of development with `n_devs` developers making
/// `changes_per_week` changes each.
pub fn simulate(
    config: &TrainingConfig,
    n_devs: usize,
    weeks: usize,
    changes_per_week: usize,
    seed: u64,
) -> TrainingTrace {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut devs: Vec<Developer> = (0..n_devs)
        .map(|id| Developer { id: id as u32, awareness: rng.gen_range(0.0..0.3) })
        .collect();
    let mut trace = TrainingTrace {
        mean_awareness: Vec::with_capacity(weeks),
        introduction_rate: Vec::with_capacity(weeks),
        session_weeks: Vec::new(),
    };
    for week in 0..weeks {
        // Training session?
        if config.cadence_weeks > 0 && week % config.cadence_weeks == 0 {
            trace.session_weeks.push(week);
            for d in &mut devs {
                let headroom = 1.0 - d.awareness;
                let gain = if config.personalized {
                    // Personalized curricula target each developer's weakest
                    // areas, so the per-session gain strictly dominates the
                    // generic curriculum at every awareness level.
                    config.session_gain * headroom * (1.5 - 0.5 * headroom) + 0.05 * headroom
                } else {
                    config.session_gain * headroom
                };
                d.awareness = (d.awareness + gain).min(1.0);
            }
        }
        // Development activity.
        let mut flaws = 0usize;
        let mut changes = 0usize;
        for d in &mut devs {
            let rate = config.base_introduction_rate * (1.0 - config.max_reduction * d.awareness);
            for _ in 0..changes_per_week {
                changes += 1;
                if rng.gen_bool(rate.clamp(0.0, 1.0)) {
                    flaws += 1;
                }
            }
            d.awareness *= config.weekly_decay;
        }
        trace.mean_awareness.push(devs.iter().map(|d| d.awareness).sum::<f64>() / n_devs as f64);
        trace.introduction_rate.push(flaws as f64 / changes.max(1) as f64);
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn training_reduces_introduction_rate() {
        let trained = simulate(&TrainingConfig::default(), 40, 52, 25, 3);
        let untrained = simulate(
            &TrainingConfig { cadence_weeks: 0, ..TrainingConfig::default() },
            40,
            52,
            25,
            3,
        );
        assert!(
            trained.steady_state_rate() < untrained.steady_state_rate() * 0.7,
            "trained {} vs untrained {}",
            trained.steady_state_rate(),
            untrained.steady_state_rate()
        );
    }

    #[test]
    fn personalized_training_beats_generic() {
        let base = TrainingConfig::default();
        let generic = simulate(&base, 40, 52, 25, 5);
        let personal = simulate(&TrainingConfig { personalized: true, ..base }, 40, 52, 25, 5);
        assert!(personal.steady_state_rate() <= generic.steady_state_rate());
        let ga = generic.mean_awareness.last().unwrap();
        let pa = personal.mean_awareness.last().unwrap();
        assert!(pa > ga, "personalized awareness {pa} should exceed generic {ga}");
    }

    #[test]
    fn awareness_decays_without_sessions() {
        let cfg = TrainingConfig { cadence_weeks: 0, ..TrainingConfig::default() };
        let t = simulate(&cfg, 20, 30, 10, 1);
        assert!(t.session_weeks.is_empty());
        assert!(t.mean_awareness.first().unwrap() > t.mean_awareness.last().unwrap());
    }

    #[test]
    fn cadence_recorded() {
        let t = simulate(&TrainingConfig::default(), 10, 12, 5, 2);
        assert_eq!(t.session_weeks, vec![0, 4, 8]);
        assert_eq!(t.mean_awareness.len(), 12);
    }

    #[test]
    fn deterministic() {
        let a = simulate(&TrainingConfig::default(), 10, 10, 5, 9);
        let b = simulate(&TrainingConfig::default(), 10, 10, 5, 9);
        assert_eq!(a, b);
    }
}
