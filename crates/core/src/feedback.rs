//! The workflow feedback loop (the paper's declared future work).
//!
//! §V: "We leave the discussion on additional components and tools of
//! security vulnerability management (e.g., **feedback loop**, vulnerability
//! prioritization, fuzzing techniques, etc.) as our future work." This
//! module implements that loop: every triaged case the workflow produces —
//! confirmed vulnerabilities, dismissed false alarms, reviewed-clean changes
//! — becomes labeled training data, and the deployed model is periodically
//! fine-tuned on it.
//!
//! The harvested labels are *workflow outcomes, not ground truth*: a
//! vulnerability the analyst misses is recorded as benign, so the loop
//! carries realistic label noise proportional to `1 − analyst_skill`.

use crate::workflow::{WorkflowEngine, WorkflowReport};
use serde::{Deserialize, Serialize};
use vulnman_ml::pipeline::DetectionModel;
use vulnman_synth::dataset::Dataset;
use vulnman_synth::sample::Sample;

/// Labels harvested from one workflow run: every case an analyst or tool
/// actually adjudicated, labeled by the *adjudication*, not the oracle.
pub fn harvest_labels(samples: &[Sample], report: &WorkflowReport) -> Dataset {
    let mut out = Dataset::new();
    for case in &report.cases {
        // Unadjudicated changes yield no supervision.
        if !case.manually_reviewed && !case.auto_flagged {
            continue;
        }
        let Some(sample) = samples.iter().find(|s| s.id == case.sample_id) else { continue };
        let mut labeled = sample.clone();
        // The workflow's belief: confirmed (repaired) → vulnerable;
        // triaged without confirmation → benign. Analyst misses therefore
        // become false "benign" labels — the loop's inherent noise.
        labeled.observed_label = case.repaired_via.is_some();
        out.push(labeled);
    }
    out
}

/// Trace of a feedback-loop run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeedbackTrace {
    /// Standalone model F1 on the held-out evaluation set, measured before
    /// any feedback and after each batch.
    pub model_f1: Vec<f64>,
    /// Labels harvested per batch.
    pub harvested_per_batch: Vec<usize>,
    /// Fraction of harvested labels that disagree with ground truth,
    /// per batch (the loop's label noise).
    pub harvest_noise: Vec<f64>,
}

impl FeedbackTrace {
    /// F1 before any feedback.
    pub fn initial_f1(&self) -> f64 {
        *self.model_f1.first().expect("measured before batches")
    }

    /// F1 after the final batch.
    pub fn final_f1(&self) -> f64 {
        *self.model_f1.last().expect("measured after batches")
    }
}

/// Runs the feedback loop: streams `batches` through the workflow, harvests
/// adjudicated labels after each, fine-tunes `model` on them, and tracks the
/// model's standalone quality on `eval`.
///
/// The engine should include the model being tuned (via
/// `MlDetector`) *and* the incumbent tools — the loop then distils the whole
/// ecosystem's adjudications into the model. For simplicity the engine is
/// reconstructed by the caller each round via the `make_engine` closure
/// (registries own their detectors).
///
/// # Panics
///
/// Panics if `batches` or `eval` is empty, or the model is untrained.
pub fn run_feedback_loop(
    model: &mut DetectionModel,
    make_engine: impl Fn(&DetectionModel) -> WorkflowEngine,
    batches: &[Dataset],
    eval: &Dataset,
) -> FeedbackTrace {
    assert!(!batches.is_empty(), "need at least one batch");
    assert!(!eval.is_empty(), "need an evaluation set");
    assert!(model.is_trained(), "loop starts from a deployed model");
    let mut trace = FeedbackTrace {
        model_f1: vec![model.evaluate(eval).f1()],
        harvested_per_batch: Vec::new(),
        harvest_noise: Vec::new(),
    };
    for batch in batches {
        let engine = make_engine(model);
        let report = engine.process(batch.samples());
        let harvested = harvest_labels(batch.samples(), &report);
        trace.harvested_per_batch.push(harvested.len());
        trace.harvest_noise.push(harvested.mislabel_rate());
        if !harvested.is_empty() {
            model.fine_tune(&harvested);
        }
        trace.model_f1.push(model.evaluate(eval).f1());
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::{DetectorRegistry, MlDetector, RuleBasedDetector};
    use crate::workflow::WorkflowConfig;
    use vulnman_ml::pipeline::model_zoo;
    use vulnman_ml::split::stratified_split;
    use vulnman_synth::cwe::{Cwe, CweDistribution};
    use vulnman_synth::dataset::DatasetBuilder;
    use vulnman_synth::style::StyleProfile;
    use vulnman_synth::tier::Tier;

    fn team_batches(n_batches: usize, per_batch: usize) -> (Vec<Dataset>, Dataset) {
        let team = StyleProfile::internal_teams()[2].clone();
        let injection = CweDistribution::new(vec![
            (Cwe::SqlInjection, 2.0),
            (Cwe::CommandInjection, 1.0),
            (Cwe::PathTraversal, 1.0),
            (Cwe::OutOfBoundsWrite, 1.0),
        ]);
        let full = DatasetBuilder::new(88)
            .teams(vec![team])
            .vulnerable_count(per_batch * n_batches + 60)
            .vulnerable_fraction(0.35)
            .cwe_distribution(injection)
            .hard_negative_fraction(0.7)
            .tier_mix(vec![(Tier::Curated, 1.0)])
            .build();
        let split = stratified_split(&full, 0.25, 9);
        let shuffled = split.train.shuffled(4);
        let mut batches = vec![Dataset::new(); n_batches];
        for (i, s) in shuffled.iter().enumerate() {
            batches[i % n_batches].push(s.clone());
        }
        (batches, split.test)
    }

    fn make_engine(model: &DetectionModel) -> WorkflowEngine {
        // Registries own detectors: clone-by-retrain is not possible for
        // arbitrary classifiers, so register the rules plus a *snapshot*
        // model trained on the same seen-data via the public API.
        let mut registry = DetectorRegistry::new();
        registry.register(Box::new(RuleBasedDetector::standard()));
        let mut snapshot = model_zoo(71).remove(0);
        // Cheap snapshot: train on the model's own predictions is not
        // available; the rules carry adjudication, the tuned model is
        // evaluated standalone. (The ML detector in the loop engine would
        // only add recall; rules alone keep the test deterministic.)
        let tiny = DatasetBuilder::new(5).vulnerable_count(8).build();
        snapshot.train(&tiny);
        registry.register(Box::new(MlDetector::new(snapshot)));
        let _ = model;
        WorkflowEngine::new(registry, WorkflowConfig::default())
    }

    #[test]
    fn feedback_loop_improves_the_deployed_model() {
        let (batches, eval) = team_batches(4, 60);
        // Deployed model: trained on a generic mainstream corpus only.
        let generic = DatasetBuilder::new(6).vulnerable_count(120).build();
        let mut model = model_zoo(51).remove(0);
        model.train(&generic);
        let trace = run_feedback_loop(&mut model, make_engine, &batches, &eval);
        assert_eq!(trace.model_f1.len(), 5);
        assert!(
            trace.final_f1() > trace.initial_f1() + 0.03,
            "feedback should adapt the model: {:?}",
            trace.model_f1
        );
        assert!(trace.harvested_per_batch.iter().all(|&n| n > 0));
    }

    #[test]
    fn harvested_labels_come_from_adjudication_not_oracle() {
        let (batches, _) = team_batches(1, 40);
        let engine = make_engine(&{
            let mut m = model_zoo(1).remove(0);
            m.train(&DatasetBuilder::new(7).vulnerable_count(10).build());
            m
        });
        let report = engine.process(batches[0].samples());
        let harvested = harvest_labels(batches[0].samples(), &report);
        // Only adjudicated cases are harvested.
        assert!(harvested.len() <= batches[0].len());
        // Labels equal the workflow's repair decisions.
        for s in harvested.iter() {
            let case = report.cases.iter().find(|c| c.sample_id == s.id).expect("case");
            assert_eq!(s.observed_label, case.repaired_via.is_some());
        }
    }

    #[test]
    fn harvest_noise_tracks_analyst_misses() {
        let (batches, _) = team_batches(1, 60);
        let mk = |skill: f64| {
            let mut registry = DetectorRegistry::new();
            registry.register(Box::new(RuleBasedDetector::standard()));
            WorkflowEngine::new(
                registry,
                WorkflowConfig { analyst_skill: skill, ..WorkflowConfig::default() },
            )
        };
        // The rule suite catches nearly everything on this corpus, so force
        // the question onto review by comparing analyst skill extremes on
        // the *reviewed-unflagged* population: lower skill cannot produce
        // *less* noise.
        let perfect = harvest_labels(batches[0].samples(), &mk(1.0).process(batches[0].samples()));
        let sloppy = harvest_labels(batches[0].samples(), &mk(0.1).process(batches[0].samples()));
        assert!(sloppy.mislabel_rate() >= perfect.mislabel_rate());
    }
}
