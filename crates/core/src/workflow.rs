//! The industry security-vulnerability-management workflow of Figure 1.
//!
//! Pipeline per the paper: **Vulnerability Assessment** (automated detection
//! → threat-model/reachability gating → manual security review) feeding
//! **Vulnerability Repair** (auto-fix → AI suggestion → expert
//! recommendation), with **Security Training** closing the loop. The engine
//! runs either sequentially or as a staged concurrent pipeline over
//! crossbeam channels (one worker per Figure-1 box).

use crate::costmodel::{CostParams, CostReport};
use crate::detector::DetectorRegistry;
use crossbeam::channel;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use vulnman_analysis::autofix::AutoFixer;
use vulnman_analysis::detectors::RuleEngine;
use vulnman_analysis::reachability::{CallGraph, Surface};
use vulnman_ml::eval::Metrics;
use vulnman_synth::sample::Sample;

/// Tunables for the workflow engine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkflowConfig {
    /// Probability a manual reviewer catches a real vulnerability the
    /// automated stage missed.
    pub analyst_skill: f64,
    /// Minutes per manual review.
    pub review_minutes: f64,
    /// Minutes to verify one AI repair suggestion (the paper's concern:
    /// "the engineering effort required to verify these recommendations").
    pub suggestion_verify_minutes: f64,
    /// Expert hours per hand-written fix.
    pub expert_fix_hours: f64,
    /// Deterministic seed for review outcomes.
    pub seed: u64,
}

impl Default for WorkflowConfig {
    fn default() -> Self {
        WorkflowConfig {
            analyst_skill: 0.85,
            review_minutes: 30.0,
            suggestion_verify_minutes: 10.0,
            expert_fix_hours: 4.0,
            seed: 0,
        }
    }
}

/// How a confirmed vulnerability was remediated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RepairChannel {
    /// Mechanical rule-based patch (verified by re-scan).
    AutoFix,
    /// AI-suggested patch accepted after verification.
    AiSuggestion,
    /// Security expert wrote the fix.
    Expert,
}

/// One traced decision for one sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CaseOutcome {
    /// Sample id.
    pub sample_id: u64,
    /// Ground truth.
    pub truly_vulnerable: bool,
    /// Flagged by the automated assessment stage.
    pub auto_flagged: bool,
    /// Attack-surface classification of the unit's entry function.
    pub surface: Surface,
    /// Went through manual security review.
    pub manually_reviewed: bool,
    /// Caught by the manual reviewer (implies `manually_reviewed`).
    pub review_catch: bool,
    /// Repair channel used, when remediated.
    pub repaired_via: Option<RepairChannel>,
    /// The remediated source, when a patch was produced and verified.
    pub patched_source: Option<String>,
}

impl CaseOutcome {
    /// Whether the vulnerability was detected by any stage.
    pub fn detected(&self) -> bool {
        self.auto_flagged || self.review_catch
    }
}

/// Aggregate result of a workflow run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct WorkflowReport {
    /// Per-sample outcomes, in submission order.
    pub cases: Vec<CaseOutcome>,
    /// Total analyst minutes consumed (review + suggestion verification).
    pub analyst_minutes: f64,
    /// Total expert hours consumed writing fixes.
    pub expert_hours: f64,
    /// Counts per repair channel.
    pub auto_fixed: usize,
    /// AI suggestions accepted.
    pub ai_fixed: usize,
    /// Expert-written fixes.
    pub expert_fixed: usize,
    /// Vulnerable samples that escaped every stage.
    pub escaped: usize,
    /// Manual reviews skipped because the review budget ran out
    /// (capacity-limited runs only).
    pub reviews_skipped: usize,
}

impl WorkflowReport {
    /// Detection confusion matrix (detected-by-any-stage vs ground truth).
    pub fn detection_metrics(&self) -> Metrics {
        let pred: Vec<bool> = self.cases.iter().map(|c| c.detected()).collect();
        let truth: Vec<bool> = self.cases.iter().map(|c| c.truly_vulnerable).collect();
        Metrics::from_predictions(&pred, &truth)
    }

    /// Prices the run under a cost model (adds workflow labour to the
    /// confusion-matrix pricing).
    pub fn price(&self, params: &CostParams) -> CostReport {
        let mut r = crate::costmodel::price_deployment(&self.detection_metrics(), params);
        let labour = self.analyst_minutes / 60.0 * params.analyst_hourly_usd
            + self.expert_hours * params.analyst_hourly_usd;
        r.triage_cost += labour;
        r.net_value -= labour;
        r
    }

    /// Fraction of manual reviews among all cases.
    pub fn review_rate(&self) -> f64 {
        if self.cases.is_empty() {
            0.0
        } else {
            self.cases.iter().filter(|c| c.manually_reviewed).count() as f64
                / self.cases.len() as f64
        }
    }
}

/// The Figure-1 workflow engine.
pub struct WorkflowEngine {
    registry: DetectorRegistry,
    fixer: AutoFixer,
    verifier: RuleEngine,
    config: WorkflowConfig,
}

impl std::fmt::Debug for WorkflowEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkflowEngine")
            .field("registry", &self.registry)
            .field("config", &self.config)
            .finish()
    }
}

impl WorkflowEngine {
    /// Creates an engine over a detector registry.
    pub fn new(registry: DetectorRegistry, config: WorkflowConfig) -> Self {
        WorkflowEngine {
            registry,
            fixer: AutoFixer::new(),
            verifier: RuleEngine::default_suite(),
            config,
        }
    }

    /// The registered detectors.
    pub fn registry(&self) -> &DetectorRegistry {
        &self.registry
    }

    /// Processes a batch sequentially (deterministic reference execution).
    pub fn process(&self, samples: &[Sample]) -> WorkflowReport {
        let mut report = WorkflowReport::default();
        for s in samples {
            let outcome = self.process_one(s, &mut report);
            report.cases.push(outcome);
        }
        report
    }

    /// Processes a batch under a finite manual-review budget, allocating
    /// reviews by threat-model priority: zero-click surfaces first, then
    /// one-click, then flagged-but-local — the "scalability and
    /// prioritization" requirement of Gap Observation 1. With an unlimited
    /// budget this matches [`WorkflowEngine::process`] exactly.
    pub fn process_with_capacity(&self, samples: &[Sample], budget_minutes: f64) -> WorkflowReport {
        let mut report = WorkflowReport::default();
        // Phase 1: automated assessment + threat model for every change.
        let assessed: Vec<(usize, bool, Surface)> = samples
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let (flagged, _) = self.registry.verdict(s);
                (i, flagged, classify_surface(s))
            })
            .collect();
        // Phase 2: allocate the review budget by priority.
        let mut candidates: Vec<&(usize, bool, Surface)> = assessed
            .iter()
            .filter(|(_, flagged, surface)| surface.requires_manual_review() || *flagged)
            .collect();
        candidates.sort_by_key(|(i, flagged, surface)| (*surface, !*flagged, *i));
        let mut remaining = budget_minutes;
        let mut reviewed_set = std::collections::HashSet::new();
        for (i, _, _) in &candidates {
            if remaining >= self.config.review_minutes {
                remaining -= self.config.review_minutes;
                report.analyst_minutes += self.config.review_minutes;
                reviewed_set.insert(*i);
            } else {
                report.reviews_skipped += 1;
            }
        }
        // Phase 3: review outcomes + repair, per sample in submission order.
        for (i, flagged, surface) in assessed {
            let sample = &samples[i];
            let reviewed = reviewed_set.contains(&i);
            let catch =
                reviewed && sample.label && hash_unit(sample.id ^ self.config.seed) < self.config.analyst_skill;
            let mut outcome = CaseOutcome {
                sample_id: sample.id,
                truly_vulnerable: sample.label,
                auto_flagged: flagged,
                surface,
                manually_reviewed: reviewed,
                review_catch: catch,
                repaired_via: None,
                patched_source: None,
            };
            if outcome.detected() && sample.label {
                let (channel_used, patched, analyst_min, expert_h) =
                    repair(sample, &self.fixer, &self.verifier, &self.config);
                report.analyst_minutes += analyst_min;
                report.expert_hours += expert_h;
                match channel_used {
                    RepairChannel::AutoFix => report.auto_fixed += 1,
                    RepairChannel::AiSuggestion => report.ai_fixed += 1,
                    RepairChannel::Expert => report.expert_fixed += 1,
                }
                outcome.repaired_via = Some(channel_used);
                outcome.patched_source = patched;
            } else if sample.label {
                report.escaped += 1;
            }
            report.cases.push(outcome);
        }
        report
    }

    /// Processes a batch through a staged concurrent pipeline: assessment,
    /// threat-model/review, and repair each run on their own worker thread,
    /// connected by bounded crossbeam channels (back-pressure included).
    ///
    /// The report is identical to [`WorkflowEngine::process`] — per-sample
    /// decisions are seeded by sample id, not arrival order.
    pub fn process_pipelined(&self, samples: &[Sample]) -> WorkflowReport {
        let (tx_in, rx_assess) = channel::bounded::<Sample>(64);
        let (tx_assess, rx_review) = channel::bounded::<(Sample, bool, Surface)>(64);
        let (tx_review, rx_repair) = channel::bounded::<(Sample, bool, Surface, bool, bool)>(64);
        let report = Arc::new(Mutex::new(WorkflowReport::default()));

        std::thread::scope(|scope| {
            // Stage 1: automated vulnerability detection + threat model.
            let registry = &self.registry;
            scope.spawn(move || {
                for sample in rx_assess {
                    let (flagged, _) = registry.verdict(&sample);
                    let surface = classify_surface(&sample);
                    if tx_assess.send((sample, flagged, surface)).is_err() {
                        return;
                    }
                }
            });

            // Stage 2: manual security review (gated by surface).
            let config = self.config;
            let report2 = Arc::clone(&report);
            scope.spawn(move || {
                for (sample, flagged, surface) in rx_review {
                    let (reviewed, catch, minutes) =
                        manual_review(&sample, flagged, surface, &config);
                    if minutes > 0.0 {
                        report2.lock().analyst_minutes += minutes;
                    }
                    if tx_review.send((sample, flagged, surface, reviewed, catch)).is_err() {
                        return;
                    }
                }
            });

            // Stage 3: repair routing.
            let report3 = Arc::clone(&report);
            let fixer = &self.fixer;
            let verifier = &self.verifier;
            scope.spawn(move || {
                for (sample, flagged, surface, reviewed, catch) in rx_repair {
                    let mut outcome = CaseOutcome {
                        sample_id: sample.id,
                        truly_vulnerable: sample.label,
                        auto_flagged: flagged,
                        surface,
                        manually_reviewed: reviewed,
                        review_catch: catch,
                        repaired_via: None,
                        patched_source: None,
                    };
                    let mut guard = report3.lock();
                    if outcome.detected() && sample.label {
                        let (channel_used, patched, analyst_min, expert_h) =
                            repair(&sample, fixer, verifier, &config);
                        guard.analyst_minutes += analyst_min;
                        guard.expert_hours += expert_h;
                        match channel_used {
                            RepairChannel::AutoFix => guard.auto_fixed += 1,
                            RepairChannel::AiSuggestion => guard.ai_fixed += 1,
                            RepairChannel::Expert => guard.expert_fixed += 1,
                        }
                        outcome.repaired_via = Some(channel_used);
                        outcome.patched_source = patched;
                    } else if sample.label {
                        guard.escaped += 1;
                    }
                    guard.cases.push(outcome);
                }
            });

            for s in samples {
                tx_in.send(s.clone()).expect("pipeline input");
            }
            drop(tx_in);
        });

        let mut report = Arc::try_unwrap(report).expect("pipeline done").into_inner();
        report.cases.sort_by_key(|c| {
            samples.iter().position(|s| s.id == c.sample_id).unwrap_or(usize::MAX)
        });
        report
    }

    fn process_one(&self, sample: &Sample, report: &mut WorkflowReport) -> CaseOutcome {
        // Stage 1: automated detection (Figure 1, "Vulnerability Detection").
        let (flagged, _assessments) = self.registry.verdict(sample);
        // Threat modeling / reachability analysis.
        let surface = classify_surface(sample);
        // Stage 2: manual security review for exposed surfaces.
        let (reviewed, catch, minutes) = manual_review(sample, flagged, surface, &self.config);
        report.analyst_minutes += minutes;

        let mut outcome = CaseOutcome {
            sample_id: sample.id,
            truly_vulnerable: sample.label,
            auto_flagged: flagged,
            surface,
            manually_reviewed: reviewed,
            review_catch: catch,
            repaired_via: None,
            patched_source: None,
        };

        // Stage 3: repair (only real, detected vulnerabilities get patched;
        // false alarms burn triage time, which manual_review accounted for).
        if outcome.detected() && sample.label {
            let (channel_used, patched, analyst_min, expert_h) =
                repair(sample, &self.fixer, &self.verifier, &self.config);
            report.analyst_minutes += analyst_min;
            report.expert_hours += expert_h;
            match channel_used {
                RepairChannel::AutoFix => report.auto_fixed += 1,
                RepairChannel::AiSuggestion => report.ai_fixed += 1,
                RepairChannel::Expert => report.expert_fixed += 1,
            }
            outcome.repaired_via = Some(channel_used);
            outcome.patched_source = patched;
        } else if sample.label {
            report.escaped += 1;
        }
        outcome
    }
}

/// Threat-model stage: surface of the sample's unit (most exposed function).
fn classify_surface(sample: &Sample) -> Surface {
    match vulnman_lang::parse(&sample.source) {
        Ok(program) => {
            let graph = CallGraph::build(&program);
            graph
                .surfaces()
                .into_values()
                .min() // ZeroClick < OneClick < Local
                .unwrap_or(Surface::Local)
        }
        Err(_) => Surface::Local,
    }
}

/// Manual-review stage. Returns `(reviewed, caught, analyst_minutes)`.
fn manual_review(
    sample: &Sample,
    auto_flagged: bool,
    surface: Surface,
    config: &WorkflowConfig,
) -> (bool, bool, f64) {
    // Figure 1: zero/one-click surfaces trigger manual review; flagged
    // samples are triaged regardless.
    let reviewed = surface.requires_manual_review() || auto_flagged;
    if !reviewed {
        return (false, false, 0.0);
    }
    let minutes = config.review_minutes;
    // Deterministic pseudo-random analyst outcome per sample.
    let catch = sample.label && hash_unit(sample.id ^ config.seed) < config.analyst_skill;
    (true, catch, minutes)
}

/// Repair stage: auto-fix → AI suggestion → expert.
/// Returns `(channel, patched_source, analyst_minutes, expert_hours)`.
fn repair(
    sample: &Sample,
    fixer: &AutoFixer,
    verifier: &RuleEngine,
    config: &WorkflowConfig,
) -> (RepairChannel, Option<String>, f64, f64) {
    if let Some(cwe) = sample.cwe {
        if AutoFixer::supports(cwe) {
            if let Some(patched) = fixer.fix_source(&sample.source, cwe) {
                let clean = verifier
                    .scan_source(&patched)
                    .map(|fs| fs.iter().all(|f| f.cwe != cwe))
                    .unwrap_or(false);
                if clean {
                    return (RepairChannel::AutoFix, Some(patched), 0.0, 0.0);
                }
            }
        }
        // AI suggestion: plausible for the remaining mechanical-ish classes,
        // but costs verification time and is rejected when wrong.
        let suggestion_ok = hash_unit(sample.id.wrapping_mul(31) ^ config.seed) < 0.5;
        if suggestion_ok {
            return (
                RepairChannel::AiSuggestion,
                None,
                config.suggestion_verify_minutes,
                0.0,
            );
        }
        return (
            RepairChannel::Expert,
            None,
            config.suggestion_verify_minutes, // time spent rejecting the suggestion
            config.expert_fix_hours,
        );
    }
    (RepairChannel::Expert, None, 0.0, config.expert_fix_hours)
}

/// Maps a u64 to a deterministic uniform in `[0, 1)` (splitmix64 finalizer).
fn hash_unit(mut x: u64) -> f64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^= x >> 31;
    (x >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::{DetectorRegistry, RuleBasedDetector};
    use vulnman_synth::cwe::Cwe;
    use vulnman_synth::dataset::DatasetBuilder;
    use vulnman_synth::generator::SampleGenerator;
    use vulnman_synth::style::StyleProfile;
    use vulnman_synth::tier::Tier;

    fn engine() -> WorkflowEngine {
        let mut registry = DetectorRegistry::new();
        registry.register(Box::new(RuleBasedDetector::standard()));
        WorkflowEngine::new(registry, WorkflowConfig::default())
    }

    fn corpus() -> Vec<Sample> {
        DatasetBuilder::new(11)
            .vulnerable_count(20)
            .vulnerable_fraction(0.4)
            .build()
            .samples()
            .to_vec()
    }

    #[test]
    fn detected_vulnerabilities_get_repaired() {
        let report = engine().process(&corpus());
        let repaired = report.auto_fixed + report.ai_fixed + report.expert_fixed;
        assert!(repaired > 0);
        assert_eq!(
            repaired + report.escaped,
            report.cases.iter().filter(|c| c.truly_vulnerable).count()
        );
    }

    #[test]
    fn auto_fix_produces_verified_patches() {
        let mut g = SampleGenerator::new(5, StyleProfile::mainstream());
        let (v, _) = g.vulnerable_pair(Cwe::SqlInjection, Tier::Simple, "p");
        let report = engine().process(&[v]);
        assert_eq!(report.auto_fixed, 1);
        let patched = report.cases[0].patched_source.as_ref().expect("patch");
        assert!(patched.contains("escape_sql"));
    }

    #[test]
    fn exposed_surfaces_reviewed_per_figure1() {
        let report = engine().process(&corpus());
        for c in &report.cases {
            if c.surface.requires_manual_review() {
                assert!(c.manually_reviewed, "exposed case {} must be reviewed", c.sample_id);
            }
        }
        assert!(report.review_rate() > 0.0);
        assert!(report.analyst_minutes > 0.0);
    }

    #[test]
    fn detection_metrics_reflect_rule_quality() {
        let report = engine().process(&corpus());
        let m = report.detection_metrics();
        assert!(m.recall() > 0.8, "rules + review should catch most: {:?}", m);
        assert!(m.precision() > 0.8);
    }

    #[test]
    fn pipelined_matches_sequential() {
        let samples = corpus();
        let e = engine();
        let seq = e.process(&samples);
        let pipe = e.process_pipelined(&samples);
        assert_eq!(seq.detection_metrics(), pipe.detection_metrics());
        assert_eq!(seq.auto_fixed, pipe.auto_fixed);
        assert_eq!(seq.expert_fixed, pipe.expert_fixed);
        assert_eq!(seq.escaped, pipe.escaped);
        assert!((seq.analyst_minutes - pipe.analyst_minutes).abs() < 1e-9);
        let ids: Vec<u64> = pipe.cases.iter().map(|c| c.sample_id).collect();
        let expected: Vec<u64> = samples.iter().map(|s| s.id).collect();
        assert_eq!(ids, expected, "pipeline preserves submission order in the report");
    }

    #[test]
    fn unlimited_capacity_matches_plain_processing() {
        let samples = corpus();
        let e = engine();
        let plain = e.process(&samples);
        let capped = e.process_with_capacity(&samples, f64::INFINITY);
        assert_eq!(plain.detection_metrics(), capped.detection_metrics());
        assert_eq!(plain.auto_fixed, capped.auto_fixed);
        assert_eq!(plain.escaped, capped.escaped);
        assert_eq!(capped.reviews_skipped, 0);
    }

    #[test]
    fn tight_capacity_skips_reviews_and_lets_vulns_escape() {
        let samples = corpus();
        let e = engine();
        let full = e.process_with_capacity(&samples, f64::INFINITY);
        let starved = e.process_with_capacity(&samples, 0.0);
        assert!(starved.reviews_skipped > 0);
        assert!(starved.analyst_minutes < full.analyst_minutes);
        // With no reviews, only auto-flagged vulns are repaired.
        assert!(starved.escaped >= full.escaped);
    }

    #[test]
    fn scarce_reviews_go_to_exposed_surfaces_first() {
        let samples = corpus();
        let e = engine();
        // Budget for exactly three reviews.
        let cfg = WorkflowConfig::default();
        let r = e.process_with_capacity(&samples, cfg.review_minutes * 3.0);
        let reviewed: Vec<Surface> =
            r.cases.iter().filter(|c| c.manually_reviewed).map(|c| c.surface).collect();
        let skipped: Vec<Surface> = r
            .cases
            .iter()
            .filter(|c| !c.manually_reviewed && c.surface.requires_manual_review())
            .map(|c| c.surface)
            .collect();
        assert_eq!(reviewed.len(), 3);
        // No skipped candidate outranks a reviewed one.
        for s in &skipped {
            for done in &reviewed {
                assert!(done <= s, "reviewed {done:?} vs skipped {s:?}");
            }
        }
    }

    #[test]
    fn pricing_adds_labour() {
        let report = engine().process(&corpus());
        let params = CostParams::default();
        let priced = report.price(&params);
        let bare = crate::costmodel::price_deployment(&report.detection_metrics(), &params);
        assert!(priced.triage_cost > bare.triage_cost);
    }

    #[test]
    fn deterministic_across_runs() {
        let samples = corpus();
        let a = engine().process(&samples);
        let b = engine().process(&samples);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_batch_is_fine() {
        let report = engine().process(&[]);
        assert!(report.cases.is_empty());
        assert_eq!(report.review_rate(), 0.0);
    }

    #[test]
    fn hash_unit_is_uniformish() {
        let n = 10_000;
        let mean: f64 = (0..n).map(hash_unit).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "{mean}");
    }
}
