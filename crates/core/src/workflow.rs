//! The industry security-vulnerability-management workflow of Figure 1.
//!
//! Pipeline per the paper: **Vulnerability Assessment** (automated detection
//! → threat-model/reachability gating → manual security review) feeding
//! **Vulnerability Repair** (auto-fix → AI suggestion → expert
//! recommendation), with **Security Training** closing the loop. The engine
//! runs either sequentially or as a staged concurrent pipeline over
//! crossbeam channels (one worker per Figure-1 box).

use crate::costmodel::{CostParams, CostReport};
use crate::detector::DetectorRegistry;
use crossbeam::channel;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use vulnman_analysis::autofix::AutoFixer;
use vulnman_analysis::detectors::RuleEngine;
use vulnman_analysis::finding::Finding;
use vulnman_analysis::reachability::{CallGraph, Surface};
use vulnman_lang::{AnalysisCache, CacheStats};
use vulnman_ml::eval::Metrics;
use vulnman_obs::{Registry, Snapshot};
use vulnman_synth::sample::Sample;

/// Tunables for the workflow engine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkflowConfig {
    /// Probability a manual reviewer catches a real vulnerability the
    /// automated stage missed.
    pub analyst_skill: f64,
    /// Minutes per manual review.
    pub review_minutes: f64,
    /// Minutes to verify one AI repair suggestion (the paper's concern:
    /// "the engineering effort required to verify these recommendations").
    pub suggestion_verify_minutes: f64,
    /// Expert hours per hand-written fix.
    pub expert_fix_hours: f64,
    /// Deterministic seed for review outcomes.
    pub seed: u64,
    /// Worker threads for [`WorkflowEngine::process`]: the corpus is
    /// sharded across this many scoped threads. `1` (the default) runs the
    /// sequential reference path; any value produces a byte-identical
    /// report.
    pub jobs: usize,
    /// Whether the engine memoizes source-derived analyses (parse, rule
    /// findings, surface classification) in a content-addressed cache.
    /// Caching never changes results, only repeated work.
    pub cache: bool,
}

impl Default for WorkflowConfig {
    fn default() -> Self {
        WorkflowConfig {
            analyst_skill: 0.85,
            review_minutes: 30.0,
            suggestion_verify_minutes: 10.0,
            expert_fix_hours: 4.0,
            seed: 0,
            jobs: 1,
            cache: true,
        }
    }
}

/// How a confirmed vulnerability was remediated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RepairChannel {
    /// Mechanical rule-based patch (verified by re-scan).
    AutoFix,
    /// AI-suggested patch accepted after verification.
    AiSuggestion,
    /// Security expert wrote the fix.
    Expert,
}

/// One traced decision for one sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CaseOutcome {
    /// Sample id.
    pub sample_id: u64,
    /// Ground truth.
    pub truly_vulnerable: bool,
    /// Flagged by the automated assessment stage.
    pub auto_flagged: bool,
    /// Attack-surface classification of the unit's entry function.
    pub surface: Surface,
    /// Went through manual security review.
    pub manually_reviewed: bool,
    /// Caught by the manual reviewer (implies `manually_reviewed`).
    pub review_catch: bool,
    /// Structured findings from the assessment stage, merged across
    /// detectors in a deterministic order: detector name, then span, then
    /// CWE, then message. (Cases themselves are kept in submission order,
    /// so the report-wide ordering is sample, detector, span.)
    pub findings: Vec<Finding>,
    /// Repair channel used, when remediated.
    pub repaired_via: Option<RepairChannel>,
    /// The remediated source, when a patch was produced and verified.
    pub patched_source: Option<String>,
}

impl CaseOutcome {
    /// Whether the vulnerability was detected by any stage.
    pub fn detected(&self) -> bool {
        self.auto_flagged || self.review_catch
    }
}

/// Aggregate result of a workflow run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct WorkflowReport {
    /// Per-sample outcomes, in submission order.
    pub cases: Vec<CaseOutcome>,
    /// Total analyst minutes consumed (review + suggestion verification).
    pub analyst_minutes: f64,
    /// Total expert hours consumed writing fixes.
    pub expert_hours: f64,
    /// Counts per repair channel.
    pub auto_fixed: usize,
    /// AI suggestions accepted.
    pub ai_fixed: usize,
    /// Expert-written fixes.
    pub expert_fixed: usize,
    /// Vulnerable samples that escaped every stage.
    pub escaped: usize,
    /// Manual reviews skipped because the review budget ran out
    /// (capacity-limited runs only).
    pub reviews_skipped: usize,
}

impl WorkflowReport {
    /// Detection confusion matrix (detected-by-any-stage vs ground truth).
    pub fn detection_metrics(&self) -> Metrics {
        let pred: Vec<bool> = self.cases.iter().map(|c| c.detected()).collect();
        let truth: Vec<bool> = self.cases.iter().map(|c| c.truly_vulnerable).collect();
        Metrics::from_predictions(&pred, &truth)
    }

    /// Prices the run under a cost model (adds workflow labour to the
    /// confusion-matrix pricing).
    pub fn price(&self, params: &CostParams) -> CostReport {
        let mut r = crate::costmodel::price_deployment(&self.detection_metrics(), params);
        let labour = self.analyst_minutes / 60.0 * params.analyst_hourly_usd
            + self.expert_hours * params.analyst_hourly_usd;
        r.triage_cost += labour;
        r.net_value -= labour;
        r
    }

    /// Fraction of manual reviews among all cases.
    pub fn review_rate(&self) -> f64 {
        if self.cases.is_empty() {
            0.0
        } else {
            self.cases.iter().filter(|c| c.manually_reviewed).count() as f64
                / self.cases.len() as f64
        }
    }
}

/// The Figure-1 workflow engine.
pub struct WorkflowEngine {
    registry: DetectorRegistry,
    fixer: AutoFixer,
    verifier: RuleEngine,
    config: WorkflowConfig,
    cache: AnalysisCache,
    metrics: Registry,
}

/// Every instrument name the engine emits, pre-registered at construction
/// so the exported metrics schema does not depend on which processing path
/// (sequential, sharded, pipelined, capacity-limited) a run happens to
/// take. Stage spans land in `span.<name>` histograms.
const ENGINE_SPANS: [&str; 11] = [
    "stage.assess",
    "stage.assess.detect",
    "stage.assess.surface",
    "stage.review",
    "stage.repair",
    "pipeline.assess",
    "pipeline.review",
    "pipeline.repair",
    "capacity.assess",
    "capacity.allocate",
    "capacity.resolve",
];

/// Output of the assessment + threat-model stages for one sample.
struct Assessed {
    flagged: bool,
    surface: Surface,
    findings: Vec<Finding>,
}

/// The complete, order-independent result of processing one sample: the
/// traced outcome plus the labour it consumed. Produced by the pure
/// per-sample path ([`WorkflowEngine::assess_one`]) and folded into a
/// [`WorkflowReport`] by [`WorkflowEngine::reduce`] in submission order, so
/// sequential and sharded runs accumulate floating-point totals in exactly
/// the same order and the reports are byte-identical.
struct CaseWork {
    outcome: CaseOutcome,
    review_minutes: f64,
    repair_minutes: f64,
    expert_hours: f64,
}

impl std::fmt::Debug for WorkflowEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkflowEngine")
            .field("registry", &self.registry)
            .field("config", &self.config)
            .finish()
    }
}

impl WorkflowEngine {
    /// Creates an engine over a detector registry, recording metrics into a
    /// fresh enabled [`Registry`] (read it back via
    /// [`WorkflowEngine::metrics`]).
    pub fn new(registry: DetectorRegistry, config: WorkflowConfig) -> Self {
        WorkflowEngine::with_metrics(registry, config, Registry::new())
    }

    /// Creates an engine recording into `metrics` — pass
    /// [`Registry::noop`] to strip instrumentation down to predicted
    /// branches (the benchmark baseline), or a shared registry to fold the
    /// engine's counters into a larger snapshot.
    ///
    /// The full instrument schema (stage spans, shard histograms, cache
    /// and per-detector counters) is registered here, up front, so two
    /// runs with different `jobs`/`cache` settings export identical metric
    /// key sets.
    pub fn with_metrics(
        mut registry: DetectorRegistry,
        config: WorkflowConfig,
        metrics: Registry,
    ) -> Self {
        for span in ENGINE_SPANS {
            metrics.histogram(&format!("span.{span}"));
        }
        metrics.counter("workflow.samples");
        metrics.histogram("shard.queue_depth");
        metrics.histogram("shard.latency_micros");
        registry.attach_metrics(metrics.clone());
        let cache = if config.cache {
            AnalysisCache::with_metrics(&metrics)
        } else {
            AnalysisCache::disabled_with_metrics(&metrics)
        };
        WorkflowEngine {
            registry,
            fixer: AutoFixer::new(),
            verifier: RuleEngine::default_suite(),
            cache,
            config,
            metrics,
        }
    }

    /// The registered detectors.
    pub fn registry(&self) -> &DetectorRegistry {
        &self.registry
    }

    /// The engine's configuration.
    pub fn config(&self) -> &WorkflowConfig {
        &self.config
    }

    /// The engine's metrics registry (per-stage spans, shard histograms,
    /// cache counters, per-detector timings).
    pub fn metrics(&self) -> &Registry {
        &self.metrics
    }

    /// A frozen snapshot of every instrument.
    pub fn metrics_snapshot(&self) -> Snapshot {
        self.metrics.snapshot()
    }

    /// Hit/miss counters of the engine's analysis cache, read from the
    /// metrics registry's `cache.*` counters — the cache's single set of
    /// bookkeeping.
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.metrics.counter("cache.hits").get(),
            misses: self.metrics.counter("cache.misses").get(),
        }
    }

    /// Drops all memoized analysis results (e.g. between benchmark runs).
    pub fn clear_cache(&self) {
        self.cache.clear();
    }

    /// Processes a batch, sharding it across [`WorkflowConfig::jobs`]
    /// worker threads (sequentially when `jobs <= 1`). Per-sample decisions
    /// are pure functions of the sample and the seed, and labour totals are
    /// folded in submission order regardless of which shard computed them,
    /// so the report is byte-identical for every `jobs` value.
    pub fn process(&self, samples: &[Sample]) -> WorkflowReport {
        let jobs = self.config.jobs.max(1);
        if jobs == 1 || samples.len() < 2 {
            self.metrics.counter("workflow.samples").add(samples.len() as u64);
            return Self::reduce(samples.iter().map(|s| self.assess_one(s)).collect());
        }
        self.process_sharded(samples, jobs)
    }

    /// Processes a batch across exactly `jobs` scoped worker threads,
    /// overriding the configured job count. Shards are contiguous slices of
    /// the input; results are concatenated in shard order (= submission
    /// order) before the fold, so output equals the sequential path's.
    pub fn process_sharded(&self, samples: &[Sample], jobs: usize) -> WorkflowReport {
        let jobs = jobs.clamp(1, samples.len().max(1));
        let chunk = samples.len().div_ceil(jobs);
        self.metrics.counter("workflow.samples").add(samples.len() as u64);
        let depth = self.metrics.histogram("shard.queue_depth");
        let latency = self.metrics.histogram("shard.latency_micros");
        let mut work: Vec<CaseWork> = Vec::with_capacity(samples.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = samples
                .chunks(chunk.max(1))
                .map(|shard| {
                    let depth = depth.clone();
                    let latency = latency.clone();
                    scope.spawn(move || {
                        depth.observe(shard.len() as u64);
                        let t0 = latency.is_enabled().then(std::time::Instant::now);
                        let out =
                            shard.iter().map(|s| self.assess_one(s)).collect::<Vec<CaseWork>>();
                        if let Some(t0) = t0 {
                            latency.observe_duration(t0.elapsed());
                        }
                        out
                    })
                })
                .collect();
            for handle in handles {
                work.extend(handle.join().expect("workflow shard panicked"));
            }
        });
        Self::reduce(work)
    }

    /// Processes a batch under a finite manual-review budget, allocating
    /// reviews by threat-model priority: zero-click surfaces first, then
    /// one-click, then flagged-but-local — the "scalability and
    /// prioritization" requirement of Gap Observation 1. With an unlimited
    /// budget this matches [`WorkflowEngine::process`] exactly.
    pub fn process_with_capacity(&self, samples: &[Sample], budget_minutes: f64) -> WorkflowReport {
        self.metrics.counter("workflow.samples").add(samples.len() as u64);
        let mut report = WorkflowReport::default();
        // Phase 1: automated assessment + threat model for every change.
        let assess_span = self.metrics.span("capacity.assess");
        let assessed: Vec<(usize, Assessed)> =
            samples.iter().enumerate().map(|(i, s)| (i, self.assess_stage(s))).collect();
        assess_span.stop();
        // Phase 2: allocate the review budget by priority.
        let allocate_span = self.metrics.span("capacity.allocate");
        let mut candidates: Vec<&(usize, Assessed)> = assessed
            .iter()
            .filter(|(_, a)| a.surface.requires_manual_review() || a.flagged)
            .collect();
        candidates.sort_by_key(|(i, a)| (a.surface, !a.flagged, *i));
        let mut remaining = budget_minutes;
        let mut reviewed_set = std::collections::HashSet::new();
        for (i, _) in &candidates {
            if remaining >= self.config.review_minutes {
                remaining -= self.config.review_minutes;
                report.analyst_minutes += self.config.review_minutes;
                reviewed_set.insert(*i);
            } else {
                report.reviews_skipped += 1;
            }
        }
        allocate_span.stop();
        // Phase 3: review outcomes + repair, per sample in submission order.
        let resolve_span = self.metrics.span("capacity.resolve");
        for (i, Assessed { flagged, surface, findings }) in assessed {
            let sample = &samples[i];
            let reviewed = reviewed_set.contains(&i);
            let catch = reviewed
                && sample.label
                && hash_unit(sample.id ^ self.config.seed) < self.config.analyst_skill;
            let mut outcome = CaseOutcome {
                sample_id: sample.id,
                truly_vulnerable: sample.label,
                auto_flagged: flagged,
                surface,
                manually_reviewed: reviewed,
                review_catch: catch,
                findings,
                repaired_via: None,
                patched_source: None,
            };
            if outcome.detected() && sample.label {
                let (channel_used, patched, analyst_min, expert_h) =
                    repair(sample, &self.fixer, &self.verifier, &self.config, &self.cache);
                report.analyst_minutes += analyst_min;
                report.expert_hours += expert_h;
                match channel_used {
                    RepairChannel::AutoFix => report.auto_fixed += 1,
                    RepairChannel::AiSuggestion => report.ai_fixed += 1,
                    RepairChannel::Expert => report.expert_fixed += 1,
                }
                outcome.repaired_via = Some(channel_used);
                outcome.patched_source = patched;
            } else if sample.label {
                report.escaped += 1;
            }
            report.cases.push(outcome);
        }
        resolve_span.stop();
        report
    }

    /// Processes a batch through a staged concurrent pipeline: assessment,
    /// threat-model/review, and repair each run on their own worker thread,
    /// connected by bounded crossbeam channels (back-pressure included).
    ///
    /// The report is identical to [`WorkflowEngine::process`] — per-sample
    /// decisions are seeded by sample id, not arrival order.
    pub fn process_pipelined(&self, samples: &[Sample]) -> WorkflowReport {
        let (tx_in, rx_assess) = channel::bounded::<Sample>(64);
        let (tx_assess, rx_review) = channel::bounded::<(Sample, Assessed)>(64);
        let (tx_review, rx_repair) = channel::bounded::<(Sample, Assessed, bool, bool)>(64);
        let report = Arc::new(Mutex::new(WorkflowReport::default()));

        self.metrics.counter("workflow.samples").add(samples.len() as u64);
        std::thread::scope(|scope| {
            // Stage 1: automated vulnerability detection + threat model.
            // Each stage worker runs under one span covering the batch, so
            // the summary shows where pipeline wall-clock is spent.
            let metrics1 = self.metrics.clone();
            scope.spawn(move || {
                let _span = metrics1.span("pipeline.assess");
                for sample in rx_assess {
                    let assessed = self.assess_stage(&sample);
                    if tx_assess.send((sample, assessed)).is_err() {
                        return;
                    }
                }
            });

            // Stage 2: manual security review (gated by surface).
            let config = self.config;
            let report2 = Arc::clone(&report);
            let metrics2 = self.metrics.clone();
            scope.spawn(move || {
                let _span = metrics2.span("pipeline.review");
                for (sample, assessed) in rx_review {
                    let (reviewed, catch, minutes) =
                        manual_review(&sample, assessed.flagged, assessed.surface, &config);
                    if minutes > 0.0 {
                        report2.lock().analyst_minutes += minutes;
                    }
                    if tx_review.send((sample, assessed, reviewed, catch)).is_err() {
                        return;
                    }
                }
            });

            // Stage 3: repair routing.
            let report3 = Arc::clone(&report);
            let fixer = &self.fixer;
            let verifier = &self.verifier;
            let cache = &self.cache;
            let metrics3 = self.metrics.clone();
            scope.spawn(move || {
                let _span = metrics3.span("pipeline.repair");
                for (sample, assessed, reviewed, catch) in rx_repair {
                    let Assessed { flagged, surface, findings } = assessed;
                    let mut outcome = CaseOutcome {
                        sample_id: sample.id,
                        truly_vulnerable: sample.label,
                        auto_flagged: flagged,
                        surface,
                        manually_reviewed: reviewed,
                        review_catch: catch,
                        findings,
                        repaired_via: None,
                        patched_source: None,
                    };
                    let mut guard = report3.lock();
                    if outcome.detected() && sample.label {
                        let (channel_used, patched, analyst_min, expert_h) =
                            repair(&sample, fixer, verifier, &config, cache);
                        guard.analyst_minutes += analyst_min;
                        guard.expert_hours += expert_h;
                        match channel_used {
                            RepairChannel::AutoFix => guard.auto_fixed += 1,
                            RepairChannel::AiSuggestion => guard.ai_fixed += 1,
                            RepairChannel::Expert => guard.expert_fixed += 1,
                        }
                        outcome.repaired_via = Some(channel_used);
                        outcome.patched_source = patched;
                    } else if sample.label {
                        guard.escaped += 1;
                    }
                    guard.cases.push(outcome);
                }
            });

            for s in samples {
                tx_in.send(s.clone()).expect("pipeline input");
            }
            drop(tx_in);
        });

        let mut report = Arc::try_unwrap(report).expect("pipeline done").into_inner();
        report.cases.sort_by_key(|c| {
            samples.iter().position(|s| s.id == c.sample_id).unwrap_or(usize::MAX)
        });
        report
    }

    /// Stage 1 + threat model: detector verdicts and surface classification
    /// for one sample, with findings merged across detectors in the
    /// deterministic (detector, span, CWE, message) order.
    fn assess_stage(&self, sample: &Sample) -> Assessed {
        let span = self.metrics.span("stage.assess");
        let detect = self.metrics.child_span(&span, "detect");
        let (flagged, assessments) = self.registry.verdict_cached(sample, &self.cache);
        detect.stop();
        let surface_span = self.metrics.child_span(&span, "surface");
        let surface = self.classify_surface(sample);
        surface_span.stop();
        let mut findings: Vec<Finding> = assessments.into_iter().flat_map(|a| a.findings).collect();
        findings.sort_by(|a, b| {
            a.detector
                .cmp(&b.detector)
                .then(a.span.cmp(&b.span))
                .then(a.cwe.id().cmp(&b.cwe.id()))
                .then(a.message.cmp(&b.message))
        });
        Assessed { flagged, surface, findings }
    }

    /// Threat-model stage: surface of the sample's unit (most exposed
    /// function), memoized per unique source content.
    fn classify_surface(&self, sample: &Sample) -> Surface {
        *self.cache.analysis(&sample.source, "surface", 0, || {
            match self.cache.parse(&sample.source) {
                Ok(program) => {
                    let graph = CallGraph::build(&program);
                    graph
                        .surfaces()
                        .into_values()
                        .min() // ZeroClick < OneClick < Local
                        .unwrap_or(Surface::Local)
                }
                Err(_) => Surface::Local,
            }
        })
    }

    /// Runs all three Figure-1 stages for one sample. Pure with respect to
    /// batch state: the result depends only on the sample, the seed, and
    /// the detector suite — never on which thread or position processed it.
    fn assess_one(&self, sample: &Sample) -> CaseWork {
        // Stage 1: automated detection (Figure 1, "Vulnerability Detection")
        // + threat modeling / reachability analysis.
        let Assessed { flagged, surface, findings } = self.assess_stage(sample);
        // Stage 2: manual security review for exposed surfaces.
        let review_span = self.metrics.span("stage.review");
        let (reviewed, catch, review_minutes) =
            manual_review(sample, flagged, surface, &self.config);
        review_span.stop();

        let mut outcome = CaseOutcome {
            sample_id: sample.id,
            truly_vulnerable: sample.label,
            auto_flagged: flagged,
            surface,
            manually_reviewed: reviewed,
            review_catch: catch,
            findings,
            repaired_via: None,
            patched_source: None,
        };

        // Stage 3: repair (only real, detected vulnerabilities get patched;
        // false alarms burn triage time, which manual_review accounted for).
        let mut repair_minutes = 0.0;
        let mut expert_hours = 0.0;
        if outcome.detected() && sample.label {
            let repair_span = self.metrics.span("stage.repair");
            let (channel_used, patched, analyst_min, expert_h) =
                repair(sample, &self.fixer, &self.verifier, &self.config, &self.cache);
            repair_span.stop();
            repair_minutes = analyst_min;
            expert_hours = expert_h;
            outcome.repaired_via = Some(channel_used);
            outcome.patched_source = patched;
        }
        CaseWork { outcome, review_minutes, repair_minutes, expert_hours }
    }

    /// Folds per-case results into the aggregate report, in submission
    /// order. Both the sequential and the sharded path run this exact fold,
    /// which pins the floating-point accumulation order (review minutes
    /// before repair minutes, case by case) and therefore makes the two
    /// paths bit-identical.
    fn reduce(work: Vec<CaseWork>) -> WorkflowReport {
        let mut report = WorkflowReport::default();
        for w in work {
            report.analyst_minutes += w.review_minutes;
            report.analyst_minutes += w.repair_minutes;
            report.expert_hours += w.expert_hours;
            match w.outcome.repaired_via {
                Some(RepairChannel::AutoFix) => report.auto_fixed += 1,
                Some(RepairChannel::AiSuggestion) => report.ai_fixed += 1,
                Some(RepairChannel::Expert) => report.expert_fixed += 1,
                None if w.outcome.truly_vulnerable => report.escaped += 1,
                None => {}
            }
            report.cases.push(w.outcome);
        }
        report
    }
}

/// Manual-review stage. Returns `(reviewed, caught, analyst_minutes)`.
fn manual_review(
    sample: &Sample,
    auto_flagged: bool,
    surface: Surface,
    config: &WorkflowConfig,
) -> (bool, bool, f64) {
    // Figure 1: zero/one-click surfaces trigger manual review; flagged
    // samples are triaged regardless.
    let reviewed = surface.requires_manual_review() || auto_flagged;
    if !reviewed {
        return (false, false, 0.0);
    }
    let minutes = config.review_minutes;
    // Deterministic pseudo-random analyst outcome per sample.
    let catch = sample.label && hash_unit(sample.id ^ config.seed) < config.analyst_skill;
    (true, catch, minutes)
}

/// Repair stage: auto-fix → AI suggestion → expert.
/// Returns `(channel, patched_source, analyst_minutes, expert_hours)`.
fn repair(
    sample: &Sample,
    fixer: &AutoFixer,
    verifier: &RuleEngine,
    config: &WorkflowConfig,
    cache: &AnalysisCache,
) -> (RepairChannel, Option<String>, f64, f64) {
    if let Some(cwe) = sample.cwe {
        if AutoFixer::supports(cwe) {
            if let Some(patched) = fixer.fix_source(&sample.source, cwe) {
                let clean = verifier
                    .scan_source_cached(&patched, cache)
                    .map(|fs| fs.iter().all(|f| f.cwe != cwe))
                    .unwrap_or(false);
                if clean {
                    return (RepairChannel::AutoFix, Some(patched), 0.0, 0.0);
                }
            }
        }
        // AI suggestion: plausible for the remaining mechanical-ish classes,
        // but costs verification time and is rejected when wrong.
        let suggestion_ok = hash_unit(sample.id.wrapping_mul(31) ^ config.seed) < 0.5;
        if suggestion_ok {
            return (RepairChannel::AiSuggestion, None, config.suggestion_verify_minutes, 0.0);
        }
        return (
            RepairChannel::Expert,
            None,
            config.suggestion_verify_minutes, // time spent rejecting the suggestion
            config.expert_fix_hours,
        );
    }
    (RepairChannel::Expert, None, 0.0, config.expert_fix_hours)
}

/// Maps a u64 to a deterministic uniform in `[0, 1)` (splitmix64 finalizer).
fn hash_unit(mut x: u64) -> f64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^= x >> 31;
    (x >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::{DetectorRegistry, RuleBasedDetector};
    use vulnman_synth::cwe::Cwe;
    use vulnman_synth::dataset::DatasetBuilder;
    use vulnman_synth::generator::SampleGenerator;
    use vulnman_synth::style::StyleProfile;
    use vulnman_synth::tier::Tier;

    fn engine() -> WorkflowEngine {
        let mut registry = DetectorRegistry::new();
        registry.register(Box::new(RuleBasedDetector::standard()));
        WorkflowEngine::new(registry, WorkflowConfig::default())
    }

    fn corpus() -> Vec<Sample> {
        DatasetBuilder::new(11)
            .vulnerable_count(20)
            .vulnerable_fraction(0.4)
            .build()
            .samples()
            .to_vec()
    }

    #[test]
    fn detected_vulnerabilities_get_repaired() {
        let report = engine().process(&corpus());
        let repaired = report.auto_fixed + report.ai_fixed + report.expert_fixed;
        assert!(repaired > 0);
        assert_eq!(
            repaired + report.escaped,
            report.cases.iter().filter(|c| c.truly_vulnerable).count()
        );
    }

    #[test]
    fn auto_fix_produces_verified_patches() {
        let mut g = SampleGenerator::new(5, StyleProfile::mainstream());
        let (v, _) = g.vulnerable_pair(Cwe::SqlInjection, Tier::Simple, "p");
        let report = engine().process(&[v]);
        assert_eq!(report.auto_fixed, 1);
        let patched = report.cases[0].patched_source.as_ref().expect("patch");
        assert!(patched.contains("escape_sql"));
    }

    #[test]
    fn exposed_surfaces_reviewed_per_figure1() {
        let report = engine().process(&corpus());
        for c in &report.cases {
            if c.surface.requires_manual_review() {
                assert!(c.manually_reviewed, "exposed case {} must be reviewed", c.sample_id);
            }
        }
        assert!(report.review_rate() > 0.0);
        assert!(report.analyst_minutes > 0.0);
    }

    #[test]
    fn detection_metrics_reflect_rule_quality() {
        let report = engine().process(&corpus());
        let m = report.detection_metrics();
        assert!(m.recall() > 0.8, "rules + review should catch most: {:?}", m);
        assert!(m.precision() > 0.8);
    }

    #[test]
    fn pipelined_matches_sequential() {
        let samples = corpus();
        let e = engine();
        let seq = e.process(&samples);
        let pipe = e.process_pipelined(&samples);
        assert_eq!(seq.detection_metrics(), pipe.detection_metrics());
        assert_eq!(seq.auto_fixed, pipe.auto_fixed);
        assert_eq!(seq.expert_fixed, pipe.expert_fixed);
        assert_eq!(seq.escaped, pipe.escaped);
        assert!((seq.analyst_minutes - pipe.analyst_minutes).abs() < 1e-9);
        let ids: Vec<u64> = pipe.cases.iter().map(|c| c.sample_id).collect();
        let expected: Vec<u64> = samples.iter().map(|s| s.id).collect();
        assert_eq!(ids, expected, "pipeline preserves submission order in the report");
    }

    #[test]
    fn unlimited_capacity_matches_plain_processing() {
        let samples = corpus();
        let e = engine();
        let plain = e.process(&samples);
        let capped = e.process_with_capacity(&samples, f64::INFINITY);
        assert_eq!(plain.detection_metrics(), capped.detection_metrics());
        assert_eq!(plain.auto_fixed, capped.auto_fixed);
        assert_eq!(plain.escaped, capped.escaped);
        assert_eq!(capped.reviews_skipped, 0);
    }

    #[test]
    fn tight_capacity_skips_reviews_and_lets_vulns_escape() {
        let samples = corpus();
        let e = engine();
        let full = e.process_with_capacity(&samples, f64::INFINITY);
        let starved = e.process_with_capacity(&samples, 0.0);
        assert!(starved.reviews_skipped > 0);
        assert!(starved.analyst_minutes < full.analyst_minutes);
        // With no reviews, only auto-flagged vulns are repaired.
        assert!(starved.escaped >= full.escaped);
    }

    #[test]
    fn scarce_reviews_go_to_exposed_surfaces_first() {
        let samples = corpus();
        let e = engine();
        // Budget for exactly three reviews.
        let cfg = WorkflowConfig::default();
        let r = e.process_with_capacity(&samples, cfg.review_minutes * 3.0);
        let reviewed: Vec<Surface> =
            r.cases.iter().filter(|c| c.manually_reviewed).map(|c| c.surface).collect();
        let skipped: Vec<Surface> = r
            .cases
            .iter()
            .filter(|c| !c.manually_reviewed && c.surface.requires_manual_review())
            .map(|c| c.surface)
            .collect();
        assert_eq!(reviewed.len(), 3);
        // No skipped candidate outranks a reviewed one.
        for s in &skipped {
            for done in &reviewed {
                assert!(done <= s, "reviewed {done:?} vs skipped {s:?}");
            }
        }
    }

    #[test]
    fn pricing_adds_labour() {
        let report = engine().process(&corpus());
        let params = CostParams::default();
        let priced = report.price(&params);
        let bare = crate::costmodel::price_deployment(&report.detection_metrics(), &params);
        assert!(priced.triage_cost > bare.triage_cost);
    }

    #[test]
    fn deterministic_across_runs() {
        let samples = corpus();
        let a = engine().process(&samples);
        let b = engine().process(&samples);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_batch_is_fine() {
        let report = engine().process(&[]);
        assert!(report.cases.is_empty());
        assert_eq!(report.review_rate(), 0.0);
    }

    fn engine_with(jobs: usize, cache: bool) -> WorkflowEngine {
        let mut registry = DetectorRegistry::new();
        registry.register(Box::new(RuleBasedDetector::standard()));
        WorkflowEngine::new(registry, WorkflowConfig { jobs, cache, ..Default::default() })
    }

    fn big_corpus() -> Vec<Sample> {
        let mut samples = DatasetBuilder::new(77)
            .vulnerable_count(40)
            .vulnerable_fraction(0.25)
            .duplication_factor(2)
            .build()
            .samples()
            .to_vec();
        // An exact-duplicate slice on top of the near-duplicates: vendored
        // copies share content byte-for-byte, which is what the
        // content-addressed cache exploits.
        let next = samples.iter().map(|s| s.id).max().unwrap_or(0) + 1;
        let copies: Vec<Sample> = samples
            .iter()
            .take(60)
            .cloned()
            .enumerate()
            .map(|(i, mut s)| {
                s.id = next + i as u64;
                s
            })
            .collect();
        samples.extend(copies);
        samples
    }

    #[test]
    fn sharded_report_is_byte_identical_to_sequential() {
        let samples = big_corpus();
        assert!(samples.len() >= 200, "corpus should be sizable: {}", samples.len());
        let seq = engine_with(1, true).process(&samples);
        for jobs in [2, 3, 4, 7] {
            let par = engine_with(jobs, true).process(&samples);
            assert_eq!(seq, par, "jobs={jobs} must match the sequential report");
            // Byte-identical serialized artifacts, not just structural equality.
            let a = serde_json::to_string(&seq).unwrap();
            let b = serde_json::to_string(&par).unwrap();
            assert_eq!(a, b, "serialized reports must be byte-identical at jobs={jobs}");
        }
    }

    #[test]
    fn sharded_handles_degenerate_shapes() {
        let samples = corpus();
        let e = engine_with(4, true);
        // More jobs than samples, empty input, single sample.
        assert_eq!(e.process_sharded(&samples, 64), engine_with(1, true).process(&samples));
        assert!(e.process_sharded(&[], 4).cases.is_empty());
        let one = &samples[..1];
        assert_eq!(e.process(one), engine_with(1, true).process(one));
    }

    #[test]
    fn caching_does_not_change_results() {
        let samples = big_corpus();
        let cached = engine_with(1, true).process(&samples);
        let uncached = engine_with(1, false).process(&samples);
        assert_eq!(cached, uncached);
    }

    #[test]
    fn duplicated_corpus_hits_the_cache() {
        let samples = big_corpus();
        let e = engine_with(1, true);
        e.process(&samples);
        let stats = e.cache_stats();
        // Every sample is parsed for detection and again for surface
        // classification, and duplicated slices share content, so a large
        // share of lookups must be served from the cache.
        assert!(stats.hits > 0, "expected cache hits: {stats:?}");
        assert!(
            stats.hit_rate() > 0.3,
            "duplication + multi-stage reuse should hit often: {stats:?}"
        );
        // A second scan of the same corpus is answered almost entirely
        // from the cache.
        let before = e.cache_stats();
        e.process(&samples);
        let after = e.cache_stats();
        assert!(after.hits - before.hits > (after.misses - before.misses) * 10);
    }

    #[test]
    fn disabled_cache_never_hits() {
        let e = engine_with(1, false);
        e.process(&corpus());
        assert_eq!(e.cache_stats().hits, 0);
    }

    #[test]
    fn findings_are_ordered_and_attributed() {
        let report = engine_with(1, true).process(&big_corpus());
        let mut saw_findings = false;
        for c in &report.cases {
            saw_findings |= !c.findings.is_empty();
            for pair in c.findings.windows(2) {
                let key = |f: &Finding| (f.detector.clone(), f.span, f.cwe.id(), f.message.clone());
                assert!(key(&pair[0]) <= key(&pair[1]), "findings sorted within case");
            }
            if c.auto_flagged {
                assert!(!c.findings.is_empty(), "flagged case carries its findings");
            }
        }
        assert!(saw_findings, "some cases should have findings");
    }

    #[test]
    fn metrics_capture_stage_spans_and_cache_counters() {
        let samples = corpus();
        let e = engine();
        e.process(&samples);
        let snap = e.metrics_snapshot();
        assert_eq!(snap.counters["workflow.samples"], samples.len() as u64);
        assert_eq!(snap.histograms["span.stage.assess"].count, samples.len() as u64);
        assert_eq!(snap.histograms["span.stage.assess.detect"].count, samples.len() as u64);
        assert!(snap.histograms["span.stage.repair"].count > 0);
        assert_eq!(snap.spans_started, snap.spans_stopped, "spans balanced");
        // cache_stats reads the same registry counters — one source of truth.
        let stats = e.cache_stats();
        assert_eq!(stats.hits, snap.counters["cache.hits"]);
        assert_eq!(stats.misses, snap.counters["cache.misses"]);
        assert!(snap.counters["detector.rule-suite.calls"] >= samples.len() as u64);
    }

    #[test]
    fn metrics_schema_is_path_and_config_independent() {
        let samples = corpus();
        let seq = engine_with(1, true);
        seq.process(&samples);
        let sharded = engine_with(4, true);
        sharded.process(&samples);
        let uncached = engine_with(1, false);
        uncached.process(&samples);
        let schema = seq.metrics_snapshot().schema();
        assert_eq!(schema, sharded.metrics_snapshot().schema());
        assert_eq!(schema, uncached.metrics_snapshot().schema());
        // Sharded runs populate the pre-registered shard histograms.
        assert!(sharded.metrics_snapshot().histograms["shard.queue_depth"].count > 0);
        assert_eq!(seq.metrics_snapshot().histograms["shard.queue_depth"].count, 0);
    }

    #[test]
    fn noop_recorder_changes_nothing_but_records_nothing() {
        let samples = corpus();
        let mut registry = DetectorRegistry::new();
        registry.register(Box::new(RuleBasedDetector::standard()));
        let noop =
            WorkflowEngine::with_metrics(registry, WorkflowConfig::default(), Registry::noop());
        let a = noop.process(&samples);
        let b = engine().process(&samples);
        assert_eq!(a, b, "recording must never change results");
        assert!(noop.metrics_snapshot().counters.is_empty());
        assert_eq!(noop.cache_stats(), CacheStats::default());
    }

    #[test]
    fn hash_unit_is_uniformish() {
        let n = 10_000;
        let mean: f64 = (0..n).map(hash_unit).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "{mean}");
    }
}
