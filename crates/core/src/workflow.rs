//! The industry security-vulnerability-management workflow of Figure 1.
//!
//! Pipeline per the paper: **Vulnerability Assessment** (automated detection
//! → threat-model/reachability gating → manual security review) feeding
//! **Vulnerability Repair** (auto-fix → AI suggestion → expert
//! recommendation), with **Security Training** closing the loop. The engine
//! runs either sequentially or as a staged concurrent pipeline over
//! crossbeam channels (one worker per Figure-1 box).

use crate::costmodel::{CostParams, CostReport};
use crate::detector::{Assessment, DetectorRegistry};
use crate::resilience::{register_fault_instruments, ObsFaultObserver};
use crossbeam::channel;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use vulnman_analysis::autofix::AutoFixer;
use vulnman_analysis::detectors::RuleEngine;
use vulnman_analysis::finding::{Evidence, EvidenceFact, Finding};
use vulnman_analysis::reachability::{CallGraph, Surface};
use vulnman_faults::{site_key, FaultConfig, FaultInjector, FaultKind, Site};
use vulnman_lang::clone::{CloneConfig, CloneIndex, TokenAlignment};
use vulnman_lang::lexer::lex_ref;
use vulnman_lang::{AnalysisCache, CacheOp, CacheStats};
use vulnman_ml::eval::Metrics;
use vulnman_obs::{PreparedSpan, Registry, Snapshot};
use vulnman_synth::sample::Sample;

/// Tunables for the workflow engine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkflowConfig {
    /// Probability a manual reviewer catches a real vulnerability the
    /// automated stage missed.
    pub analyst_skill: f64,
    /// Minutes per manual review.
    pub review_minutes: f64,
    /// Minutes to verify one AI repair suggestion (the paper's concern:
    /// "the engineering effort required to verify these recommendations").
    pub suggestion_verify_minutes: f64,
    /// Expert hours per hand-written fix.
    pub expert_fix_hours: f64,
    /// Deterministic seed for review outcomes.
    pub seed: u64,
    /// Worker threads for [`WorkflowEngine::process`]: the corpus is
    /// sharded across this many scoped threads. `1` (the default) runs the
    /// sequential reference path; any value produces a byte-identical
    /// report.
    pub jobs: usize,
    /// Whether the engine memoizes source-derived analyses (parse, rule
    /// findings, surface classification) in a content-addressed cache.
    /// Caching never changes results, only repeated work.
    pub cache: bool,
    /// Whether the engine deduplicates near-clones before analysis: a
    /// MinHash/LSH pass groups verified near-duplicates into clone
    /// classes, one representative per class is analyzed, and
    /// clone-invariant detector findings are propagated to the other
    /// members with spans, identifiers and messages remapped through a
    /// proven token alignment. Members whose alignment fails (or whose
    /// [`vulnman_faults::Site::CloneIndex`] coordinate is faulted) fall
    /// back to direct analysis, so dedup changes work, never results.
    pub dedup: bool,
    /// Optional per-table entry bound for the analysis cache (see
    /// [`AnalysisCache::with_entry_limit`]): long-running embedders cap
    /// resident memory and rely on epoch eviction. Dedup propagation
    /// recomputes a representative's assessment through the cache on a
    /// miss, so eviction — like every cache setting — changes cost, never
    /// a byte of the report. `None` (the default) is unbounded.
    pub cache_entries: Option<usize>,
}

impl Default for WorkflowConfig {
    fn default() -> Self {
        WorkflowConfig {
            analyst_skill: 0.85,
            review_minutes: 30.0,
            suggestion_verify_minutes: 10.0,
            expert_fix_hours: 4.0,
            seed: 0,
            jobs: 1,
            cache: true,
            dedup: false,
            cache_entries: None,
        }
    }
}

/// How a confirmed vulnerability was remediated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RepairChannel {
    /// Mechanical rule-based patch (verified by re-scan).
    AutoFix,
    /// AI-suggested patch accepted after verification.
    AiSuggestion,
    /// Security expert wrote the fix.
    Expert,
}

/// One traced decision for one sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CaseOutcome {
    /// Sample id.
    pub sample_id: u64,
    /// Ground truth.
    pub truly_vulnerable: bool,
    /// Flagged by the automated assessment stage.
    pub auto_flagged: bool,
    /// Attack-surface classification of the unit's entry function.
    pub surface: Surface,
    /// Went through manual security review.
    pub manually_reviewed: bool,
    /// Caught by the manual reviewer (implies `manually_reviewed`).
    pub review_catch: bool,
    /// Structured findings from the assessment stage, merged across
    /// detectors in a deterministic order: detector name, then span, then
    /// CWE, then message. (Cases themselves are kept in submission order,
    /// so the report-wide ordering is sample, detector, span.)
    pub findings: Vec<Finding>,
    /// Repair channel used, when remediated.
    pub repaired_via: Option<RepairChannel>,
    /// The remediated source, when a patch was produced and verified.
    pub patched_source: Option<String>,
}

impl CaseOutcome {
    /// Whether the vulnerability was detected by any stage.
    pub fn detected(&self) -> bool {
        self.auto_flagged || self.review_catch
    }
}

/// Deterministic fault-degradation accounting for one run.
///
/// Every count here derives from the fault plan over detector-call and
/// ML-predict coordinates that are independent of worker count, cache
/// configuration, and call order — which is why the summary (and therefore
/// the whole serialized report) stays byte-identical across `jobs`
/// settings. Jobs-dependent sites (cache get/put, shard workers) are
/// accounted in metrics only, never here.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct DegradationSummary {
    /// Transient faults injected at the detector-call site.
    pub transient: u64,
    /// Timeout faults injected at the detector-call site.
    pub timeout: u64,
    /// Corrupt-response faults injected at the detector-call site.
    pub corrupt: u64,
    /// Crash faults injected at the detector-call site.
    pub crash: u64,
    /// Detector-call retries performed (backed off on the virtual clock,
    /// never slept).
    pub retries: u64,
    /// Detector calls that succeeded after at least one retry.
    pub recovered: u64,
    /// Detector calls that gave up (retry budget exhausted or crash).
    pub exhausted: u64,
    /// Assessments lost to exhaustion, quarantine skips, or ML predict
    /// failures.
    pub assessments_lost: u64,
    /// ML predictions that failed under injection (deterministic per
    /// sample id).
    pub ml_failures: u64,
    /// Samples that lost at least one detector assessment.
    pub degraded_samples: usize,
    /// Requests shed by the serving layer's admission control (always zero
    /// for batch runs; `vulnman serve` records load-shedding here so the
    /// degradation ledger covers overload as well as injected faults).
    pub shed: u64,
    /// Detectors quarantined for the remainder of the run after exhausting
    /// their retry budget, by name, sorted.
    pub quarantined: Vec<String>,
}

impl DegradationSummary {
    /// Whether the run lost any assessment or quarantined any detector.
    pub fn is_degraded(&self) -> bool {
        self.assessments_lost > 0 || !self.quarantined.is_empty()
    }

    /// Folds one case's accounting in, in submission order.
    fn absorb(&mut self, d: &CaseDegradation) {
        self.transient += d.transient;
        self.timeout += d.timeout;
        self.corrupt += d.corrupt;
        self.crash += d.crash;
        self.retries += d.retries;
        self.recovered += d.recovered;
        self.exhausted += d.exhausted;
        self.assessments_lost += d.lost;
        self.ml_failures += d.ml_failures;
        if d.lost > 0 {
            self.degraded_samples += 1;
        }
    }
}

/// Per-case fault accounting from the resilient assessment path, folded
/// into [`DegradationSummary`] in submission order.
#[derive(Debug, Clone, Copy, Default)]
struct CaseDegradation {
    transient: u64,
    timeout: u64,
    corrupt: u64,
    crash: u64,
    retries: u64,
    recovered: u64,
    exhausted: u64,
    lost: u64,
    ml_failures: u64,
}

impl CaseDegradation {
    fn record(&mut self, kind: FaultKind) {
        match kind {
            FaultKind::Transient => self.transient += 1,
            FaultKind::Timeout => self.timeout += 1,
            FaultKind::Corrupt => self.corrupt += 1,
            FaultKind::Crash => self.crash += 1,
        }
    }
}

/// Aggregate result of a workflow run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct WorkflowReport {
    /// Per-sample outcomes, in submission order.
    pub cases: Vec<CaseOutcome>,
    /// Total analyst minutes consumed (review + suggestion verification).
    pub analyst_minutes: f64,
    /// Total expert hours consumed writing fixes.
    pub expert_hours: f64,
    /// Counts per repair channel.
    pub auto_fixed: usize,
    /// AI suggestions accepted.
    pub ai_fixed: usize,
    /// Expert-written fixes.
    pub expert_fixed: usize,
    /// Vulnerable samples that escaped every stage.
    pub escaped: usize,
    /// Manual reviews skipped because the review budget ran out
    /// (capacity-limited runs only).
    pub reviews_skipped: usize,
    /// Fault-injection accounting (all zeros and empty when the engine runs
    /// without a fault plan or at rate zero).
    pub degradation: DegradationSummary,
}

impl WorkflowReport {
    /// Detection confusion matrix (detected-by-any-stage vs ground truth).
    pub fn detection_metrics(&self) -> Metrics {
        let pred: Vec<bool> = self.cases.iter().map(|c| c.detected()).collect();
        let truth: Vec<bool> = self.cases.iter().map(|c| c.truly_vulnerable).collect();
        Metrics::from_predictions(&pred, &truth)
    }

    /// Prices the run under a cost model (adds workflow labour to the
    /// confusion-matrix pricing).
    pub fn price(&self, params: &CostParams) -> CostReport {
        let mut r = crate::costmodel::price_deployment(&self.detection_metrics(), params);
        let labour = self.analyst_minutes / 60.0 * params.analyst_hourly_usd
            + self.expert_hours * params.analyst_hourly_usd;
        r.triage_cost += labour;
        r.net_value -= labour;
        r
    }

    /// Fraction of manual reviews among all cases.
    pub fn review_rate(&self) -> f64 {
        if self.cases.is_empty() {
            0.0
        } else {
            self.cases.iter().filter(|c| c.manually_reviewed).count() as f64
                / self.cases.len() as f64
        }
    }
}

/// The Figure-1 workflow engine.
pub struct WorkflowEngine {
    registry: DetectorRegistry,
    fixer: AutoFixer,
    verifier: RuleEngine,
    config: WorkflowConfig,
    cache: AnalysisCache,
    metrics: Registry,
    stage_spans: StageSpans,
    faults: Option<FaultHarness>,
}

/// Pre-resolved per-sample stage spans: these start once (or more) per
/// sample, so the name allocation and registry lookup a plain
/// [`Registry::span`] pays each call are hoisted to engine construction.
#[derive(Clone)]
struct StageSpans {
    assess: PreparedSpan,
    detect: PreparedSpan,
    surface: PreparedSpan,
    review: PreparedSpan,
    repair: PreparedSpan,
}

impl StageSpans {
    fn resolve(metrics: &Registry) -> Self {
        StageSpans {
            assess: metrics.prepared_span("stage.assess"),
            detect: metrics.prepared_span("stage.assess.detect"),
            surface: metrics.prepared_span("stage.assess.surface"),
            review: metrics.prepared_span("stage.review"),
            repair: metrics.prepared_span("stage.repair"),
        }
    }
}

/// The engine's fault-injection state: the shared injector (which every
/// site consults) plus the config it was built from.
struct FaultHarness {
    injector: Arc<FaultInjector>,
    config: FaultConfig,
}

/// Per-batch fault context: the injector plus each detector's quarantine
/// point — the first submission index at which the plan exhausts that
/// detector's retry budget. Computed from the plan alone (never from call
/// order or timing), so every execution path and worker count agrees.
struct FaultRun {
    injector: Arc<FaultInjector>,
    quarantine_at: Vec<u64>,
}

/// Every instrument name the engine emits, pre-registered at construction
/// so the exported metrics schema does not depend on which processing path
/// (sequential, sharded, pipelined, capacity-limited) a run happens to
/// take. Stage spans land in `span.<name>` histograms.
const ENGINE_SPANS: [&str; 12] = [
    "stage.assess",
    "stage.assess.detect",
    "stage.assess.surface",
    "stage.review",
    "stage.repair",
    "pipeline.assess",
    "pipeline.review",
    "pipeline.repair",
    "capacity.assess",
    "capacity.allocate",
    "capacity.resolve",
    "clone.index",
];

/// Clone-dedup counters, pre-registered like the spans so the metrics
/// schema is identical whether or not a run deduplicates (and whether any
/// clones exist): multi-member classes found, non-representative members,
/// members whose findings were propagated, members dropped out of their
/// class by a [`Site::CloneIndex`] fault, members rejected at plan time
/// (no token alignment), and members that bailed to direct analysis at
/// assessment time (a finding failed to remap).
const CLONE_COUNTERS: [&str; 6] = [
    "clone.classes",
    "clone.duplicates",
    "clone.propagated",
    "clone.faulted",
    "clone.align_rejected",
    "clone.align_fallback",
];

/// Output of the assessment + threat-model stages for one sample.
struct Assessed {
    flagged: bool,
    surface: Surface,
    findings: Vec<Finding>,
}

/// Per-sample decision of the clone-dedup pass.
enum DedupDecision {
    /// Analyze the sample directly (representatives, singletons, members
    /// without a token alignment, faulted membership decisions).
    Direct,
    /// Reuse the clone representative's assessment, remapped through the
    /// token alignment. The representative sample and its content key are
    /// resolved once at plan time and shared by every member of the class.
    Propagate { rep: Arc<Sample>, rep_key: u64, alignment: Arc<TokenAlignment> },
}

/// The batch's clone-dedup plan: one decision per submission index,
/// computed before any analysis starts. The plan is a pure function of
/// the sample sources, the clone config, and the fault plan — never of
/// worker count or call order — so every processing path agrees on it.
struct DedupPlan {
    decisions: Vec<DedupDecision>,
}

impl DedupPlan {
    fn decision(plan: Option<&DedupPlan>, idx: usize) -> &DedupDecision {
        plan.map(|p| &p.decisions[idx]).unwrap_or(&DedupDecision::Direct)
    }
}

/// The complete, order-independent result of processing one sample: the
/// traced outcome plus the labour it consumed. Produced by the pure
/// per-sample path ([`WorkflowEngine::assess_one`]) and folded into a
/// [`WorkflowReport`] by [`WorkflowEngine::reduce`] in submission order, so
/// sequential and sharded runs accumulate floating-point totals in exactly
/// the same order and the reports are byte-identical.
struct CaseWork {
    outcome: CaseOutcome,
    review_minutes: f64,
    repair_minutes: f64,
    expert_hours: f64,
    degradation: CaseDegradation,
}

impl std::fmt::Debug for WorkflowEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkflowEngine")
            .field("registry", &self.registry)
            .field("config", &self.config)
            .finish()
    }
}

impl WorkflowEngine {
    /// Creates an engine over a detector registry, recording metrics into a
    /// fresh enabled [`Registry`] (read it back via
    /// [`WorkflowEngine::metrics`]).
    pub fn new(registry: DetectorRegistry, config: WorkflowConfig) -> Self {
        WorkflowEngine::with_metrics(registry, config, Registry::new())
    }

    /// Creates an engine recording into `metrics` — pass
    /// [`Registry::noop`] to strip instrumentation down to predicted
    /// branches (the benchmark baseline), or a shared registry to fold the
    /// engine's counters into a larger snapshot.
    ///
    /// The full instrument schema (stage spans, shard histograms, cache
    /// and per-detector counters) is registered here, up front, so two
    /// runs with different `jobs`/`cache` settings export identical metric
    /// key sets.
    pub fn with_metrics(
        mut registry: DetectorRegistry,
        config: WorkflowConfig,
        metrics: Registry,
    ) -> Self {
        for span in ENGINE_SPANS {
            metrics.histogram(&format!("span.{span}"));
        }
        for counter in CLONE_COUNTERS {
            metrics.counter(counter);
        }
        metrics.counter("workflow.samples");
        metrics.histogram("shard.queue_depth");
        metrics.histogram("shard.latency_micros");
        register_fault_instruments(&metrics);
        vulnman_analysis::checkers::register_absint_instruments(&metrics);
        vulnman_analysis::corpusgraph::register_graph_instruments(&metrics);
        vulnman_analysis::audit::register_audit_instruments(&metrics);
        registry.attach_metrics(metrics.clone());
        let cache = if config.cache {
            let cache = AnalysisCache::with_metrics(&metrics);
            match config.cache_entries {
                Some(limit) => cache.with_entry_limit(limit),
                None => cache,
            }
        } else {
            AnalysisCache::disabled_with_metrics(&metrics)
        };
        let stage_spans = StageSpans::resolve(&metrics);
        WorkflowEngine {
            registry,
            fixer: AutoFixer::new(),
            verifier: RuleEngine::default_suite(),
            cache,
            config,
            metrics,
            stage_spans,
            faults: None,
        }
    }

    /// Creates an engine whose component calls run under a deterministic
    /// seeded fault plan: detector invocations retry with virtual-clock
    /// backoff and quarantine on exhaustion, cache lookups and stores can
    /// be dropped, shard workers can crash (the coordinator finishes their
    /// slice inline), and ML predictions can fail per sample. At rate zero
    /// the report is byte-identical to [`WorkflowEngine::new`]'s.
    pub fn with_fault_config(
        registry: DetectorRegistry,
        config: WorkflowConfig,
        fault_config: FaultConfig,
    ) -> Self {
        WorkflowEngine::with_fault_metrics(registry, config, fault_config, Registry::new())
    }

    /// [`WorkflowEngine::with_fault_config`] recording into `metrics`
    /// (resilience events land on the pre-registered `fault.*` instruments).
    pub fn with_fault_metrics(
        mut registry: DetectorRegistry,
        config: WorkflowConfig,
        fault_config: FaultConfig,
        metrics: Registry,
    ) -> Self {
        let observer = Arc::new(ObsFaultObserver::new(&metrics));
        let injector = Arc::new(FaultInjector::with_observer(&fault_config, observer));
        registry.attach_faults(&injector);
        let mut engine = WorkflowEngine::with_metrics(registry, config, metrics);
        let hook_injector = Arc::clone(&injector);
        // Cache faults are keyed by content hash: a dropped get degrades to
        // a recompute, a dropped put to a future miss — results never change
        // (only `cache.*` counters), so they stay out of the report.
        engine.cache.set_fault_hook(Arc::new(move |op, key| {
            let site = match op {
                CacheOp::Get => Site::CacheGet,
                CacheOp::Put => Site::CachePut,
            };
            hook_injector.attempt(site, key, 0).is_some()
        }));
        engine.faults = Some(FaultHarness { injector, config: fault_config });
        engine
    }

    /// The fault-injection config, when the engine was built with one.
    pub fn fault_config(&self) -> Option<&FaultConfig> {
        self.faults.as_ref().map(|h| &h.config)
    }

    /// The registered detectors.
    pub fn registry(&self) -> &DetectorRegistry {
        &self.registry
    }

    /// The engine's configuration.
    pub fn config(&self) -> &WorkflowConfig {
        &self.config
    }

    /// The engine's metrics registry (per-stage spans, shard histograms,
    /// cache counters, per-detector timings).
    pub fn metrics(&self) -> &Registry {
        &self.metrics
    }

    /// A frozen snapshot of every instrument.
    pub fn metrics_snapshot(&self) -> Snapshot {
        self.metrics.snapshot()
    }

    /// Hit/miss counters of the engine's analysis cache, read from the
    /// metrics registry's `cache.*` counters — the cache's single set of
    /// bookkeeping.
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.metrics.counter("cache.hits").get(),
            misses: self.metrics.counter("cache.misses").get(),
        }
    }

    /// Drops all memoized analysis results (e.g. between benchmark runs).
    pub fn clear_cache(&self) {
        self.cache.clear();
    }

    /// Processes a batch, sharding it across [`WorkflowConfig::jobs`]
    /// worker threads (sequentially when `jobs <= 1`). Per-sample decisions
    /// are pure functions of the sample and the seed, and labour totals are
    /// folded in submission order regardless of which shard computed them,
    /// so the report is byte-identical for every `jobs` value.
    pub fn process(&self, samples: &[Sample]) -> WorkflowReport {
        let run = self.fault_run(samples.len());
        let dedup = self.dedup_plan(samples, run.as_ref());
        let scratch = self.scratch_cache();
        let cache = scratch.as_ref().unwrap_or(&self.cache);
        let jobs = self.config.jobs.max(1);
        let report = if jobs == 1 || samples.len() < 2 {
            self.metrics.counter("workflow.samples").add(samples.len() as u64);
            Self::reduce(
                samples
                    .iter()
                    .enumerate()
                    .map(|(i, s)| self.assess_one(i, s, run.as_ref(), cache, dedup.as_ref()))
                    .collect(),
            )
        } else {
            self.process_sharded_inner(samples, jobs, run.as_ref(), cache, dedup.as_ref())
        };
        self.finish_report(report, run.as_ref(), samples.len())
    }

    /// The cache one batch run works against: the engine's persistent
    /// content-addressed cache when caching is enabled, otherwise a fresh
    /// scratch cache private to the call.
    ///
    /// The per-sample pipeline needs the same parse in several stages
    /// (detection, surface classification, repair). With caching enabled
    /// the engine cache absorbs the repeats; with caching disabled each
    /// stage used to re-lex and re-parse the sample from scratch — pure
    /// waste, since within-run reuse carries no state between runs, which
    /// is what `WorkflowConfig::cache = false` actually promises. The
    /// scratch cache is dropped with the call and is unmetered, so the
    /// `cache.*` counters and fault-injection sites still describe the
    /// persistent cache only.
    fn scratch_cache(&self) -> Option<AnalysisCache> {
        (!self.config.cache).then(AnalysisCache::new)
    }

    /// Processes a batch across exactly `jobs` scoped worker threads,
    /// overriding the configured job count. Shards are contiguous slices of
    /// the input; results are concatenated in shard order (= submission
    /// order) before the fold, so output equals the sequential path's.
    pub fn process_sharded(&self, samples: &[Sample], jobs: usize) -> WorkflowReport {
        let run = self.fault_run(samples.len());
        let dedup = self.dedup_plan(samples, run.as_ref());
        let scratch = self.scratch_cache();
        let cache = scratch.as_ref().unwrap_or(&self.cache);
        let report = self.process_sharded_inner(samples, jobs, run.as_ref(), cache, dedup.as_ref());
        self.finish_report(report, run.as_ref(), samples.len())
    }

    fn process_sharded_inner(
        &self,
        samples: &[Sample],
        jobs: usize,
        run: Option<&FaultRun>,
        cache: &AnalysisCache,
        dedup: Option<&DedupPlan>,
    ) -> WorkflowReport {
        let jobs = jobs.clamp(1, samples.len().max(1));
        let chunk = samples.len().div_ceil(jobs).max(1);
        self.metrics.counter("workflow.samples").add(samples.len() as u64);
        let depth = self.metrics.histogram("shard.queue_depth");
        let latency = self.metrics.histogram("shard.latency_micros");
        let shards: Vec<&[Sample]> = samples.chunks(chunk).collect();
        let mut work: Vec<CaseWork> = Vec::with_capacity(samples.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = shards
                .iter()
                .enumerate()
                .map(|(shard_idx, shard)| {
                    let depth = depth.clone();
                    let latency = latency.clone();
                    let base = shard_idx * chunk;
                    scope.spawn(move || {
                        depth.observe(shard.len() as u64);
                        let t0 = latency.is_enabled().then(std::time::Instant::now);
                        // A worker whose plan coordinate says "crash" dies
                        // mid-shard: it hands back the half it finished and
                        // the coordinator completes the rest inline.
                        let crashed = match run {
                            Some(r) => {
                                let key = site_key(0x5A, shard_idx as u64);
                                match r.injector.attempt(Site::ShardWorker, key, 0) {
                                    Some(FaultKind::Crash) => true,
                                    Some(_) => {
                                        r.injector.note_recovered(Site::ShardWorker, 1);
                                        false
                                    }
                                    None => false,
                                }
                            }
                            None => false,
                        };
                        let take = if crashed { shard.len() / 2 } else { shard.len() };
                        let out: Vec<CaseWork> = shard
                            .iter()
                            .take(take)
                            .enumerate()
                            .map(|(i, s)| self.assess_one(base + i, s, run, cache, dedup))
                            .collect();
                        if let Some(t0) = t0 {
                            latency.observe_duration(t0.elapsed());
                        }
                        out
                    })
                })
                .collect();
            for (shard_idx, handle) in handles.into_iter().enumerate() {
                let shard = shards[shard_idx];
                let base = shard_idx * chunk;
                match handle.join() {
                    Ok(partial) => {
                        let done = partial.len();
                        work.extend(partial);
                        if done < shard.len() {
                            // Per-sample work is pure, so finishing a dead
                            // worker's slice inline reproduces exactly what
                            // it would have computed.
                            self.metrics.counter("fault.shard_crashes").inc();
                            work.extend(
                                shard
                                    .iter()
                                    .enumerate()
                                    .skip(done)
                                    .map(|(i, s)| self.assess_one(base + i, s, run, cache, dedup)),
                            );
                        }
                    }
                    Err(_) => {
                        // A genuine panic (not an injected crash): recompute
                        // the whole shard instead of poisoning the run.
                        self.metrics.counter("fault.shard_crashes").inc();
                        work.extend(
                            shard
                                .iter()
                                .enumerate()
                                .map(|(i, s)| self.assess_one(base + i, s, run, cache, dedup)),
                        );
                    }
                }
            }
        });
        Self::reduce(work)
    }

    /// Precomputes the batch's clone-dedup plan when
    /// [`WorkflowConfig::dedup`] is on: shingle and index every sample
    /// (sharded across [`WorkflowConfig::jobs`], byte-deterministic at any
    /// job count), group verified near-duplicates into classes, and mark
    /// every non-representative member for propagation when a token
    /// alignment against its representative exists. The representative of
    /// a class is its lowest submission index. A member whose
    /// [`Site::CloneIndex`] coordinate is faulted drops out of its class
    /// and is analyzed directly — like a faulted cache get, the cost is
    /// recomputation, never a changed result.
    fn dedup_plan(&self, samples: &[Sample], run: Option<&FaultRun>) -> Option<DedupPlan> {
        if !self.config.dedup || samples.len() < 2 {
            return None;
        }
        let span = self.metrics.span("clone.index");
        let clone_config = CloneConfig { jobs: self.config.jobs.max(1), ..CloneConfig::default() };
        let sources: Vec<(u64, &str)> =
            samples.iter().enumerate().map(|(i, s)| (i as u64, s.source.as_str())).collect();
        let index = CloneIndex::build(&sources, clone_config);
        let mut decisions: Vec<DedupDecision> =
            (0..samples.len()).map(|_| DedupDecision::Direct).collect();
        let (mut classes, mut duplicates, mut faulted, mut rejected) = (0u64, 0u64, 0u64, 0u64);
        for class in index.classes() {
            if class.len() < 2 {
                continue;
            }
            classes += 1;
            // Entries are inserted in submission order, so the class's first
            // entry (classes are sorted) is the lowest submission index.
            let rep_idx = index.entries()[class[0] as usize].id as usize;
            // A clone class can hold several alignment cohorts: template
            // cousins verify as clones (normalized shingles) yet differ in
            // literals or token counts, so one fixed representative would
            // strand every variant of the other cousins. Members that align
            // with no earlier anchor become anchors themselves (analyzed
            // directly); later members propagate from the earliest anchor
            // they align with. Purely positional, hence deterministic.
            // Lex each class source once; the anchor scan reuses token
            // streams across alignment attempts instead of re-lexing per
            // (anchor, member) pair.
            let anchor = |idx: usize| {
                let sample = Arc::new(samples[idx].clone());
                let key = AnalysisCache::content_key(&sample.source);
                let tokens = lex_ref(&samples[idx].source).ok();
                (sample, key, tokens)
            };
            let mut anchors = vec![anchor(rep_idx)];
            for &member in &class[1..] {
                let member_idx = index.entries()[member as usize].id as usize;
                duplicates += 1;
                if let Some(run) = run {
                    let key = site_key(member_idx as u64, rep_idx as u64);
                    if run.injector.attempt(Site::CloneIndex, key, 0).is_some() {
                        faulted += 1;
                        continue;
                    }
                }
                let member_tokens = lex_ref(&samples[member_idx].source).ok();
                let aligned = anchors.iter().find_map(|(rep, rep_key, rep_tokens)| {
                    let (rt, mt) = (rep_tokens.as_ref()?, member_tokens.as_ref()?);
                    TokenAlignment::align_tokens(rt, mt).map(|a| (Arc::clone(rep), *rep_key, a))
                });
                match aligned {
                    Some((rep, rep_key, alignment)) => {
                        decisions[member_idx] = DedupDecision::Propagate {
                            rep,
                            rep_key,
                            alignment: Arc::new(alignment),
                        };
                    }
                    None => {
                        rejected += 1;
                        anchors.push(anchor(member_idx));
                    }
                }
            }
        }
        self.metrics.counter("clone.classes").add(classes);
        self.metrics.counter("clone.duplicates").add(duplicates);
        self.metrics.counter("clone.faulted").add(faulted);
        self.metrics.counter("clone.align_rejected").add(rejected);
        span.stop();
        Some(DedupPlan { decisions })
    }

    /// Precomputes the batch's fault context. Quarantine points derive from
    /// the plan over `(detector, submission index)` coordinates, never from
    /// execution order, so sequential and sharded runs agree byte-for-byte.
    fn fault_run(&self, n: usize) -> Option<FaultRun> {
        let harness = self.faults.as_ref()?;
        let plan = *harness.injector.plan();
        let max_retries = harness.injector.max_retries();
        let quarantine_at = (0..self.registry.len())
            .map(|d| {
                (0..n as u64)
                    .find(|&i| {
                        plan.exhausts(Site::DetectorCall, site_key(d as u64, i), max_retries)
                    })
                    .unwrap_or(u64::MAX)
            })
            .collect();
        Some(FaultRun { injector: Arc::clone(&harness.injector), quarantine_at })
    }

    /// Stamps run-level degradation facts (quarantined detector names, the
    /// `fault.degraded` gauge) onto a finished report.
    fn finish_report(
        &self,
        mut report: WorkflowReport,
        run: Option<&FaultRun>,
        n: usize,
    ) -> WorkflowReport {
        if let Some(run) = run {
            let names = self.registry.names();
            let mut quarantined: Vec<String> = run
                .quarantine_at
                .iter()
                .enumerate()
                .filter(|&(_, &at)| at < n as u64)
                .map(|(d, _)| names[d].clone())
                .collect();
            quarantined.sort();
            self.metrics.gauge("fault.degraded").set(quarantined.len() as i64);
            report.degradation.quarantined = quarantined;
        }
        report
    }

    /// Processes a batch under a finite manual-review budget, allocating
    /// reviews by threat-model priority: zero-click surfaces first, then
    /// one-click, then flagged-but-local — the "scalability and
    /// prioritization" requirement of Gap Observation 1. With an unlimited
    /// budget this matches [`WorkflowEngine::process`] exactly.
    pub fn process_with_capacity(&self, samples: &[Sample], budget_minutes: f64) -> WorkflowReport {
        let run = self.fault_run(samples.len());
        let dedup = self.dedup_plan(samples, run.as_ref());
        let scratch = self.scratch_cache();
        let cache = scratch.as_ref().unwrap_or(&self.cache);
        self.metrics.counter("workflow.samples").add(samples.len() as u64);
        let mut report = WorkflowReport::default();
        // Phase 1: automated assessment + threat model for every change.
        let assess_span = self.metrics.span("capacity.assess");
        let assessed: Vec<(usize, Assessed)> = samples
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let (a, deg) = self.assess_stage(s, i, run.as_ref(), cache, dedup.as_ref());
                report.degradation.absorb(&deg);
                (i, a)
            })
            .collect();
        assess_span.stop();
        // Phase 2: allocate the review budget by priority.
        let allocate_span = self.metrics.span("capacity.allocate");
        let mut candidates: Vec<&(usize, Assessed)> = assessed
            .iter()
            .filter(|(_, a)| a.surface.requires_manual_review() || a.flagged)
            .collect();
        candidates.sort_by_key(|(i, a)| (a.surface, !a.flagged, *i));
        let mut remaining = budget_minutes;
        let mut reviewed_set = std::collections::HashSet::new();
        for (i, _) in &candidates {
            if remaining >= self.config.review_minutes {
                remaining -= self.config.review_minutes;
                report.analyst_minutes += self.config.review_minutes;
                reviewed_set.insert(*i);
            } else {
                report.reviews_skipped += 1;
            }
        }
        allocate_span.stop();
        // Phase 3: review outcomes + repair, per sample in submission order.
        let resolve_span = self.metrics.span("capacity.resolve");
        for (i, Assessed { flagged, surface, findings }) in assessed {
            let sample = &samples[i];
            let reviewed = reviewed_set.contains(&i);
            let catch = reviewed
                && sample.label
                && hash_unit(sample.id ^ self.config.seed) < self.config.analyst_skill;
            let mut outcome = CaseOutcome {
                sample_id: sample.id,
                truly_vulnerable: sample.label,
                auto_flagged: flagged,
                surface,
                manually_reviewed: reviewed,
                review_catch: catch,
                findings,
                repaired_via: None,
                patched_source: None,
            };
            if outcome.detected() && sample.label {
                let (channel_used, patched, analyst_min, expert_h) =
                    repair(sample, &self.fixer, &self.verifier, &self.config, cache);
                report.analyst_minutes += analyst_min;
                report.expert_hours += expert_h;
                match channel_used {
                    RepairChannel::AutoFix => report.auto_fixed += 1,
                    RepairChannel::AiSuggestion => report.ai_fixed += 1,
                    RepairChannel::Expert => report.expert_fixed += 1,
                }
                outcome.repaired_via = Some(channel_used);
                outcome.patched_source = patched;
            } else if sample.label {
                report.escaped += 1;
            }
            report.cases.push(outcome);
        }
        resolve_span.stop();
        self.finish_report(report, run.as_ref(), samples.len())
    }

    /// Processes a batch through a staged concurrent pipeline: assessment,
    /// threat-model/review, and repair each run on their own worker thread,
    /// connected by bounded crossbeam channels (back-pressure included).
    ///
    /// The report is identical to [`WorkflowEngine::process`] — per-sample
    /// decisions are seeded by sample id, not arrival order.
    pub fn process_pipelined(&self, samples: &[Sample]) -> WorkflowReport {
        let run = self.fault_run(samples.len());
        let run_ref = run.as_ref();
        let dedup = self.dedup_plan(samples, run_ref);
        let dedup_ref = dedup.as_ref();
        let scratch = self.scratch_cache();
        let cache = scratch.as_ref().unwrap_or(&self.cache);
        let (tx_in, rx_assess) = channel::bounded::<(usize, Sample)>(64);
        let (tx_assess, rx_review) = channel::bounded::<(Sample, Assessed, CaseDegradation)>(64);
        let (tx_review, rx_repair) =
            channel::bounded::<(Sample, Assessed, CaseDegradation, bool, bool)>(64);
        let report = Arc::new(Mutex::new(WorkflowReport::default()));

        self.metrics.counter("workflow.samples").add(samples.len() as u64);
        std::thread::scope(|scope| {
            // Stage 1: automated vulnerability detection + threat model.
            // Each stage worker runs under one span covering the batch, so
            // the summary shows where pipeline wall-clock is spent.
            let metrics1 = self.metrics.clone();
            scope.spawn(move || {
                let _span = metrics1.span("pipeline.assess");
                for (idx, sample) in rx_assess {
                    let (assessed, deg) =
                        self.assess_stage(&sample, idx, run_ref, cache, dedup_ref);
                    if tx_assess.send((sample, assessed, deg)).is_err() {
                        return;
                    }
                }
            });

            // Stage 2: manual security review (gated by surface).
            let config = self.config;
            let report2 = Arc::clone(&report);
            let metrics2 = self.metrics.clone();
            scope.spawn(move || {
                let _span = metrics2.span("pipeline.review");
                for (sample, assessed, deg) in rx_review {
                    let (reviewed, catch, minutes) =
                        manual_review(&sample, assessed.flagged, assessed.surface, &config);
                    if minutes > 0.0 {
                        report2.lock().analyst_minutes += minutes;
                    }
                    if tx_review.send((sample, assessed, deg, reviewed, catch)).is_err() {
                        return;
                    }
                }
            });

            // Stage 3: repair routing.
            let report3 = Arc::clone(&report);
            let fixer = &self.fixer;
            let verifier = &self.verifier;
            let metrics3 = self.metrics.clone();
            scope.spawn(move || {
                let _span = metrics3.span("pipeline.repair");
                for (sample, assessed, deg, reviewed, catch) in rx_repair {
                    let Assessed { flagged, surface, findings } = assessed;
                    let mut outcome = CaseOutcome {
                        sample_id: sample.id,
                        truly_vulnerable: sample.label,
                        auto_flagged: flagged,
                        surface,
                        manually_reviewed: reviewed,
                        review_catch: catch,
                        findings,
                        repaired_via: None,
                        patched_source: None,
                    };
                    let mut guard = report3.lock();
                    guard.degradation.absorb(&deg);
                    if outcome.detected() && sample.label {
                        let (channel_used, patched, analyst_min, expert_h) =
                            repair(&sample, fixer, verifier, &config, cache);
                        guard.analyst_minutes += analyst_min;
                        guard.expert_hours += expert_h;
                        match channel_used {
                            RepairChannel::AutoFix => guard.auto_fixed += 1,
                            RepairChannel::AiSuggestion => guard.ai_fixed += 1,
                            RepairChannel::Expert => guard.expert_fixed += 1,
                        }
                        outcome.repaired_via = Some(channel_used);
                        outcome.patched_source = patched;
                    } else if sample.label {
                        guard.escaped += 1;
                    }
                    guard.cases.push(outcome);
                }
            });

            for (i, s) in samples.iter().enumerate() {
                // A send fails only when every downstream stage is gone;
                // the fill pass below completes whatever never went through.
                if tx_in.send((i, s.clone())).is_err() {
                    break;
                }
            }
            drop(tx_in);
        });

        let mut report = Arc::try_unwrap(report)
            .map(Mutex::into_inner)
            .unwrap_or_else(|report| report.lock().clone());
        if report.cases.len() < samples.len() {
            // A stage died mid-stream: fold the missing samples in inline.
            // Per-sample work is pure, so their outcomes are what the
            // pipeline would have produced.
            let present: std::collections::HashSet<u64> =
                report.cases.iter().map(|c| c.sample_id).collect();
            for (i, s) in samples.iter().enumerate() {
                if !present.contains(&s.id) {
                    Self::fold_case(&mut report, self.assess_one(i, s, run_ref, cache, dedup_ref));
                }
            }
        }
        report.cases.sort_by_key(|c| {
            samples.iter().position(|s| s.id == c.sample_id).unwrap_or(usize::MAX)
        });
        self.finish_report(report, run_ref, samples.len())
    }

    /// Stage 1 + threat model: detector verdicts and surface classification
    /// for one sample, with findings merged across detectors in the
    /// deterministic (detector, span, CWE, message) order. `idx` is the
    /// sample's submission index — the fault plan's coordinate; without a
    /// fault run the index is unused and the degradation stays zero.
    fn assess_stage(
        &self,
        sample: &Sample,
        idx: usize,
        run: Option<&FaultRun>,
        cache: &AnalysisCache,
        dedup: Option<&DedupPlan>,
    ) -> (Assessed, CaseDegradation) {
        if let DedupDecision::Propagate { rep, rep_key, alignment } =
            DedupPlan::decision(dedup, idx)
        {
            match self.assess_propagated(sample, rep, *rep_key, alignment, idx, run, cache) {
                Some(out) => {
                    self.metrics.counter("clone.propagated").inc();
                    return out;
                }
                // A finding failed to remap (endpoint off a token
                // boundary): analyze this member directly instead.
                None => self.metrics.counter("clone.align_fallback").inc(),
            }
        }
        let span = self.stage_spans.assess.start();
        // One content hash per sample: every cache-aware consumer below
        // (detectors, surface classification) reuses this key instead of
        // re-hashing the source per cache table.
        let content_key = vulnman_lang::AnalysisCache::content_key(&sample.source);
        let detect = self.stage_spans.detect.start();
        let (flagged, assessments, deg) = match run {
            None => {
                let (flagged, assessments) =
                    self.registry.verdict_cached_keyed(sample, cache, content_key);
                (flagged, assessments, CaseDegradation::default())
            }
            Some(run) => self.assess_resilient(sample, idx, run, content_key, cache),
        };
        detect.stop();
        let surface_span = self.stage_spans.surface.start();
        let surface = self.classify_surface(sample, content_key, cache);
        surface_span.stop();
        let mut findings: Vec<Finding> = assessments.into_iter().flat_map(|a| a.findings).collect();
        findings.sort_by(|a, b| {
            a.detector
                .cmp(&b.detector)
                .then(a.span.cmp(&b.span))
                .then(a.cwe.id().cmp(&b.cwe.id()))
                .then(a.message.cmp(&b.message))
        });
        span.stop();
        (Assessed { flagged, surface, findings }, deg)
    }

    /// The fault-aware assessment stage: each applicable detector runs
    /// under a bounded retry loop driven by the plan. Quarantined detectors
    /// are skipped outright; a detector that exhausts its budget (or hits a
    /// crash) loses its assessment for this sample, and the verdict is
    /// combined from whatever survived — graceful degradation instead of a
    /// failed run. At rate zero every call succeeds on the first attempt,
    /// making the result byte-identical to the non-fault path.
    fn assess_resilient(
        &self,
        sample: &Sample,
        idx: usize,
        run: &FaultRun,
        content_key: u64,
        cache: &AnalysisCache,
    ) -> (bool, Vec<Assessment>, CaseDegradation) {
        let mut deg = CaseDegradation::default();
        let mut assessments = Vec::new();
        for d in self.registry.applicable_indices(sample) {
            self.assess_detector_resilient(
                d,
                sample,
                idx,
                run,
                content_key,
                cache,
                &mut assessments,
                &mut deg,
            );
        }
        let (flagged, assessments) = self.registry.combine(assessments);
        (flagged, assessments, deg)
    }

    /// One detector's fault-aware assessment: the bounded retry loop of
    /// [`WorkflowEngine::assess_resilient`], factored per detector so the
    /// dedup propagation path can drive non-clone-invariant detectors
    /// through exactly the same degradation machinery.
    #[allow(clippy::too_many_arguments)]
    fn assess_detector_resilient(
        &self,
        d: usize,
        sample: &Sample,
        idx: usize,
        run: &FaultRun,
        content_key: u64,
        cache: &AnalysisCache,
        assessments: &mut Vec<Assessment>,
        deg: &mut CaseDegradation,
    ) {
        let inj = run.injector.as_ref();
        if (idx as u64) > run.quarantine_at[d] {
            // Quarantined earlier in the run: never called again.
            deg.lost += 1;
            return;
        }
        let key = site_key(d as u64, idx as u64);
        let mut produced = false;
        let mut attempts_made = 0u32;
        for attempt in 0..=inj.max_retries() {
            attempts_made = attempt + 1;
            match inj.attempt(Site::DetectorCall, key, attempt) {
                None => {
                    if attempt > 0 {
                        inj.note_recovered(Site::DetectorCall, attempt);
                        deg.recovered += 1;
                    }
                    match self.registry.try_assess_cached_at(d, sample, cache, content_key) {
                        Ok(a) => assessments.push(a),
                        Err(_) => {
                            // The detector ran but its backend failed
                            // (ML predict fault, keyed by sample id).
                            deg.ml_failures += 1;
                            deg.lost += 1;
                        }
                    }
                    produced = true;
                    break;
                }
                Some(kind) => {
                    deg.record(kind);
                    if !kind.is_retryable() {
                        break;
                    }
                }
            }
        }
        deg.retries += u64::from(attempts_made.saturating_sub(1));
        if !produced {
            inj.note_exhausted(Site::DetectorCall);
            deg.exhausted += 1;
            deg.lost += 1;
        }
    }

    /// Assessment + threat-model stages for a clone-class member, reusing
    /// the representative's work: clone-invariant detectors assess the
    /// representative (warm in the shared content-addressed cache after
    /// its own direct pass — no phase ordering required) and their
    /// findings are remapped onto the member through the token alignment
    /// (spans via the token-boundary maps, identifiers in function names,
    /// messages, and evidence via the proven rename). Detectors that are
    /// not clone-invariant (ML reads raw token text and source length)
    /// run directly on the member, under the same fault machinery as the
    /// direct path. The surface classification propagates from the
    /// representative: it is derived from the call graph, which the clone
    /// equivalence preserves up to identifier renaming.
    ///
    /// Returns `None` when any finding fails to remap — before any
    /// member-side detector work happens — so the caller can fall back to
    /// the direct path from a clean slate. At fault rate zero the result
    /// is byte-identical to direct analysis of the member.
    #[allow(clippy::too_many_arguments)]
    fn assess_propagated(
        &self,
        sample: &Sample,
        rep: &Sample,
        rep_key: u64,
        alignment: &TokenAlignment,
        idx: usize,
        run: Option<&FaultRun>,
        cache: &AnalysisCache,
    ) -> Option<(Assessed, CaseDegradation)> {
        let applicable = self.registry.applicable_indices(sample);
        // Remap pass first: assess the representative with every
        // applicable clone-invariant detector and remap the findings. A
        // failed remap bails out here, before any member-side work.
        let mut slots: Vec<Option<Assessment>> = Vec::with_capacity(applicable.len());
        for &d in &applicable {
            if self.registry.clone_invariant_at(d) {
                let a = self.registry.assess_cached_keyed_at(d, rep, cache, rep_key);
                slots.push(Some(remap_assessment(a, alignment)?));
            } else {
                slots.push(None);
            }
        }
        let span = self.stage_spans.assess.start();
        let detect = self.stage_spans.detect.start();
        let mut deg = CaseDegradation::default();
        let mut assessments = Vec::with_capacity(applicable.len());
        let member_key = AnalysisCache::content_key(&sample.source);
        for (slot, &d) in slots.into_iter().zip(&applicable) {
            match slot {
                Some(a) => assessments.push(a),
                None => match run {
                    None => assessments
                        .push(self.registry.assess_cached_keyed_at(d, sample, cache, member_key)),
                    Some(run) => self.assess_detector_resilient(
                        d,
                        sample,
                        idx,
                        run,
                        member_key,
                        cache,
                        &mut assessments,
                        &mut deg,
                    ),
                },
            }
        }
        let (flagged, assessments) = self.registry.combine(assessments);
        detect.stop();
        let surface_span = self.stage_spans.surface.start();
        let surface = self.classify_surface(rep, rep_key, cache);
        surface_span.stop();
        let mut findings: Vec<Finding> = assessments.into_iter().flat_map(|a| a.findings).collect();
        findings.sort_by(|a, b| {
            a.detector
                .cmp(&b.detector)
                .then(a.span.cmp(&b.span))
                .then(a.cwe.id().cmp(&b.cwe.id()))
                .then(a.message.cmp(&b.message))
        });
        span.stop();
        Some((Assessed { flagged, surface, findings }, deg))
    }

    /// Threat-model stage: surface of the sample's unit (most exposed
    /// function), memoized per unique source content.
    fn classify_surface(
        &self,
        sample: &Sample,
        content_key: u64,
        cache: &AnalysisCache,
    ) -> Surface {
        *cache.analysis_keyed(content_key, "surface", 0, || {
            match cache.parse_keyed(content_key, &sample.source) {
                Ok(program) => {
                    let graph = CallGraph::build(&program);
                    graph
                        .surfaces()
                        .into_values()
                        .min() // ZeroClick < OneClick < Local
                        .unwrap_or(Surface::Local)
                }
                Err(_) => Surface::Local,
            }
        })
    }

    /// Runs all three Figure-1 stages for one sample. Pure with respect to
    /// batch state: the result depends only on the sample, the seed, and
    /// the detector suite — never on which thread or position processed it.
    fn assess_one(
        &self,
        idx: usize,
        sample: &Sample,
        run: Option<&FaultRun>,
        cache: &AnalysisCache,
        dedup: Option<&DedupPlan>,
    ) -> CaseWork {
        // Stage 1: automated detection (Figure 1, "Vulnerability Detection")
        // + threat modeling / reachability analysis.
        let (Assessed { flagged, surface, findings }, degradation) =
            self.assess_stage(sample, idx, run, cache, dedup);
        // Stage 2: manual security review for exposed surfaces.
        let review_span = self.stage_spans.review.start();
        let (reviewed, catch, review_minutes) =
            manual_review(sample, flagged, surface, &self.config);
        review_span.stop();

        let mut outcome = CaseOutcome {
            sample_id: sample.id,
            truly_vulnerable: sample.label,
            auto_flagged: flagged,
            surface,
            manually_reviewed: reviewed,
            review_catch: catch,
            findings,
            repaired_via: None,
            patched_source: None,
        };

        // Stage 3: repair (only real, detected vulnerabilities get patched;
        // false alarms burn triage time, which manual_review accounted for).
        let mut repair_minutes = 0.0;
        let mut expert_hours = 0.0;
        if outcome.detected() && sample.label {
            let repair_span = self.stage_spans.repair.start();
            let (channel_used, patched, analyst_min, expert_h) =
                repair(sample, &self.fixer, &self.verifier, &self.config, cache);
            repair_span.stop();
            repair_minutes = analyst_min;
            expert_hours = expert_h;
            outcome.repaired_via = Some(channel_used);
            outcome.patched_source = patched;
        }
        CaseWork { outcome, review_minutes, repair_minutes, expert_hours, degradation }
    }

    /// Folds one case into the aggregate report (labour totals, repair
    /// channel counts, degradation accounting, the traced outcome).
    fn fold_case(report: &mut WorkflowReport, w: CaseWork) {
        report.analyst_minutes += w.review_minutes;
        report.analyst_minutes += w.repair_minutes;
        report.expert_hours += w.expert_hours;
        report.degradation.absorb(&w.degradation);
        match w.outcome.repaired_via {
            Some(RepairChannel::AutoFix) => report.auto_fixed += 1,
            Some(RepairChannel::AiSuggestion) => report.ai_fixed += 1,
            Some(RepairChannel::Expert) => report.expert_fixed += 1,
            None if w.outcome.truly_vulnerable => report.escaped += 1,
            None => {}
        }
        report.cases.push(w.outcome);
    }

    /// Folds per-case results into the aggregate report, in submission
    /// order. Both the sequential and the sharded path run this exact fold,
    /// which pins the floating-point accumulation order (review minutes
    /// before repair minutes, case by case) and therefore makes the two
    /// paths bit-identical.
    fn reduce(work: Vec<CaseWork>) -> WorkflowReport {
        let mut report = WorkflowReport::default();
        for w in work {
            Self::fold_case(&mut report, w);
        }
        report
    }
}

/// Manual-review stage. Returns `(reviewed, caught, analyst_minutes)`.
fn manual_review(
    sample: &Sample,
    auto_flagged: bool,
    surface: Surface,
    config: &WorkflowConfig,
) -> (bool, bool, f64) {
    // Figure 1: zero/one-click surfaces trigger manual review; flagged
    // samples are triaged regardless.
    let reviewed = surface.requires_manual_review() || auto_flagged;
    if !reviewed {
        return (false, false, 0.0);
    }
    let minutes = config.review_minutes;
    // Deterministic pseudo-random analyst outcome per sample.
    let catch = sample.label && hash_unit(sample.id ^ config.seed) < config.analyst_skill;
    (true, catch, minutes)
}

/// Remaps an assessment produced on a clone representative onto a member
/// through the token alignment. `None` when any finding's span endpoint
/// misses a token boundary — the caller falls back to direct analysis.
fn remap_assessment(a: Assessment, alignment: &TokenAlignment) -> Option<Assessment> {
    let mut findings = Vec::with_capacity(a.findings.len());
    for f in a.findings {
        findings.push(remap_finding(f, alignment)?);
    }
    Some(Assessment { findings, ..a })
}

/// Remaps one finding: the span through the token-boundary maps, the
/// function name through the rename, and the message/evidence text
/// word-by-word (detector messages backtick-quote identifiers, and the
/// alignment proof requires literals to be equal, so word-level renaming
/// is exact).
fn remap_finding(f: Finding, alignment: &TokenAlignment) -> Option<Finding> {
    let span = alignment.map_span(f.span)?;
    Some(Finding {
        cwe: f.cwe,
        function: alignment.map_name(&f.function).to_string(),
        span,
        detector: f.detector,
        message: alignment.rewrite(&f.message),
        confidence: f.confidence,
        evidence: f.evidence.map(|e| Evidence {
            domain: e.domain,
            facts: e
                .facts
                .into_iter()
                .map(|fact| EvidenceFact {
                    var: alignment.map_name(&fact.var).to_string(),
                    value: alignment.rewrite(&fact.value),
                })
                .collect(),
            claim: alignment.rewrite(&e.claim),
        }),
    })
}

/// Repair stage: auto-fix → AI suggestion → expert.
/// Returns `(channel, patched_source, analyst_minutes, expert_hours)`.
fn repair(
    sample: &Sample,
    fixer: &AutoFixer,
    verifier: &RuleEngine,
    config: &WorkflowConfig,
    cache: &AnalysisCache,
) -> (RepairChannel, Option<String>, f64, f64) {
    if let Some(cwe) = sample.cwe {
        if AutoFixer::supports(cwe) {
            // The assess stage already parsed this sample: reuse the cached
            // AST (an Arc clone plus a cheap interned-AST deep copy) instead
            // of re-lexing the source from scratch. Verification scans the
            // patched AST directly, with only the detectors for the fixed
            // class — the clean-check filters to that class anyway — and the
            // patched text is printed only when the fix actually sticks.
            let key = AnalysisCache::content_key(&sample.source);
            let patched = cache
                .parse_keyed(key, &sample.source)
                .ok()
                .and_then(|program| fixer.fix_program((*program).clone(), cwe));
            if let Some(patched) = patched {
                let clean = verifier.scan_cwe(&patched, cwe).iter().all(|f| f.cwe != cwe);
                if clean {
                    let text = vulnman_lang::print_program(&patched);
                    return (RepairChannel::AutoFix, Some(text), 0.0, 0.0);
                }
            }
        }
        // AI suggestion: plausible for the remaining mechanical-ish classes,
        // but costs verification time and is rejected when wrong.
        let suggestion_ok = hash_unit(sample.id.wrapping_mul(31) ^ config.seed) < 0.5;
        if suggestion_ok {
            return (RepairChannel::AiSuggestion, None, config.suggestion_verify_minutes, 0.0);
        }
        return (
            RepairChannel::Expert,
            None,
            config.suggestion_verify_minutes, // time spent rejecting the suggestion
            config.expert_fix_hours,
        );
    }
    (RepairChannel::Expert, None, 0.0, config.expert_fix_hours)
}

/// Maps a u64 to a deterministic uniform in `[0, 1)` (splitmix64 finalizer).
fn hash_unit(mut x: u64) -> f64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^= x >> 31;
    (x >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::{DetectorRegistry, RuleBasedDetector};
    use vulnman_synth::cwe::Cwe;
    use vulnman_synth::dataset::DatasetBuilder;
    use vulnman_synth::generator::SampleGenerator;
    use vulnman_synth::style::StyleProfile;
    use vulnman_synth::tier::Tier;

    fn engine() -> WorkflowEngine {
        let mut registry = DetectorRegistry::new();
        registry.register(Box::new(RuleBasedDetector::standard()));
        WorkflowEngine::new(registry, WorkflowConfig::default())
    }

    fn corpus() -> Vec<Sample> {
        DatasetBuilder::new(11)
            .vulnerable_count(20)
            .vulnerable_fraction(0.4)
            .build()
            .samples()
            .to_vec()
    }

    #[test]
    fn detected_vulnerabilities_get_repaired() {
        let report = engine().process(&corpus());
        let repaired = report.auto_fixed + report.ai_fixed + report.expert_fixed;
        assert!(repaired > 0);
        assert_eq!(
            repaired + report.escaped,
            report.cases.iter().filter(|c| c.truly_vulnerable).count()
        );
    }

    #[test]
    fn auto_fix_produces_verified_patches() {
        let mut g = SampleGenerator::new(5, StyleProfile::mainstream());
        let (v, _) = g.vulnerable_pair(Cwe::SqlInjection, Tier::Simple, "p");
        let report = engine().process(&[v]);
        assert_eq!(report.auto_fixed, 1);
        let patched = report.cases[0].patched_source.as_ref().expect("patch");
        assert!(patched.contains("escape_sql"));
    }

    #[test]
    fn exposed_surfaces_reviewed_per_figure1() {
        let report = engine().process(&corpus());
        for c in &report.cases {
            if c.surface.requires_manual_review() {
                assert!(c.manually_reviewed, "exposed case {} must be reviewed", c.sample_id);
            }
        }
        assert!(report.review_rate() > 0.0);
        assert!(report.analyst_minutes > 0.0);
    }

    #[test]
    fn detection_metrics_reflect_rule_quality() {
        let report = engine().process(&corpus());
        let m = report.detection_metrics();
        assert!(m.recall() > 0.8, "rules + review should catch most: {:?}", m);
        assert!(m.precision() > 0.8);
    }

    #[test]
    fn pipelined_matches_sequential() {
        let samples = corpus();
        let e = engine();
        let seq = e.process(&samples);
        let pipe = e.process_pipelined(&samples);
        assert_eq!(seq.detection_metrics(), pipe.detection_metrics());
        assert_eq!(seq.auto_fixed, pipe.auto_fixed);
        assert_eq!(seq.expert_fixed, pipe.expert_fixed);
        assert_eq!(seq.escaped, pipe.escaped);
        assert!((seq.analyst_minutes - pipe.analyst_minutes).abs() < 1e-9);
        let ids: Vec<u64> = pipe.cases.iter().map(|c| c.sample_id).collect();
        let expected: Vec<u64> = samples.iter().map(|s| s.id).collect();
        assert_eq!(ids, expected, "pipeline preserves submission order in the report");
    }

    #[test]
    fn unlimited_capacity_matches_plain_processing() {
        let samples = corpus();
        let e = engine();
        let plain = e.process(&samples);
        let capped = e.process_with_capacity(&samples, f64::INFINITY);
        assert_eq!(plain.detection_metrics(), capped.detection_metrics());
        assert_eq!(plain.auto_fixed, capped.auto_fixed);
        assert_eq!(plain.escaped, capped.escaped);
        assert_eq!(capped.reviews_skipped, 0);
    }

    #[test]
    fn tight_capacity_skips_reviews_and_lets_vulns_escape() {
        let samples = corpus();
        let e = engine();
        let full = e.process_with_capacity(&samples, f64::INFINITY);
        let starved = e.process_with_capacity(&samples, 0.0);
        assert!(starved.reviews_skipped > 0);
        assert!(starved.analyst_minutes < full.analyst_minutes);
        // With no reviews, only auto-flagged vulns are repaired.
        assert!(starved.escaped >= full.escaped);
    }

    #[test]
    fn scarce_reviews_go_to_exposed_surfaces_first() {
        let samples = corpus();
        let e = engine();
        // Budget for exactly three reviews.
        let cfg = WorkflowConfig::default();
        let r = e.process_with_capacity(&samples, cfg.review_minutes * 3.0);
        let reviewed: Vec<Surface> =
            r.cases.iter().filter(|c| c.manually_reviewed).map(|c| c.surface).collect();
        let skipped: Vec<Surface> = r
            .cases
            .iter()
            .filter(|c| !c.manually_reviewed && c.surface.requires_manual_review())
            .map(|c| c.surface)
            .collect();
        assert_eq!(reviewed.len(), 3);
        // No skipped candidate outranks a reviewed one.
        for s in &skipped {
            for done in &reviewed {
                assert!(done <= s, "reviewed {done:?} vs skipped {s:?}");
            }
        }
    }

    #[test]
    fn pricing_adds_labour() {
        let report = engine().process(&corpus());
        let params = CostParams::default();
        let priced = report.price(&params);
        let bare = crate::costmodel::price_deployment(&report.detection_metrics(), &params);
        assert!(priced.triage_cost > bare.triage_cost);
    }

    #[test]
    fn deterministic_across_runs() {
        let samples = corpus();
        let a = engine().process(&samples);
        let b = engine().process(&samples);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_batch_is_fine() {
        let report = engine().process(&[]);
        assert!(report.cases.is_empty());
        assert_eq!(report.review_rate(), 0.0);
    }

    fn engine_with(jobs: usize, cache: bool) -> WorkflowEngine {
        let mut registry = DetectorRegistry::new();
        registry.register(Box::new(RuleBasedDetector::standard()));
        WorkflowEngine::new(registry, WorkflowConfig { jobs, cache, ..Default::default() })
    }

    fn big_corpus() -> Vec<Sample> {
        let mut samples = DatasetBuilder::new(77)
            .vulnerable_count(40)
            .vulnerable_fraction(0.25)
            .duplication_factor(2)
            .build()
            .samples()
            .to_vec();
        // An exact-duplicate slice on top of the near-duplicates: vendored
        // copies share content byte-for-byte, which is what the
        // content-addressed cache exploits.
        let next = samples.iter().map(|s| s.id).max().unwrap_or(0) + 1;
        let copies: Vec<Sample> = samples
            .iter()
            .take(60)
            .cloned()
            .enumerate()
            .map(|(i, mut s)| {
                s.id = next + i as u64;
                s
            })
            .collect();
        samples.extend(copies);
        samples
    }

    fn dedup_engine(jobs: usize, dedup: bool) -> WorkflowEngine {
        let mut registry = DetectorRegistry::new();
        registry.register(Box::new(RuleBasedDetector::standard()));
        registry.register(Box::new(crate::detector::SemanticDetector::standard()));
        WorkflowEngine::new(registry, WorkflowConfig { jobs, dedup, ..Default::default() })
    }

    #[test]
    fn dedup_reports_are_byte_identical_to_direct_analysis() {
        let samples = big_corpus();
        let baseline = serde_json::to_string(&dedup_engine(1, false).process(&samples)).unwrap();
        for jobs in [1, 4] {
            let engine = dedup_engine(jobs, true);
            let report = engine.process(&samples);
            assert_eq!(
                serde_json::to_string(&report).unwrap(),
                baseline,
                "dedup-on must not change the report (jobs={jobs})"
            );
            assert!(
                engine.metrics().counter("clone.propagated").get() > 0,
                "the duplicate-heavy corpus must actually exercise propagation"
            );
        }
    }

    #[test]
    fn dedup_propagates_alpha_renamed_members_with_remapped_findings() {
        let mut samples = corpus();
        let next = samples.iter().map(|s| s.id).max().unwrap_or(0) + 1;
        let variants: Vec<Sample> = samples
            .iter()
            .take(10)
            .enumerate()
            .filter_map(|(i, s)| {
                vulnman_synth::mutate::alpha_rename(&s.source, 40 + i as u32).map(|src| {
                    let mut v = s.clone();
                    v.id = next + i as u64;
                    v.source = src;
                    v
                })
            })
            .collect();
        assert!(!variants.is_empty());
        samples.extend(variants);
        let direct = serde_json::to_string(&dedup_engine(1, false).process(&samples)).unwrap();
        let engine = dedup_engine(1, true);
        let deduped = engine.process(&samples);
        assert_eq!(serde_json::to_string(&deduped).unwrap(), direct);
        assert!(engine.metrics().counter("clone.classes").get() > 0);
        assert!(engine.metrics().counter("clone.propagated").get() > 0);
    }

    #[test]
    fn zero_rate_fault_engine_with_dedup_is_byte_identical() {
        let samples = big_corpus();
        let baseline = serde_json::to_string(&dedup_engine(1, false).process(&samples)).unwrap();
        let mut registry = DetectorRegistry::new();
        registry.register(Box::new(RuleBasedDetector::standard()));
        registry.register(Box::new(crate::detector::SemanticDetector::standard()));
        let config = WorkflowConfig { dedup: true, ..Default::default() };
        let engine = WorkflowEngine::with_fault_config(
            registry,
            config,
            FaultConfig { rate: 0.0, ..Default::default() },
        );
        assert_eq!(serde_json::to_string(&engine.process(&samples)).unwrap(), baseline);
    }

    #[test]
    fn sharded_report_is_byte_identical_to_sequential() {
        let samples = big_corpus();
        assert!(samples.len() >= 200, "corpus should be sizable: {}", samples.len());
        let seq = engine_with(1, true).process(&samples);
        for jobs in [2, 3, 4, 7] {
            let par = engine_with(jobs, true).process(&samples);
            assert_eq!(seq, par, "jobs={jobs} must match the sequential report");
            // Byte-identical serialized artifacts, not just structural equality.
            let a = serde_json::to_string(&seq).unwrap();
            let b = serde_json::to_string(&par).unwrap();
            assert_eq!(a, b, "serialized reports must be byte-identical at jobs={jobs}");
        }
    }

    #[test]
    fn sharded_handles_degenerate_shapes() {
        let samples = corpus();
        let e = engine_with(4, true);
        // More jobs than samples, empty input, single sample.
        assert_eq!(e.process_sharded(&samples, 64), engine_with(1, true).process(&samples));
        assert!(e.process_sharded(&[], 4).cases.is_empty());
        let one = &samples[..1];
        assert_eq!(e.process(one), engine_with(1, true).process(one));
    }

    #[test]
    fn caching_does_not_change_results() {
        let samples = big_corpus();
        let cached = engine_with(1, true).process(&samples);
        let uncached = engine_with(1, false).process(&samples);
        assert_eq!(cached, uncached);
    }

    #[test]
    fn duplicated_corpus_hits_the_cache() {
        let samples = big_corpus();
        let e = engine_with(1, true);
        e.process(&samples);
        let stats = e.cache_stats();
        // Every sample is parsed for detection and again for surface
        // classification, and duplicated slices share content, so a large
        // share of lookups must be served from the cache.
        assert!(stats.hits > 0, "expected cache hits: {stats:?}");
        assert!(
            stats.hit_rate() > 0.3,
            "duplication + multi-stage reuse should hit often: {stats:?}"
        );
        // A second scan of the same corpus is answered almost entirely
        // from the cache.
        let before = e.cache_stats();
        e.process(&samples);
        let after = e.cache_stats();
        assert!(after.hits - before.hits > (after.misses - before.misses) * 10);
    }

    #[test]
    fn disabled_cache_never_hits() {
        let e = engine_with(1, false);
        e.process(&corpus());
        assert_eq!(e.cache_stats().hits, 0);
    }

    #[test]
    fn findings_are_ordered_and_attributed() {
        let report = engine_with(1, true).process(&big_corpus());
        let mut saw_findings = false;
        for c in &report.cases {
            saw_findings |= !c.findings.is_empty();
            for pair in c.findings.windows(2) {
                let key = |f: &Finding| (f.detector.clone(), f.span, f.cwe.id(), f.message.clone());
                assert!(key(&pair[0]) <= key(&pair[1]), "findings sorted within case");
            }
            if c.auto_flagged {
                assert!(!c.findings.is_empty(), "flagged case carries its findings");
            }
        }
        assert!(saw_findings, "some cases should have findings");
    }

    #[test]
    fn metrics_capture_stage_spans_and_cache_counters() {
        let samples = corpus();
        let e = engine();
        e.process(&samples);
        let snap = e.metrics_snapshot();
        assert_eq!(snap.counters["workflow.samples"], samples.len() as u64);
        assert_eq!(snap.histograms["span.stage.assess"].count, samples.len() as u64);
        assert_eq!(snap.histograms["span.stage.assess.detect"].count, samples.len() as u64);
        assert!(snap.histograms["span.stage.repair"].count > 0);
        assert_eq!(snap.spans_started, snap.spans_stopped, "spans balanced");
        // cache_stats reads the same registry counters — one source of truth.
        let stats = e.cache_stats();
        assert_eq!(stats.hits, snap.counters["cache.hits"]);
        assert_eq!(stats.misses, snap.counters["cache.misses"]);
        assert!(snap.counters["detector.rule-suite.calls"] >= samples.len() as u64);
    }

    #[test]
    fn metrics_schema_is_path_and_config_independent() {
        let samples = corpus();
        let seq = engine_with(1, true);
        seq.process(&samples);
        let sharded = engine_with(4, true);
        sharded.process(&samples);
        let uncached = engine_with(1, false);
        uncached.process(&samples);
        let schema = seq.metrics_snapshot().schema();
        assert_eq!(schema, sharded.metrics_snapshot().schema());
        assert_eq!(schema, uncached.metrics_snapshot().schema());
        // Sharded runs populate the pre-registered shard histograms.
        assert!(sharded.metrics_snapshot().histograms["shard.queue_depth"].count > 0);
        assert_eq!(seq.metrics_snapshot().histograms["shard.queue_depth"].count, 0);
    }

    #[test]
    fn noop_recorder_changes_nothing_but_records_nothing() {
        let samples = corpus();
        let mut registry = DetectorRegistry::new();
        registry.register(Box::new(RuleBasedDetector::standard()));
        let noop =
            WorkflowEngine::with_metrics(registry, WorkflowConfig::default(), Registry::noop());
        let a = noop.process(&samples);
        let b = engine().process(&samples);
        assert_eq!(a, b, "recording must never change results");
        assert!(noop.metrics_snapshot().counters.is_empty());
        assert_eq!(noop.cache_stats(), CacheStats::default());
    }

    #[test]
    fn hash_unit_is_uniformish() {
        let n = 10_000;
        let mean: f64 = (0..n).map(hash_unit).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "{mean}");
    }

    use vulnman_faults::{FaultMix, FaultPlan};

    fn fault_engine(jobs: usize, fault_cfg: FaultConfig) -> WorkflowEngine {
        let mut registry = DetectorRegistry::new();
        registry.register(Box::new(RuleBasedDetector::standard()));
        let config = WorkflowConfig { jobs, ..Default::default() };
        WorkflowEngine::with_fault_config(registry, config, fault_cfg)
    }

    #[test]
    fn zero_rate_fault_engine_is_byte_identical_to_plain() {
        let samples = corpus();
        let plain = engine().process(&samples);
        let faulted = fault_engine(1, FaultConfig::with_rate(9, 0.0)).process(&samples);
        assert_eq!(
            serde_json::to_string(&plain).unwrap(),
            serde_json::to_string(&faulted).unwrap(),
            "a zero-rate plan must not perturb the report in any byte"
        );
        assert!(!faulted.degradation.is_degraded());
    }

    #[test]
    fn faulted_reports_are_byte_identical_across_jobs() {
        let samples = big_corpus();
        let cfg = FaultConfig::with_rate(42, 0.2);
        let seq = fault_engine(1, cfg).process(&samples);
        assert!(seq.degradation.is_degraded(), "20% faults must degrade something");
        for jobs in [2, 4, 7] {
            let par = fault_engine(jobs, cfg).process(&samples);
            assert_eq!(
                serde_json::to_string(&seq).unwrap(),
                serde_json::to_string(&par).unwrap(),
                "degraded reports must stay byte-identical at jobs={jobs}"
            );
        }
    }

    #[test]
    fn quarantined_detector_is_never_called_after_exhaustion() {
        use std::sync::atomic::{AtomicU64, Ordering};
        struct Counting(Arc<AtomicU64>);
        impl crate::detector::Detector for Counting {
            fn name(&self) -> &str {
                "counting"
            }
            fn assess(&self, _: &Sample) -> Assessment {
                self.0.fetch_add(1, Ordering::Relaxed);
                Assessment {
                    vulnerable: false,
                    score: 0.0,
                    findings: vec![],
                    detector: "counting".into(),
                }
            }
        }
        let calls = Arc::new(AtomicU64::new(0));
        let mut registry = DetectorRegistry::new();
        registry.register(Box::new(Counting(Arc::clone(&calls))));
        registry.register(Box::new(RuleBasedDetector::standard()));
        let fault_cfg =
            FaultConfig { seed: 3, rate: 0.5, mix: FaultMix::crash_only(), ..Default::default() };
        let e = WorkflowEngine::with_fault_config(registry, WorkflowConfig::default(), fault_cfg);
        let samples = corpus();
        let report = e.process(&samples);
        // With a crash-only mix, detector 0 exhausts at the first index
        // whose attempt-0 coordinate faults; before that every call is
        // clean, after that it must never run again.
        let plan = FaultPlan::new(&fault_cfg);
        let q = (0..samples.len() as u64)
            .find(|&i| plan.exhausts(Site::DetectorCall, site_key(0, i), fault_cfg.max_retries))
            .expect("50% crash rate must quarantine within the corpus");
        assert_eq!(
            calls.load(Ordering::Relaxed),
            q,
            "the quarantined detector runs exactly once per pre-quarantine sample"
        );
        assert!(report.degradation.quarantined.contains(&"counting".to_string()));
        assert_eq!(e.metrics_snapshot().gauges["fault.degraded"], 2);
    }

    #[test]
    fn crashed_shard_worker_still_yields_a_complete_identical_report() {
        // A crash-heavy plan kills shard workers mid-batch; the coordinator
        // finishes their slices inline and the report comes out complete
        // and byte-identical to the sequential run under the same plan.
        let fault_cfg =
            FaultConfig { seed: 1, rate: 0.9, mix: FaultMix::crash_only(), ..Default::default() };
        let samples = big_corpus();
        let seq = fault_engine(1, fault_cfg).process(&samples);
        let par_engine = fault_engine(4, fault_cfg);
        let par = par_engine.process(&samples);
        assert_eq!(par.cases.len(), samples.len(), "no sample may be dropped");
        assert_eq!(serde_json::to_string(&seq).unwrap(), serde_json::to_string(&par).unwrap());
        let snap = par_engine.metrics_snapshot();
        assert!(
            snap.counters["fault.shard_crashes"] >= 1,
            "a 90% crash rate across 4 shard workers must kill at least one"
        );
    }

    #[test]
    fn fault_metrics_schema_matches_plain_engines() {
        let samples = corpus();
        let plain = engine_with(1, true);
        plain.process(&samples);
        let faulted = fault_engine(1, FaultConfig::with_rate(5, 0.1));
        faulted.process(&samples);
        assert_eq!(
            plain.metrics_snapshot().schema(),
            faulted.metrics_snapshot().schema(),
            "fault instruments are pre-registered for every engine"
        );
    }

    #[test]
    fn semantic_detector_feeds_absint_instruments_and_warm_runs_skip_the_solver() {
        let mut registry = DetectorRegistry::new();
        registry.register(Box::new(crate::detector::SemanticDetector::standard()));
        let e = WorkflowEngine::new(registry, WorkflowConfig::default());
        let samples = corpus();
        e.process(&samples);
        let cold = e.metrics_snapshot();
        assert!(cold.counters["absint.solver.iterations"] > 0, "cold scans must run the fixpoint");
        e.process(&samples);
        let warm = e.metrics_snapshot();
        assert_eq!(
            warm.counters["absint.solver.iterations"], cold.counters["absint.solver.iterations"],
            "warm cache hits must skip the solver entirely"
        );
    }

    #[test]
    fn checker_call_faults_degrade_without_losing_samples() {
        let mut registry = DetectorRegistry::new();
        registry.register(Box::new(crate::detector::SemanticDetector::standard()));
        registry.register(Box::new(RuleBasedDetector::standard()));
        let fault_cfg = FaultConfig {
            seed: 7,
            rate: 0.4,
            mix: FaultMix::transient_only(),
            ..Default::default()
        };
        let e = WorkflowEngine::with_fault_config(registry, WorkflowConfig::default(), fault_cfg);
        let samples = corpus();
        let report = e.process(&samples);
        assert_eq!(report.cases.len(), samples.len(), "no sample may be dropped");
        let snap = e.metrics_snapshot();
        assert!(
            snap.counters["fault.injected.checker_call"] > 0,
            "the CheckerCall site must fire under a 40% transient plan"
        );
    }
}
