//! Vulnerability prioritization: the triage queue (the paper's second
//! deferred component, §V: "feedback loop, **vulnerability prioritization**,
//! fuzzing techniques … as our future work").
//!
//! Findings enter the queue scored by the threat model
//! ([`vulnman_analysis::severity`]) and classified by the owning team's
//! [`PolicySeverity`](crate::customize::PolicySeverity); the queue serves
//! them in `(policy, priority)` order and tracks SLA compliance in simulated
//! days.

use crate::customize::PolicySeverity;
use serde::{Deserialize, Serialize};
use std::collections::BinaryHeap;
use vulnman_analysis::severity::ScoredFinding;

/// SLA deadlines in days per policy class.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlaPolicy {
    /// Days allowed for `Blocking` findings.
    pub blocking_days: f64,
    /// Days allowed for `Tracked` findings.
    pub tracked_days: f64,
}

impl Default for SlaPolicy {
    fn default() -> Self {
        SlaPolicy { blocking_days: 7.0, tracked_days: 90.0 }
    }
}

impl SlaPolicy {
    /// Deadline for a policy class; `None` for accepted risk.
    pub fn deadline(&self, policy: PolicySeverity) -> Option<f64> {
        match policy {
            PolicySeverity::Blocking => Some(self.blocking_days),
            PolicySeverity::Tracked => Some(self.tracked_days),
            PolicySeverity::Accepted => None,
        }
    }
}

/// A queued triage item.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TriageItem {
    /// The scored finding.
    pub finding: ScoredFinding,
    /// The owning team's policy for this class.
    pub policy: PolicySeverity,
    /// Arrival time in days since epoch.
    pub arrived_day: f64,
}

#[derive(Debug, Clone)]
struct Ranked(TriageItem);

impl Ranked {
    /// A stable identity key over every field that distinguishes one finding
    /// from another, used as the last-resort tie-break so `BinaryHeap` pop
    /// order never depends on insertion order or heap internals.
    fn stable_key(&self) -> impl Ord + '_ {
        let f = &self.0.finding;
        (
            f.finding.cwe,
            f.finding.function.as_str(),
            f.finding.span,
            f.finding.detector.as_str(),
            f.finding.message.as_str(),
            f.finding.confidence,
            f.surface,
        )
    }
}

impl PartialEq for Ranked {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for Ranked {}

impl Ord for Ranked {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Blocking before Tracked before Accepted; then priority desc;
        // then earliest arrival (FIFO among equals); then a stable finding
        // key. Floats compare with `total_cmp` — `push` already clamps NaN,
        // but the ordering must be total regardless of what the heap holds,
        // or pop order degrades to heap-shape-dependent (the bug this
        // replaces: `partial_cmp(..).unwrap_or(Equal)` let a NaN-priority
        // item rank as equal to everything, including Blocking items).
        let class = |p: PolicySeverity| match p {
            PolicySeverity::Blocking => 0u8,
            PolicySeverity::Tracked => 1,
            PolicySeverity::Accepted => 2,
        };
        class(other.0.policy)
            .cmp(&class(self.0.policy))
            .then_with(|| self.0.finding.priority.total_cmp(&other.0.finding.priority))
            .then_with(|| other.0.arrived_day.total_cmp(&self.0.arrived_day))
            .then_with(|| self.0.finding.severity.total_cmp(&other.0.finding.severity))
            .then_with(|| other.stable_key().cmp(&self.stable_key()))
    }
}

impl PartialOrd for Ranked {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A served item with its outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServedItem {
    /// The item.
    pub item: TriageItem,
    /// Day it was remediated.
    pub served_day: f64,
    /// Whether the SLA (if any) was met.
    pub sla_met: Option<bool>,
}

/// The prioritized remediation queue.
#[derive(Debug, Default)]
pub struct TriageQueue {
    heap: BinaryHeap<Ranked>,
    sla: SlaPolicy,
}

impl TriageQueue {
    /// Creates an empty queue with default SLAs.
    pub fn new() -> Self {
        TriageQueue::default()
    }

    /// Creates a queue with explicit SLAs.
    pub fn with_sla(sla: SlaPolicy) -> Self {
        TriageQueue { heap: BinaryHeap::new(), sla }
    }

    /// Enqueues a finding. NaN scores are clamped to 0.0 on entry (a NaN
    /// priority must never outrank a real one, and the severity pipeline
    /// never produces NaN for well-formed findings), and a NaN arrival day
    /// is treated as day 0.
    pub fn push(&mut self, mut finding: ScoredFinding, policy: PolicySeverity, arrived_day: f64) {
        if finding.priority.is_nan() {
            finding.priority = 0.0;
        }
        if finding.severity.is_nan() {
            finding.severity = 0.0;
        }
        let arrived_day = if arrived_day.is_nan() { 0.0 } else { arrived_day };
        self.heap.push(Ranked(TriageItem { finding, policy, arrived_day }));
    }

    /// Enqueues a finding weighted by its blast radius from the corpus
    /// graph: `blast` in `[0, 1]` scales priority by `1 + blast`, so a
    /// finding whose defining function touches most of the corpus outranks
    /// an equal-severity finding confined to a leaf. Out-of-range or NaN
    /// blast values are clamped.
    pub fn push_with_blast(
        &mut self,
        mut finding: ScoredFinding,
        policy: PolicySeverity,
        arrived_day: f64,
        blast: f64,
    ) {
        let blast = if blast.is_nan() { 0.0 } else { blast.clamp(0.0, 1.0) };
        finding.priority *= 1.0 + blast;
        self.push(finding, policy, arrived_day);
    }

    /// Items waiting.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Serves the highest-ranked item at `day`, recording SLA compliance.
    pub fn serve(&mut self, day: f64) -> Option<ServedItem> {
        let Ranked(item) = self.heap.pop()?;
        let sla_met =
            self.sla.deadline(item.policy).map(|deadline| day - item.arrived_day <= deadline);
        Some(ServedItem { item, served_day: day, sla_met })
    }

    /// Simulates steady operation: serves `per_day` items per day for
    /// `days`, returning everything served (in service order) plus the
    /// backlog left behind.
    pub fn drain_simulation(mut self, per_day: usize, days: usize) -> (Vec<ServedItem>, usize) {
        let mut served = Vec::new();
        for day in 0..days {
            for _ in 0..per_day {
                match self.serve(day as f64) {
                    Some(s) => served.push(s),
                    None => break,
                }
            }
        }
        let backlog = self.len();
        (served, backlog)
    }
}

/// SLA compliance summary of a service trace.
pub fn sla_compliance(served: &[ServedItem]) -> f64 {
    let with_sla: Vec<&ServedItem> = served.iter().filter(|s| s.sla_met.is_some()).collect();
    if with_sla.is_empty() {
        return 1.0;
    }
    with_sla.iter().filter(|s| s.sla_met == Some(true)).count() as f64 / with_sla.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use vulnman_analysis::finding::{Confidence, Finding};
    use vulnman_analysis::reachability::Surface;
    use vulnman_analysis::severity::score;
    use vulnman_synth::cwe::Cwe;

    fn scored(cwe: Cwe, surface: Surface) -> ScoredFinding {
        score(
            Finding {
                cwe,
                function: "f".into(),
                span: vulnman_lang::Span::dummy(),
                detector: "t".into(),
                message: String::new(),
                confidence: Confidence::High,
                evidence: None,
            },
            surface,
        )
    }

    #[test]
    fn blocking_served_before_higher_priority_tracked() {
        let mut q = TriageQueue::new();
        // Tracked command injection (very high priority score)…
        q.push(scored(Cwe::CommandInjection, Surface::ZeroClick), PolicySeverity::Tracked, 0.0);
        // …must still wait behind a Blocking null deref (low score).
        q.push(scored(Cwe::NullDereference, Surface::Local), PolicySeverity::Blocking, 0.0);
        let first = q.serve(0.0).unwrap();
        assert_eq!(first.item.policy, PolicySeverity::Blocking);
        assert_eq!(first.item.finding.finding.cwe, Cwe::NullDereference);
    }

    #[test]
    fn priority_orders_within_class() {
        let mut q = TriageQueue::new();
        q.push(scored(Cwe::RaceCondition, Surface::Local), PolicySeverity::Tracked, 0.0);
        q.push(scored(Cwe::CommandInjection, Surface::ZeroClick), PolicySeverity::Tracked, 0.0);
        assert_eq!(q.serve(0.0).unwrap().item.finding.finding.cwe, Cwe::CommandInjection);
        assert_eq!(q.serve(0.0).unwrap().item.finding.finding.cwe, Cwe::RaceCondition);
    }

    #[test]
    fn fifo_among_equals() {
        let mut q = TriageQueue::new();
        let a = scored(Cwe::SqlInjection, Surface::ZeroClick);
        q.push(a.clone(), PolicySeverity::Blocking, 1.0);
        q.push(a, PolicySeverity::Blocking, 0.0);
        assert_eq!(q.serve(2.0).unwrap().item.arrived_day, 0.0);
    }

    #[test]
    fn nan_priority_never_outranks_blocking() {
        let mut q = TriageQueue::new();
        let mut poisoned = scored(Cwe::CommandInjection, Surface::ZeroClick);
        poisoned.priority = f64::NAN;
        q.push(poisoned, PolicySeverity::Tracked, 0.0);
        q.push(scored(Cwe::NullDereference, Surface::Local), PolicySeverity::Blocking, 0.0);
        q.push(scored(Cwe::RaceCondition, Surface::Local), PolicySeverity::Tracked, 0.0);
        assert_eq!(q.serve(0.0).unwrap().item.policy, PolicySeverity::Blocking);
        // NaN was clamped to 0.0 at push, so the real-priority Tracked item
        // is served before the poisoned one.
        let second = q.serve(0.0).unwrap();
        assert_eq!(second.item.finding.finding.cwe, Cwe::RaceCondition);
        let last = q.serve(0.0).unwrap();
        assert_eq!(last.item.finding.priority, 0.0, "NaN clamped at push");
    }

    #[test]
    fn serve_order_is_insertion_invariant() {
        // Equal (policy, priority, arrived_day): the stable finding key must
        // decide, whatever order the items were pushed in.
        let mut a = scored(Cwe::SqlInjection, Surface::ZeroClick);
        a.finding.function = "alpha".into();
        let mut b = a.clone();
        b.finding.function = "beta".into();
        let mut c = a.clone();
        c.finding.function = "gamma".into();
        let perms: [[&ScoredFinding; 3]; 6] =
            [[&a, &b, &c], [&a, &c, &b], [&b, &a, &c], [&b, &c, &a], [&c, &a, &b], [&c, &b, &a]];
        let mut orders = Vec::new();
        for perm in perms {
            let mut q = TriageQueue::new();
            for f in perm {
                q.push((*f).clone(), PolicySeverity::Blocking, 0.0);
            }
            let mut order = Vec::new();
            while let Some(s) = q.serve(0.0) {
                order.push(s.item.finding.finding.function.clone());
            }
            orders.push(order);
        }
        for o in &orders[1..] {
            assert_eq!(o, &orders[0], "serve order must not depend on push order");
        }
    }

    #[test]
    fn blast_weight_reorders_equal_severity_findings() {
        let mut q = TriageQueue::new();
        let mut leaf = scored(Cwe::SqlInjection, Surface::ZeroClick);
        leaf.finding.function = "leaf".into();
        let mut hub = scored(Cwe::SqlInjection, Surface::ZeroClick);
        hub.finding.function = "hub".into();
        q.push_with_blast(leaf, PolicySeverity::Tracked, 0.0, 0.05);
        q.push_with_blast(hub, PolicySeverity::Tracked, 0.0, 0.9);
        assert_eq!(q.serve(0.0).unwrap().item.finding.finding.function, "hub");
        // Blast never overrides the policy class.
        let mut q = TriageQueue::new();
        let mut hub = scored(Cwe::SqlInjection, Surface::ZeroClick);
        hub.finding.function = "hub".into();
        q.push_with_blast(hub, PolicySeverity::Tracked, 0.0, 1.0);
        q.push(scored(Cwe::NullDereference, Surface::Local), PolicySeverity::Blocking, 0.0);
        assert_eq!(q.serve(0.0).unwrap().item.policy, PolicySeverity::Blocking);
    }

    #[test]
    fn sla_tracking() {
        let mut q = TriageQueue::with_sla(SlaPolicy { blocking_days: 2.0, tracked_days: 10.0 });
        q.push(scored(Cwe::SqlInjection, Surface::ZeroClick), PolicySeverity::Blocking, 0.0);
        q.push(scored(Cwe::SqlInjection, Surface::ZeroClick), PolicySeverity::Blocking, 0.0);
        q.push(scored(Cwe::SqlInjection, Surface::ZeroClick), PolicySeverity::Accepted, 0.0);
        let on_time = q.serve(1.0).unwrap();
        assert_eq!(on_time.sla_met, Some(true));
        let late = q.serve(5.0).unwrap();
        assert_eq!(late.sla_met, Some(false));
        let accepted = q.serve(100.0).unwrap();
        assert_eq!(accepted.sla_met, None, "accepted risk has no SLA");
    }

    #[test]
    fn drain_simulation_respects_capacity_and_reports_backlog() {
        let mut q = TriageQueue::new();
        for day in 0..10 {
            q.push(
                scored(Cwe::SqlInjection, Surface::ZeroClick),
                PolicySeverity::Blocking,
                day as f64,
            );
        }
        let (served, backlog) = q.drain_simulation(2, 3);
        assert_eq!(served.len(), 6);
        assert_eq!(backlog, 4);
        let compliance = sla_compliance(&served);
        assert!(compliance > 0.9, "{compliance}");
    }

    #[test]
    fn overloaded_queue_breaches_slas() {
        let mut q = TriageQueue::with_sla(SlaPolicy { blocking_days: 1.0, tracked_days: 5.0 });
        for _ in 0..50 {
            q.push(scored(Cwe::SqlInjection, Surface::ZeroClick), PolicySeverity::Blocking, 0.0);
        }
        let (served, backlog) = q.drain_simulation(2, 10);
        assert_eq!(backlog, 30);
        assert!(sla_compliance(&served) < 0.3, "{}", sla_compliance(&served));
    }
}
