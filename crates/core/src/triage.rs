//! Vulnerability prioritization: the triage queue (the paper's second
//! deferred component, §V: "feedback loop, **vulnerability prioritization**,
//! fuzzing techniques … as our future work").
//!
//! Findings enter the queue scored by the threat model
//! ([`vulnman_analysis::severity`]) and classified by the owning team's
//! [`PolicySeverity`](crate::customize::PolicySeverity); the queue serves
//! them in `(policy, priority)` order and tracks SLA compliance in simulated
//! days.

use crate::customize::PolicySeverity;
use serde::{Deserialize, Serialize};
use std::collections::BinaryHeap;
use vulnman_analysis::severity::ScoredFinding;

/// SLA deadlines in days per policy class.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlaPolicy {
    /// Days allowed for `Blocking` findings.
    pub blocking_days: f64,
    /// Days allowed for `Tracked` findings.
    pub tracked_days: f64,
}

impl Default for SlaPolicy {
    fn default() -> Self {
        SlaPolicy { blocking_days: 7.0, tracked_days: 90.0 }
    }
}

impl SlaPolicy {
    /// Deadline for a policy class; `None` for accepted risk.
    pub fn deadline(&self, policy: PolicySeverity) -> Option<f64> {
        match policy {
            PolicySeverity::Blocking => Some(self.blocking_days),
            PolicySeverity::Tracked => Some(self.tracked_days),
            PolicySeverity::Accepted => None,
        }
    }
}

/// A queued triage item.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TriageItem {
    /// The scored finding.
    pub finding: ScoredFinding,
    /// The owning team's policy for this class.
    pub policy: PolicySeverity,
    /// Arrival time in days since epoch.
    pub arrived_day: f64,
}

#[derive(Debug, Clone, PartialEq)]
struct Ranked(TriageItem);

impl Eq for Ranked {}

impl Ord for Ranked {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Blocking before Tracked before Accepted; then priority desc;
        // then earliest arrival (FIFO among equals).
        let class = |p: PolicySeverity| match p {
            PolicySeverity::Blocking => 0u8,
            PolicySeverity::Tracked => 1,
            PolicySeverity::Accepted => 2,
        };
        class(other.0.policy)
            .cmp(&class(self.0.policy))
            .then(
                self.0
                    .finding
                    .priority
                    .partial_cmp(&other.0.finding.priority)
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
            .then(
                other
                    .0
                    .arrived_day
                    .partial_cmp(&self.0.arrived_day)
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
    }
}

impl PartialOrd for Ranked {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A served item with its outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServedItem {
    /// The item.
    pub item: TriageItem,
    /// Day it was remediated.
    pub served_day: f64,
    /// Whether the SLA (if any) was met.
    pub sla_met: Option<bool>,
}

/// The prioritized remediation queue.
#[derive(Debug, Default)]
pub struct TriageQueue {
    heap: BinaryHeap<Ranked>,
    sla: SlaPolicy,
}

impl TriageQueue {
    /// Creates an empty queue with default SLAs.
    pub fn new() -> Self {
        TriageQueue::default()
    }

    /// Creates a queue with explicit SLAs.
    pub fn with_sla(sla: SlaPolicy) -> Self {
        TriageQueue { heap: BinaryHeap::new(), sla }
    }

    /// Enqueues a finding.
    pub fn push(&mut self, finding: ScoredFinding, policy: PolicySeverity, arrived_day: f64) {
        self.heap.push(Ranked(TriageItem { finding, policy, arrived_day }));
    }

    /// Items waiting.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Serves the highest-ranked item at `day`, recording SLA compliance.
    pub fn serve(&mut self, day: f64) -> Option<ServedItem> {
        let Ranked(item) = self.heap.pop()?;
        let sla_met =
            self.sla.deadline(item.policy).map(|deadline| day - item.arrived_day <= deadline);
        Some(ServedItem { item, served_day: day, sla_met })
    }

    /// Simulates steady operation: serves `per_day` items per day for
    /// `days`, returning everything served (in service order) plus the
    /// backlog left behind.
    pub fn drain_simulation(mut self, per_day: usize, days: usize) -> (Vec<ServedItem>, usize) {
        let mut served = Vec::new();
        for day in 0..days {
            for _ in 0..per_day {
                match self.serve(day as f64) {
                    Some(s) => served.push(s),
                    None => break,
                }
            }
        }
        let backlog = self.len();
        (served, backlog)
    }
}

/// SLA compliance summary of a service trace.
pub fn sla_compliance(served: &[ServedItem]) -> f64 {
    let with_sla: Vec<&ServedItem> = served.iter().filter(|s| s.sla_met.is_some()).collect();
    if with_sla.is_empty() {
        return 1.0;
    }
    with_sla.iter().filter(|s| s.sla_met == Some(true)).count() as f64 / with_sla.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use vulnman_analysis::finding::{Confidence, Finding};
    use vulnman_analysis::reachability::Surface;
    use vulnman_analysis::severity::score;
    use vulnman_synth::cwe::Cwe;

    fn scored(cwe: Cwe, surface: Surface) -> ScoredFinding {
        score(
            Finding {
                cwe,
                function: "f".into(),
                span: vulnman_lang::Span::dummy(),
                detector: "t".into(),
                message: String::new(),
                confidence: Confidence::High,
                evidence: None,
            },
            surface,
        )
    }

    #[test]
    fn blocking_served_before_higher_priority_tracked() {
        let mut q = TriageQueue::new();
        // Tracked command injection (very high priority score)…
        q.push(scored(Cwe::CommandInjection, Surface::ZeroClick), PolicySeverity::Tracked, 0.0);
        // …must still wait behind a Blocking null deref (low score).
        q.push(scored(Cwe::NullDereference, Surface::Local), PolicySeverity::Blocking, 0.0);
        let first = q.serve(0.0).unwrap();
        assert_eq!(first.item.policy, PolicySeverity::Blocking);
        assert_eq!(first.item.finding.finding.cwe, Cwe::NullDereference);
    }

    #[test]
    fn priority_orders_within_class() {
        let mut q = TriageQueue::new();
        q.push(scored(Cwe::RaceCondition, Surface::Local), PolicySeverity::Tracked, 0.0);
        q.push(scored(Cwe::CommandInjection, Surface::ZeroClick), PolicySeverity::Tracked, 0.0);
        assert_eq!(q.serve(0.0).unwrap().item.finding.finding.cwe, Cwe::CommandInjection);
        assert_eq!(q.serve(0.0).unwrap().item.finding.finding.cwe, Cwe::RaceCondition);
    }

    #[test]
    fn fifo_among_equals() {
        let mut q = TriageQueue::new();
        let a = scored(Cwe::SqlInjection, Surface::ZeroClick);
        q.push(a.clone(), PolicySeverity::Blocking, 1.0);
        q.push(a, PolicySeverity::Blocking, 0.0);
        assert_eq!(q.serve(2.0).unwrap().item.arrived_day, 0.0);
    }

    #[test]
    fn sla_tracking() {
        let mut q = TriageQueue::with_sla(SlaPolicy { blocking_days: 2.0, tracked_days: 10.0 });
        q.push(scored(Cwe::SqlInjection, Surface::ZeroClick), PolicySeverity::Blocking, 0.0);
        q.push(scored(Cwe::SqlInjection, Surface::ZeroClick), PolicySeverity::Blocking, 0.0);
        q.push(scored(Cwe::SqlInjection, Surface::ZeroClick), PolicySeverity::Accepted, 0.0);
        let on_time = q.serve(1.0).unwrap();
        assert_eq!(on_time.sla_met, Some(true));
        let late = q.serve(5.0).unwrap();
        assert_eq!(late.sla_met, Some(false));
        let accepted = q.serve(100.0).unwrap();
        assert_eq!(accepted.sla_met, None, "accepted risk has no SLA");
    }

    #[test]
    fn drain_simulation_respects_capacity_and_reports_backlog() {
        let mut q = TriageQueue::new();
        for day in 0..10 {
            q.push(
                scored(Cwe::SqlInjection, Surface::ZeroClick),
                PolicySeverity::Blocking,
                day as f64,
            );
        }
        let (served, backlog) = q.drain_simulation(2, 3);
        assert_eq!(served.len(), 6);
        assert_eq!(backlog, 4);
        let compliance = sla_compliance(&served);
        assert!(compliance > 0.9, "{compliance}");
    }

    #[test]
    fn overloaded_queue_breaches_slas() {
        let mut q = TriageQueue::with_sla(SlaPolicy { blocking_days: 1.0, tracked_days: 5.0 });
        for _ in 0..50 {
            q.push(scored(Cwe::SqlInjection, Surface::ZeroClick), PolicySeverity::Blocking, 0.0);
        }
        let (served, backlog) = q.drain_simulation(2, 10);
        assert_eq!(backlog, 30);
        assert!(sla_compliance(&served) < 0.3, "{}", sla_compliance(&served));
    }
}
