//! Research-artifact release process model (experiment E14).
//!
//! Gap Observation 2 cites Nong et al.: of 55 examined DL-vulnerability-
//! detection papers, only 25.5% provided public tools; of those, 54.5% had
//! incomplete documentation and 27.3% were non-functional. This module
//! models the *release process* that generates such populations (incentives,
//! engineering investment, maintenance decay) so the cited proportions
//! become checkable expectations rather than constants.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Latent state of one paper's artifact.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PaperArtifact {
    /// Was any artifact released publicly?
    pub released: bool,
    /// If released: documentation complete enough to run?
    pub documented: bool,
    /// If released: does the implementation still execute?
    pub functional: bool,
    /// Years since publication (drives maintenance decay).
    pub age_years: f64,
}

/// Parameters of the release process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReleaseProcess {
    /// Probability a team releases at all (venue badging, incentives).
    pub p_release: f64,
    /// Probability a released artifact ships complete documentation.
    pub p_documented: f64,
    /// Probability a released artifact is functional at publication time.
    pub p_functional_at_release: f64,
    /// Annual probability an unmaintained artifact stops working
    /// (bit-rotted dependencies, dead links).
    pub annual_decay: f64,
    /// Mean paper age in years at survey time.
    pub mean_age: f64,
}

impl ReleaseProcess {
    /// The process calibrated to reproduce the survey the paper cites
    /// (25.5% public; of those 54.5% incomplete docs, 27.3% non-functional).
    pub fn calibrated() -> Self {
        // Non-functional at survey time ≈ 1 − p_func·(1−decay)^age.
        // With p_func=0.9, decay=0.08, mean age 2.5y: 1 − 0.9·0.92^2.5 ≈ 0.27.
        ReleaseProcess {
            p_release: 0.255,
            p_documented: 0.455,
            p_functional_at_release: 0.9,
            annual_decay: 0.08,
            mean_age: 2.5,
        }
    }

    /// Samples one paper's artifact state.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> PaperArtifact {
        let released = rng.gen_bool(self.p_release);
        let age_years = rng.gen_range(0.0..self.mean_age * 2.0);
        if !released {
            return PaperArtifact { released, documented: false, functional: false, age_years };
        }
        let documented = rng.gen_bool(self.p_documented);
        let alive_prob = self.p_functional_at_release * (1.0 - self.annual_decay).powf(age_years);
        let functional = rng.gen_bool(alive_prob.clamp(0.0, 1.0));
        PaperArtifact { released, documented, functional, age_years }
    }
}

/// Aggregate proportions over a surveyed population.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SurveyResult {
    /// Papers surveyed.
    pub n_papers: usize,
    /// Fraction with public artifacts.
    pub public_rate: f64,
    /// Among public: fraction with incomplete documentation.
    pub incomplete_docs_rate: f64,
    /// Among public: fraction non-functional.
    pub non_functional_rate: f64,
}

/// Surveys `n_papers` papers drawn from the process.
pub fn survey(process: &ReleaseProcess, n_papers: usize, seed: u64) -> SurveyResult {
    let mut rng = StdRng::seed_from_u64(seed);
    let artifacts: Vec<PaperArtifact> = (0..n_papers).map(|_| process.sample(&mut rng)).collect();
    let public: Vec<&PaperArtifact> = artifacts.iter().filter(|a| a.released).collect();
    let n_public = public.len().max(1);
    SurveyResult {
        n_papers,
        public_rate: public.len() as f64 / n_papers.max(1) as f64,
        incomplete_docs_rate: public.iter().filter(|a| !a.documented).count() as f64
            / n_public as f64,
        non_functional_rate: public.iter().filter(|a| !a.functional).count() as f64
            / n_public as f64,
    }
}

/// Monte-Carlo distribution of 55-paper surveys: returns the mean and the
/// central 90% interval for each reported proportion across `runs` repeats.
pub fn survey_distribution(
    process: &ReleaseProcess,
    n_papers: usize,
    runs: usize,
    seed: u64,
) -> SurveyDistribution {
    let results: Vec<SurveyResult> =
        (0..runs).map(|i| survey(process, n_papers, seed.wrapping_add(i as u64))).collect();
    let stat = |f: fn(&SurveyResult) -> f64| {
        let mut v: Vec<f64> = results.iter().map(f).collect();
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        let lo = v[(v.len() as f64 * 0.05) as usize];
        let hi = v[((v.len() as f64 * 0.95) as usize).min(v.len() - 1)];
        (mean, lo, hi)
    };
    SurveyDistribution {
        runs,
        n_papers,
        public: stat(|r| r.public_rate),
        incomplete_docs: stat(|r| r.incomplete_docs_rate),
        non_functional: stat(|r| r.non_functional_rate),
    }
}

/// Monte-Carlo summary: `(mean, p5, p95)` per proportion.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SurveyDistribution {
    /// Number of simulated surveys.
    pub runs: usize,
    /// Papers per survey.
    pub n_papers: usize,
    /// Public-artifact rate distribution.
    pub public: (f64, f64, f64),
    /// Incomplete-documentation rate distribution.
    pub incomplete_docs: (f64, f64, f64),
    /// Non-functional rate distribution.
    pub non_functional: (f64, f64, f64),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrated_process_reproduces_cited_proportions() {
        let d = survey_distribution(&ReleaseProcess::calibrated(), 55, 400, 7);
        // Paper-cited values: 25.5%, 54.5%, 27.3%.
        assert!((d.public.0 - 0.255).abs() < 0.03, "public mean {:?}", d.public);
        assert!((d.incomplete_docs.0 - 0.545).abs() < 0.05, "{:?}", d.incomplete_docs);
        assert!((d.non_functional.0 - 0.273).abs() < 0.05, "{:?}", d.non_functional);
        // A single 55-paper survey has wide intervals — the exact cited
        // numbers are one draw from this distribution.
        assert!(d.public.1 < 0.255 && 0.255 < d.public.2);
    }

    #[test]
    fn decay_makes_old_artifacts_less_functional() {
        let mut young = ReleaseProcess::calibrated();
        young.mean_age = 0.5;
        let mut old = ReleaseProcess::calibrated();
        old.mean_age = 6.0;
        let dy = survey_distribution(&young, 500, 50, 1);
        let doo = survey_distribution(&old, 500, 50, 1);
        assert!(doo.non_functional.0 > dy.non_functional.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let p = ReleaseProcess::calibrated();
        assert_eq!(survey(&p, 55, 3), survey(&p, 55, 3));
        assert_ne!(survey(&p, 55, 3), survey(&p, 55, 4));
    }

    #[test]
    fn unreleased_artifacts_have_no_quality_bits() {
        let p = ReleaseProcess { p_release: 0.0, ..ReleaseProcess::calibrated() };
        let mut rng = StdRng::seed_from_u64(1);
        let a = p.sample(&mut rng);
        assert!(!a.released && !a.documented && !a.functional);
        let s = survey(&p, 100, 1);
        assert_eq!(s.public_rate, 0.0);
    }
}
