//! Program-repair engines and the verification harness (experiment E15).
//!
//! Three engines model the spectrum the paper discusses:
//!
//! * [`RuleRepairEngine`] — the industry auto-fix baseline (unified rules,
//!   only for mechanically fixable classes),
//! * [`RetrievalRepairEngine`] — a specialized small model (SLM) that
//!   retrieves fix patterns it has seen; strong on familiar styles, lost on
//!   unfamiliar ones,
//! * [`LlmSimRepairEngine`] — a general language-model simulator whose
//!   solve probability collapses with task complexity, calibrated to the
//!   toy-benchmark vs SWE-bench gap the paper cites (Claude-2 4.8%, GPT-4
//!   1.7% on real GitHub issues).
//!
//! A proposed patch only counts as a **solve** if the verifier accepts it:
//! it parses, removes the target-class finding, and does not gut the
//! program.

use serde::{Deserialize, Serialize};
use vulnman_analysis::autofix::AutoFixer;
use vulnman_analysis::detectors::RuleEngine;
use vulnman_synth::repair_tasks::RepairTask;
use vulnman_synth::tier::Tier;

/// A program-repair engine.
pub trait RepairEngine: Send + Sync {
    /// Display name.
    fn name(&self) -> &'static str;
    /// Proposes a patched unit for the task, or `None` if the engine
    /// abstains.
    fn propose(&self, task: &RepairTask) -> Option<String>;
}

/// Verdict of the verification harness on one proposal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Verdict {
    /// Patch verified: parses, finding removed, program intact.
    Solved,
    /// Engine produced nothing.
    Abstained,
    /// Patch does not parse.
    Broken,
    /// Patch parses but the vulnerability is still detected.
    StillVulnerable,
    /// Patch "fixed" the finding by destroying the program.
    Gutted,
}

/// Verifies a proposal against its task.
pub fn verify(task: &RepairTask, proposal: Option<&str>) -> Verdict {
    let Some(patched) = proposal else { return Verdict::Abstained };
    let Ok(program) = vulnman_lang::parse(patched) else { return Verdict::Broken };
    let Ok(original) = vulnman_lang::parse(&task.broken) else { return Verdict::Broken };
    // Anti-gutting: must keep the functions and most of the logic.
    let orig_stmts: usize = original.functions.iter().map(|f| f.stmt_count()).sum();
    let new_stmts: usize = program.functions.iter().map(|f| f.stmt_count()).sum();
    if program.functions.len() < original.functions.len() || new_stmts * 2 < orig_stmts {
        return Verdict::Gutted;
    }
    let engine = RuleEngine::default_suite();
    let findings = engine.scan(&program);
    if findings.iter().any(|f| f.cwe == task.cwe) {
        Verdict::StillVulnerable
    } else {
        Verdict::Solved
    }
}

/// Solve-rate summary for one engine over a task suite.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RepairOutcome {
    /// Engine name.
    pub engine: String,
    /// Task tier evaluated.
    pub tier: Tier,
    /// Tasks attempted.
    pub total: usize,
    /// Verified solves.
    pub solved: usize,
    /// Abstentions.
    pub abstained: usize,
    /// Broken / still-vulnerable / gutted proposals.
    pub rejected: usize,
}

impl RepairOutcome {
    /// Verified solve rate.
    pub fn solve_rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.solved as f64 / self.total as f64
        }
    }
}

/// Runs an engine over a suite and verifies every proposal.
pub fn evaluate_engine(engine: &dyn RepairEngine, tasks: &[RepairTask]) -> RepairOutcome {
    let tier = tasks.first().map(|t| t.tier).unwrap_or(Tier::Simple);
    let mut outcome = RepairOutcome {
        engine: engine.name().to_string(),
        tier,
        total: tasks.len(),
        solved: 0,
        abstained: 0,
        rejected: 0,
    };
    for task in tasks {
        let proposal = engine.propose(task);
        match verify(task, proposal.as_deref()) {
            Verdict::Solved => outcome.solved += 1,
            Verdict::Abstained => outcome.abstained += 1,
            _ => outcome.rejected += 1,
        }
    }
    outcome
}

// ---------------------------------------------------------------------------
// Engines
// ---------------------------------------------------------------------------

/// Industry rule-based auto-fix: patches only the classes with unified
/// mechanical fixes, abstains otherwise.
#[derive(Debug, Default)]
pub struct RuleRepairEngine {
    fixer: AutoFixer,
}

impl RuleRepairEngine {
    /// Creates the engine.
    pub fn new() -> Self {
        RuleRepairEngine::default()
    }
}

impl RepairEngine for RuleRepairEngine {
    fn name(&self) -> &'static str {
        "rule-autofix"
    }

    fn propose(&self, task: &RepairTask) -> Option<String> {
        AutoFixer::supports(task.cwe)
            .then(|| self.fixer.fix_source(&task.broken, task.cwe))
            .flatten()
    }
}

/// Retrieval-based specialized model: has memorized mainstream fix
/// patterns; on unfamiliar team styles it retrieves the *wrong* template
/// (applies a mainstream fix shape that may not sanitize the aliased
/// idioms), modeled by falling back to a cosmetic edit.
#[derive(Debug, Default)]
pub struct RetrievalRepairEngine {
    fixer: AutoFixer,
}

impl RetrievalRepairEngine {
    /// Creates the engine.
    pub fn new() -> Self {
        RetrievalRepairEngine::default()
    }
}

impl RepairEngine for RetrievalRepairEngine {
    fn name(&self) -> &'static str {
        "retrieval-slm"
    }

    fn propose(&self, task: &RepairTask) -> Option<String> {
        let familiar = task.team == "oss-mainstream" || task.team == "payments";
        if familiar {
            // Retrieves the right template for styles it trained on.
            self.fixer.fix_source(&task.broken, task.cwe).or_else(|| cosmetic_edit(&task.broken))
        } else {
            // Unfamiliar idioms: retrieves a near-miss.
            cosmetic_edit(&task.broken)
        }
    }
}

/// General LLM simulator: always answers, correct with a tier-dependent
/// probability (deterministic per task id); wrong answers are plausible
/// cosmetic patches, occasionally unparseable.
#[derive(Debug)]
pub struct LlmSimRepairEngine {
    fixer: AutoFixer,
    seed: u64,
    /// Solve probability per tier `(simple, curated, real_world)` —
    /// defaults calibrated to the paper's cited numbers.
    pub solve_prob: (f64, f64, f64),
}

impl LlmSimRepairEngine {
    /// Creates the simulator with the paper-calibrated profile.
    pub fn new(seed: u64) -> Self {
        LlmSimRepairEngine { fixer: AutoFixer::new(), seed, solve_prob: (0.88, 0.45, 0.048) }
    }

    fn tier_prob(&self, tier: Tier) -> f64 {
        match tier {
            Tier::Simple => self.solve_prob.0,
            Tier::Curated => self.solve_prob.1,
            Tier::RealWorld => self.solve_prob.2,
        }
    }
}

impl RepairEngine for LlmSimRepairEngine {
    fn name(&self) -> &'static str {
        "llm-sim"
    }

    fn propose(&self, task: &RepairTask) -> Option<String> {
        let u = splitmix_unit(task.id ^ self.seed.wrapping_mul(0x5bd1e995));
        if u < self.tier_prob(task.tier) {
            // "Knows" the fix: reproduce the canonical remediation.
            if let Some(fix) = self.fixer.fix_source(&task.broken, task.cwe) {
                return Some(fix);
            }
            // Classes without mechanical fixes: fall back to the reference
            // patch shape (the model has seen similar diffs in training).
            return Some(task.reference_fix.clone());
        }
        // Hallucination: plausible but wrong; sometimes syntactically broken.
        if u > 0.97 {
            Some(format!("{}\n}}", task.broken)) // extra brace: parse error
        } else {
            cosmetic_edit(&task.broken)
        }
    }
}

/// A syntactically valid edit that does not address the vulnerability
/// (logging added to the top of the first function).
fn cosmetic_edit(source: &str) -> Option<String> {
    let mut program = vulnman_lang::parse(source).ok()?;
    let func = program.functions.first_mut()?;
    func.body.insert(
        0,
        vulnman_lang::Stmt::new(
            vulnman_lang::ast::StmtKind::Expr(vulnman_lang::Expr::call(
                "log_event",
                vec![vulnman_lang::Expr::new(
                    vulnman_lang::ast::ExprKind::Str("patched".to_string()),
                    vulnman_lang::Span::dummy(),
                )],
            )),
            vulnman_lang::Span::dummy(),
        ),
    );
    Some(vulnman_lang::print_program(&program))
}

fn splitmix_unit(mut x: u64) -> f64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^= x >> 31;
    (x >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use vulnman_synth::repair_tasks::generate_tasks;

    #[test]
    fn verifier_accepts_reference_fixes() {
        for task in generate_tasks(1, Tier::Curated, 12) {
            assert_eq!(
                verify(&task, Some(&task.reference_fix)),
                Verdict::Solved,
                "reference fix must verify for {}",
                task.cwe
            );
        }
    }

    #[test]
    fn verifier_rejects_noop_and_broken() {
        let tasks = generate_tasks(2, Tier::Simple, 4);
        let t = &tasks[0];
        assert_eq!(verify(t, Some(&t.broken)), Verdict::StillVulnerable);
        assert_eq!(verify(t, Some("not code at all {{{")), Verdict::Broken);
        assert_eq!(verify(t, None), Verdict::Abstained);
    }

    #[test]
    fn verifier_rejects_gutted_patch() {
        let tasks = generate_tasks(3, Tier::Curated, 1);
        let t = &tasks[0];
        // "Fix" by replacing everything with one empty function per original.
        let n = vulnman_lang::parse(&t.broken).unwrap().functions.len();
        let gutted: String =
            (0..n).map(|i| format!("void g{i}() {{\n}}\n")).collect::<Vec<_>>().join("\n");
        assert_eq!(verify(t, Some(&gutted)), Verdict::Gutted);
    }

    #[test]
    fn rule_engine_solves_supported_simple_tasks() {
        let tasks = generate_tasks(4, Tier::Simple, 24);
        let outcome = evaluate_engine(&RuleRepairEngine::new(), &tasks);
        assert!(outcome.solve_rate() > 0.5, "{outcome:?}");
        assert!(outcome.abstained > 0, "must abstain on non-mechanical classes");
    }

    #[test]
    fn llm_sim_collapses_with_tier() {
        let engine = LlmSimRepairEngine::new(9);
        let mut rates = Vec::new();
        for tier in Tier::ALL {
            let tasks = generate_tasks(5, tier, 60);
            rates.push(evaluate_engine(&engine, &tasks).solve_rate());
        }
        assert!(rates[0] > 0.7, "toy benchmark high: {rates:?}");
        assert!(rates[2] < 0.12, "real-world single digits: {rates:?}");
        assert!(rates[0] > rates[1] && rates[1] > rates[2], "{rates:?}");
    }

    #[test]
    fn retrieval_engine_is_style_sensitive() {
        let engine = RetrievalRepairEngine::new();
        let simple = evaluate_engine(&engine, &generate_tasks(6, Tier::Simple, 30));
        let real = evaluate_engine(&engine, &generate_tasks(6, Tier::RealWorld, 30));
        assert!(
            simple.solve_rate() > real.solve_rate() + 0.2,
            "familiar styles should be much easier: {} vs {}",
            simple.solve_rate(),
            real.solve_rate()
        );
    }

    #[test]
    fn outcome_accounting_adds_up() {
        let tasks = generate_tasks(7, Tier::Curated, 20);
        let o = evaluate_engine(&LlmSimRepairEngine::new(1), &tasks);
        assert_eq!(o.solved + o.abstained + o.rejected, o.total);
    }
}
