//! Property tests for the triage queue's ordering contract: serve order is
//! a pure function of the *set* of pushed items — never of push order, heap
//! shape, or NaN scores. These pin the `Ranked::Ord` fix (total-order
//! comparison + stable finding-key tie-break + NaN clamping at `push`).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vulnman_analysis::finding::{Confidence, Finding};
use vulnman_analysis::reachability::Surface;
use vulnman_analysis::severity::ScoredFinding;
use vulnman_core::customize::PolicySeverity;
use vulnman_core::triage::{ServedItem, TriageQueue};
use vulnman_synth::cwe::Cwe;

/// Decodes one random code into a triage item. Small domains on purpose so
/// collisions on (policy, priority, arrived_day) — the tie-break territory —
/// are common.
fn decode(code: u64) -> (ScoredFinding, PolicySeverity, f64) {
    let policy = match code % 3 {
        0 => PolicySeverity::Blocking,
        1 => PolicySeverity::Tracked,
        _ => PolicySeverity::Accepted,
    };
    let priority = match (code >> 2) % 5 {
        // One in five items carries a NaN priority: the queue must clamp it
        // at push, never let it float upward.
        0 => f64::NAN,
        k => k as f64 * 2.5,
    };
    let arrived_day = ((code >> 5) % 4) as f64;
    let cwe = if (code >> 7).is_multiple_of(2) { Cwe::SqlInjection } else { Cwe::OutOfBoundsWrite };
    let function = format!("fn_{}", (code >> 9) % 6);
    let finding = Finding {
        cwe,
        function,
        span: vulnman_lang::Span::new(((code >> 12) % 3) as usize, 40, 1, 1),
        detector: "prop".into(),
        message: String::new(),
        confidence: Confidence::High,
        evidence: None,
    };
    let severity = ((code >> 14) % 3) as f64 + 1.0;
    (
        ScoredFinding { finding, surface: Surface::ZeroClick, severity, priority },
        policy,
        arrived_day,
    )
}

fn drain(q: &mut TriageQueue) -> Vec<ServedItem> {
    let mut out = Vec::new();
    while let Some(s) = q.serve(0.0) {
        out.push(s);
    }
    out
}

/// Fingerprint of a serve trace that covers every observable field.
fn trace(served: &[ServedItem]) -> Vec<String> {
    served
        .iter()
        .map(|s| {
            format!(
                "{:?}|{}|{}|{}|{}",
                s.item.policy,
                s.item.finding.priority,
                s.item.arrived_day,
                s.item.finding.finding.function,
                s.item.finding.finding.span.start,
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Pushing the same multiset of items in any order serves the same
    /// sequence (shuffle-invariance).
    #[test]
    fn serve_order_is_shuffle_invariant(
        codes in proptest::collection::vec(any::<u64>(), 0..40),
        shuffle_seed in any::<u64>(),
    ) {
        let items: Vec<_> = codes.iter().map(|&c| decode(c)).collect();

        let mut baseline = TriageQueue::new();
        for (f, p, d) in &items {
            baseline.push(f.clone(), *p, *d);
        }

        let mut shuffled = items.clone();
        let mut rng = StdRng::seed_from_u64(shuffle_seed);
        for i in (1..shuffled.len()).rev() {
            let j = rng.gen_range(0..=i);
            shuffled.swap(i, j);
        }
        let mut other = TriageQueue::new();
        for (f, p, d) in &shuffled {
            other.push(f.clone(), *p, *d);
        }

        prop_assert_eq!(trace(&drain(&mut baseline)), trace(&drain(&mut other)));
    }

    /// A NaN-priority item can never be served before a Blocking item, and
    /// NaN is clamped to 0.0 so it also never outranks any real priority in
    /// its own class.
    #[test]
    fn nan_items_sink(codes in proptest::collection::vec(any::<u64>(), 1..40)) {
        let items: Vec<_> = codes.iter().map(|&c| decode(c)).collect();
        let has_blocking = items.iter().any(|(_, p, _)| *p == PolicySeverity::Blocking);
        let mut q = TriageQueue::new();
        for (f, p, d) in &items {
            q.push(f.clone(), *p, *d);
        }
        let served = drain(&mut q);
        if has_blocking {
            prop_assert_eq!(served[0].item.policy, PolicySeverity::Blocking);
        }
        for s in &served {
            prop_assert!(!s.item.finding.priority.is_nan(), "NaN must be clamped at push");
        }
        // Within each policy class, priorities are non-increasing.
        for pair in served.windows(2) {
            if pair[0].item.policy == pair[1].item.policy {
                prop_assert!(pair[0].item.finding.priority >= pair[1].item.finding.priority);
            }
        }
    }
}
