//! Application-security review of a service codebase.
//!
//! A security engineer points the platform at a team's code: scan with the
//! specialized rule suite (customized to the team's sanitizer vocabulary),
//! rank findings by threat-modeled priority, auto-fix the mechanical ones,
//! and print what is left for the experts.
//!
//! ```sh
//! cargo run --release --example appsec_review
//! ```

use vulnman::analysis::detectors::{
    BoundsDetector, CredentialDetector, NullDerefDetector, OverflowDetector, RaceDetector,
    RuleEngine, TaintDetector, UseAfterFreeDetector,
};
use vulnman::analysis::severity::{score, triage_order};
use vulnman::core::customize::SecurityStandard;
use vulnman::prelude::*;
use vulnman::synth::generator::SampleGenerator;

fn main() {
    // The media-infra team: camelCase, wrapped helpers, and team-library
    // sanitizers (`mi_clean_*`) that a stock tool has never heard of.
    let team = StyleProfile::internal_teams()[1].clone();
    let standard = SecurityStandard::for_team(&team);
    println!(
        "reviewing team `{}` (custom sanitizers: {:?})",
        team.team, standard.custom_sanitizers
    );

    // A slice of their codebase: real flaws mixed into mostly-safe code.
    let mut generator = SampleGenerator::new(7, team.clone());
    let mut units = Vec::new();
    for cwe in [Cwe::SqlInjection, Cwe::UseAfterFree, Cwe::HardcodedCredentials] {
        let (vuln, fixed) = generator.vulnerable_pair(cwe, Tier::RealWorld, "media/transcoder");
        units.push(vuln);
        units.push(fixed);
    }
    units.push(generator.benign_risky(Tier::RealWorld, "media/transcoder"));

    // A *stock* engine vs one whose taint detector is customized with the
    // team's sanitizer vocabulary: the difference is exactly Gap
    // Observation 2.
    let stock = RuleEngine::default_suite();
    let mut customized = RuleEngine::new();
    customized.register(Box::new(TaintDetector::with_config(standard.taint_config())));
    customized.register(Box::new(BoundsDetector));
    customized.register(Box::new(UseAfterFreeDetector));
    customized.register(Box::new(OverflowDetector));
    customized.register(Box::new(NullDerefDetector));
    customized.register(Box::new(CredentialDetector));
    customized.register(Box::new(RaceDetector));

    let mut scored = Vec::new();
    let mut stock_fps = 0;
    for unit in &units {
        let program = parse(&unit.source).expect("generated code parses");
        let graph = CallGraph::build(&program);
        let surface = graph.surface(&unit.target_fn);

        let stock_findings = stock.scan(&program);
        let custom_findings = customized.scan(&program);
        // Stock tooling false-positives on the team's own sanitizer wrappers.
        if !unit.label && !stock_findings.is_empty() && custom_findings.is_empty() {
            stock_fps += 1;
        }
        // With customization, the *taint* detector resolves team wrappers; a
        // finding is kept if the customized taint pass still sees it.
        let mut seen = std::collections::HashSet::new();
        for finding in stock_findings {
            let resolved_clean = finding.detector == "taint-flow"
                && !custom_findings.iter().any(|f| f.cwe == finding.cwe);
            if !resolved_clean && seen.insert((finding.cwe, finding.function.clone())) {
                scored.push(score(finding, surface));
            }
        }
    }
    println!("stock-tool false alarms resolved by team customization: {stock_fps}");

    // Threat-model-ordered triage queue.
    triage_order(&mut scored);
    println!("\ntriage queue (priority = severity x exploitability):");
    for s in &scored {
        println!(
            "  [{:>5.2}] {} in `{}` ({:?} surface) — {}",
            s.priority, s.finding.cwe, s.finding.function, s.surface, s.finding.message
        );
    }

    // Auto-fix what has a unified mechanical remediation.
    let fixer = AutoFixer::new();
    let mut fixed = 0;
    let mut escalated = 0;
    for unit in units.iter().filter(|u| u.label) {
        let cwe = unit.cwe.expect("labeled sample has a class");
        match fixer.fix_source(&unit.source, cwe) {
            Some(patch) => {
                fixed += 1;
                println!("\nauto-fixed {} in `{}`; patch verified:", cwe, unit.target_fn);
                let verified = RuleEngine::default_suite()
                    .scan_source(&patch)
                    .map(|fs| fs.iter().all(|f| f.cwe != cwe))
                    .unwrap_or(false);
                println!("  re-scan clean: {verified}");
            }
            None => {
                escalated += 1;
                println!("\n{} in `{}` has no unified fix — routed to expert", cwe, unit.target_fn);
            }
        }
    }
    println!("\nsummary: {fixed} auto-fixed, {escalated} escalated to expert recommendation");
}
