//! A year in the life of a security organization.
//!
//! Glues every subsystem together: monthly change batches flow through the
//! capacity-limited Figure-1 workflow; adjudications feed the model via the
//! feedback loop; quarterly security training lowers the flaw-introduction
//! rate; the cost model keeps the books. One table row per month.
//!
//! ```sh
//! cargo run --release --example year_simulation
//! ```

use vulnman::core::feedback::harvest_labels;
use vulnman::core::report::{fmt3, usd, Table};
use vulnman::core::training::{simulate, TrainingConfig};
use vulnman::prelude::*;
use vulnman::synth::cwe::CweDistribution;

fn main() {
    let months = 12usize;
    let team = StyleProfile::internal_teams()[0].clone(); // payments
    let backlog = CweDistribution::internal_backend();

    // The training program runs all year; its weekly introduction rate
    // modulates how many vulnerable changes each month produces.
    let training = simulate(
        &TrainingConfig { cadence_weeks: 12, personalized: true, ..TrainingConfig::default() },
        60,
        months * 4,
        25,
        7,
    );

    // Deployed model: generic, improved monthly via the feedback loop.
    let generic = DatasetBuilder::new(1).vulnerable_count(200).build();
    let mut model = model_zoo(5).remove(0);
    model.train(&generic);

    // Held-out evaluation set for tracking model quality.
    let eval = DatasetBuilder::new(2)
        .teams(vec![team.clone()])
        .vulnerable_count(80)
        .cwe_distribution(backlog.clone())
        .hard_negative_fraction(0.7)
        .build();

    let initial_f1 = model.evaluate(&eval).f1();
    let params = CostParams::default();
    let review_budget_minutes = 60.0 * 160.0; // one analyst-month of reviews
    let mut cumulative_value = 0.0;
    let mut table = Table::new(vec![
        "month",
        "changes",
        "vulnerable",
        "caught",
        "escaped",
        "reviews (done/skipped)",
        "model F1",
        "cumulative net value",
    ]);

    for month in 0..months {
        // Flaw-introduction rate for this month comes from the training sim.
        let intro_rate =
            training.introduction_rate[month * 4..(month + 1) * 4].iter().sum::<f64>() / 4.0;
        let changes = 400usize;
        let vulns = ((changes as f64) * intro_rate).round().max(1.0) as usize;
        let batch = DatasetBuilder::new(100 + month as u64)
            .teams(vec![team.clone()])
            .vulnerable_count(vulns)
            .vulnerable_fraction(vulns as f64 / changes as f64)
            .cwe_distribution(backlog.clone())
            .build();

        // This month's engine: rules + the current model snapshot.
        let mut registry = DetectorRegistry::new();
        registry.register(Box::new(RuleBasedDetector::standard()));
        let engine = WorkflowEngine::new(registry, WorkflowConfig::default());
        let report = engine.process_with_capacity(batch.samples(), review_budget_minutes);

        // Feedback: adjudications fine-tune the model.
        let harvested = harvest_labels(batch.samples(), &report);
        if !harvested.is_empty() {
            model.fine_tune(&harvested);
        }

        let cost = report.price(&params);
        cumulative_value += cost.net_value;
        let caught = report.auto_fixed + report.ai_fixed + report.expert_fixed;
        let reviews_done = report.cases.iter().filter(|c| c.manually_reviewed).count();
        table.row(vec![
            format!("{}", month + 1),
            batch.len().to_string(),
            batch.vulnerable_count().to_string(),
            caught.to_string(),
            report.escaped.to_string(),
            format!("{}/{}", reviews_done, report.reviews_skipped),
            fmt3(model.evaluate(&eval).f1()),
            usd(cumulative_value),
        ]);
    }
    table.print("twelve months of AI-assisted vulnerability management");
    println!(
        "\ntraining cut the flaw-introduction rate from {:.3} to {:.3}; the feedback \
         loop moved the deployed model's team F1 from {:.3} to {:.3}.",
        training.introduction_rate[0],
        training.introduction_rate.last().copied().unwrap_or(0.0),
        initial_f1,
        model.evaluate(&eval).f1(),
    );
}
