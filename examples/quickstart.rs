//! Quickstart: generate an industry-shaped corpus, run the Figure-1
//! workflow, and read the outcome.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use vulnman::prelude::*;

fn main() {
    // 1. An incoming change stream the way production looks: mostly benign,
    //    a few real vulnerabilities across CWE classes.
    let stream = DatasetBuilder::new(42).vulnerable_count(30).vulnerable_fraction(0.12).build();
    println!(
        "change stream: {} units ({} truly vulnerable)",
        stream.len(),
        stream.vulnerable_count()
    );

    // 2. The assessment stack: the specialized rule suite of Figure 1.
    let mut registry = DetectorRegistry::new();
    registry.register(Box::new(RuleBasedDetector::standard()));
    let engine = WorkflowEngine::new(registry, WorkflowConfig::default());

    // 3. Run detection → threat-model gating → manual review → repair.
    let report = engine.process(stream.samples());
    let metrics = report.detection_metrics();
    println!(
        "detection:  precision {:.2}  recall {:.2}  F1 {:.2}",
        metrics.precision(),
        metrics.recall(),
        metrics.f1()
    );
    println!(
        "repair:     {} auto-fixed, {} AI-suggested, {} expert-fixed, {} escaped",
        report.auto_fixed, report.ai_fixed, report.expert_fixed, report.escaped
    );
    println!(
        "economics:  {:.0} analyst minutes, {:.1} expert hours",
        report.analyst_minutes, report.expert_hours
    );

    // 4. Price the run: the financial lens of Gap Observation 3.
    let cost = report.price(&CostParams::default());
    println!(
        "value:      ${:.0} net (${:.0} prevented − ${:.0} triage/labour)",
        cost.net_value, cost.prevented_loss, cost.triage_cost
    );

    // 5. Inspect one verified auto-fix.
    if let Some(case) = report.cases.iter().find(|c| c.patched_source.is_some()) {
        let original = stream.iter().find(|s| s.id == case.sample_id).expect("sample present");
        println!(
            "\n--- auto-fix example ({}) ---",
            original.cwe.map(|c| c.to_string()).unwrap_or_default()
        );
        println!("{}", case.patched_source.as_ref().expect("patch present"));
    }
}
