//! Onboarding the platform onto a new team's codebase.
//!
//! The kernel team writes terse identifiers, wraps everything in helpers,
//! and sanitizes through its own `k_clean_*` library. A generic model and a
//! stock rule suite both stumble; this example walks the full customization
//! path of Gap Observation 2: register the team's security standard, then
//! fine-tune the model on the team's history.
//!
//! ```sh
//! cargo run --release --example team_onboarding
//! ```

use vulnman::core::customize::{customize_to_team, SecurityStandard};
use vulnman::prelude::*;
use vulnman::synth::cwe::CweDistribution;

fn main() {
    let team = StyleProfile::internal_teams()[2].clone(); // kernel
    println!("onboarding team `{}`", team.team);
    println!("team security library:\n{}", team.team_library_source());

    // The team's backlog skews injection-heavy for this service.
    let backlog = CweDistribution::new(vec![
        (Cwe::SqlInjection, 3.0),
        (Cwe::CommandInjection, 2.0),
        (Cwe::CrossSiteScripting, 2.0),
        (Cwe::PathTraversal, 2.0),
        (Cwe::FormatString, 1.0),
    ]);
    let history = DatasetBuilder::new(21)
        .teams(vec![team.clone()])
        .vulnerable_count(300)
        .cwe_distribution(backlog)
        .hard_negative_fraction(0.7)
        .build();
    let split = stratified_split(&history, 0.4, 9);

    // Step 1: register the team standard (tool-side customization).
    let standard = SecurityStandard::for_team(&team);
    println!(
        "registered standard: {} custom sanitizers, {} class policies",
        standard.custom_sanitizers.len(),
        standard.policies.len()
    );
    let team_taint = standard.taint_config();
    let fixed_example = split
        .test
        .iter()
        .find(|s| !s.label && s.cwe == Some(Cwe::SqlInjection))
        .expect("a patched SQL sample exists");
    let program = parse(&fixed_example.source).expect("parses");
    let stock_verdict = TaintAnalysis::run(&program, &TaintConfig::default_config());
    let custom_verdict = TaintAnalysis::run(&program, &team_taint);
    println!(
        "stock taint config flags the team's own fix: {} — customized config: {}",
        !stock_verdict.findings.is_empty(),
        !custom_verdict.findings.is_empty()
    );

    // Step 2: fine-tune the generic model on team history (model-side).
    let generic_corpus = DatasetBuilder::new(22).vulnerable_count(300).build();
    let mut model = model_zoo(7).remove(0); // token-lr
    model.train(&generic_corpus);
    let distance = StyleProfile::mainstream().distance(&team);
    let outcome = customize_to_team(&mut model, &team, distance, &split.train, &split.test);
    println!(
        "\nmodel customization (style distance {:.2}):\n  generic     F1 {:.3}  (precision {:.3}, recall {:.3})\n  fine-tuned  F1 {:.3}  (precision {:.3}, recall {:.3})\n  lift        {:+.3}",
        outcome.style_distance,
        outcome.generic.f1(),
        outcome.generic.precision(),
        outcome.generic.recall(),
        outcome.fine_tuned.f1(),
        outcome.fine_tuned.precision(),
        outcome.fine_tuned.recall(),
        outcome.f1_lift(),
    );
}
