//! Preparing an industry corpus for sharing with academia.
//!
//! Future Direction Proposal 4: anonymize internal vulnerability data so it
//! can be shared without exposing identifying information, while keeping
//! the vulnerability patterns researchers need. This example anonymizes a
//! corpus at increasing strength, measures leakage and utility, and also
//! harvests an SFT dataset (§II-B) from a workflow run over the same code.
//!
//! ```sh
//! cargo run --release --example data_sharing
//! ```

use vulnman::core::anonymize::{identifier_leakage, Anonymizer, Strength};
use vulnman::core::sft::harvest;
use vulnman::prelude::*;

fn main() {
    let internal = DatasetBuilder::new(33)
        .teams(vec![StyleProfile::internal_teams()[0].clone()])
        .vulnerable_count(60)
        .vulnerable_fraction(0.5)
        .build();
    println!("internal corpus: {} samples from team `payments`", internal.len());

    for strength in [Strength::Light, Strength::Standard, Strength::Aggressive] {
        let anonymizer = Anonymizer::new(strength);
        let shared: Dataset =
            internal.iter().filter_map(|s| anonymizer.anonymize(s).map(|a| a.sample)).collect();
        let leakage: f64 =
            internal.iter().zip(shared.iter()).map(|(o, a)| identifier_leakage(o, a)).sum::<f64>()
                / internal.len() as f64;
        // Utility check: a researcher trains on the shared data alone.
        let split = stratified_split(&shared, 0.3, 3);
        let mut model = model_zoo(5).remove(0);
        model.train(&split.train);
        let f1 = model.evaluate(&split.test).f1();
        println!(
            "{strength:?}: identifier leakage {:5.1}%, researcher-side F1 {:.3}",
            leakage * 100.0,
            f1
        );
    }

    // Show one anonymized unit.
    let anonymizer = Anonymizer::new(Strength::Standard);
    let sample = internal.iter().find(|s| s.label).expect("vulnerable sample");
    let shared = anonymizer.anonymize(sample).expect("anonymizes");
    println!("\n--- anonymized vulnerable unit (Standard) ---\n{}", shared.sample.source);

    // SFT harvest from a workflow run over the same corpus.
    let mut registry = DetectorRegistry::new();
    registry.register(Box::new(RuleBasedDetector::standard()));
    let engine = WorkflowEngine::new(registry, WorkflowConfig::default());
    let report = engine.process(internal.samples());
    let sft = harvest(internal.samples(), &report);
    let counts = sft.task_counts();
    println!(
        "SFT harvest: {} pairs total ({:?}); first pair provenance: {:?}",
        sft.len(),
        counts,
        sft.pairs().first().map(|p| &p.provenance)
    );
}
