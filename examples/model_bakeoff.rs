//! Model bake-off: should this organization adopt an academic model?
//!
//! Trains the five-family zoo, evaluates under *industry* conditions
//! (realistic imbalance, multi-team code), measures inter-model agreement,
//! and prices each candidate deployment — the adoption decision the paper
//! says academic evaluations don't support.
//!
//! ```sh
//! cargo run --release --example model_bakeoff
//! ```

use vulnman::core::agreement::{run_agreement_study, TrainingRegime};
use vulnman::core::report::{fmt3, pct, usd, Table};
use vulnman::prelude::*;

fn main() {
    // Vendor-style training data: balanced, curated (what papers train on).
    let train = DatasetBuilder::new(11).vulnerable_count(250).vulnerable_fraction(0.5).build();
    // Our reality: 8% base rate, every internal team, complex code.
    let reality = DatasetBuilder::new(12)
        .teams({
            let mut t = vec![StyleProfile::mainstream()];
            t.extend(StyleProfile::internal_teams());
            t
        })
        .vulnerable_count(60)
        .vulnerable_fraction(0.08)
        .tier_mix(vec![(Tier::Curated, 1.0), (Tier::RealWorld, 2.0)])
        .build();

    let params = CostParams::default();
    let mut table = Table::new(vec![
        "candidate",
        "precision",
        "recall",
        "F1",
        "FP per TP",
        "net value / window",
    ]);
    let mut models = model_zoo(3);
    for model in &mut models {
        model.train(&train);
        let m = model.evaluate(&reality);
        let priced = price_deployment(&m, &params);
        table.row(vec![
            model.name().to_string(),
            fmt3(m.precision()),
            fmt3(m.recall()),
            fmt3(m.f1()),
            fmt3(m.fp_per_tp()),
            usd(priced.net_value),
        ]);
    }
    table.print("candidate models under industry conditions");

    // Do the candidates even agree on what is vulnerable?
    let split = stratified_split(&reality, 0.99, 5);
    let mut fresh = model_zoo(3);
    let study = run_agreement_study(&mut fresh, &train, &split.test, TrainingRegime::Disjoint);
    println!(
        "\nagreement: all five unanimous on {} of vulnerable samples; \
         top three on {} (the paper cites ≈7% and <50%)",
        pct(study.unanimous_detection_rate),
        pct(study.top3_detection_rate.unwrap_or(0.0)),
    );
    println!(
        "conclusion: no candidate is adoptable everywhere — deploy specialized \
         tools per class (Future Direction Proposal 1) and customize per team \
         (Proposal 2)."
    );
}
