//! Workspace integration tests: the full platform exercised across crates —
//! corpus generation → analysis → ML → workflow → repair → data products.

use vulnman::core::sft::{harvest, SftTask};
use vulnman::prelude::*;

fn stream(seed: u64, n: usize) -> Dataset {
    DatasetBuilder::new(seed)
        .teams({
            let mut t = vec![StyleProfile::mainstream()];
            t.extend(StyleProfile::internal_teams());
            t
        })
        .vulnerable_count(n)
        .vulnerable_fraction(0.25)
        .tier_mix(vec![(Tier::Simple, 1.0), (Tier::Curated, 2.0), (Tier::RealWorld, 1.0)])
        .build()
}

#[test]
fn full_pipeline_from_corpus_to_sft() {
    // 1. Corpus.
    let corpus = stream(1, 24);
    assert_eq!(corpus.vulnerable_count(), 24);
    for s in &corpus {
        parse(&s.source).expect("every sample parses");
    }

    // 2. Train an ML detector and register it beside the rule suite.
    let train = DatasetBuilder::new(2).vulnerable_count(60).build();
    let mut model = model_zoo(3).remove(2);
    model.train(&train);
    let mut registry = DetectorRegistry::new();
    registry.register(Box::new(RuleBasedDetector::standard()));
    registry.register(Box::new(MlDetector::new(model)));

    // 3. Run the Figure-1 workflow.
    let engine = WorkflowEngine::new(registry, WorkflowConfig::default());
    let report = engine.process(corpus.samples());
    let metrics = report.detection_metrics();
    assert!(metrics.recall() > 0.8, "combined stack recall {:?}", metrics);
    assert_eq!(
        report.auto_fixed + report.ai_fixed + report.expert_fixed + report.escaped,
        corpus.vulnerable_count(),
        "every vulnerability is repaired or escapes"
    );

    // 4. Verified patches re-parse and are clean for their class.
    let verifier = RuleEngine::default_suite();
    for case in report.cases.iter().filter(|c| c.patched_source.is_some()) {
        let patched = case.patched_source.as_ref().expect("checked above");
        let program = parse(patched).expect("patched source parses");
        let sample = corpus.iter().find(|s| s.id == case.sample_id).expect("sample exists");
        let cwe = sample.cwe.expect("repaired samples are classified");
        let findings = verifier.scan(&program);
        assert!(findings.iter().all(|f| f.cwe != cwe), "auto-fix for {cwe} must verify clean");
    }

    // 5. SFT harvest covers detection and repair supervision.
    let sft = harvest(corpus.samples(), &report);
    let counts = sft.task_counts();
    assert_eq!(counts[&SftTask::Detect], corpus.len());
    assert!(counts.get(&SftTask::Repair).copied().unwrap_or(0) > 0);
}

#[test]
fn pipelined_workflow_equals_sequential_across_teams() {
    let corpus = stream(3, 16);
    let mut registry = DetectorRegistry::new();
    registry.register(Box::new(RuleBasedDetector::standard()));
    let engine = WorkflowEngine::new(registry, WorkflowConfig::default());
    let seq = engine.process(corpus.samples());
    let pipe = engine.process_pipelined(corpus.samples());
    assert_eq!(seq.detection_metrics(), pipe.detection_metrics());
    assert_eq!(seq.auto_fixed, pipe.auto_fixed);
    assert_eq!(seq.escaped, pipe.escaped);
}

#[test]
fn rule_suite_and_taint_engine_agree_on_injection() {
    // The high-level detector registry and the low-level taint engine must
    // tell the same story on taint-style classes.
    let corpus = DatasetBuilder::new(4).vulnerable_count(20).build();
    let engine = RuleEngine::default_suite();
    let config = TaintConfig::default_config();
    for s in corpus.iter().filter(|s| s.cwe.map(|c| c.is_taint_style()).unwrap_or(false)) {
        let program = parse(&s.source).expect("parses");
        let taint_hit = !TaintAnalysis::run(&program, &config).findings.is_empty();
        let rule_hit = engine.scan(&program).iter().any(|f| f.cwe == s.cwe.expect("classified"));
        if s.label {
            assert!(taint_hit && rule_hit, "sample {} should be caught by both", s.id);
        }
    }
}

#[test]
fn detection_models_transfer_between_crates() {
    // A model trained via vulnman-ml drives decisions in vulnman-core and
    // prices out via the cost model.
    let train = DatasetBuilder::new(5).vulnerable_count(80).build();
    let eval = DatasetBuilder::new(6).vulnerable_count(30).vulnerable_fraction(0.1).build();
    let mut model = model_zoo(9).remove(0);
    model.train(&train);
    let metrics = model.evaluate(&eval);
    let priced = price_deployment(&metrics, &CostParams::default());
    assert!(metrics.recall() > 0.5);
    assert!(priced.prevented_loss > 0.0);
    // Identity: net = prevented − (triage + fix + compute + missed).
    let recomputed = priced.prevented_loss
        - priced.triage_cost
        - priced.fix_cost
        - priced.compute_cost
        - priced.missed_loss;
    assert!((priced.net_value - recomputed).abs() < 1e-9);
}

#[test]
fn cross_project_split_is_leak_free_and_harder() {
    let ds = DatasetBuilder::new(7).projects_per_team(4).vulnerable_count(60).build();
    let projects = ds.projects();
    let held_out = vec![projects[0].clone(), projects[1].clone()];
    let split = split_by_project(&ds, &held_out);
    assert!(split.test.iter().all(|s| held_out.contains(&s.project)));
    assert!(split.train.iter().all(|s| !held_out.contains(&s.project)));
    let train_ids: std::collections::HashSet<u64> = split.train.iter().map(|s| s.id).collect();
    assert!(split.test.iter().all(|s| !train_ids.contains(&s.id)));
}
