//! Concurrency stress suite for `vulnman serve`: N client threads fire
//! interleaved analyze/lint/oracle requests at one server and every
//! response must match a single-threaded golden computed directly from a
//! reference [`ServiceCore`] — at fault rate 0 and at 5%. Admission
//! control is exercised separately: the queue-depth gauge never exceeds
//! its bound, and every shed request is accounted in the degradation
//! ledger.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Mutex;
use vulnman::prelude::*;
use vulnman::serve::{spawn, Request, Response, ServeConfig, ServiceCore};

/// A deterministic request mix over a small corpus: ids are globally
/// unique, kinds interleave, and oracle requests carry labels/CWEs.
fn request_mix(total: usize) -> Vec<Request> {
    let ds = DatasetBuilder::new(99).vulnerable_count(8).vulnerable_fraction(0.4).build();
    let samples = ds.samples();
    (0..total)
        .map(|i| {
            let sample = &samples[i % samples.len()];
            let (kind, label, cwe) = match i % 3 {
                0 => ("analyze", None, None),
                1 => ("lint", None, None),
                _ => ("oracle", Some(sample.observed_label), sample.cwe.map(|c| format!("{c:?}"))),
            };
            Request { id: i as u64, kind: kind.into(), source: sample.source.clone(), label, cwe }
        })
        .collect()
}

/// Single-threaded golden responses, straight through a reference core
/// with the same fault config (responses carry no timing or cache-state
/// data, so this is the exact expected byte sequence per id).
fn goldens(requests: &[Request], fault: &FaultConfig) -> BTreeMap<u64, String> {
    let core = ServiceCore::new(&Registry::new(), fault);
    let ledger = Mutex::new(DegradationSummary::default());
    requests
        .iter()
        .map(|r| (r.id, serde_json::to_string(&core.handle(r, &ledger)).unwrap()))
        .collect()
}

/// Sends `requests` down one connection and returns the responses parsed
/// and re-serialized, keyed by id.
fn run_client(addr: std::net::SocketAddr, requests: &[Request]) -> BTreeMap<u64, String> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    for req in requests {
        let mut line = serde_json::to_string(req).unwrap();
        line.push('\n');
        stream.write_all(line.as_bytes()).unwrap();
    }
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    let reader = BufReader::new(stream);
    reader
        .lines()
        .map(|l| {
            let line = l.expect("read response");
            let resp: Response = serde_json::from_str(&line).expect("response parses");
            (resp.id, serde_json::to_string(&resp).unwrap())
        })
        .collect()
}

fn stress_at_rate(rate: f64) {
    const CLIENTS: usize = 6;
    const PER_CLIENT: usize = 24;
    let fault = FaultConfig::with_rate(11, rate);
    let requests = request_mix(CLIENTS * PER_CLIENT);
    let expected = goldens(&requests, &fault);

    let metrics = Registry::new();
    let config = ServeConfig {
        workers: 4,
        // Roomy bound: this test pins equivalence, not shedding.
        queue: CLIENTS * PER_CLIENT,
        fault,
        ..ServeConfig::default()
    };
    let server = spawn("127.0.0.1:0", config, &metrics).expect("bind");
    let addr = server.addr();

    let got: BTreeMap<u64, String> = std::thread::scope(|scope| {
        let handles: Vec<_> = requests
            .chunks(PER_CLIENT)
            .map(|chunk| scope.spawn(move || run_client(addr, chunk)))
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("client thread")).collect()
    });

    assert_eq!(got.len(), requests.len(), "every request answered exactly once");
    for (id, body) in &got {
        assert_eq!(
            body,
            expected.get(id).unwrap(),
            "request {id}: concurrent response != single-threaded golden"
        );
    }

    // Degradation bookkeeping matches the pure plan prediction.
    let reference = ServiceCore::new(&Registry::new(), &fault);
    let predicted_degraded =
        requests.iter().filter(|r| reference.degrades(r.id, &r.kind)).count() as u64;
    assert_eq!(metrics.counter("serve.degraded").get(), predicted_degraded);
    let ledger = server.ledger();
    assert_eq!(ledger.assessments_lost, predicted_degraded);
    assert_eq!(ledger.shed, 0, "roomy queue must not shed");
    if rate == 0.0 {
        assert_eq!(predicted_degraded, 0);
        assert_eq!(ledger, DegradationSummary::default());
    } else {
        assert!(predicted_degraded > 0, "a 5% plan should degrade something in 144 requests");
    }

    // The queue-depth gauge respected its bound throughout.
    let peak = metrics.gauge("serve.queue_depth_peak").get();
    assert!(peak <= (CLIENTS * PER_CLIENT) as i64, "peak {peak} exceeded bound");
    assert_eq!(metrics.counter("serve.requests").get(), requests.len() as u64);
    assert_eq!(metrics.counter("serve.responses").get(), requests.len() as u64);
    server.shutdown();
}

#[test]
fn concurrent_responses_match_single_threaded_goldens_without_faults() {
    stress_at_rate(0.0);
}

#[test]
fn concurrent_responses_match_single_threaded_goldens_at_5_percent_faults() {
    stress_at_rate(0.05);
}

/// Overload path: a tiny queue in front of slow-to-drain workers must shed
/// deterministically into the ledger — and the depth gauge never exceeds
/// the bound.
#[test]
fn overload_sheds_into_the_degradation_ledger_and_respects_the_bound() {
    const QUEUE: usize = 2;
    const CLIENTS: usize = 8;
    const PER_CLIENT: usize = 25;
    let metrics = Registry::new();
    let config = ServeConfig {
        workers: 1,
        queue: QUEUE,
        fault: FaultConfig::default(),
        ..ServeConfig::default()
    };
    let server = spawn("127.0.0.1:0", config, &metrics).expect("bind");
    let addr = server.addr();

    // Every client hammers the same analyze request; only the first
    // compute is slow (cold cache), but 8 writers against 1 worker and a
    // 2-deep queue overload admission regardless.
    let requests = request_mix(CLIENTS * PER_CLIENT);
    let responses: Vec<BTreeMap<u64, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = requests
            .chunks(PER_CLIENT)
            .map(|chunk| scope.spawn(move || run_client(addr, chunk)))
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });

    let mut ok = 0u64;
    let mut shed = 0u64;
    for body in responses.iter().flat_map(|m| m.values()) {
        let resp: Response = serde_json::from_str(body).unwrap();
        match resp.status.as_str() {
            "ok" => ok += 1,
            "shed" => shed += 1,
            other => panic!("unexpected status {other:?}"),
        }
    }
    assert_eq!(ok + shed, (CLIENTS * PER_CLIENT) as u64, "every request answered");
    assert!(shed > 0, "8 clients against queue=2/workers=1 must shed");

    // Shed accounting: client-visible responses == counter == ledger.
    assert_eq!(metrics.counter("serve.shed").get(), shed);
    assert_eq!(server.ledger().shed, shed);
    // Answered = admitted + shed; nothing lost or double-counted.
    assert_eq!(metrics.counter("serve.responses").get(), ok + shed);

    // The admission bound held at every instant the gauge observed.
    let peak = metrics.gauge("serve.queue_depth_peak").get();
    assert!(peak <= QUEUE as i64, "peak {peak} exceeded the queue bound {QUEUE}");
    assert!(peak > 0, "the gauge should have seen load");
    server.shutdown();
}
