//! Integration tests pinning the paper's five gap claims at small scale.
//!
//! Each test is a miniature of the corresponding experiment in
//! `vulnman-bench` (which runs the paper-scale version); together they keep
//! the *shape* of every claim under continuous test.

use vulnman::core::agreement::{run_agreement_study, TrainingRegime};
use vulnman::core::anonymize::{identifier_leakage, Anonymizer, Strength};
use vulnman::core::repair::{evaluate_engine, LlmSimRepairEngine};
use vulnman::prelude::*;
use vulnman::synth::repair_tasks::generate_tasks;

#[test]
fn gap1_models_disagree() {
    let ds = DatasetBuilder::new(11)
        .teams(StyleProfile::internal_teams())
        .vulnerable_count(50)
        .vulnerable_fraction(0.4)
        .tier_mix(vec![(Tier::RealWorld, 1.0)])
        .build();
    let split = stratified_split(&ds, 0.4, 1);
    let mut models = model_zoo(7);
    let study =
        run_agreement_study(&mut models, &split.train, &split.test, TrainingRegime::Disjoint);
    let best_f1 = study.f1.iter().cloned().fold(0.0, f64::max);
    assert!(
        study.unanimous_detection_rate < best_f1,
        "unanimity ({}) must be rarer than the best model's quality ({best_f1})",
        study.unanimous_detection_rate
    );
    assert!(study.unanimous_detection_rate <= study.top3_detection_rate.unwrap() + 1e-9);
}

#[test]
fn gap2_customization_beats_generic_tooling() {
    use vulnman::core::customize::SecurityStandard;
    // A stock taint config flags the media team's *fixed* code; the team
    // config accepts it.
    let team = StyleProfile::internal_teams()[1].clone();
    let ds = DatasetBuilder::new(12)
        .teams(vec![team.clone()])
        .vulnerable_count(12)
        .cwe_distribution(CweDistribution::new(vec![(Cwe::SqlInjection, 1.0)]))
        .hard_negative_fraction(1.0)
        .build();
    let standard = SecurityStandard::for_team(&team);
    let stock = TaintConfig::default_config();
    let custom = standard.taint_config();
    let mut stock_fp = 0;
    let mut custom_fp = 0;
    for s in ds.iter().filter(|s| !s.label && s.cwe.is_some()) {
        let p = parse(&s.source).expect("parses");
        if !TaintAnalysis::run(&p, &stock).findings.is_empty() {
            stock_fp += 1;
        }
        if !TaintAnalysis::run(&p, &custom).findings.is_empty() {
            custom_fp += 1;
        }
    }
    assert!(stock_fp > 0, "stock tooling must stumble on team wrappers");
    assert_eq!(custom_fp, 0, "team-customized tooling accepts the team's own fixes");
}

#[test]
fn gap3_imbalance_destroys_precision() {
    let train = DatasetBuilder::new(13).vulnerable_count(80).vulnerable_fraction(0.5).build();
    let mut model = model_zoo(5).remove(0);
    model.train(&train);
    let balanced = DatasetBuilder::new(14).vulnerable_count(40).vulnerable_fraction(0.5).build();
    let imbalanced = DatasetBuilder::new(15).vulnerable_count(20).vulnerable_fraction(0.04).build();
    let mb = model.evaluate(&balanced);
    let mi = model.evaluate(&imbalanced);
    assert!(
        mi.precision() < mb.precision(),
        "precision must fall with the base rate: {} -> {}",
        mb.precision(),
        mi.precision()
    );
    assert!(mi.fp_per_tp() > mb.fp_per_tp());
}

#[test]
fn gap3_repair_collapses_on_real_world_tasks() {
    let engine = LlmSimRepairEngine::new(3);
    let toy = evaluate_engine(&engine, &generate_tasks(16, Tier::Simple, 30));
    let real = evaluate_engine(&engine, &generate_tasks(16, Tier::RealWorld, 30));
    assert!(toy.solve_rate() > 0.6, "toy solve {}", toy.solve_rate());
    assert!(real.solve_rate() < 0.15, "real solve {}", real.solve_rate());
}

#[test]
fn gap4_label_noise_and_duplication_hurt() {
    // Noise.
    let clean = DatasetBuilder::new(17).vulnerable_count(60).build();
    let noisy = DatasetBuilder::new(17).vulnerable_count(60).label_noise(0.6).build();
    let test = DatasetBuilder::new(18).vulnerable_count(40).build();
    let mut m_clean = model_zoo(11).remove(2);
    let mut m_noisy = model_zoo(11).remove(2);
    m_clean.train(&clean);
    m_noisy.train(&noisy);
    assert!(
        m_noisy.evaluate(&test).f1() < m_clean.evaluate(&test).f1(),
        "noisy labels must cost accuracy"
    );
    // Duplication is detectable and removable.
    let dup = DatasetBuilder::new(19).vulnerable_count(20).duplication_factor(4).build();
    assert!(dup.duplicate_fraction() > 0.8);
    let dedup = dup.deduplicated();
    assert!(dedup.len() * 3 <= dup.len(), "{} -> {}", dup.len(), dedup.len());
}

#[test]
fn gap5_expert_features_survive_anonymized_sharing() {
    // Proposal 4 end-to-end: anonymized data retains the flow patterns the
    // expert representation (and rule tools) key on.
    let ds = DatasetBuilder::new(20).vulnerable_count(20).build();
    let anonymizer = Anonymizer::new(Strength::Aggressive);
    let engine = RuleEngine::default_suite();
    let mut leak_sum = 0.0;
    for s in &ds {
        let anon = anonymizer.anonymize(s).expect("anonymizes");
        leak_sum += identifier_leakage(s, &anon.sample);
        let before = !engine.scan_source(&s.source).expect("scan").is_empty();
        let after = !engine.scan_source(&anon.sample.source).expect("scan").is_empty();
        assert_eq!(before, after, "detector verdict must survive anonymization (id {})", s.id);
    }
    assert!((leak_sum / ds.len() as f64) < 0.1, "aggressive anonymization leaks little");
}
