//! Cross-crate property tests: invariants that must hold for *any* seed,
//! knob setting, or generated program.

use proptest::prelude::*;
use vulnman::core::anonymize::{identifier_leakage, Anonymizer, Strength};
use vulnman::lang::clone::{
    estimated_jaccard, exact_jaccard, CloneConfig, CloneIndex, MinHasher, UnionFind,
};
use vulnman::lang::interp::{run_program, InterpConfig};
use vulnman::ml::eval::{roc_auc, Metrics};
use vulnman::prelude::*;
use vulnman::synth::emit::EmitCtx;
use vulnman::synth::templates;

fn all_styles() -> Vec<StyleProfile> {
    let mut v = vec![StyleProfile::mainstream()];
    v.extend(StyleProfile::internal_teams());
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every template under every style/tier parses, round-trips through
    /// the printer, and interprets without panicking.
    #[test]
    fn template_parse_print_interp_roundtrip(
        seed in any::<u64>(),
        cwe_idx in 0usize..14,
        style_idx in 0usize..4,
        tier_idx in 0usize..3,
    ) {
        use rand::SeedableRng;
        let styles = all_styles();
        let tier = Tier::ALL[tier_idx];
        let cwe = Cwe::ALL[cwe_idx];
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut ctx = EmitCtx::new(&styles[style_idx], tier, &mut rng);
        let pair = templates::generate(cwe, &mut ctx);
        for source in [&pair.vulnerable, &pair.fixed] {
            // Parse.
            let program = parse(source).expect("template parses");
            // Print → parse → print is a fixpoint.
            let printed = print_program(&program);
            let reparsed = parse(&printed).expect("printed source reparses");
            prop_assert_eq!(&printed, &print_program(&reparsed));
            // Interpretation terminates within budget (no panic, no hang).
            let _ = run_program(&program, &InterpConfig::default());
        }
    }

    /// Dataset builders respect their knobs for arbitrary settings.
    #[test]
    fn dataset_knobs_respected(
        seed in any::<u64>(),
        n in 4usize..24,
        frac_pct in 10u32..=100,
        noise_pct in 0u32..=50,
        dup in 1usize..4,
    ) {
        let frac = frac_pct as f64 / 100.0;
        let noise = noise_pct as f64 / 100.0;
        let ds = DatasetBuilder::new(seed)
            .vulnerable_count(n)
            .vulnerable_fraction(frac)
            .label_noise(noise)
            .duplication_factor(dup)
            .build();
        prop_assert_eq!(ds.vulnerable_count(), n * dup);
        // Total ≈ dup × round(n / frac).
        let expected_base = (n as f64 / frac).round() as usize;
        prop_assert_eq!(ds.len(), expected_base * dup);
        // Noise stays plausible (binomial bound, generous).
        if noise == 0.0 {
            prop_assert_eq!(ds.mislabel_rate(), 0.0);
        } else {
            prop_assert!(ds.mislabel_rate() < noise + 0.35);
        }
        // Everything parses.
        for s in ds.iter() {
            prop_assert!(parse(&s.source).is_ok());
        }
    }

    /// Anonymization never breaks parseability and leakage is monotone
    /// non-increasing in strength.
    #[test]
    fn anonymization_monotone_and_parseable(seed in any::<u64>(), cwe_idx in 0usize..14) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let style = StyleProfile::mainstream();
        let mut ctx = EmitCtx::new(&style, Tier::Curated, &mut rng);
        let pair = templates::generate(Cwe::ALL[cwe_idx], &mut ctx);
        let mut sample = DatasetBuilder::new(1).vulnerable_count(1).build().samples()[0].clone();
        sample.source = pair.vulnerable;
        sample.target_fn = pair.target_fn;

        let mut last = f64::INFINITY;
        for strength in [Strength::Light, Strength::Standard, Strength::Aggressive] {
            let anon = Anonymizer::new(strength).anonymize(&sample).expect("anonymizes");
            prop_assert!(parse(&anon.sample.source).is_ok());
            let leak = identifier_leakage(&sample, &anon.sample);
            prop_assert!(leak <= last + 1e-9, "{:?} leaked {} > {}", strength, leak, last);
            last = leak;
        }
    }

    /// Confusion-matrix metrics satisfy their algebraic invariants.
    #[test]
    fn metrics_invariants(tp in 0usize..500, fp in 0usize..500, tn in 0usize..500, fn_ in 0usize..500) {
        let m = Metrics { tp, fp, tn, fn_ };
        let (p, r, f1, acc) = (m.precision(), m.recall(), m.f1(), m.accuracy());
        for v in [p, r, f1, acc] {
            prop_assert!((0.0..=1.0).contains(&v), "{v}");
        }
        if p > 0.0 && r > 0.0 {
            // F1 is the harmonic mean: between min and max of (p, r).
            prop_assert!(f1 <= p.max(r) + 1e-12);
            prop_assert!(f1 >= p.min(r) - 1e-12);
        }
        prop_assert_eq!(m.total(), tp + fp + tn + fn_);
    }

    /// ROC-AUC is bounded and anti-symmetric under label flip.
    #[test]
    fn auc_bounds_and_flip(scores in prop::collection::vec(0.0f64..1.0, 4..40), flip_at in 1usize..3) {
        let truth: Vec<bool> = scores.iter().enumerate().map(|(i, _)| i % (flip_at + 1) == 0).collect();
        let auc = roc_auc(&scores, &truth);
        prop_assert!((0.0..=1.0).contains(&auc));
        let flipped: Vec<bool> = truth.iter().map(|t| !t).collect();
        let auc_flipped = roc_auc(&scores, &flipped);
        // Both classes present on both sides => anti-symmetry holds.
        if truth.iter().any(|&t| t) && truth.iter().any(|&t| !t) {
            prop_assert!((auc + auc_flipped - 1.0).abs() < 1e-9, "{auc} + {auc_flipped}");
        }
    }

    /// The cost model is monotone: more false positives never increase net
    /// value; more true positives never decrease it.
    #[test]
    fn cost_model_monotone(tp in 1usize..200, fp in 0usize..200, extra in 1usize..50) {
        let params = CostParams::default();
        let base = Metrics { tp, fp, tn: 1000, fn_: 10 };
        let more_fp = Metrics { fp: fp + extra, ..base };
        let more_tp = Metrics { tp: tp + extra, fn_: 10usize.saturating_sub(extra), ..base };
        let v0 = price_deployment(&base, &params).net_value;
        prop_assert!(price_deployment(&more_fp, &params).net_value <= v0);
        prop_assert!(price_deployment(&more_tp, &params).net_value >= v0);
    }

    /// `parse` is total on arbitrary damage to well-formed sources: any
    /// truncation or byte mutation yields `Ok` or `ParseError`, never a
    /// panic or stack overflow.
    #[test]
    fn parse_never_panics_on_truncated_or_mutated_source(
        seed in any::<u64>(),
        cwe_idx in 0usize..14,
        cut_pct in 0u32..100,
        mutations in prop::collection::vec((any::<u16>(), any::<u8>()), 0..8),
    ) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let style = StyleProfile::mainstream();
        let mut ctx = EmitCtx::new(&style, Tier::Curated, &mut rng);
        let source = templates::generate(Cwe::ALL[cwe_idx], &mut ctx).vulnerable;

        // Truncate at an arbitrary char boundary (a partial upload).
        let cut = source.len() * cut_pct as usize / 100;
        let cut = (0..=cut).rev().find(|&i| source.is_char_boundary(i)).unwrap_or(0);
        let mut damaged: Vec<u8> = source.as_bytes()[..cut].to_vec();
        // Then flip some bytes (bit rot, merge damage). Keep them ASCII so
        // the result stays a valid str; non-UTF-8 can't reach parse(&str).
        for &(at, with) in &mutations {
            if !damaged.is_empty() {
                let i = at as usize % damaged.len();
                damaged[i] = with % 0x80;
            }
        }
        let damaged = String::from_utf8(damaged).expect("ascii mutations");
        let _ = parse(&damaged); // must return, not panic
    }

    /// Pathological nesting is rejected with an error, not a stack
    /// overflow, whichever bracket is abused.
    #[test]
    fn parse_rejects_arbitrary_deep_nesting(depth in 300usize..3000, which in 0usize..3) {
        let src = match which {
            0 => format!("int f() {{ return {}1{}; }}", "(".repeat(depth), ")".repeat(depth)),
            1 => format!("int f(int x) {{ return {}x; }}", "!".repeat(depth)),
            _ => format!("void f() {{ {} x = 1; {} }}", "while (1) {".repeat(depth), "}".repeat(depth)),
        };
        prop_assert!(parse(&src).is_err());
    }

    /// The workflow engine is a pure function of (samples, config): same
    /// inputs, same report — and the pipelined execution agrees.
    #[test]
    fn workflow_deterministic_and_pipeline_equivalent(seed in any::<u64>()) {
        let ds = DatasetBuilder::new(seed).vulnerable_count(6).vulnerable_fraction(0.3).build();
        let mk = || {
            let mut registry = DetectorRegistry::new();
            registry.register(Box::new(RuleBasedDetector::standard()));
            WorkflowEngine::new(registry, WorkflowConfig::default())
        };
        let a = mk().process(ds.samples());
        let b = mk().process(ds.samples());
        prop_assert_eq!(&a, &b);
        let c = mk().process_pipelined(ds.samples());
        prop_assert_eq!(a.detection_metrics(), c.detection_metrics());
        prop_assert_eq!(a.auto_fixed, c.auto_fixed);
    }

    /// The abstract-interpretation solver terminates (converges within its
    /// iteration backstop) on arbitrarily shaped deep-loop / nested-branch
    /// programs, and stays within the widening budget: each block can be
    /// widened at most once per tracked variable per domain, so widenings
    /// are linearly bounded by program size.
    #[test]
    fn absint_solver_terminates_on_deep_loops_and_branches(
        loop_depth in 1usize..6,
        branch_depth in 0usize..5,
        stride in 1i64..1000,
        bound in 1i64..1_000_000,
        descending in any::<bool>(),
    ) {
        let source = synthetic_loop_nest(loop_depth, branch_depth, stride, bound, descending);
        let program = parse(&source).expect("synthetic program parses");
        let scan = vulnman::analysis::checkers::SemanticEngine::new().analyze(&program);
        prop_assert!(
            scan.stats.converged,
            "solver hit the iteration backstop on:\n{source}"
        );
        // Generous linear budget: blocks × (loop_depth + vars) per domain.
        let blocks: usize = source.matches('{').count() * 4 + 16;
        let budget = (blocks * (loop_depth + branch_depth + 8) * 3) as u64;
        prop_assert!(
            scan.stats.widenings <= budget,
            "{} widenings exceeds the {} budget for:\n{source}",
            scan.stats.widenings,
            budget
        );
    }

    /// MinHash positional agreement is an unbiased Jaccard estimator with
    /// standard error `sqrt(J(1-J)/width)`: at width 256 the estimate must
    /// land within 0.2 (> 6 sigma) of the exact similarity for any pair of
    /// sets with arbitrary size and overlap.
    #[test]
    fn minhash_estimate_tracks_exact_jaccard(
        seed in any::<u64>(),
        shared in 0usize..200,
        a_extra in 0usize..200,
        b_extra in 0usize..200,
    ) {
        // Controlled overlap: `shared` common elements, then disjoint
        // tails. Element values are arbitrary (the hasher mixes them).
        let salt = seed | 1;
        let elem = |i: usize| (i as u64).wrapping_mul(salt);
        let a: Vec<u64> = (0..shared + a_extra).map(elem).collect();
        let b: Vec<u64> =
            (0..shared).chain(shared + a_extra..shared + a_extra + b_extra).map(elem).collect();
        let (mut a, mut b) = (a, b);
        a.sort_unstable();
        a.dedup();
        b.sort_unstable();
        b.dedup();
        let exact = exact_jaccard(&a, &b);
        let hasher = MinHasher::new(seed, 256);
        let est = estimated_jaccard(&hasher.signature(&a), &hasher.signature(&b));
        prop_assert!((0.0..=1.0).contains(&est));
        prop_assert!(
            (est - exact).abs() <= 0.2,
            "estimate {est} strayed from exact {exact} (shared={shared}, extras={a_extra}/{b_extra})"
        );
    }

    /// MinHash signatures are a pure function of `(seed, width, set)`:
    /// rebuilding the hasher changes nothing, input order changes nothing,
    /// and a different seed yields a different hash family.
    #[test]
    fn minhash_signature_deterministic_and_order_invariant(
        seed in any::<u64>(),
        elems in prop::collection::vec(any::<u64>(), 1..100),
    ) {
        let sig = MinHasher::new(seed, 64).signature(&elems);
        prop_assert_eq!(&sig, &MinHasher::new(seed, 64).signature(&elems));
        let mut reversed = elems.clone();
        reversed.reverse();
        prop_assert_eq!(&sig, &MinHasher::new(seed, 64).signature(&reversed));
        // A distinct seed derives a distinct family; 64 independent
        // min-collisions at once is astronomically unlikely.
        prop_assert_ne!(&sig, &MinHasher::new(seed ^ 0xDEAD_BEEF, 64).signature(&elems));
    }

    /// Union-find invariants under arbitrary union sequences: `find` is
    /// idempotent, unioned elements land in one class, and `classes()` is
    /// a partition — every element in exactly one sorted class.
    #[test]
    fn union_find_partitions_under_arbitrary_unions(
        n in 1usize..60,
        unions in prop::collection::vec((any::<u16>(), any::<u16>()), 0..80),
    ) {
        let mut uf = UnionFind::new(n);
        let pairs: Vec<(usize, usize)> =
            unions.iter().map(|&(a, b)| (a as usize % n, b as usize % n)).collect();
        for &(a, b) in &pairs {
            uf.union(a, b);
            prop_assert!(uf.same(a, b));
        }
        for x in 0..n {
            let root = uf.find(x);
            prop_assert_eq!(root, uf.find(root), "find must be idempotent");
        }
        // Unions persist: recheck the full history after all merges.
        for &(a, b) in &pairs {
            prop_assert!(uf.same(a, b));
        }
        let classes = uf.classes();
        let mut seen = vec![false; n];
        for class in &classes {
            prop_assert!(!class.is_empty());
            prop_assert!(class.windows(2).all(|w| w[0] < w[1]), "classes are sorted");
            for &m in class {
                prop_assert!(!seen[m], "element {} appears in two classes", m);
                seen[m] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s), "every element belongs to a class");
    }

    /// The clone index is byte-deterministic at any worker count: entries,
    /// signatures, and classes agree between sequential and sharded builds
    /// on arbitrary generated corpora.
    #[test]
    fn clone_index_identical_across_jobs(seed in any::<u64>(), dup in 1usize..4) {
        let ds = DatasetBuilder::new(seed)
            .vulnerable_count(4)
            .vulnerable_fraction(0.5)
            .duplication_factor(dup)
            .build();
        let sources: Vec<(u64, &str)> =
            ds.samples().iter().map(|s| (s.id, s.source.as_str())).collect();
        let a = CloneIndex::build(&sources, CloneConfig { jobs: 1, ..CloneConfig::default() });
        let b = CloneIndex::build(&sources, CloneConfig { jobs: 4, ..CloneConfig::default() });
        prop_assert_eq!(a.len(), b.len());
        for (ea, eb) in a.entries().iter().zip(b.entries()) {
            prop_assert_eq!(ea.id, eb.id);
            prop_assert_eq!(&ea.shingles, &eb.shingles);
            prop_assert_eq!(&ea.signature, &eb.signature);
        }
        prop_assert_eq!(a.classes(), b.classes());
        // Exact duplicates always verify into one class.
        if dup > 1 {
            prop_assert!(a.classes().iter().any(|c| c.len() >= dup));
        }
    }

    /// Reports from a workflow with the semantic detector registered are
    /// byte-identical across worker counts and cache settings — the
    /// fixpoint solver introduces no scheduling or memoization sensitivity.
    #[test]
    fn semantic_workflow_identical_across_jobs_and_cache(seed in any::<u64>()) {
        let ds = DatasetBuilder::new(seed).vulnerable_count(5).vulnerable_fraction(0.4).build();
        let run = |jobs: usize, cache: bool| {
            let mut registry = DetectorRegistry::new();
            registry.register(Box::new(SemanticDetector::standard()));
            registry.register(Box::new(RuleBasedDetector::standard()));
            let config = WorkflowConfig { jobs, cache, ..Default::default() };
            let report = WorkflowEngine::new(registry, config).process(ds.samples());
            serde_json::to_string(&report).expect("report serializes")
        };
        let baseline = run(1, true);
        for (jobs, cache) in [(1, false), (4, true), (4, false)] {
            prop_assert_eq!(
                &baseline,
                &run(jobs, cache),
                "report diverged at jobs={} cache={}",
                jobs,
                cache
            );
        }
    }
}

/// Emits a parseable mini-C program with `loop_depth` nested `while` loops
/// around `branch_depth` nested `if/else` ladders, ascending or descending
/// counters, and an accumulator the interval domain must widen to cover.
fn synthetic_loop_nest(
    loop_depth: usize,
    branch_depth: usize,
    stride: i64,
    bound: i64,
    descending: bool,
) -> String {
    let mut body = String::new();
    let indent = |n: usize| "    ".repeat(n + 1);
    for d in 0..loop_depth {
        if descending {
            body.push_str(&format!("{0}int i{1} = {2};\n", indent(d), d, bound));
            body.push_str(&format!("{0}while (i{1} > 0) {{\n", indent(d), d));
        } else {
            body.push_str(&format!("{0}int i{1} = 0;\n", indent(d), d));
            body.push_str(&format!("{0}while (i{1} < {2}) {{\n", indent(d), d, bound));
        }
    }
    // Innermost: a branch ladder mutating the accumulator both ways, so
    // the join keeps both outcomes live and widening has real work.
    for b in 0..branch_depth {
        body.push_str(&format!(
            "{0}if (acc < {1}) {{\n{0}    acc = acc + {2};\n{0}}} else {{\n{0}    acc = acc - {3};\n{0}}}\n",
            indent(loop_depth + b),
            bound / (b as i64 + 1),
            stride,
            stride + b as i64,
        ));
    }
    body.push_str(&format!("{}acc = acc + {stride};\n", indent(loop_depth + branch_depth)));
    for d in (0..loop_depth).rev() {
        let step = if descending {
            format!("i{d} = i{d} - {stride};")
        } else {
            format!("i{d} = i{d} + {stride};")
        };
        body.push_str(&format!("{0}{1}\n{2}}}\n", indent(d + 1), step, indent(d)));
    }
    format!("int f(int n) {{\n    int acc = 0;\n{body}    return acc;\n}}\n\nint main() {{\n    int r = f(7);\n    return r;\n}}\n")
}
