//! Clone-aware dedup under memory pressure: epoch eviction in the
//! analysis cache and entry bounds on the clone index change *cost*,
//! never a byte of any report.
//!
//! Dedup propagation reads the representative's assessment through the
//! content-addressed cache (`rep_key`). When the cache is entry-bounded,
//! epoch eviction can flush that entry between the plan and the member's
//! propagation — the engine must transparently recompute from the pinned
//! representative sample, not resurrect stale state or fall over. The
//! long-run test drives many batches through one bounded engine, the way
//! the serve loop does, and checks both byte-stability and that the
//! bound actually held (evictions fired; tables never exceeded it).

use vulnman::lang::clone::{CloneConfig, CloneIndex};
use vulnman::prelude::*;
use vulnman::synth::mutate::alpha_rename;

/// A corpus where most samples are alpha-renamed near-clones — the shape
/// dedup exists for, and the worst case for cache pressure (every variant
/// has a distinct content key).
fn duplicate_heavy(seed: u64, base_n: usize, variants: u32) -> Dataset {
    let base = DatasetBuilder::new(seed).vulnerable_count(base_n).vulnerable_fraction(0.4).build();
    let mut ds = Dataset::new();
    let mut next_id = base.samples().iter().map(|s| s.id).max().unwrap_or(0) + 1;
    for s in base.samples() {
        ds.push(s.clone());
        for salt in 1..=variants {
            if let Some(renamed) = alpha_rename(&s.source, salt) {
                let mut dup = s.clone();
                dup.id = next_id;
                dup.source = renamed;
                dup.duplicate_of = Some(s.id);
                next_id += 1;
                ds.push(dup);
            }
        }
    }
    ds
}

fn engine(dedup: bool, cache_entries: Option<usize>, metrics: &Registry) -> WorkflowEngine {
    let mut registry = DetectorRegistry::new();
    registry.register(Box::new(RuleBasedDetector::standard()));
    registry.register(Box::new(SemanticDetector::standard()));
    let config = WorkflowConfig { dedup, cache_entries, ..Default::default() };
    WorkflowEngine::with_metrics(registry, config, metrics.clone())
}

#[test]
fn dedup_report_survives_epoch_eviction() {
    let ds = duplicate_heavy(0xE71C, 5, 2);
    let json = |dedup: bool, cache_entries: Option<usize>| {
        let metrics = Registry::new();
        let report = engine(dedup, cache_entries, &metrics).process(ds.samples());
        (serde_json::to_string(&report).expect("report serializes"), metrics)
    };
    let (baseline, _) = json(false, None);
    let (unbounded, unbounded_metrics) = json(true, None);
    // An entry limit of 1 flushes a table on effectively every insert —
    // the representative's cached assessment is gone by the time any
    // member propagates from it.
    let (starved, starved_metrics) = json(true, Some(1));
    assert_eq!(baseline, unbounded, "dedup changed the report");
    assert_eq!(baseline, starved, "epoch eviction changed the dedup report");
    // The scenario was real: members propagated, and the starved cache
    // actually evicted while the unbounded one never did.
    assert!(unbounded_metrics.counter("clone.propagated").get() > 0);
    assert!(starved_metrics.counter("clone.propagated").get() > 0);
    assert_eq!(unbounded_metrics.counter("cache.evictions").get(), 0);
    assert!(starved_metrics.counter("cache.evictions").get() > 0);
}

#[test]
fn bounded_engine_is_byte_stable_over_many_batches() {
    let ds = duplicate_heavy(0x10F6, 4, 2);
    let metrics = Registry::new();
    // Small but non-degenerate bound: enough room to get real hits inside
    // a batch, small enough that 20 batches force many epoch flushes.
    let engine = engine(true, Some(8), &metrics);
    let first = serde_json::to_string(&engine.process(ds.samples())).expect("serializes");
    for batch in 1..20 {
        let again = serde_json::to_string(&engine.process(ds.samples())).expect("serializes");
        assert_eq!(first, again, "bounded engine drifted at batch {batch}");
    }
    assert!(metrics.counter("cache.evictions").get() > 0, "the bound never engaged");
    assert!(metrics.counter("clone.propagated").get() > 0, "dedup never engaged");
}

#[test]
fn clone_index_long_run_stays_bounded() {
    let base = duplicate_heavy(0xB0B, 3, 1);
    let mut index = CloneIndex::new(CloneConfig::default()).with_entry_limit(32);
    let mut inserted = 0u64;
    for round in 0..40u32 {
        for s in base.samples() {
            // Distinct salts per round: every insert is novel content, so
            // an unbounded index would grow without bound.
            let src = alpha_rename(&s.source, 100 + round).unwrap_or_else(|| s.source.clone());
            let matches = index.query(&src).expect("generated source lexes");
            // Query sees only currently-resident entries.
            assert!(matches.len() <= index.len());
            index.insert(inserted, &src).expect("generated source lexes");
            inserted += 1;
            assert!(index.len() <= 32, "entry limit exceeded: {} entries", index.len());
        }
    }
    assert!(index.evictions() > 0, "the entry bound never engaged");
    // The index still functions after heavy eviction churn: a fresh
    // duplicate of a resident entry is found.
    let survivor = index.entries().last().expect("index is non-empty").id;
    let sample = &base.samples()[survivor as usize % base.len()];
    let salt = 100 + (survivor / base.len() as u64) as u32;
    let survivor_src = alpha_rename(&sample.source, salt).unwrap_or_else(|| sample.source.clone());
    assert!(index.query(&survivor_src).expect("lexes").contains(&survivor));
}
