//! Detector-catalog audit gate: the CWE × detector-family coverage and
//! precision matrix, gated against `tests/audit_baseline.json`.
//!
//! This is the machine-checked version of the paper's industry/academia
//! coverage comparison: each detector family (rules, taint, semantic,
//! dynamic, ML) is audited per class on a seeded vulnerable/fixed corpus,
//! and any cell that loses coverage — or starts flagging fixed twins — is
//! a CI failure, not a silent catalog gap. A conscious improvement
//! regenerates the file:
//!
//! ```text
//! AUDIT_WRITE_BASELINE=1 cargo test --test audit_gate
//! ```
//!
//! The baseline is the one `vulnman audit --check` gates against, so the
//! CLI and this test agree on parameters by construction: both use
//! [`AuditConfig::default`] with the trained-model column wired.

use std::path::PathBuf;
use vulnman::analysis::{AuditConfig, AuditEngine, AuditReport};

fn baseline_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/audit_baseline.json")
}

/// The exact run the CLI default performs: default parameters, ML column
/// trained from the salted per-class stream.
fn measure(jobs: usize) -> AuditReport {
    let config = AuditConfig { jobs, ..AuditConfig::default() };
    AuditEngine::new(config).with_ml(vulnman::core::audit_ml_verdict(config.seed)).run()
}

#[test]
fn audit_matrix_meets_the_committed_baseline() {
    let current = measure(1);

    if std::env::var("AUDIT_WRITE_BASELINE").is_ok() {
        let json = serde_json::to_string_pretty(&current).expect("serialize baseline");
        std::fs::write(baseline_path(), json + "\n").expect("write baseline");
        eprintln!("baseline regenerated at {}", baseline_path().display());
        return;
    }

    let json = std::fs::read_to_string(baseline_path())
        .expect("tests/audit_baseline.json is committed; regenerate with AUDIT_WRITE_BASELINE=1");
    let committed: AuditReport = serde_json::from_str(&json).expect("baseline parses");

    let violations = current.check_against(&committed);
    assert!(
        violations.is_empty(),
        "audit violations against the committed baseline:\n  {}",
        violations.join("\n  ")
    );
    assert!(
        current.blind_classes().is_empty(),
        "every catalog class must be covered by at least one family, blind: {:?}",
        current.blind_classes()
    );
}

/// The gate actually fires: seeding a regression into the measured matrix
/// — a covered cell going dark, a family growing false positives — must
/// produce violations. Without this negative test a broken `check_against`
/// (or a baseline of all-uncovered cells) would pass CI forever.
#[test]
fn seeded_regressions_trip_the_gate() {
    let json = std::fs::read_to_string(baseline_path()).expect("baseline is committed");
    let baseline: AuditReport = serde_json::from_str(&json).expect("baseline parses");

    // A covered cell loses its coverage.
    let mut regressed = baseline.clone();
    let (cwe, family) = regressed
        .classes
        .iter()
        .flat_map(|c| c.cells.iter().map(move |(f, cell)| (c.cwe, f.clone(), cell.covered)))
        .find(|(_, _, covered)| *covered)
        .map(|(cwe, f, _)| (cwe, f))
        .expect("the committed matrix covers at least one cell");
    let row = regressed.classes.iter_mut().find(|c| c.cwe == cwe).unwrap();
    let cell = row.cells.get_mut(&family).unwrap();
    cell.detected = 0;
    cell.covered = false;
    let violations = regressed.check_against(&baseline);
    assert!(
        violations.iter().any(|v| v.contains("coverage regression")),
        "a darkened cell must be a coverage regression, got: {violations:?}"
    );

    // The semantic family grows a false positive: both the precision gate
    // and the semantic zero-FP bar must fire.
    let mut imprecise = baseline.clone();
    let row = imprecise.classes.iter_mut().find(|c| c.cells.contains_key("semantic")).unwrap();
    let cell = row.cells.get_mut("semantic").unwrap();
    cell.false_positives += 1;
    cell.covered = false;
    let violations = imprecise.check_against(&baseline);
    assert!(violations.iter().any(|v| v.contains("precision regression")), "{violations:?}");
    assert!(violations.iter().any(|v| v.contains("zero false positives")), "{violations:?}");

    // Parameter drift is rejected outright rather than compared cell-wise.
    let mut drifted = baseline.clone();
    drifted.seed ^= 1;
    let violations = drifted.check_against(&baseline);
    assert!(violations.iter().any(|v| v.contains("parameter drift")), "{violations:?}");
}

/// The matrix — the whole serialized report — is byte-identical at any
/// `--jobs`, the acceptance bar for fanning the scans out in CI.
#[test]
fn audit_report_is_byte_identical_across_jobs() {
    let config = AuditConfig { samples_per_class: 4, ..AuditConfig::default() };
    let run = |jobs: usize| {
        let c = AuditConfig { jobs, ..config };
        let report = AuditEngine::new(c).with_ml(vulnman::core::audit_ml_verdict(c.seed)).run();
        serde_json::to_string(&report).expect("report serializes")
    };
    let golden = run(1);
    for jobs in [2, 5, 8] {
        assert_eq!(golden, run(jobs), "audit matrix diverged at jobs={jobs}");
    }
}
