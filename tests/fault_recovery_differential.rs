//! Differential recovery test: when every injected fault is recoverable,
//! retries must fully mask the faults — the degraded run's report, minus
//! its degradation accounting, is byte-identical to the fault-free run.
//!
//! This is the strongest statement of graceful degradation: transient
//! faults at a rate well below the retry budget's exhaustion threshold
//! change *nothing* about triage outcomes, only the resilience ledger.

use vulnman::prelude::*;

fn corpus() -> Dataset {
    DatasetBuilder::new(20240806).vulnerable_count(60).vulnerable_fraction(0.2).build()
}

fn registry() -> DetectorRegistry {
    let mut r = DetectorRegistry::new();
    r.register(Box::new(RuleBasedDetector::standard()));
    r
}

#[test]
fn recovered_transient_run_matches_fault_free_report() {
    let ds = corpus();

    // With max_retries = 3 a call is lost only after four consecutive
    // faulted attempts; at a 10% transient-only rate that is a 1e-4 event
    // per call, and this seed hits none over the 300-sample corpus (the
    // preconditions below would fail loudly if it did).
    let fault_config =
        FaultConfig { seed: 7, rate: 0.1, mix: FaultMix::transient_only(), ..Default::default() };

    let plain = WorkflowEngine::new(registry(), WorkflowConfig::default());
    let golden = serde_json::to_string(&plain.process(ds.samples())).expect("report serializes");

    for jobs in [1, 4] {
        let config = WorkflowConfig { jobs, ..Default::default() };
        let engine = WorkflowEngine::with_fault_config(registry(), config, fault_config);
        let mut report = engine.process(ds.samples());

        // Preconditions: faults fired, and every one of them recovered.
        let deg = &report.degradation;
        assert!(deg.transient > 0, "seed 7 at 10% must inject transients (jobs={jobs})");
        assert_eq!(deg.exhausted, 0, "retry budget must absorb every fault (jobs={jobs})");
        assert_eq!(deg.crash, 0, "transient-only mix must never crash (jobs={jobs})");
        assert_eq!(deg.ml_failures, 0, "no ML detector registered (jobs={jobs})");
        assert_eq!(deg.assessments_lost, 0, "recovered faults lose nothing (jobs={jobs})");
        assert!(deg.quarantined.is_empty(), "nothing exhausted, nothing quarantined");
        assert!(deg.recovered > 0 && deg.retries >= deg.recovered);

        // The only permitted divergence from the fault-free run is the
        // degradation ledger itself.
        report.degradation = DegradationSummary::default();
        let json = serde_json::to_string(&report).expect("report serializes");
        assert_eq!(
            json, golden,
            "fully recovered run must match the fault-free report byte-for-byte (jobs={jobs})"
        );
    }
}
