//! End-to-end guarantees of the parallel, cached analysis pipeline: sharded
//! execution is byte-identical to the sequential reference, and the
//! content-addressed cache changes cost, never results.

use vulnman::lang::AnalysisCache;
use vulnman::prelude::*;
use vulnman::synth::sample::Sample;

fn corpus_of_200() -> Vec<Sample> {
    let mut samples = DatasetBuilder::new(2024)
        .vulnerable_count(25)
        .vulnerable_fraction(0.25)
        .duplication_factor(2)
        .build()
        .samples()
        .to_vec();
    // Add an exact-duplicate slice (vendored copies: same content, fresh
    // ids) — the duplication the content-addressed cache exploits — and in
    // doing so top the corpus up past 200 samples.
    let base = samples.len();
    let max_id = samples.iter().map(|s| s.id).max().unwrap_or(0);
    for i in 0..80.max(200usize.saturating_sub(base)) {
        let mut copy = samples[i % base].clone();
        copy.id = max_id + 1 + i as u64;
        samples.push(copy);
    }
    samples
}

fn engine(jobs: usize, cache: bool) -> WorkflowEngine {
    let mut registry = DetectorRegistry::new();
    registry.register(Box::new(RuleBasedDetector::standard()));
    engine_with_registry(registry, jobs, cache)
}

fn engine_with_registry(registry: DetectorRegistry, jobs: usize, cache: bool) -> WorkflowEngine {
    WorkflowEngine::new(registry, WorkflowConfig { jobs, cache, ..Default::default() })
}

#[test]
fn parallel_jobs4_equals_sequential_jobs1_on_200_samples() {
    let samples = corpus_of_200();
    assert!(samples.len() >= 200);
    let sequential = engine(1, true).process(&samples);
    let parallel = engine(4, true).process(&samples);
    assert_eq!(sequential, parallel, "structural equality");

    let seq_json = serde_json::to_string(&sequential).expect("serialize sequential");
    let par_json = serde_json::to_string(&parallel).expect("serialize parallel");
    assert_eq!(seq_json, par_json, "serialized reports must be byte-identical");
}

#[test]
fn report_findings_follow_sample_then_detector_then_span_order() {
    let samples = corpus_of_200();
    let report = engine(4, true).process(&samples);
    // Cases stay in submission order.
    let ids: Vec<u64> = report.cases.iter().map(|c| c.sample_id).collect();
    let expected: Vec<u64> = samples.iter().map(|s| s.id).collect();
    assert_eq!(ids, expected);
    // Within a case, findings are sorted by detector name then span.
    for case in &report.cases {
        for w in case.findings.windows(2) {
            assert!(
                (&w[0].detector, w[0].span) <= (&w[1].detector, w[1].span),
                "findings out of order in case {}",
                case.sample_id
            );
        }
    }
}

#[test]
fn duplicated_samples_are_served_from_the_cache() {
    let samples = corpus_of_200();
    let e = engine(1, true);
    e.process(&samples);
    let stats = e.cache_stats();
    assert!(stats.hits > 0, "duplicate-heavy corpus must produce hits: {stats:?}");
    assert!(stats.hit_rate() > 0.3, "hit rate too low: {stats:?}");
}

#[test]
fn cache_and_parallelism_never_change_the_report() {
    let samples = corpus_of_200();
    let reference = engine(1, false).process(&samples);
    for (jobs, cache) in [(1, true), (4, false), (4, true)] {
        let got = engine(jobs, cache).process(&samples);
        assert_eq!(reference, got, "jobs={jobs} cache={cache}");
    }
}

#[test]
fn analysis_cache_is_content_addressed() {
    let cache = AnalysisCache::new();
    let a = cache.parse("int f() { return 1; }").expect("valid");
    let b = cache.parse("int f() { return 1; }\r\n").expect("normalized duplicate");
    assert_eq!(*a, *b);
    assert_eq!(cache.stats().hits, 1);
}
