//! Equivalence suite for the per-stage incremental engine behind
//! `vulnman serve`: over 200 synthetic samples and four per-function
//! mutation kinds, incremental recompute through a warm cache is
//! byte-identical to a cold full analysis, and the per-stage counters plus
//! the recompute trace prove that untouched functions were not re-analyzed.
//!
//! Every mutation is span-safe by construction (it targets the last
//! function or the end of the file, and renames preserve length), so the
//! only fingerprints that change are those of functions whose *content*
//! changed — which is exactly what the reuse assertions quantify.

use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use vulnman::analysis::SemanticEngine;
use vulnman::lang::ast::Program;
use vulnman::lang::{fingerprint_function, parse, AnalysisCache, Stage};
use vulnman::prelude::*;
use vulnman::synth::sample::Sample;

// ---------------------------------------------------------------------------
// Corpus and mutations
// ---------------------------------------------------------------------------

fn corpus_of_200() -> Vec<Sample> {
    let ds = DatasetBuilder::new(20240808).vulnerable_count(50).vulnerable_fraction(0.25).build();
    let samples = ds.samples().to_vec();
    assert!(samples.len() >= 200, "corpus too small: {}", samples.len());
    samples.into_iter().take(200).collect()
}

/// Word-boundary identifier replacement (never touches substrings of
/// longer identifiers).
fn replace_ident(source: &str, old: &str, new: &str) -> String {
    let bytes = source.as_bytes();
    let is_word = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    let mut out = String::with_capacity(source.len());
    let mut i = 0;
    while i < bytes.len() {
        if source[i..].starts_with(old)
            && (i == 0 || !is_word(bytes[i - 1]))
            && (i + old.len() >= bytes.len() || !is_word(bytes[i + old.len()]))
        {
            out.push_str(new);
            i += old.len();
        } else {
            let ch = source[i..].chars().next().unwrap();
            out.push(ch);
            i += ch.len_utf8();
        }
    }
    out
}

/// A same-length fresh name for `name` (alpha-renaming must not shift any
/// byte offsets, or unrelated functions' span-bearing fingerprints change).
fn fresh_name(name: &str, taken: &BTreeSet<String>) -> Option<String> {
    for pos in (0..name.len()).rev() {
        for c in b'a'..=b'z' {
            let mut cand = name.as_bytes().to_vec();
            if cand[pos] == c {
                continue;
            }
            cand[pos] = c;
            let cand = String::from_utf8(cand).unwrap();
            if !taken.contains(&cand) {
                return Some(cand);
            }
        }
    }
    None
}

/// The four per-function mutation kinds of the suite, derived from the
/// parsed base program. Each returns valid mini-C.
fn mutations(source: &str, base: &Program) -> Vec<(&'static str, String)> {
    let mut out = Vec::new();
    let names: BTreeSet<String> = base.functions.iter().map(|f| f.name.to_string()).collect();
    let last = base.functions.last().expect("non-empty program");

    // 1. Alpha-rename the last function (same length, all call sites).
    if let Some(new_name) = fresh_name(last.name.as_ref(), &names) {
        out.push(("alpha-rename", replace_ident(source, last.name.as_ref(), &new_name)));
    }

    // 2. Edit the last function's body (insert a statement before its
    //    closing brace — the file's final `}`).
    if let Some(close) = source.rfind('}') {
        let mut edited = String::with_capacity(source.len() + 24);
        edited.push_str(&source[..close]);
        edited.push_str("int sv_edit = 1; ");
        edited.push_str(&source[close..]);
        out.push(("edit-body", edited));
    }

    // 3. Add a function at end-of-file.
    let mut added = source.to_string();
    if !added.ends_with('\n') {
        added.push('\n');
    }
    added.push_str("int sv_added(int x) { return x + 1; }\n");
    out.push(("add-function", added));

    // 4. Remove the last function.
    if base.functions.len() > 1 {
        let span = &last.span;
        let mut removed = String::with_capacity(source.len());
        removed.push_str(&source[..span.start]);
        removed.push_str(source[span.end..].trim_start());
        out.push(("remove-function", removed));
    }
    out
}

// ---------------------------------------------------------------------------
// Reuse accounting
// ---------------------------------------------------------------------------

fn fingerprints(program: &Program) -> BTreeMap<String, u64> {
    program.functions.iter().map(|f| (f.name.to_string(), fingerprint_function(f))).collect()
}

/// The set of functions the incremental driver is *allowed* to re-solve
/// for `base -> mutated`: functions whose fingerprint changed (or that
/// appeared/disappeared), plus their transitive callers in the mutated
/// program. Everything else must be served from cache.
fn allowed_solved(base: &Program, mutated: &Program) -> BTreeSet<String> {
    let bf = fingerprints(base);
    let mf = fingerprints(mutated);
    let mut dirty: BTreeSet<String> = mf
        .iter()
        .filter(|(name, fp)| bf.get(*name) != Some(fp))
        .map(|(name, _)| name.clone())
        .collect();
    // Removed functions are dirt too: their callers' summary keys change.
    dirty.extend(bf.keys().filter(|n| !mf.contains_key(*n)).cloned());

    let mut callers: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for f in &mutated.functions {
        for callee in f.callees() {
            callers.entry(callee.to_string()).or_default().push(f.name.to_string());
        }
    }
    let mut allowed = dirty.clone();
    let mut queue: Vec<String> = dirty.into_iter().collect();
    while let Some(name) = queue.pop() {
        for caller in callers.get(&name).into_iter().flatten() {
            if allowed.insert(caller.clone()) {
                queue.push(caller.clone());
            }
        }
    }
    allowed.retain(|n| mf.contains_key(n));
    allowed
}

// ---------------------------------------------------------------------------
// Equivalence: incremental == cold full, byte for byte
// ---------------------------------------------------------------------------

#[test]
fn incremental_recompute_is_byte_identical_across_200_samples_and_mutations() {
    let samples = corpus_of_200();
    let engine = SemanticEngine::new();
    let mut mutated_runs = 0usize;
    let mut total_reused = 0usize;
    let mut add_solved = 0usize;
    let mut add_reused = 0usize;

    for sample in &samples {
        let base = parse(&sample.source).expect("corpus sample parses");
        let cache = AnalysisCache::new();
        // Warm the per-stage cache with the base analysis (and pin the
        // warm-up itself against a cold full run).
        let warm = engine.scan_source_incremental(&sample.source, &cache).unwrap();
        let cold = engine.analyze(&base);
        assert_eq!(
            serde_json::to_string(&warm.findings).unwrap(),
            serde_json::to_string(&cold.findings).unwrap(),
            "sample {}: cold incremental != full",
            sample.id
        );

        for (kind, mutated_source) in mutations(&sample.source, &base) {
            let mutated = parse(&mutated_source)
                .unwrap_or_else(|e| panic!("sample {} {kind}: mutated source: {e}", sample.id));
            let incr = engine.scan_source_incremental(&mutated_source, &cache).unwrap();
            let full = engine.analyze(&mutated);
            // Byte identity against a cold, cache-free, full analysis.
            assert_eq!(
                serde_json::to_string(&incr.findings).unwrap(),
                serde_json::to_string(&full.findings).unwrap(),
                "sample {} {kind}: incremental != full",
                sample.id
            );
            // Reuse soundness: only dirtied functions (and their transitive
            // callers) may have been re-solved.
            let allowed = allowed_solved(&base, &mutated);
            for solved in &incr.trace.solved {
                assert!(
                    allowed.contains(solved),
                    "sample {} {kind}: `{solved}` was re-solved but neither changed nor \
                     (transitively) calls a changed function; allowed = {allowed:?}",
                    sample.id
                );
            }
            mutated_runs += 1;
            total_reused += incr.trace.reused.len();
            if kind == "add-function" {
                add_solved += incr.trace.solved.len();
                add_reused += incr.trace.reused.len();
            }
        }
    }

    assert!(mutated_runs >= 600, "expected >= 3 mutations per sample: {mutated_runs}");
    assert!(total_reused > 0, "the warm cache must serve something");
    // Adding a function dirties nothing else: every pre-existing function
    // must be reused, so reuse strictly dominates on that mutation kind.
    assert!(
        add_reused > add_solved,
        "add-function should mostly reuse: {add_reused} reused vs {add_solved} solved"
    );
}

// ---------------------------------------------------------------------------
// Stage counters: untouched functions are not re-analyzed
// ---------------------------------------------------------------------------

const MULTI: &str = "int leaf() { return 2; }\n\
    int side(int x) { return x * 3; }\n\
    int mid() { return leaf() + 1; }\n\
    int top_fn() { return mid() * 2; }\n";

#[test]
fn stage_counters_prove_untouched_functions_are_not_reanalyzed() {
    let engine = SemanticEngine::new();
    let cache = AnalysisCache::new();
    engine.scan_source_incremental(MULTI, &cache).unwrap();
    let summary_before = cache.stage_stats(Stage::Summary);
    let cfg_before = cache.stage_stats(Stage::Cfg);

    // Append one function at EOF: no other fingerprint can change.
    let mutated = format!("{MULTI}int sv_added(int x) {{ return x + 1; }}\n");
    let incr = engine.scan_source_incremental(&mutated, &cache).unwrap();

    assert_eq!(incr.trace.solved, vec!["sv_added".to_string()], "only the new function solves");
    let reused: BTreeSet<&str> = incr.trace.reused.iter().map(String::as_str).collect();
    for name in ["leaf", "side", "mid", "top_fn"] {
        assert!(reused.contains(name), "`{name}` must be served from cache");
    }

    // Six domain passes (interval, nullness, init, ownership, width,
    // provenance), one new single-function SCC each: exactly six summary
    // recomputes; the four untouched SCCs hit in all six passes.
    let summary_after = cache.stage_stats(Stage::Summary);
    assert_eq!(summary_after.misses - summary_before.misses, 6);
    assert_eq!(summary_after.hits - summary_before.hits, 24);
    // The CFG is domain-independent: built once for the new function,
    // never rebuilt for cached ones.
    let cfg_after = cache.stage_stats(Stage::Cfg);
    assert_eq!(cfg_after.misses - cfg_before.misses, 1);
}

#[test]
fn resubmitting_identical_source_recomputes_nothing() {
    let engine = SemanticEngine::new();
    let cache = AnalysisCache::new();
    let first = engine.scan_source_incremental(MULTI, &cache).unwrap();
    assert_eq!(first.trace.reused, Vec::<String>::new());
    let misses_before = cache.stage_stats(Stage::Summary).misses;
    let second = engine.scan_source_incremental(MULTI, &cache).unwrap();
    assert_eq!(second.trace.solved, Vec::<String>::new());
    assert_eq!(cache.stage_stats(Stage::Summary).misses, misses_before);
    assert_eq!(
        serde_json::to_string(&first.findings).unwrap(),
        serde_json::to_string(&second.findings).unwrap()
    );
}

// ---------------------------------------------------------------------------
// Per-stage cache properties
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Invalidation soundness: a changed input hash always re-runs the
    /// stage. Minimality: an unchanged hash never does. Accounting:
    /// hits + misses == lookups, per stage, for any operation sequence.
    #[test]
    fn stage_cache_invalidation_minimality_and_accounting(
        seed in any::<u64>(),
        ops in 1usize..120,
        keyspace in 1u64..12,
    ) {
        let cache = AnalysisCache::new();
        let stage = Stage::ALL[(seed % Stage::ALL.len() as u64) as usize];
        let computes = AtomicUsize::new(0);
        let mut state = seed;
        let mut lookups = 0u64;
        let mut seen: BTreeSet<u64> = BTreeSet::new();
        for _ in 0..ops {
            // splitmix64 step
            state = state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            let key = (z ^ (z >> 31)) % keyspace;
            let before = computes.load(Ordering::SeqCst);
            let value = cache.stage(stage, key, || {
                computes.fetch_add(1, Ordering::SeqCst);
                key.wrapping_mul(3)
            });
            lookups += 1;
            let ran = computes.load(Ordering::SeqCst) - before;
            if seen.insert(key) {
                // Invalidation soundness: a never-seen input hash must run.
                prop_assert_eq!(ran, 1, "fresh key {} must compute", key);
            } else {
                // Minimality: an unchanged input hash must be served from
                // cache without recomputing.
                prop_assert_eq!(ran, 0, "repeat key {} must hit", key);
            }
            prop_assert_eq!(*value, key.wrapping_mul(3));
        }
        let stats = cache.stage_stats(stage);
        prop_assert_eq!(stats.hits + stats.misses, lookups, "hits+misses == lookups");
        prop_assert_eq!(stats.misses, seen.len() as u64, "one miss per distinct key");
        // Stages are isolated: no other stage's counters moved.
        for other in Stage::ALL {
            if other != stage {
                let s = cache.stage_stats(other);
                prop_assert_eq!(s.hits + s.misses, 0);
            }
        }
    }

    /// A disabled cache misses every lookup (and re-runs every compute),
    /// and the accounting identity still holds.
    #[test]
    fn disabled_stage_cache_always_recomputes(seed in any::<u64>(), ops in 1usize..40) {
        let cache = AnalysisCache::disabled();
        let computes = AtomicUsize::new(0);
        for i in 0..ops {
            let _ = cache.stage(Stage::Findings, seed % 5, || {
                computes.fetch_add(1, Ordering::SeqCst);
                i
            });
        }
        prop_assert_eq!(computes.load(Ordering::SeqCst), ops);
        let stats = cache.stage_stats(Stage::Findings);
        prop_assert_eq!(stats.hits, 0);
        prop_assert_eq!(stats.misses, ops as u64);
    }
}

/// Typed access: a stage entry stored at one type is served as a miss (and
/// recomputed) when fetched at another, never a panic or a wrong value.
#[test]
fn stage_cache_type_mismatch_is_a_miss() {
    let cache = AnalysisCache::new();
    cache.stage_put(Stage::Summary, 7, Arc::new(42u64));
    assert_eq!(cache.stage_get::<u64>(Stage::Summary, 7).as_deref(), Some(&42));
    assert_eq!(cache.stage_get::<String>(Stage::Summary, 7), None);
    let stats = cache.stage_stats(Stage::Summary);
    assert_eq!((stats.hits, stats.misses), (1, 1));
}
