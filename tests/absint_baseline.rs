//! Semantic-checker detection baseline: per-CWE true/false positives on a
//! fixed corpus, gated against `tests/absint_baseline.json`.
//!
//! The corpus is one semantic-gap template pair per (class, seed) — every
//! class in `GAP_CLASSES` × 30 seeds, styles and tiers rotated — so it
//! grows automatically when a new gap class lands. Each pair contributes
//! its vulnerable sample and its fixed twin. The committed baseline
//! records, per class, how many
//! vulnerable samples the semantic suite catches and how many fixed twins
//! it still flags. The gate fails on any true-positive decrease or
//! false-positive increase; a conscious improvement regenerates the file:
//!
//! ```text
//! ABSINT_WRITE_BASELINE=1 cargo test --test absint_baseline
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use vulnman::analysis::checkers::{AbsintBaseline, BaselineEntry, SemanticEngine};
use vulnman::analysis::detectors::RuleEngine;
use vulnman::analysis::oracle::{DifferentialOracle, OracleConfig};
use vulnman::prelude::*;
use vulnman::synth::emit::EmitCtx;
use vulnman::synth::templates::semantic::{semantic_gap_pair, GAP_CLASSES};

const SEEDS_PER_CLASS: u64 = 30;

fn baseline_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/absint_baseline.json")
}

/// The fixed corpus: `(class, vulnerable source, fixed source)` triples.
/// Everything is derived from constant seeds, so the corpus is identical on
/// every machine and every run — the baseline numbers are exact, not
/// statistical.
fn corpus() -> Vec<(Cwe, String, String)> {
    let mut styles = vec![StyleProfile::mainstream()];
    styles.extend(StyleProfile::internal_teams());
    let mut out = Vec::new();
    for cwe in GAP_CLASSES {
        for seed in 0..SEEDS_PER_CLASS {
            let style = &styles[seed as usize % styles.len()];
            let tier = Tier::ALL[seed as usize % Tier::ALL.len()];
            let mut rng = StdRng::seed_from_u64(seed * 1009 + u64::from(cwe.id()));
            let mut ctx = EmitCtx::new(style, tier, &mut rng);
            let pair = semantic_gap_pair(cwe, &mut ctx);
            out.push((cwe, pair.vulnerable, pair.fixed));
        }
    }
    assert_eq!(
        out.len() as u64 * 2,
        GAP_CLASSES.len() as u64 * SEEDS_PER_CLASS * 2,
        "every gap class contributes exactly {SEEDS_PER_CLASS} pairs"
    );
    out
}

fn count_hits(engine: &SemanticEngine, source: &str, cwe: Cwe) -> bool {
    let program = parse(source).expect("corpus sample parses");
    engine.analyze(&program).findings.iter().any(|f| f.cwe == cwe)
}

fn measure() -> AbsintBaseline {
    let engine = SemanticEngine::new();
    let mut entries: Vec<BaselineEntry> = GAP_CLASSES
        .iter()
        .map(|c| BaselineEntry { cwe: c.id(), true_positives: 0, false_positives: 0 })
        .collect();
    for (cwe, vulnerable, fixed) in corpus() {
        let e = entries.iter_mut().find(|e| e.cwe == cwe.id()).expect("entry");
        if count_hits(&engine, &vulnerable, cwe) {
            e.true_positives += 1;
        }
        if count_hits(&engine, &fixed, cwe) {
            e.false_positives += 1;
        }
    }
    entries.sort_by_key(|e| e.cwe);
    AbsintBaseline { entries }
}

#[test]
fn semantic_suite_meets_the_committed_baseline() {
    let current = measure();

    if std::env::var("ABSINT_WRITE_BASELINE").is_ok() {
        let json = serde_json::to_string_pretty(&current).expect("serialize baseline");
        std::fs::write(baseline_path(), json + "\n").expect("write baseline");
        eprintln!("baseline regenerated at {}", baseline_path().display());
        return;
    }

    let json = std::fs::read_to_string(baseline_path())
        .expect("tests/absint_baseline.json is committed; regenerate with ABSINT_WRITE_BASELINE=1");
    let committed: AbsintBaseline = serde_json::from_str(&json).expect("baseline parses");

    assert_eq!(
        committed.entries.len(),
        GAP_CLASSES.len(),
        "the baseline covers every semantic-gap class"
    );
    for want in &committed.entries {
        let got = current
            .entries
            .iter()
            .find(|e| e.cwe == want.cwe)
            .unwrap_or_else(|| panic!("CWE-{} missing from the measured corpus", want.cwe));
        assert!(
            got.true_positives >= want.true_positives,
            "CWE-{}: true positives regressed {} -> {} — fix the checker or consciously \
             regenerate the baseline",
            want.cwe,
            want.true_positives,
            got.true_positives
        );
        assert!(
            got.false_positives <= want.false_positives,
            "CWE-{}: false positives grew {} -> {}",
            want.cwe,
            want.false_positives,
            got.false_positives
        );
    }
}

/// The headline acceptance numbers from the gap study: the semantic suite
/// catches ≥90% of the corpus it was built for while the rule suite —
/// blind to constant value flow by construction — stays under 50%.
#[test]
fn semantic_detection_dominates_rules_on_the_gap_corpus() {
    let engine = SemanticEngine::new();
    let rules = RuleEngine::default_suite();
    let samples = corpus();
    let n = samples.len();
    let mut semantic_tp = 0usize;
    let mut rule_tp = 0usize;
    for (cwe, vulnerable, _) in &samples {
        if count_hits(&engine, vulnerable, *cwe) {
            semantic_tp += 1;
        }
        let program = parse(vulnerable).expect("parses");
        if rules.scan(&program).iter().any(|f| f.cwe == *cwe) {
            rule_tp += 1;
        }
    }
    let semantic_rate = semantic_tp as f64 / n as f64;
    let rule_rate = rule_tp as f64 / n as f64;
    assert!(
        semantic_rate >= 0.90,
        "semantic suite must catch >=90% of the gap corpus, got {semantic_rate:.3}"
    );
    assert!(rule_rate < 0.50, "rule suite should stay blind to the gap corpus, got {rule_rate:.3}");
}

/// Oracle reports are byte-identical across worker counts and cache
/// settings — the acceptance bar for wiring the fixpoint solver into the
/// parallel pipeline.
#[test]
fn oracle_reports_identical_across_jobs_and_cache() {
    let ds = DatasetBuilder::new(77)
        .vulnerable_count(12)
        .vulnerable_fraction(0.3)
        .label_noise(0.1)
        .build();
    let run = |jobs: usize, cache: bool| {
        let oracle = DifferentialOracle::with_config(OracleConfig { jobs, cache });
        serde_json::to_string(&oracle.run(ds.samples())).expect("report serializes")
    };
    let baseline = run(1, true);
    for (jobs, cache) in [(1, false), (4, true), (4, false)] {
        assert_eq!(
            baseline,
            run(jobs, cache),
            "oracle report diverged at jobs={jobs} cache={cache}"
        );
    }
}
