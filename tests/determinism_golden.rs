//! Golden determinism tests: the Figure-1 workflow must produce
//! byte-identical reports regardless of worker count or cache
//! configuration, and the observability layer must export a stable
//! metrics schema for every execution path.
//!
//! Industry pipelines re-run the same change stream on differently-sized
//! runners; any nondeterminism shows up as phantom diffs in triage queues
//! and dashboards. These tests pin that contract on a fixed-seed,
//! ~500-sample corpus.

use vulnman::prelude::*;

/// Fixed-seed corpus: 75 vulnerable / 500 total — the paper's imbalanced
/// industry shape at a size that exercises every stage and both shard
/// paths (sequential and crossbeam-sharded).
fn corpus() -> Dataset {
    DatasetBuilder::new(20240615).vulnerable_count(75).vulnerable_fraction(0.15).build()
}

fn engine(jobs: usize, cache: bool) -> WorkflowEngine {
    let mut registry = DetectorRegistry::new();
    registry.register(Box::new(RuleBasedDetector::standard()));
    let config = WorkflowConfig { jobs, cache, ..Default::default() };
    WorkflowEngine::new(registry, config)
}

fn run(jobs: usize, cache: bool, ds: &Dataset) -> (String, Snapshot) {
    let e = engine(jobs, cache);
    let report = e.process(ds.samples());
    let json = serde_json::to_string(&report).expect("report serializes");
    (json, e.metrics_snapshot())
}

#[test]
fn report_bytes_identical_across_jobs_and_cache() {
    let ds = corpus();
    let (golden, golden_snap) = run(1, true, &ds);
    assert!(!golden.is_empty());
    for (jobs, cache) in [(1, false), (2, true), (2, false), (8, true), (8, false)] {
        let (json, snap) = run(jobs, cache, &ds);
        assert_eq!(
            json, golden,
            "WorkflowReport must be byte-identical at jobs={jobs} cache={cache}"
        );
        // The metrics schema (instrument name sets) is pre-registered at
        // engine construction, so it cannot depend on which execution path
        // ran or whether the cache was enabled.
        assert_eq!(
            snap.schema(),
            golden_snap.schema(),
            "metrics schema must not vary with jobs={jobs} cache={cache}"
        );
    }
}

#[test]
fn repeated_runs_produce_identical_normalized_metrics() {
    // At jobs=1 every counter (including cache hits/misses) is
    // deterministic; normalization zeroes only the wall-clock-dependent
    // histogram contents, so two runs must match exactly.
    let ds = corpus();
    let (_, a) = run(1, true, &ds);
    let (_, b) = run(1, true, &ds);
    assert_eq!(a.normalized(), b.normalized());
}

#[test]
fn metrics_json_round_trips_and_is_key_stable() {
    let ds = corpus();
    let (_, snap) = run(2, true, &ds);
    let json = serde_json::to_string_pretty(&snap).expect("snapshot serializes");
    let back: Snapshot = serde_json::from_str(&json).expect("snapshot deserializes");
    assert_eq!(back, snap, "Snapshot must survive a serde round-trip");
    // Spot-check the keys the dashboards depend on.
    for key in ["stage.assess", "stage.review", "stage.repair"] {
        assert!(
            snap.histograms.contains_key(&format!("span.{key}")),
            "missing span histogram {key}"
        );
    }
    for key in ["cache.hits", "cache.misses", "workflow.samples"] {
        assert!(snap.counters.contains_key(key), "missing counter {key}");
    }
    assert!(snap.histograms.contains_key("shard.latency_micros"));
}

#[test]
fn pipelined_and_capacity_paths_match_the_golden_report_metrics() {
    // The alternative execution paths must agree with plain `process` on
    // every detection outcome (the serialized verdicts), even though their
    // internal span sets differ.
    let ds = corpus();
    let e = engine(2, true);
    let plain = e.process(ds.samples());
    let piped = e.process_pipelined(ds.samples());
    assert_eq!(
        serde_json::to_string(&plain.detection_metrics()).unwrap(),
        serde_json::to_string(&piped.detection_metrics()).unwrap()
    );
    let capped = e.process_with_capacity(ds.samples(), f64::INFINITY);
    assert_eq!(
        serde_json::to_string(&plain.detection_metrics()).unwrap(),
        serde_json::to_string(&capped.detection_metrics()).unwrap()
    );
}
